"""DKRZ scenario: a monthly climate archive that adapts to its users.

Run with::

    python examples/climate_archive.py

Reproduces the paper's right-hand access type of Abbildung 1.1: monthly
temperature fields archived as separate objects, then a time-series
analysis ("the temperature field at one height for every month") that cuts
a thin slice through *every* object.

The second half shows HEAVEN's adaptivity: after the first analysis the
collected access statistics feed eSTAR, and re-archiving the objects
re-clusters tiles so the same analysis streams a fraction of the bytes.
"""

from repro import Heaven, HeavenConfig, RegularTiling
from repro.tertiary import MB
from repro.workloads import ClimateGrid, climate_object, slice_region

MONTHS = 6
HEIGHT_LEVEL = 5  # "800 m above sea level" in grid units


def run_series_analysis(heaven, series, region, label):
    """Read the same slice from every monthly object; report tape traffic."""
    tape_before = heaven.library.stats().bytes_read
    clock_before = heaven.clock.now
    means = []
    for obj in series:
        cells = heaven.read("months", obj.name, region)
        means.append(float(cells.mean()))
    moved = (heaven.library.stats().bytes_read - tape_before) / MB
    elapsed = heaven.clock.now - clock_before
    print(f"\n{label}:")
    for month, mean in enumerate(means):
        print(f"  month {month:02d}: {mean:7.2f} C")
    print(f"  -> {moved:.1f} MB from tape, {elapsed:.1f} virtual s")
    return moved


def main() -> None:
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=2 * MB,
            disk_cache_bytes=16 * MB,   # too small to keep all months: every
            memory_cache_bytes=4 * MB,  # analysis pass really touches tape
            num_drives=2,
        )
    )
    heaven.create_collection("months")

    grid = ClimateGrid(longitudes=240, latitudes=120, heights=16)
    series = [
        climate_object(
            f"temp-2003-{month:02d}",
            grid,
            seed=2003 + month,
            tiling=RegularTiling((60, 40, 4)),
        )
        for month in range(MONTHS)
    ]
    total_mb = 0.0
    for obj in series:
        heaven.insert("months", obj)
        heaven.archive("months", obj.name)
        total_mb += obj.size_bytes / MB
    print(f"archived {MONTHS} monthly objects, {total_mb:.0f} MB total, "
          f"on {len(heaven.library.media())} media")

    slice_at_height = slice_region(grid.domain(), axis=2, position=HEIGHT_LEVEL)

    # First analysis: the archive was clustered without knowing the users.
    moved_naive = run_series_analysis(
        heaven, series, slice_at_height,
        f"height-{HEIGHT_LEVEL} means (archive clustered without statistics)"
    )

    # HEAVEN has now *observed* thin z-slices.  Re-archive: eSTAR reorients
    # super-tiles and the intra order along the observed access profile.
    for obj in series:
        heaven.reimport("months", obj.name)
    for obj in series:
        heaven.archive("months", obj.name)
    print("\nre-archived with learned access statistics "
          f"(axis order {heaven.access_stats[series[0].name].axis_order()})")

    moved_adapted = run_series_analysis(
        heaven, series, slice_at_height,
        f"height-{HEIGHT_LEVEL} means (archive re-clustered from statistics)"
    )

    print(f"\nbytes from tape: {moved_naive:.1f} MB -> {moved_adapted:.1f} MB "
          f"({moved_naive / max(moved_adapted, 0.01):.1f}x less after adaptation); "
          f"a file-granular archive stages {total_mb:.0f} MB every pass")


if __name__ == "__main__":
    main()
