"""Cache and scheduler tuning on a shared cosmology archive.

Run with::

    python examples/cache_tuning.py

A workgroup analyses density snapshots with a popularity-skewed query
stream.  The example compares eviction policies for the disk cache and
shows what query scheduling does to a batch that interleaves objects on
different media — the two operational knobs HEAVEN operators tune.
"""

import numpy as np

from repro import Heaven, HeavenConfig, ScatterPlacement
from repro.core import policy_names
from repro.tertiary import MB
from repro.workloads import SimulationBox, ZipfQueryStream, cosmology_object

SNAPSHOTS = 4
QUERIES = 40


def build_heaven(
    policy: str, scheduling: bool = True, scattered: bool = False
) -> Heaven:
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=1 * MB,
            disk_cache_bytes=12 * MB,   # deliberately tight
            memory_cache_bytes=2 * MB,
            disk_cache_policy=policy,
            scheduling=scheduling,
            num_drives=1,
        )
    )
    heaven.create_collection("runs")
    placement = ScatterPlacement(spread=4) if scattered else None
    for snapshot in range(SNAPSHOTS):
        obj = cosmology_object(
            f"density-{snapshot:02d}", SimulationBox(128), seed=snapshot
        )
        heaven.insert("runs", obj)
        heaven.archive("runs", obj.name, placement=placement)
    heaven.library.unmount_all()
    return heaven


def run_stream(heaven: Heaven):
    domains = [
        heaven.collection("runs").get(f"density-{s:02d}").domain
        for s in range(SNAPSHOTS)
    ]
    stream = ZipfQueryStream(domains, selectivity=0.02, locality=0.8, seed=42)
    start = heaven.clock.now
    tape_before = heaven.library.stats().bytes_read
    exchanges_before = heaven.library.stats().exchanges
    for event in stream.take(QUERIES):
        name = f"density-{event.object_index:02d}"
        heaven.read("runs", name, event.region)
    return (
        (heaven.clock.now - start) / QUERIES,
        (heaven.library.stats().bytes_read - tape_before) / MB,
        heaven.library.stats().exchanges - exchanges_before,
    )


def main() -> None:
    print(f"{SNAPSHOTS} snapshots of 128^3 floats ({QUERIES} Zipf queries, "
          "12 MB disk cache)\n")
    print(f"{'policy':>8} | {'mean query [s]':>14} | {'tape [MB]':>9} | exchanges")
    print("-" * 55)
    for policy in policy_names():
        heaven = build_heaven(policy)
        mean_time, tape_mb, exchanges = run_stream(heaven)
        print(f"{policy:>8} | {mean_time:14.2f} | {tape_mb:9.1f} | {exchanges:9d}")

    print("\nscheduling ablation: one full-snapshot scan over an archive whose\n"
          "super-tiles are scattered across 4 media (generation-order layout):")
    for scheduling, label in ((False, "FIFO order"), (True, "elevator")):
        heaven = build_heaven("lru", scheduling=scheduling, scattered=True)
        obj = heaven.collection("runs").get("density-00")
        exchanges_before = heaven.library.stats().exchanges
        start = heaven.clock.now
        heaven.read("runs", "density-00", obj.domain)
        print(f"  {label:>10}: {heaven.clock.now - start:6.1f} s, "
              f"{heaven.library.stats().exchanges - exchanges_before} exchanges")


if __name__ == "__main__":
    main()
