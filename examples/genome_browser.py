"""IHPC&DB scenario: browsing an archived sequence-similarity matrix.

Run with::

    python examples/genome_browser.py

A pairwise alignment matrix lives in the tape archive.  The biologically
interesting scores sit in a narrow band around the diagonal — a region no
hypercube can express.  The example compares three ways of fetching the
band: the naive full matrix, its (useless) bounding box, and HEAVEN's
half-space Object Framing.
"""

import numpy as np

from repro import Heaven, HeavenConfig
from repro.core import tiles_in_frame
from repro.tertiary import MB
from repro.workloads import AlignmentGrid, alignment_object, diagonal_band_frame

GRID = AlignmentGrid(length_a=2048, length_b=2048)
BAND_HALF_WIDTH = 64


def main() -> None:
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=1 * MB,
            disk_cache_bytes=64 * MB,
            memory_cache_bytes=16 * MB,
        )
    )
    heaven.create_collection("alignments")
    matrix = alignment_object("humanVsMouse", GRID, seed=12)
    print(f"matrix  : [{matrix.domain}] {matrix.size_bytes / MB:.0f} MB, "
          f"{matrix.tile_count()} tiles")
    heaven.insert("alignments", matrix)
    report = heaven.archive("alignments", "humanVsMouse")
    print(f"archived: {report.segments_written} super-tiles in "
          f"{report.virtual_seconds:.0f} virtual s\n")

    band = diagonal_band_frame(GRID, BAND_HALF_WIDTH)
    band_tiles = tiles_in_frame(matrix, band)
    all_tiles = matrix.tile_count()
    print(f"diagonal band (half-width {BAND_HALF_WIDTH}): "
          f"{len(band_tiles)}/{all_tiles} tiles intersect")

    # Framed read: only band tiles leave the archive.
    tape_before = heaven.library.stats().bytes_read
    clock_before = heaven.clock.now
    framed, mask = heaven.read_frame("alignments", "humanVsMouse", band)
    band_tape = (heaven.library.stats().bytes_read - tape_before) / MB
    band_time = heaven.clock.now - clock_before
    scores = framed.cells[mask]
    print(f"framed read: {band_tape:.1f} MB from tape, {band_time:.1f} virtual s")
    print(f"  band mean similarity {scores.mean():.3f} "
          f"(matrix-wide mean would drown it in near-zero background)")

    # The hypercube alternative: the band's bounding box IS the whole matrix.
    bounding = band.bounding_box()
    print(f"\nbounding box of the band: [{bounding}] = "
          f"{100 * bounding.cell_count / matrix.domain.cell_count:.0f} % of the matrix")
    heaven2 = Heaven(HeavenConfig(super_tile_bytes=1 * MB, disk_cache_bytes=64 * MB))
    heaven2.create_collection("alignments")
    matrix2 = alignment_object("humanVsMouse", GRID, seed=12)
    heaven2.insert("alignments", matrix2)
    heaven2.archive("alignments", "humanVsMouse")
    tape_before = heaven2.library.stats().bytes_read
    clock_before = heaven2.clock.now
    heaven2.read("alignments", "humanVsMouse", bounding)
    box_tape = (heaven2.library.stats().bytes_read - tape_before) / MB
    box_time = heaven2.clock.now - clock_before
    print(f"hypercube read: {box_tape:.1f} MB from tape, {box_time:.1f} virtual s")
    print(f"\nobject framing moved {box_tape / max(band_tape, 0.01):.1f}x fewer "
          "bytes for the biologically relevant region")
    print("(the full-matrix read streams sequentially, so on this small "
          "demo matrix it is faster on tape time — the framing win is the "
          "moved/delivered volume, which dominates cost once results cross "
          "a network or a per-byte storage budget; see EXPERIMENTS.md E13)")


if __name__ == "__main__":
    main()
