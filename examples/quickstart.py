"""Quickstart: archive an array to (simulated) tape and query it back.

Run with::

    python examples/quickstart.py

Demonstrates the core HEAVEN loop: create a collection, insert a
multidimensional object, migrate it to tertiary storage, then read and
query it exactly as if it were still on disk — the virtual clock shows
what the storage hierarchy really did underneath.
"""

from repro import Heaven, HeavenConfig, MInterval
from repro.tertiary import MB
from repro.workloads import ClimateGrid, climate_object


def main() -> None:
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=4 * MB,
            disk_cache_bytes=64 * MB,
            memory_cache_bytes=16 * MB,
        )
    )
    heaven.create_collection("climate")

    # A 4-D temperature field: longitude x latitude x height x month.
    from repro import RegularTiling

    obj = climate_object(
        "temp2003",
        ClimateGrid(180, 90, 8, 12),
        seed=7,
        tiling=RegularTiling((30, 30, 4, 6)),
    )
    print(f"object     : {obj.name}  [{obj.domain}]  "
          f"{obj.size_bytes / MB:.1f} MB in {obj.tile_count()} tiles")

    heaven.insert("climate", obj)
    report = heaven.archive("climate", "temp2003")
    print(f"archived   : {report.segments_written} super-tile segments, "
          f"{report.bytes_written / MB:.1f} MB in {report.virtual_seconds:.1f} "
          f"virtual s ({report.throughput_mb_s:.1f} MB/s)")

    # A subcube read (Abb. 1.1 left): one region of one month.
    region = MInterval.of((30, 60), (40, 60), (0, 3), (6, 6))
    cells, read_report = heaven.read_with_report("climate", "temp2003", region)
    print(f"read       : {cells.shape} cells, mean temperature "
          f"{cells.mean():.2f} C")
    print(f"             staged {read_report.super_tiles_staged} super-tiles, "
          f"{read_report.bytes_from_tape / MB:.1f} MB from tape, "
          f"{read_report.virtual_seconds:.1f} virtual s")

    # The same read again: served from the cache hierarchy.
    _cells, cached = heaven.read_with_report("climate", "temp2003", region)
    print(f"re-read    : {cached.bytes_from_tape} B from tape, "
          f"{cached.virtual_seconds:.3f} virtual s (cache hit)")

    # Declarative access: a RasQL condenser answered from the precomputed
    # catalog without touching tape at all.
    results = heaven.query(
        "select avg_cells(c[0:179, 0:89, 0:7, 0:0]) from climate as c"
    )
    print(f"query      : january mean temperature = {results[0].scalar():.2f} C")
    print(f"precomputed: {heaven.precomputed.stats.answered} of "
          f"{heaven.precomputed.stats.lookups} condensers answered from catalog")

    snapshot = heaven.snapshot()
    print(f"virtual time total: {snapshot['virtual_seconds']:.1f} s; "
          f"breakdown: " + ", ".join(
              f"{kind}={seconds:.1f}s"
              for kind, seconds in sorted(snapshot["time_breakdown"].items())
          ))


if __name__ == "__main__":
    main()
