"""DLR/EOWEB scenario: selling scenes out of a continent-scale mosaic.

Run with::

    python examples/satellite_shop.py

A large vegetation-index mosaic sits in the tape archive.  Customers order
small windows ("scenes"), and one coastal-survey customer orders an
L-shaped strip — the case Object Framing exists for: the bounding box of a
coastline is mostly water, and a classic hypercube query would drag all of
it off tape.
"""

import numpy as np

from repro import Heaven, HeavenConfig, MInterval, MultiBoxFrame
from repro.tertiary import MB
from repro.workloads import SceneGrid, satellite_object, subcube


def main() -> None:
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=2 * MB,
            disk_cache_bytes=64 * MB,
            memory_cache_bytes=16 * MB,
        )
    )
    heaven.create_collection("mosaics")

    mosaic = satellite_object("europe-ndvi", SceneGrid(4096, 4096), seed=99)
    print(f"mosaic   : [{mosaic.domain}] "
          f"{mosaic.size_bytes / MB:.0f} MB, {mosaic.tile_count()} tiles of 512x512")
    heaven.insert("mosaics", mosaic)
    report = heaven.archive("mosaics", "europe-ndvi")
    print(f"archived : {report.segments_written} super-tiles in "
          f"{report.virtual_seconds:.0f} virtual s\n")

    # Three customers order scenes (small windows).
    rng = np.random.default_rng(5)
    for customer in range(1, 4):
        window = subcube(mosaic.domain, 0.01, rng)
        cells, read_report = heaven.read_with_report("mosaics", "europe-ndvi", window)
        print(f"customer {customer}: scene [{window}] -> "
              f"{cells.nbytes / MB:.2f} MB delivered, "
              f"{read_report.bytes_from_tape / MB:.2f} MB from tape, "
              f"{read_report.virtual_seconds:.1f} virtual s "
              f"(mean NDVI {cells.mean():.1f})")

    # Coastal survey: an L-shaped strip along two edges of the map.
    coast = MultiBoxFrame(
        [
            MInterval.of((0, 4095), (0, 511)),    # southern strip
            MInterval.of((0, 511), (0, 4095)),    # western strip
        ]
    )
    bounding = coast.bounding_box()
    tape_before = heaven.library.stats().bytes_read
    clock_before = heaven.clock.now
    framed, mask = heaven.read_frame("mosaics", "europe-ndvi", coast)
    framed_tape = (heaven.library.stats().bytes_read - tape_before) / MB
    framed_time = heaven.clock.now - clock_before
    frame_mb = mask.sum() * mosaic.cell_type.size_bytes / MB
    box_mb = bounding.cell_count * mosaic.cell_type.size_bytes / MB

    print(f"\ncoastal survey (L-shaped frame):")
    print(f"  frame covers {frame_mb:.1f} MB of cells; its bounding box "
          f"covers {box_mb:.1f} MB ({box_mb / frame_mb:.1f}x more)")
    print(f"  framed read moved {framed_tape:.1f} MB from tape in "
          f"{framed_time:.1f} virtual s")
    print(f"  mean coastal NDVI: {framed.cells[mask].mean():.1f}")

    # The same frame in the query language.
    results = heaven.query(
        'select avg_cells(frame(m, "0:4095,0:511; 0:511,0:4095")) '
        "from mosaics as m"
    )
    print(f"  via RasQL frame(): {results[0].scalar():.1f} "
          "(hull mean incl. fill cells)")


if __name__ == "__main__":
    main()
