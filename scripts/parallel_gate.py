"""CI gate for the discrete-event parallel staging path.

Executes the A3 batch (fixed seed) serially and on two drives and fails
unless:

* the 2-drive **executed** speedup (event-log device work over makespan)
  is at least 1.5x the single-drive makespan;
* the planner's makespan estimate agrees with the executed makespan
  within 10 % at both drive counts;
* a HEAVEN ``read_many`` returns byte-identical arrays with
  ``parallel_drives`` 1 and 2.

Run from the repository root: ``PYTHONPATH=src python scripts/parallel_gate.py``.
"""

from __future__ import annotations

import sys

import numpy as np

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig, ParallelExecutor, TapeRequest, plan_parallel
from repro.tertiary import DLT_7000, GB, MB, TapeLibrary, scaled_profile

PROFILE = scaled_profile(DLT_7000, 2 * GB)
MEDIA = 8
SEGMENTS_PER_MEDIUM = 12
SEGMENT_MB = 8
BATCH = 48
SEED = 9
MIN_SPEEDUP = 1.5
MAX_PLAN_DRIFT = 0.10

failures: list = []


def check(ok: bool, message: str) -> None:
    status = "ok  " if ok else "FAIL"
    print(f"  [{status}] {message}")
    if not ok:
        failures.append(message)


def build_batch(num_drives: int):
    library = TapeLibrary(PROFILE, num_drives=num_drives, retain_payload=False)
    requests = []
    for m in range(MEDIA):
        library.new_medium(f"m{m}")
        for s in range(SEGMENTS_PER_MEDIUM):
            name = f"m{m}/s{s}"
            library.write_segment(name, SEGMENT_MB * MB, medium_id=f"m{m}")
            _mid, segment = library.segment(name)
            requests.append(
                TapeRequest(name, f"m{m}", segment.offset, segment.length)
            )
    library.unmount_all()
    library.clock.reset()
    rng = np.random.default_rng(SEED)
    chosen = rng.choice(len(requests), size=BATCH, replace=False)
    return library, [requests[i] for i in chosen]


def executed_speedup() -> None:
    print(f"executed speedup (A3 batch, seed {SEED}):")
    reports = {}
    for drives in (1, 2):
        library, batch = build_batch(drives)
        plan = plan_parallel(batch, library, drives)
        report = ParallelExecutor(library, num_drives=drives).execute(batch)
        reports[drives] = report
        agreement = abs(report.makespan_seconds - plan.makespan_seconds) / max(
            plan.makespan_seconds, 1e-9
        )
        print(
            f"  {drives} drive(s): makespan {report.makespan_seconds:.1f} s, "
            f"planned {plan.makespan_seconds:.1f} s, "
            f"device work {report.serial_device_seconds:.1f} s"
        )
        check(
            agreement <= MAX_PLAN_DRIFT,
            f"{drives}-drive plan within {MAX_PLAN_DRIFT:.0%} of executed "
            f"makespan (got {agreement:.2%})",
        )
    speedup = (
        reports[1].makespan_seconds / reports[2].makespan_seconds
        if reports[2].makespan_seconds > 0
        else 1.0
    )
    check(
        speedup >= MIN_SPEEDUP,
        f"2-drive executed speedup >= {MIN_SPEEDUP}x (got {speedup:.2f}x)",
    )
    check(
        reports[2].bytes_read == reports[1].bytes_read,
        "parallel batch streams exactly the serial byte count",
    )


def build_heaven(parallel_drives: int) -> Heaven:
    heaven = Heaven(
        HeavenConfig(
            tape_profile=scaled_profile(DLT_7000, 512 * 1024),
            num_drives=2,
            parallel_drives=parallel_drives,
            super_tile_bytes=256 * 1024,
            disk_cache_bytes=32 * MB,
            memory_cache_bytes=8 * MB,
        )
    )
    heaven.create_collection("col")
    for i in range(3):
        mdd = MDD(
            f"obj{i}",
            MInterval.of((0, 127), (0, 127)),
            DOUBLE,
            tiling=RegularTiling((32, 32)),
            source=HashedNoiseSource(5 + i, 0.0, 9.0),
        )
        heaven.insert("col", mdd)
        heaven.archive("col", f"obj{i}")
    heaven.library.unmount_all()
    return heaven


def byte_identity() -> None:
    print("serial vs parallel HEAVEN staging:")
    regions = [
        MInterval.of((0, 100), (0, 100)),
        MInterval.of((20, 127), (64, 127)),
    ]
    batch = [
        ("col", f"obj{i}", region) for i in range(3) for region in regions
    ]
    serial_cells, _sr = build_heaven(1).read_many(batch)
    parallel = build_heaven(2)
    parallel_cells, _pr = parallel.read_many(batch)
    identical = all(
        np.array_equal(a, b) for a, b in zip(serial_cells, parallel_cells)
    )
    check(identical, "read_many byte-identical at parallel_drives 1 vs 2")
    check(
        parallel.parallel_batches > 0,
        "parallel executor actually dispatched the staging waves",
    )


def main() -> int:
    executed_speedup()
    byte_identity()
    if failures:
        print(f"\nparallel gate FAILED ({len(failures)} check(s)):")
        for message in failures:
            print(f"  - {message}")
        return 1
    print("\nparallel gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
