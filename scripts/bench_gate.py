#!/usr/bin/env python3
"""CI gate: fail on wall-clock benchmark regressions vs committed baselines.

Compares fresh ``BENCH_<name>.json`` results (written by ``python -m repro
bench``) against the baselines committed at the repo root.  Raw seconds are
not comparable across machines, so both sides are normalised by the
``calibration_s`` measurement embedded in their environment fingerprints —
the same fixed workload timed on each host — before forming ratios.

Noise tolerance: a benchmark only counts as regressed when BOTH its
normalised median AND its normalised minimum exceed the baseline by the
threshold factor (default 1.6x).  Medians jump under transient load; the
minimum of several repetitions is a far more stable proxy for "the code
got slower", and a genuine 2x slowdown moves both.

Usage:
    python scripts/bench_gate.py --current BENCH_DIR [--baseline DIR]
                                 [--threshold 1.6]

Speedup mode (``--reference DIR --min-speedup X --min-wins N``) inverts
the check: the reference directory holds results measured *before* an
optimisation landed, and the gate fails unless at least N of the
reference benchmarks are at least X times faster now (normalised median).
This pins a claimed optimisation — e.g. the zero-copy decode/assembly
rewrite — so a later change cannot silently eat the win while staying
under the regression threshold.

Exit status 1 on any regression or missing/corrupt result file.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: a benchmark regresses only when median AND min both exceed this factor
DEFAULT_THRESHOLD = 1.6


class GateError(Exception):
    """Raised for missing or malformed benchmark result files."""


@dataclass
class Comparison:
    """Normalised baseline/current ratios for one benchmark."""

    name: str
    median_ratio: float
    min_ratio: float
    baseline_median_s: float
    current_median_s: float
    normalized: bool

    def regressed(self, threshold: float) -> bool:
        return self.median_ratio > threshold and self.min_ratio > threshold

    def improved(self, threshold: float) -> bool:
        return self.median_ratio < 1.0 / threshold


def _stat(doc: Dict[str, Any], key: str) -> float:
    try:
        value = float(doc["stats"][key])
    except (KeyError, TypeError, ValueError) as exc:
        raise GateError(f"{doc.get('name', '?')}: missing stat {key!r}") from exc
    if value <= 0:
        raise GateError(f"{doc.get('name', '?')}: non-positive stat {key}={value}")
    return value


def _calibration(doc: Dict[str, Any]) -> Optional[float]:
    value = doc.get("environment", {}).get("calibration_s")
    if isinstance(value, (int, float)) and value > 0:
        return float(value)
    return None


def compare(baseline: Dict[str, Any], current: Dict[str, Any]) -> Comparison:
    """Build normalised ratios (current/baseline; >1 means slower)."""
    name = str(current.get("name") or baseline.get("name") or "?")
    base_cal = _calibration(baseline)
    cur_cal = _calibration(current)
    normalized = base_cal is not None and cur_cal is not None
    # Score = seconds per calibration-second: machine-speed cancels out.
    base_scale = base_cal if normalized else 1.0
    cur_scale = cur_cal if normalized else 1.0
    median_ratio = (_stat(current, "median_s") / cur_scale) / (
        _stat(baseline, "median_s") / base_scale
    )
    min_ratio = (_stat(current, "min_s") / cur_scale) / (
        _stat(baseline, "min_s") / base_scale
    )
    return Comparison(
        name=name,
        median_ratio=median_ratio,
        min_ratio=min_ratio,
        baseline_median_s=_stat(baseline, "median_s"),
        current_median_s=_stat(current, "median_s"),
        normalized=normalized,
    )


def _load(path: Path) -> Dict[str, Any]:
    if not path.is_file():
        raise GateError(f"missing benchmark result {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise GateError(f"unreadable benchmark result {path}: {exc}") from exc
    if not isinstance(doc, dict):
        raise GateError(f"benchmark result {path} is not a JSON object")
    return doc


def run_gate(
    baseline_dir: Path,
    current_dir: Path,
    threshold: float = DEFAULT_THRESHOLD,
    out=sys.stdout,
) -> int:
    """Compare every baseline BENCH_*.json against current_dir; 0 = pass."""
    baselines = sorted(baseline_dir.glob("BENCH_*.json"))
    if not baselines:
        print(f"bench gate: no BENCH_*.json baselines in {baseline_dir}", file=out)
        return 1
    failures: List[str] = []
    for baseline_path in baselines:
        current_path = current_dir / baseline_path.name
        try:
            result = compare(_load(baseline_path), _load(current_path))
        except GateError as exc:
            failures.append(str(exc))
            print(f"FAIL  {baseline_path.name}: {exc}", file=out)
            continue
        mode = "normalized" if result.normalized else "raw"
        line = (
            f"{result.name:20s} median x{result.median_ratio:5.2f} "
            f"min x{result.min_ratio:5.2f} ({mode}, "
            f"{result.baseline_median_s * 1000:.1f}ms -> "
            f"{result.current_median_s * 1000:.1f}ms)"
        )
        if result.regressed(threshold):
            failures.append(
                f"{result.name}: median x{result.median_ratio:.2f} and "
                f"min x{result.min_ratio:.2f} exceed threshold x{threshold}"
            )
            print(f"FAIL  {line}", file=out)
        elif result.improved(threshold):
            print(f"ok    {line}  [faster: consider re-baselining]", file=out)
        else:
            print(f"ok    {line}", file=out)
    if failures:
        print(f"bench gate: {len(failures)} regression(s):", file=out)
        for failure in failures:
            print(f"  - {failure}", file=out)
        return 1
    print(f"bench gate: {len(baselines)} benchmark(s) within x{threshold}", file=out)
    return 0


def run_speedup_gate(
    reference_dir: Path,
    current_dir: Path,
    min_speedup: float,
    min_wins: int,
    out=sys.stdout,
) -> int:
    """Require >= *min_wins* reference benchmarks to be *min_speedup*x faster.

    The reference results are treated as the baseline side of
    :func:`compare`, so the speedup is the inverse of the normalised
    median ratio (machine speed cancels via ``calibration_s`` exactly as
    in regression mode).
    """
    references = sorted(reference_dir.glob("BENCH_*.json"))
    if not references:
        print(f"bench gate: no BENCH_*.json references in {reference_dir}", file=out)
        return 1
    wins = 0
    failures: List[str] = []
    for reference_path in references:
        current_path = current_dir / reference_path.name
        try:
            result = compare(_load(reference_path), _load(current_path))
        except GateError as exc:
            failures.append(str(exc))
            print(f"FAIL  {reference_path.name}: {exc}", file=out)
            continue
        speedup = 1.0 / result.median_ratio
        mode = "normalized" if result.normalized else "raw"
        won = speedup >= min_speedup
        wins += won
        print(
            f"{'win ' if won else 'ok  '}  {result.name:20s} "
            f"speedup x{speedup:5.2f} ({mode}, "
            f"{result.baseline_median_s * 1000:.1f}ms -> "
            f"{result.current_median_s * 1000:.1f}ms)",
            file=out,
        )
    if failures:
        print(f"bench gate: {len(failures)} unreadable result(s)", file=out)
        return 1
    if wins < min_wins:
        print(
            f"bench gate: only {wins}/{len(references)} benchmark(s) reached "
            f"x{min_speedup} speedup; {min_wins} required",
            file=out,
        )
        return 1
    print(
        f"bench gate: speedup holds ({wins}/{len(references)} benchmark(s) "
        f">= x{min_speedup}, {min_wins} required)",
        file=out,
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT,
        help="directory holding committed baseline BENCH_*.json files "
        "(default: repo root)",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="directory holding freshly measured BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"regression factor for median AND min (default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--reference",
        type=Path,
        default=None,
        help="speedup mode: directory of pre-optimisation BENCH_*.json "
        "results the current measurements must beat",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.3,
        help="speedup mode: required normalised median speedup factor "
        "(default 1.3)",
    )
    parser.add_argument(
        "--min-wins",
        type=int,
        default=2,
        help="speedup mode: how many reference benchmarks must reach the "
        "speedup (default 2)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 1.0:
        parser.error("--threshold must be > 1.0")
    if args.reference is not None:
        if args.min_speedup <= 1.0:
            parser.error("--min-speedup must be > 1.0")
        return run_speedup_gate(
            args.reference, args.current, args.min_speedup, args.min_wins
        )
    return run_gate(args.baseline, args.current, args.threshold)


if __name__ == "__main__":
    raise SystemExit(main())
