#!/usr/bin/env python3
"""CI gate for the SN/DN service tier: correctness and scaling.

Two independent checks, both on the *virtual* timeline (host speed is
irrelevant, so no calibration normalisation is needed here):

1. **Byte identity** — builds a 4-data-node service cluster and a
   single-node reference ``Heaven`` populated identically, serves a
   seeded batch of concurrent multi-tenant reads through the service
   node, and requires every answer byte-identical to ``Heaven.read``.
2. **Scaling** — reads ``BENCH_service_scaling.json`` (fresh from the CI
   bench run, or the committed baseline) and requires the recorded
   ``speedup_4v1`` — virtual q/s at 4 data nodes over 1 — to be at
   least ``--min-speedup`` (default 1.4).

Usage:
    python scripts/service_gate.py [--bench FILE] [--min-speedup 1.4]
                                   [--skip-identity]

Exit status 1 on divergent bytes or insufficient scaling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

DEFAULT_MIN_SPEEDUP = 1.4


def check_identity(nodes: int = 4, requests: int = 6, seed: int = 0) -> int:
    """Serve a concurrent batch through an SN and diff vs Heaven.read."""
    import numpy as np

    from repro.arrays import DOUBLE, MDD, MInterval, RegularTiling, ZeroSource
    from repro.core import Heaven, HeavenConfig
    from repro.service import ServiceCluster
    from repro.tertiary import MB
    from repro.workloads import subcube

    def make_config() -> HeavenConfig:
        return HeavenConfig(
            super_tile_bytes=1 * MB,
            disk_cache_bytes=64 * MB,
            retain_payload=False,
        )

    def setup(heaven: Heaven) -> None:
        heaven.create_collection("c")
        side = 128
        mdd = MDD(
            "obj",
            MInterval.from_shape((side, side, side // 2)),
            DOUBLE,
            tiling=RegularTiling((32, 32, 16)),
            source=ZeroSource(),
        )
        heaven.insert("c", mdd)
        heaven.archive("c", "obj")
        heaven.library.unmount_all()

    reference = Heaven(make_config())
    setup(reference)
    domain = reference.collection("c").get("obj").domain

    cluster = ServiceCluster.build(
        make_config, setup, nodes=nodes, objects=[("c", "obj")]
    )
    cluster.register_tenant("alice")
    cluster.register_tenant("bob")
    rng = np.random.default_rng(seed)
    plan = [
        (
            "token-alice" if index % 2 == 0 else "token-bob",
            str(subcube(domain, 0.05, rng)),
        )
        for index in range(requests)
    ]
    results = cluster.read_many(
        [(token, "c", "obj", region, 0.0) for token, region in plan]
    )
    divergent = 0
    for result, (_token, region) in zip(results, plan):
        expected = reference.read("c", "obj", MInterval.parse(region))
        if not np.array_equal(result.cells, expected):
            divergent += 1
            print(f"service-gate: DIVERGED on region {region}")
    shards_used = {shard for result in results for shard in result.shards}
    print(
        f"service-gate: identity {requests - divergent}/{requests} reads "
        f"byte-identical over {nodes} nodes ({len(shards_used)} shard(s) "
        "touched)"
    )
    return divergent


def check_scaling(bench_path: Path, min_speedup: float) -> bool:
    try:
        record = json.loads(bench_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        print(f"service-gate: cannot read {bench_path}: {error}")
        return False
    params = record.get("params", {})
    speedup = params.get("speedup_4v1")
    if not isinstance(speedup, (int, float)):
        print(f"service-gate: {bench_path} has no speedup_4v1 param")
        return False
    scaling = params.get("scaling", {})
    for key in sorted(scaling):
        point = scaling[key]
        print(
            f"service-gate: {key}: {point.get('virtual_qps')} virtual q/s, "
            f"p95 {point.get('p95_virtual_s')} s"
        )
    ok = speedup >= min_speedup
    verdict = "ok" if ok else "INSUFFICIENT"
    print(
        f"service-gate: speedup_4v1 = {speedup:.3f} "
        f"(floor {min_speedup}) -- {verdict}"
    )
    return ok


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        default=str(REPO_ROOT / "BENCH_service_scaling.json"),
        help="service-scaling bench result to check (default: committed "
        "baseline at the repo root)",
    )
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP)
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--requests", type=int, default=6)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-identity", action="store_true",
                        help="only check the scaling result file")
    args = parser.parse_args(argv)

    failed = False
    if not args.skip_identity:
        if check_identity(args.nodes, args.requests, args.seed) > 0:
            failed = True
    if not check_scaling(Path(args.bench), args.min_speedup):
        failed = True
    if failed:
        print("service-gate: FAILED")
        return 1
    print("service-gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
