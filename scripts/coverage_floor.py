#!/usr/bin/env python
"""Dependency-free line-coverage measurement for ``src/repro``.

CI enforces the coverage floor with ``pytest-cov`` (see the tier-1 job in
``.github/workflows/ci.yml``); this script exists so the floor can be
*measured* in environments without ``coverage`` installed — it runs the
test suite under a :func:`sys.settrace` hook that records executed lines
of ``src/repro`` modules and compares them against the executable lines
found by walking each file's compiled code objects.

Usage::

    PYTHONPATH=src python scripts/coverage_floor.py [--floor PCT] [pytest args...]

Without pytest args the full suite runs.  With ``--floor`` the script
exits non-zero when total line coverage falls below the threshold.  The
numbers track ``coverage.py``'s line metric closely but not exactly
(docstring and constant-folding edge cases differ by a fraction of a
percent), which is why the CI floor is set a safety margin below the
value measured here.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from types import CodeType
from typing import Dict, Iterator, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_ROOT = os.path.join(REPO_ROOT, "src", "repro")

#: executed (filename, lineno) pairs, filled by the trace hook
_executed: Dict[str, Set[int]] = {}


def _iter_code(code: CodeType) -> Iterator[CodeType]:
    yield code
    for const in code.co_consts:
        if isinstance(const, CodeType):
            yield from _iter_code(const)


def executable_lines(path: str) -> Set[int]:
    """Line numbers with bytecode in *path* (what a tracer can reach)."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    lines: Set[int] = set()
    for code in _iter_code(compile(source, path, "exec")):
        for _start, _end, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def _local_trace(frame, event, _arg):
    if event == "line":
        _executed[frame.f_code.co_filename].add(frame.f_lineno)
    return _local_trace


def _global_trace(frame, event, _arg):
    if event == "call":
        filename = frame.f_code.co_filename
        if filename.startswith(SRC_ROOT):
            _executed.setdefault(filename, set())
            return _local_trace
    return None


def measure(pytest_args: list) -> int:
    import pytest

    sys.settrace(_global_trace)
    threading.settrace(_global_trace)
    try:
        exit_code = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)
    return int(exit_code)


def report(floor: float) -> int:
    total_executable = 0
    total_covered = 0
    rows = []
    for dirpath, _dirnames, filenames in os.walk(SRC_ROOT):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            lines = executable_lines(path)
            covered = len(lines & _executed.get(path, set()))
            total_executable += len(lines)
            total_covered += covered
            rows.append((os.path.relpath(path, REPO_ROOT), covered, len(lines)))
    print(f"\n{'file':<52} {'covered':>8} {'lines':>6} {'pct':>7}")
    for path, covered, lines in rows:
        pct = 100.0 * covered / lines if lines else 100.0
        print(f"{path:<52} {covered:>8} {lines:>6} {pct:>6.1f}%")
    total_pct = 100.0 * total_covered / total_executable if total_executable else 100.0
    print(f"\nTOTAL: {total_covered}/{total_executable} lines = {total_pct:.2f}%")
    if floor and total_pct < floor:
        print(f"FAIL: coverage {total_pct:.2f}% below floor {floor:.2f}%")
        return 1
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=0.0,
                        help="fail when total coverage is below this percent")
    parser.add_argument("pytest_args", nargs="*",
                        help="arguments forwarded to pytest (default: full suite)")
    args = parser.parse_args()
    pytest_args = args.pytest_args or ["-q", "-p", "no:cacheprovider"]
    test_exit = measure(pytest_args)
    if test_exit != 0:
        print(f"pytest exited {test_exit}; coverage not evaluated")
        return test_exit
    return report(args.floor)


if __name__ == "__main__":
    sys.exit(main())
