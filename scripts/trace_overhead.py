#!/usr/bin/env python
"""Measure the wall-clock overhead of the observability layer.

Runs the same archive-and-retrieve workload with observability disabled
and enabled (tracer + instruments, as REPRO_TRACE=1 would configure it),
takes the best of several repeats of each, and fails if tracing costs
more than the allowed overhead. Also asserts the retrieval reports are
identical both ways — instrumentation must never change simulated
results.

A third mode runs the traced workload under the statistical
:class:`~repro.obs.WallProfiler` (signal sampling, the production
configuration) and holds it to the same overhead budget — sampling cost
scales with the interval, not the workload's call rate, so profiling a
run must stay as cheap as tracing it.  Skipped where SIGALRM sampling is
unavailable (non-main thread / exotic platforms).

Usage: PYTHONPATH=src python scripts/trace_overhead.py [--repeats N]
"""

import argparse
import sys
import time

import numpy as np

from repro import Heaven, HeavenConfig
from repro.obs import WallProfiler
from repro.obs.profiler import _supports_signal_mode
from repro.tertiary import MB
from repro.workloads import ClimateGrid, climate_object, subcube

MAX_OVERHEAD = 0.05  # fraction of the baseline wall time

#: enough work that per-run timing noise stays well under MAX_OVERHEAD
OBJECT = ClimateGrid(180, 90, 8, 6)
QUERIES = 6
SELECTIVITY = 0.05


def run_workload(observability: bool, profiled: bool = False):
    """Archive one climate object and read a fixed query stream."""
    config = HeavenConfig(
        super_tile_bytes=8 * MB,
        disk_cache_bytes=256 * MB,
        retain_payload=False,
    )
    heaven = Heaven(config, observability=observability)
    if profiled:
        profiler = WallProfiler(tracer=heaven.tracer, mode="signal")
        profiler.start()
        try:
            return _run_queries(heaven)
        finally:
            profiler.stop()
    return _run_queries(heaven)


def _run_queries(heaven: Heaven):
    heaven.create_collection("climate")
    obj = climate_object("temp", OBJECT, seed=3)
    heaven.insert("climate", obj)
    heaven.archive("climate", "temp")
    heaven.library.unmount_all()

    rng = np.random.default_rng(11)
    reports = []
    for _ in range(QUERIES):
        region = subcube(obj.domain, SELECTIVITY, rng)
        _cells, report = heaven.read_with_report("climate", "temp", region)
        reports.append(
            (report.exchanges, report.bytes_from_tape,
             report.bytes_useful, round(report.virtual_seconds, 9))
        )
    return reports


def best_time(observability: bool, repeats: int, profiled: bool = False):
    best, reports = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        reports = run_workload(observability, profiled=profiled)
        best = min(best, time.perf_counter() - start)
    return best, reports


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="runs per mode; best-of is compared")
    args = parser.parse_args(argv)

    run_workload(observability=False)  # warm imports and allocator
    base_s, base_reports = best_time(False, args.repeats)
    traced_s, traced_reports = best_time(True, args.repeats)

    if traced_reports != base_reports:
        print("FAIL: retrieval reports differ with observability enabled")
        return 1

    overhead = traced_s / base_s - 1.0
    print(f"baseline (observability off): {base_s:8.3f} s wall")
    print(f"traced   (observability on):  {traced_s:8.3f} s wall")
    print(f"overhead: {100 * overhead:+.2f} %  (limit {100 * MAX_OVERHEAD:.0f} %)")
    if overhead > MAX_OVERHEAD:
        print("FAIL: instrumentation overhead exceeds the limit")
        return 1

    if _supports_signal_mode():
        profiled_s, profiled_reports = best_time(
            True, args.repeats, profiled=True
        )
        if profiled_reports != base_reports:
            print("FAIL: retrieval reports differ under the profiler")
            return 1
        profiled_overhead = profiled_s / base_s - 1.0
        print(f"profiled (tracing + sampler): {profiled_s:8.3f} s wall")
        print(f"profiler overhead: {100 * profiled_overhead:+.2f} %  "
              f"(limit {100 * MAX_OVERHEAD:.0f} %)")
        if profiled_overhead > MAX_OVERHEAD:
            print("FAIL: profiler overhead exceeds the limit")
            return 1
    else:
        print("profiler overhead: skipped (no SIGALRM sampling here)")

    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
