"""Tests for RasQL DDL/DML statements and the overlay operator."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.arrays.query import (
    CreateCollection,
    DeleteFrom,
    DropCollection,
    parse,
)
from repro.core import Heaven, HeavenConfig
from repro.errors import QueryError, QuerySyntaxError
from repro.tertiary import MB


class TestStatementParsing:
    def test_create_collection(self):
        stmt = parse("create collection satellites")
        assert isinstance(stmt, CreateCollection)
        assert stmt.name == "satellites"

    def test_drop_collection(self):
        stmt = parse("DROP COLLECTION old_runs")
        assert isinstance(stmt, DropCollection)
        assert stmt.name == "old_runs"

    def test_delete_with_where(self):
        stmt = parse('delete from runs as r where name(r) = "bad"')
        assert isinstance(stmt, DeleteFrom)
        assert stmt.collection == "runs"
        assert stmt.alias == "r"
        assert stmt.where is not None

    def test_delete_without_where(self):
        stmt = parse("delete from runs")
        assert isinstance(stmt, DeleteFrom)
        assert stmt.where is None
        assert stmt.alias == "runs"

    def test_garbage_statement_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("truncate runs")

    def test_create_requires_collection_keyword(self):
        with pytest.raises(QuerySyntaxError):
            parse("create table t")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("drop collection a b")


@pytest.fixture
def heaven():
    instance = Heaven(
        HeavenConfig(
            super_tile_bytes=256 * 1024,
            disk_cache_bytes=16 * MB,
            memory_cache_bytes=4 * MB,
        )
    )
    instance.query("create collection runs")
    for i in range(3):
        mdd = MDD(
            f"run-{i}",
            MInterval.of((0, 31), (0, 31)),
            DOUBLE,
            tiling=RegularTiling((16, 16)),
            source=HashedNoiseSource(i, float(i * 10), float(i * 10 + 1)),
        )
        instance.insert("runs", mdd)
        instance.archive("runs", mdd.name)
    return instance


class TestStatementExecution:
    def test_create_via_query(self, heaven):
        result = heaven.query("create collection extra")
        assert "created" in result[0].value
        assert "extra" in heaven.storage.collection_names()

    def test_delete_with_predicate_releases_everything(self, heaven):
        result = heaven.query(
            "delete from runs as r where avg_cells(r) >= 20"
        )
        assert result[0].value == "deleted 1 object(s)"
        assert "run-2" in result[0].bindings
        assert heaven.collection("runs").names() == ["run-0", "run-1"]
        assert not heaven.is_archived("run-2")
        # Its tape segments are gone too.
        assert not any(
            "run-2" in s.name for m in heaven.library.media() for s in m
        )

    def test_delete_all(self, heaven):
        result = heaven.query("delete from runs")
        assert result[0].value == "deleted 3 object(s)"
        assert len(heaven.collection("runs")) == 0

    def test_drop_collection_via_query(self, heaven):
        heaven.query("drop collection runs")
        assert "runs" not in heaven.storage.collection_names()
        assert not heaven.is_archived("run-0")

    def test_read_only_executor_rejects_statements(self, heaven):
        from repro.arrays import Collection, QueryExecutor

        executor = QueryExecutor(lambda n: Collection(n))
        with pytest.raises(QueryError):
            executor.execute("create collection x")


class TestOverlay:
    def test_overlay_prefers_nonzero_top(self, heaven):
        results = heaven.query(
            'select avg_cells(overlay(a[0:3,0:3] * 0.0, b[0:3,0:3])) '
            'from runs as a, runs as b '
            'where name(a) = "run-0" and name(b) = "run-1"'
        )
        b = heaven.collection("runs").get("run-1")
        expect = b.read(MInterval.of((0, 3), (0, 3))).mean()
        assert results[0].scalar() == pytest.approx(expect)

    def test_overlay_top_wins_where_nonzero(self, heaven):
        results = heaven.query(
            'select min_cells(overlay(a[0:3,0:3], b[0:3,0:3])) '
            'from runs as a, runs as b '
            'where name(a) = "run-2" and name(b) = "run-0"'
        )
        a = heaven.collection("runs").get("run-2")
        # run-2 cells are all in [20, 21]: nowhere zero, so top wins fully.
        expect = a.read(MInterval.of((0, 3), (0, 3))).min()
        assert results[0].scalar() == pytest.approx(expect)

    def test_overlay_arity_checked(self, heaven):
        with pytest.raises(QueryError):
            heaven.query("select overlay(a) from runs as a")

    def test_overlay_domain_mismatch_rejected(self, heaven):
        with pytest.raises(QueryError):
            heaven.query(
                'select overlay(a[0:3,0:3], b[0:4,0:4]) '
                'from runs as a, runs as b '
                'where name(a) = "run-0" and name(b) = "run-1"'
            )
