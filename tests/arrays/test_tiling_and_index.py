"""Tests for tiling strategies and tile indexes."""

import numpy as np
import pytest

from repro.arrays import (
    AlignedTiling,
    DOUBLE,
    CHAR,
    DirectionalTiling,
    GridIndex,
    MInterval,
    RTreeIndex,
    RegularTiling,
    SizeBoundedTiling,
    build_index,
    validate_tiling,
)
from repro.errors import DomainError, TilingError

DOMAIN = MInterval.of((0, 99), (0, 59))


class TestRegularTiling:
    def test_exact_cover(self):
        tiles = RegularTiling((25, 20)).tile_domains(DOMAIN, DOUBLE)
        validate_tiling(DOMAIN, tiles)
        assert len(tiles) == 4 * 3

    def test_border_clipping(self):
        tiles = RegularTiling((30, 40)).tile_domains(DOMAIN, DOUBLE)
        validate_tiling(DOMAIN, tiles)
        assert tiles[-1].shape == (10, 20)

    def test_dimension_mismatch(self):
        with pytest.raises(TilingError):
            RegularTiling((10,)).tile_domains(DOMAIN, DOUBLE)

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(TilingError):
            RegularTiling((0, 10)).tile_domains(DOMAIN, DOUBLE)

    def test_describe(self):
        assert RegularTiling((10, 20)).describe() == "regular(10, 20)"


class TestSizeBoundedTiling:
    def test_tiles_respect_budget(self):
        tiles = SizeBoundedTiling(8 * 1024).tile_domains(DOMAIN, DOUBLE)
        validate_tiling(DOMAIN, tiles)
        for tile in tiles:
            assert tile.cell_count * DOUBLE.size_bytes <= 8 * 1024

    def test_near_cubic_tiles(self):
        tiles = SizeBoundedTiling(8 * 1024).tile_domains(DOMAIN, DOUBLE)
        interior = tiles[0]
        ratio = interior.shape[0] / interior.shape[1]
        assert 0.5 <= ratio <= 2.0

    def test_budget_below_cell_rejected(self):
        with pytest.raises(TilingError):
            SizeBoundedTiling(4).tile_domains(DOMAIN, DOUBLE)


class TestDirectionalTiling:
    def test_splits_at_points(self):
        tiling = DirectionalTiling([[50], []])
        tiles = tiling.tile_domains(DOMAIN, DOUBLE)
        validate_tiling(DOMAIN, tiles)
        assert len(tiles) == 2
        assert tiles[0] == MInterval.of((0, 49), (0, 59))

    def test_unsplit_axis_stays_whole(self):
        tiles = DirectionalTiling([[25, 50, 75], []]).tile_domains(DOMAIN, DOUBLE)
        assert all(t[1].extent == 60 for t in tiles)

    def test_out_of_range_split_rejected(self):
        with pytest.raises(TilingError):
            DirectionalTiling([[150], []]).tile_domains(DOMAIN, DOUBLE)

    def test_wrong_arity_rejected(self):
        with pytest.raises(TilingError):
            DirectionalTiling([[50]]).tile_domains(DOMAIN, DOUBLE)


class TestAlignedTiling:
    def test_preferred_axis_spans_domain(self):
        tiles = AlignedTiling(max_tile_bytes=16 * 1024, preferred_axes=[1]).tile_domains(
            DOMAIN, DOUBLE
        )
        validate_tiling(DOMAIN, tiles)
        assert all(t[1].extent == 60 for t in tiles)

    def test_bad_axis_rejected(self):
        with pytest.raises(TilingError):
            AlignedTiling(1024, preferred_axes=[9]).tile_domains(DOMAIN, DOUBLE)


class TestValidateTiling:
    def test_gap_detected(self):
        with pytest.raises(TilingError):
            validate_tiling(DOMAIN, [MInterval.of((0, 49), (0, 59))])

    def test_overlap_detected(self):
        with pytest.raises(TilingError):
            validate_tiling(
                MInterval.of((0, 9)),
                [MInterval.of((0, 5)), MInterval.of((5, 9))],
            )

    def test_leak_detected(self):
        with pytest.raises(TilingError):
            validate_tiling(MInterval.of((0, 9)), [MInterval.of((0, 10))])


class TestGridIndex:
    @pytest.fixture
    def index(self):
        tiles = RegularTiling((25, 20)).tile_domains(DOMAIN, DOUBLE)
        return build_index(DOMAIN, tiles, tile_shape=(25, 20))

    def test_is_grid_index(self, index):
        assert isinstance(index, GridIndex)
        assert index.grid_counts == (4, 3)

    def test_point_region(self, index):
        assert index.intersecting(MInterval.of(30, 25)) == [4]

    def test_region_spanning_multiple_tiles(self, index):
        ids = index.intersecting(MInterval.of((20, 30), (15, 25)))
        assert ids == [0, 1, 3, 4]

    def test_whole_domain(self, index):
        assert index.intersecting(DOMAIN) == list(range(12))

    def test_disjoint_region_empty(self, index):
        assert index.intersecting(MInterval.of((200, 210), (0, 5))) == []

    def test_domain_of_unknown_tile(self, index):
        with pytest.raises(DomainError):
            index.domain_of(99)

    def test_insert_wrong_slot_rejected(self):
        grid = GridIndex(DOMAIN, (25, 20))
        with pytest.raises(TilingError):
            grid.insert(0, MInterval.of((0, 10), (0, 10)))


class TestRTreeIndex:
    def test_matches_bruteforce_on_regular_tiles(self):
        tiles = RegularTiling((10, 10)).tile_domains(DOMAIN, DOUBLE)
        rtree = RTreeIndex(max_entries=4)
        for tile_id, tile in enumerate(tiles):
            rtree.insert(tile_id, tile)
        rng = np.random.default_rng(0)
        for _ in range(30):
            lo0, lo1 = int(rng.integers(0, 90)), int(rng.integers(0, 50))
            region = MInterval.of((lo0, lo0 + 15), (lo1, lo1 + 9))
            expect = sorted(
                i for i, t in enumerate(tiles) if t.intersects(region)
            )
            assert rtree.intersecting(region) == expect

    def test_handles_irregular_tiles(self):
        rtree = RTreeIndex(max_entries=4)
        boxes = [
            MInterval.of((0, 4), (0, 9)),
            MInterval.of((5, 9), (0, 4)),
            MInterval.of((5, 9), (5, 9)),
            MInterval.of((10, 30), (0, 9)),
        ]
        for i, box in enumerate(boxes):
            rtree.insert(i, box)
        assert rtree.intersecting(MInterval.of((4, 6), (4, 6))) == [0, 1, 2]

    def test_duplicate_insert_rejected(self):
        rtree = RTreeIndex()
        rtree.insert(0, MInterval.of((0, 1)))
        with pytest.raises(TilingError):
            rtree.insert(0, MInterval.of((2, 3)))

    def test_tree_grows_in_height(self):
        rtree = RTreeIndex(max_entries=4)
        for i in range(50):
            rtree.insert(i, MInterval.of((i * 2, i * 2 + 1)))
        assert rtree.height >= 2
        assert len(rtree.all_ids()) == 50

    def test_all_entries_findable_after_splits(self):
        rtree = RTreeIndex(max_entries=4)
        boxes = {}
        rng = np.random.default_rng(3)
        for i in range(120):
            lo0, lo1 = int(rng.integers(0, 500)), int(rng.integers(0, 500))
            box = MInterval.of((lo0, lo0 + 5), (lo1, lo1 + 5))
            boxes[i] = box
            rtree.insert(i, box)
        for i, box in boxes.items():
            assert i in rtree.intersecting(box)

    def test_small_max_entries_rejected(self):
        with pytest.raises(ValueError):
            RTreeIndex(max_entries=2)
