"""Tests for SInterval and MInterval geometry."""

import pytest

from repro.arrays import MInterval, SInterval
from repro.errors import DomainError


class TestSInterval:
    def test_extent_inclusive(self):
        assert SInterval(0, 9).extent == 10
        assert SInterval(5, 5).extent == 1

    def test_empty_rejected(self):
        with pytest.raises(DomainError):
            SInterval(3, 2)

    def test_contains(self):
        interval = SInterval(2, 8)
        assert interval.contains(2) and interval.contains(8)
        assert not interval.contains(1) and not interval.contains(9)

    def test_intersection(self):
        assert SInterval(0, 5).intersection(SInterval(3, 9)) == SInterval(3, 5)
        assert SInterval(0, 2).intersection(SInterval(3, 5)) is None
        assert SInterval(0, 5).intersection(SInterval(5, 9)) == SInterval(5, 5)

    def test_hull(self):
        assert SInterval(0, 2).hull(SInterval(7, 9)) == SInterval(0, 9)

    def test_translate(self):
        assert SInterval(1, 3).translate(10) == SInterval(11, 13)

    def test_split_regular_covers_exactly(self):
        parts = SInterval(0, 9).split_regular(4)
        assert parts == [SInterval(0, 3), SInterval(4, 7), SInterval(8, 9)]
        assert sum(p.extent for p in parts) == 10

    def test_split_chunk_must_be_positive(self):
        with pytest.raises(DomainError):
            SInterval(0, 9).split_regular(0)

    def test_str(self):
        assert str(SInterval(3, 7)) == "3:7"


class TestMIntervalBasics:
    def test_of_accepts_pairs_ints_and_sintervals(self):
        domain = MInterval.of((0, 9), 5, SInterval(1, 3))
        assert domain.shape == (10, 1, 3)
        assert domain.origin == (0, 5, 1)

    def test_from_shape_with_origin(self):
        domain = MInterval.from_shape([4, 5], origin=[10, 20])
        assert domain == MInterval.of((10, 13), (20, 24))

    def test_from_shape_origin_mismatch(self):
        with pytest.raises(DomainError):
            MInterval.from_shape([4], origin=[1, 2])

    def test_parse_roundtrip(self):
        domain = MInterval.of((0, 99), (10, 49), 7)
        assert MInterval.parse(str(domain)) == domain

    def test_parse_garbage_rejected(self):
        with pytest.raises(DomainError):
            MInterval.parse("a:b")

    def test_needs_one_dimension(self):
        with pytest.raises(DomainError):
            MInterval([])

    def test_cell_count(self):
        assert MInterval.of((0, 9), (0, 4)).cell_count == 50

    def test_immutability(self):
        domain = MInterval.of((0, 9))
        with pytest.raises(AttributeError):
            domain._axes = ()

    def test_equality_and_hash(self):
        a = MInterval.of((0, 9), (0, 4))
        b = MInterval.of((0, 9), (0, 4))
        assert a == b and hash(a) == hash(b)
        assert a != MInterval.of((0, 9), (0, 5))


class TestMIntervalGeometry:
    def test_contains(self):
        outer = MInterval.of((0, 9), (0, 9))
        assert outer.contains(MInterval.of((2, 5), (0, 9)))
        assert not outer.contains(MInterval.of((2, 10), (0, 9)))

    def test_intersection(self):
        a = MInterval.of((0, 5), (0, 5))
        b = MInterval.of((3, 9), (4, 9))
        assert a.intersection(b) == MInterval.of((3, 5), (4, 5))

    def test_disjoint_intersection_none(self):
        a = MInterval.of((0, 1), (0, 1))
        b = MInterval.of((5, 6), (0, 1))
        assert a.intersection(b) is None
        assert not a.intersects(b)

    def test_dimensionality_mismatch(self):
        with pytest.raises(DomainError):
            MInterval.of((0, 1)).intersects(MInterval.of((0, 1), (0, 1)))

    def test_hull(self):
        a = MInterval.of((0, 1), (0, 1))
        b = MInterval.of((8, 9), (3, 4))
        assert a.hull(b) == MInterval.of((0, 9), (0, 4))

    def test_translate(self):
        domain = MInterval.of((0, 4), (0, 4)).translate([10, -2])
        assert domain == MInterval.of((10, 14), (-2, 2))

    def test_contains_point(self):
        domain = MInterval.of((0, 4), (2, 6))
        assert domain.contains_point((0, 2))
        assert not domain.contains_point((0, 7))


class TestGridAndSlices:
    def test_grid_row_major_exact_cover(self):
        domain = MInterval.of((0, 5), (0, 3))
        boxes = domain.grid([3, 2])
        assert len(boxes) == 4
        assert boxes[0] == MInterval.of((0, 2), (0, 1))
        assert boxes[1] == MInterval.of((0, 2), (2, 3))  # last axis fastest
        assert sum(b.cell_count for b in boxes) == domain.cell_count

    def test_grid_with_remainder(self):
        boxes = MInterval.of((0, 6)).grid([3])
        assert [b.shape[0] for b in boxes] == [3, 3, 1]

    def test_to_slices(self):
        within = MInterval.of((10, 19), (0, 9))
        region = MInterval.of((12, 14), (3, 5))
        assert region.to_slices(within) == (slice(2, 5), slice(3, 6))

    def test_to_slices_outside_rejected(self):
        with pytest.raises(DomainError):
            MInterval.of((0, 5)).to_slices(MInterval.of((1, 3)))

    def test_relative_origin(self):
        within = MInterval.of((10, 19), (5, 14))
        region = MInterval.of((12, 13), (5, 6))
        assert region.relative_origin(within) == (2, 0)
