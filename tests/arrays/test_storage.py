"""Tests for the array storage manager (BLOB persistence + catalogs)."""

import numpy as np
import pytest

from repro.arrays import (
    ArrayStorage,
    DOUBLE,
    HashedNoiseSource,
    MDD,
    MInterval,
    RegularTiling,
)
from repro.dbms import Database
from repro.errors import ArrayError


@pytest.fixture
def storage():
    return ArrayStorage(Database())


def make_object(name="obj", seed=1):
    return MDD(
        name,
        MInterval.of((0, 39), (0, 39)),
        DOUBLE,
        tiling=RegularTiling((20, 20)),
        source=HashedNoiseSource(seed),
    )


class TestCollections:
    def test_create_and_list(self, storage):
        storage.create_collection("a")
        storage.create_collection("b")
        assert storage.collection_names() == ["a", "b"]

    def test_unknown_collection_raises(self, storage):
        with pytest.raises(ArrayError):
            storage.collection("ghost")

    def test_drop_collection_removes_objects(self, storage):
        storage.create_collection("c")
        mdd = make_object()
        storage.insert_object("c", mdd)
        storage.drop_collection("c")
        assert "c" not in storage.collection_names()
        with pytest.raises(ArrayError):
            storage.collection("c")


class TestInsertObject:
    def test_assigns_oid_and_resolver(self, storage):
        storage.create_collection("c")
        mdd = make_object()
        oid = storage.insert_object("c", mdd)
        assert mdd.oid == oid
        assert mdd.resolver is not None

    def test_blob_roundtrip_preserves_cells(self, storage):
        storage.create_collection("c")
        mdd = make_object()
        before = mdd.read_all().copy()
        storage.insert_object("c", mdd)
        mdd.drop_payloads()
        mdd.source = None  # force reads through the BLOB store
        assert np.array_equal(mdd.read_all(), before)

    def test_catalog_rows_written(self, storage):
        storage.create_collection("c")
        mdd = make_object()
        oid = storage.insert_object("c", mdd)
        assert storage.object_row(oid)["name"] == "obj"
        assert len(storage.tile_rows(oid)) == mdd.tile_count()

    def test_blob_io_charges_disk_time(self, storage):
        storage.create_collection("c")
        before = storage.db.clock.now
        storage.insert_object("c", make_object())
        assert storage.db.clock.now > before

    def test_size_only_mode_falls_back_to_source(self):
        db = Database(retain_payload=False)
        storage = ArrayStorage(db)
        storage.create_collection("c")
        mdd = make_object()
        expected = mdd.source.region(mdd.domain, mdd.cell_type)
        storage.insert_object("c", mdd)
        mdd.drop_payloads()
        assert np.array_equal(mdd.read_all(), expected)


class TestDeleteObject:
    def test_delete_removes_everything(self, storage):
        storage.create_collection("c")
        mdd = make_object()
        oid = storage.insert_object("c", mdd)
        blob_count = len(storage.db.blobs)
        storage.delete_object("c", "obj")
        assert len(storage.db.blobs) == blob_count - mdd.tile_count()
        with pytest.raises(ArrayError):
            storage.object_row(oid)
        assert mdd.oid is None

    def test_delete_unpersisted_rejected(self, storage):
        storage.create_collection("c")
        coll = storage.collection("c")
        coll.add(make_object())
        with pytest.raises(ArrayError):
            storage.delete_object("c", "obj")


class TestRebuild:
    def test_collection_reload_from_catalog(self, storage):
        storage.create_collection("c")
        mdd = make_object()
        before = mdd.read_all().copy()
        storage.insert_object("c", mdd)
        # Simulate a fresh session: drop the in-memory collection cache.
        storage._collections.clear()
        reloaded = storage.collection("c").get("obj")
        assert reloaded is not mdd
        assert reloaded.domain == mdd.domain
        assert np.array_equal(reloaded.read_all(), before)

    def test_blob_oid_lookup(self, storage):
        storage.create_collection("c")
        mdd = make_object()
        oid = storage.insert_object("c", mdd)
        blob_oid = storage.blob_oid_of(oid, 0)
        assert storage.db.blobs.size(blob_oid) == mdd.tiles[0].size_bytes
        with pytest.raises(ArrayError):
            storage.blob_oid_of(oid, 999)
