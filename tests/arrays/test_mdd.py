"""Tests for MDD objects, cell sources, tiles and collections."""

import numpy as np
import pytest

from repro.arrays import (
    CHAR,
    Collection,
    ConstantSource,
    DOUBLE,
    FunctionSource,
    HashedNoiseSource,
    MDD,
    MInterval,
    RegularTiling,
    ZeroSource,
    struct_type,
    lookup,
)
from repro.errors import CellTypeError, DomainError


class TestCellSources:
    DOMAIN = MInterval.of((0, 31), (0, 31))

    def test_zero_source(self):
        cells = ZeroSource().region(self.DOMAIN, DOUBLE)
        assert cells.shape == (32, 32)
        assert not cells.any()

    def test_constant_source(self):
        cells = ConstantSource(7.5).region(self.DOMAIN, DOUBLE)
        assert (cells == 7.5).all()

    def test_hashed_noise_deterministic(self):
        src = HashedNoiseSource(1)
        a = src.region(self.DOMAIN, DOUBLE)
        b = src.region(self.DOMAIN, DOUBLE)
        assert np.array_equal(a, b)

    def test_hashed_noise_overlap_consistency(self):
        """Reads of overlapping regions agree on the overlap — the property
        that makes lazy tiles equal however they are materialised."""
        src = HashedNoiseSource(5)
        whole = src.region(MInterval.of((0, 99), (0, 99)), DOUBLE)
        part = src.region(MInterval.of((37, 61), (13, 88)), DOUBLE)
        assert np.array_equal(part, whole[37:62, 13:89])

    def test_hashed_noise_seed_changes_field(self):
        a = HashedNoiseSource(1).region(self.DOMAIN, DOUBLE)
        b = HashedNoiseSource(2).region(self.DOMAIN, DOUBLE)
        assert not np.array_equal(a, b)

    def test_hashed_noise_range(self):
        cells = HashedNoiseSource(1, low=5.0, high=6.0).region(self.DOMAIN, DOUBLE)
        assert cells.min() >= 5.0 and cells.max() <= 6.0

    def test_function_source_gets_absolute_coords(self):
        src = FunctionSource(lambda x, y: x * 100 + y)
        cells = src.region(MInterval.of((2, 3), (10, 11)), DOUBLE)
        assert cells[0, 0] == 210
        assert cells[1, 1] == 311

    def test_struct_cells_from_noise(self):
        try:
            cell_type = lookup("pair_t")
        except CellTypeError:
            cell_type = struct_type("pair_t", [("a", "float"), ("b", "float")])
        cells = HashedNoiseSource(1).region(self.DOMAIN, cell_type)
        assert cells.dtype.names == ("a", "b")


class TestMDD:
    def test_read_assembles_across_tiles(self, small_mdd):
        region = MInterval.of((20, 70), (25, 40))
        direct = small_mdd.source.region(region, small_mdd.cell_type)
        assert np.array_equal(small_mdd.read(region), direct)

    def test_read_outside_domain_rejected(self, small_mdd):
        with pytest.raises(DomainError):
            small_mdd.read(MInterval.of((0, 200), (0, 10)))

    def test_write_then_read(self, small_mdd):
        region = MInterval.of((30, 33), (60, 63))
        patch = np.full((4, 4), -1.0)
        small_mdd.write(region, patch)
        assert np.array_equal(small_mdd.read(region), patch)

    def test_write_preserves_neighbours(self, small_mdd):
        neighbour = MInterval.of((0, 9), (0, 9))
        before = small_mdd.read(neighbour).copy()
        small_mdd.write(MInterval.of((40, 49), (40, 49)), np.zeros((10, 10)))
        assert np.array_equal(small_mdd.read(neighbour), before)

    def test_write_wrong_shape_rejected(self, small_mdd):
        with pytest.raises(DomainError):
            small_mdd.write(MInterval.of((0, 3), (0, 3)), np.zeros((2, 2)))

    def test_tiles_for_region(self, small_mdd):
        tiles = small_mdd.tiles_for(MInterval.of((0, 40), (0, 40)))
        assert len(tiles) == 4

    def test_size_bytes(self, small_mdd):
        assert small_mdd.size_bytes == 96 * 96 * 8

    def test_validate_passes(self, small_mdd):
        small_mdd.validate()

    def test_from_array_roundtrip(self):
        cells = np.arange(24, dtype=np.float64).reshape(4, 6)
        mdd = MDD.from_array("arr", cells, origin=[10, 20])
        assert mdd.domain == MInterval.of((10, 13), (20, 25))
        assert np.array_equal(mdd.read_all(), cells)

    def test_drop_payloads_and_rematerialize(self, small_mdd):
        before = small_mdd.read_all().copy()
        small_mdd.materialize_all()
        small_mdd.drop_payloads()
        assert np.array_equal(small_mdd.read_all(), before)

    def test_resolver_takes_priority_over_source(self, small_mdd):
        small_mdd.resolver = lambda mdd, tile: np.full(
            tile.domain.shape, 42.0, dtype=np.float64
        )
        assert (small_mdd.read(MInterval.of((0, 5), (0, 5))) == 42.0).all()

    def test_no_payload_resolver_or_source_raises(self):
        mdd = MDD("bare", MInterval.of((0, 7), (0, 7)))
        mdd.source = None
        with pytest.raises(DomainError):
            mdd.read_all()

    def test_default_tiling_applied(self):
        mdd = MDD("d", MInterval.of((0, 199), (0, 199)))
        assert mdd.tile_count() > 1


class TestTileSerialisation:
    def test_to_from_bytes_roundtrip(self, small_mdd):
        tile = small_mdd.tiles[0]
        tile.set_payload(small_mdd.materialize_tile(tile))
        raw = tile.to_bytes()
        tile.drop_payload()
        tile.from_bytes(raw)
        assert np.array_equal(tile.payload, small_mdd.source.region(tile.domain, DOUBLE))

    def test_from_bytes_wrong_length_rejected(self, small_mdd):
        tile = small_mdd.tiles[0]
        with pytest.raises(DomainError):
            tile.from_bytes(b"short")

    def test_payload_shape_enforced(self, small_mdd):
        tile = small_mdd.tiles[0]
        with pytest.raises(DomainError):
            tile.set_payload(np.zeros((2, 2)))


class TestCollection:
    def test_add_get_remove(self, small_mdd):
        coll = Collection("c")
        coll.add(small_mdd)
        assert coll.get("small") is small_mdd
        assert "small" in coll
        coll.remove("small")
        assert len(coll) == 0

    def test_duplicate_name_rejected(self, small_mdd):
        coll = Collection("c")
        coll.add(small_mdd)
        with pytest.raises(Exception):
            coll.add(small_mdd)

    def test_objects_sorted_by_name(self):
        coll = Collection("c")
        coll.add(MDD("zz", MInterval.of((0, 1))))
        coll.add(MDD("aa", MInterval.of((0, 1))))
        assert coll.names() == ["aa", "zz"]
