"""Tests for array operations: trim, section, induced, condense, scale."""

import numpy as np
import pytest

from repro.arrays import (
    MArray,
    MInterval,
    condense,
    extend,
    induced_binary,
    induced_unary,
    region_aggregate,
    scale_down,
    section,
    shift,
    trim,
    cast,
)
from repro.errors import DomainError, QueryError


@pytest.fixture
def grid() -> MArray:
    cells = np.arange(24, dtype=np.float64).reshape(4, 6)
    return MArray(MInterval.of((10, 13), (20, 25)), cells)


class TestMArray:
    def test_shape_must_match_domain(self):
        with pytest.raises(DomainError):
            MArray(MInterval.of((0, 3)), np.zeros((5,)))

    def test_scalar_of_single_cell(self):
        value = MArray(MInterval.of(0), np.array([7.0]))
        assert value.scalar() == 7.0

    def test_scalar_of_multicell_rejected(self, grid):
        with pytest.raises(QueryError):
            grid.scalar()


class TestTrimSectionShiftExtend:
    def test_trim_absolute_coords(self, grid):
        part = trim(grid, MInterval.of((11, 12), (21, 22)))
        assert part.domain == MInterval.of((11, 12), (21, 22))
        assert np.array_equal(part.cells, grid.cells[1:3, 1:3])

    def test_trim_disjoint_rejected(self, grid):
        with pytest.raises(DomainError):
            trim(grid, MInterval.of((50, 60), (20, 25)))

    def test_section_reduces_dimension(self, grid):
        line = section(grid, axis=0, position=12)
        assert line.domain == MInterval.of((20, 25))
        assert np.array_equal(line.cells, grid.cells[2])

    def test_section_last_axis(self, grid):
        column = section(grid, axis=1, position=20)
        assert column.domain == MInterval.of((10, 13))
        assert np.array_equal(column.cells, grid.cells[:, 0])

    def test_section_to_pseudo_scalar(self):
        value = MArray(MInterval.of((5, 5)), np.array([3.0]))
        result = section(value, 0, 5)
        assert result.scalar() == 3.0

    def test_section_outside_axis_rejected(self, grid):
        with pytest.raises(DomainError):
            section(grid, 0, 99)

    def test_shift(self, grid):
        moved = shift(grid, [-10, -20])
        assert moved.domain == MInterval.of((0, 3), (0, 5))
        assert np.array_equal(moved.cells, grid.cells)

    def test_extend_fills(self, grid):
        big = extend(grid, MInterval.of((10, 15), (20, 25)), fill=-1.0)
        assert big.cells[5, 0] == -1.0
        assert np.array_equal(big.cells[:4], grid.cells)

    def test_extend_must_contain(self, grid):
        with pytest.raises(DomainError):
            extend(grid, MInterval.of((11, 12), (20, 25)))


class TestInduced:
    def test_array_scalar(self, grid):
        out = induced_binary("+", grid, 10.0)
        assert np.array_equal(out.cells, grid.cells + 10)

    def test_scalar_array(self, grid):
        out = induced_binary("-", 100.0, grid)
        assert np.array_equal(out.cells, 100 - grid.cells)

    def test_array_array_same_domain(self, grid):
        out = induced_binary("*", grid, grid)
        assert np.array_equal(out.cells, grid.cells**2)

    def test_domain_mismatch_rejected(self, grid):
        other = MArray(MInterval.of((0, 3), (0, 5)), grid.cells)
        with pytest.raises(DomainError):
            induced_binary("+", grid, other)

    def test_comparison_yields_bool(self, grid):
        out = induced_binary(">", grid, 11.0)
        assert out.cells.dtype == np.bool_

    def test_scalar_scalar(self):
        assert induced_binary("+", 2, 3) == 5
        assert induced_binary("<", 2, 3) is True

    def test_unknown_op_rejected(self, grid):
        with pytest.raises(QueryError):
            induced_binary("**", grid, grid)

    def test_unary_negate_and_abs(self, grid):
        assert np.array_equal(induced_unary("-", grid).cells, -grid.cells)
        assert np.array_equal(induced_unary("abs", induced_unary("-", grid)).cells, grid.cells)

    def test_unary_scalar(self):
        assert induced_unary("-", 5) == -5

    def test_cast(self, grid):
        out = cast(grid, "long")
        assert out.cells.dtype == np.int32
        assert cast(2.9, "long") == 2


class TestCondensers:
    def test_basic_condensers(self, grid):
        assert condense("add_cells", grid) == grid.cells.sum()
        assert condense("avg_cells", grid) == pytest.approx(grid.cells.mean())
        assert condense("max_cells", grid) == 23.0
        assert condense("min_cells", grid) == 0.0

    def test_count_cells_on_bool(self, grid):
        mask = induced_binary(">=", grid, 12.0)
        assert condense("count_cells", mask) == 12

    def test_count_cells_requires_bool(self, grid):
        with pytest.raises(QueryError):
            condense("count_cells", grid)

    def test_some_all(self, grid):
        mask = induced_binary(">", grid, -1.0)
        assert condense("all_cells", mask) is True
        mask2 = induced_binary(">", grid, 100.0)
        assert condense("some_cells", mask2) is False

    def test_var_stddev(self, grid):
        assert condense("var_cells", grid) == pytest.approx(grid.cells.var())
        assert condense("stddev_cells", grid) == pytest.approx(grid.cells.std())

    def test_unknown_condenser_rejected(self, grid):
        with pytest.raises(QueryError):
            condense("median_cells", grid)


class TestScaleAndAggregate:
    def test_scale_down_block_average(self):
        cells = np.arange(16, dtype=np.float64).reshape(4, 4)
        value = MArray(MInterval.of((0, 3), (0, 3)), cells)
        out = scale_down(value, [2, 2])
        assert out.domain == MInterval.of((0, 1), (0, 1))
        assert out.cells[0, 0] == pytest.approx(cells[:2, :2].mean())

    def test_scale_down_drops_partial_blocks(self):
        value = MArray(MInterval.of((0, 4)), np.arange(5, dtype=np.float64))
        out = scale_down(value, [2])
        assert out.domain.shape == (2,)

    def test_scale_factor_one_is_identity(self):
        value = MArray(MInterval.of((0, 3)), np.arange(4, dtype=np.float64))
        out = scale_down(value, [1])
        assert np.array_equal(out.cells, value.cells)

    def test_scale_too_small_axis_rejected(self):
        value = MArray(MInterval.of((0, 1)), np.arange(2, dtype=np.float64))
        with pytest.raises(DomainError):
            scale_down(value, [3])

    def test_region_aggregate_axis(self, grid):
        out = region_aggregate(grid, "avg", axis=1)
        assert out.domain == MInterval.of((10, 13))
        assert np.allclose(out.cells, grid.cells.mean(axis=1))

    def test_region_aggregate_full(self, grid):
        assert region_aggregate(grid, "max") == 23.0

    def test_region_aggregate_unknown_rejected(self, grid):
        with pytest.raises(QueryError):
            region_aggregate(grid, "median")
