"""Tests for the RasQL subset: lexer, parser, executor."""

import numpy as np
import pytest

from repro.arrays import (
    Collection,
    DOUBLE,
    HashedNoiseSource,
    MDD,
    MInterval,
    QueryExecutor,
    RegularTiling,
    parse,
    parse_expression,
)
from repro.arrays.query import TokenKind, tokenize
from repro.arrays.query.ast import BinaryOp, FuncCall, NumberLit, Query, Subset, Var
from repro.errors import QueryError, QuerySyntaxError


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("select a[0:9] from c")
        kinds = [t.kind for t in tokens]
        assert kinds[0] is TokenKind.KEYWORD
        assert TokenKind.LBRACKET in kinds
        assert kinds[-1] is TokenKind.EOF

    def test_numbers_int_and_float(self):
        tokens = tokenize("1 2.5 300")
        assert [t.text for t in tokens[:-1]] == ["1", "2.5", "300"]

    def test_strings_both_quotes(self):
        tokens = tokenize("\"abc\" 'def'")
        assert [t.text for t in tokens[:-1]] == ["abc", "def"]

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize('"abc')

    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT From WHERE")
        assert all(t.kind is TokenKind.KEYWORD for t in tokens[:-1])

    def test_operators_maximal_munch(self):
        tokens = tokenize("a <= b != c")
        ops = [t.text for t in tokens if t.kind is TokenKind.OP]
        assert ops == ["<=", "!="]

    def test_unknown_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a ; b")


class TestParser:
    def test_full_query_shape(self):
        query = parse("select avg_cells(c) from coll as c where max_cells(c) > 5")
        assert isinstance(query, Query)
        assert query.from_items[0].collection == "coll"
        assert query.from_items[0].alias == "c"
        assert isinstance(query.select, FuncCall)
        assert isinstance(query.where, BinaryOp)

    def test_alias_defaults_to_collection(self):
        query = parse("select c from c")
        assert query.from_items[0].alias == "c"

    def test_subset_with_sections_and_wildcards(self):
        expr = parse_expression("a[5, 0:9, *:*, *]")
        assert isinstance(expr, Subset)
        specs = expr.specs
        assert specs[0].is_section
        assert not specs[1].is_section
        assert specs[2].lo is None and specs[2].hi is None
        assert specs[3].lo is None and not specs[3].is_section

    def test_precedence_mul_over_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp) and expr.op == "+"
        assert isinstance(expr.right, BinaryOp) and expr.right.op == "*"

    def test_parentheses_override(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr.op == "*"

    def test_and_or_precedence(self):
        expr = parse_expression("1 < 2 and 3 < 4 or 5 < 6")
        assert expr.op == "or"

    def test_multiple_from_items(self):
        query = parse("select 1 from a as x, b as y")
        assert len(query.from_items) == 2

    def test_missing_from_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("select 1")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse("select 1 from c extra")

    def test_expression_bounds(self):
        expr = parse_expression("a[1+2 : 3*4]")
        spec = expr.specs[0]
        assert isinstance(spec.lo, BinaryOp)


@pytest.fixture
def executor():
    collection = Collection("coll")
    source = HashedNoiseSource(9, 0.0, 10.0)
    mdd = MDD(
        "obj1",
        MInterval.of((0, 19), (0, 19)),
        DOUBLE,
        tiling=RegularTiling((10, 10)),
        source=source,
    )
    mdd.oid = 77
    collection.add(mdd)
    other = MDD(
        "obj2",
        MInterval.of((0, 19), (0, 19)),
        DOUBLE,
        tiling=RegularTiling((10, 10)),
        source=HashedNoiseSource(10, 100.0, 110.0),
    )
    collection.add(other)
    return QueryExecutor(lambda name: {"coll": collection}[name]), collection


class TestExecutor:
    def test_trim_query(self, executor):
        ex, coll = executor
        results = ex.execute("select c[0:4, 0:4] from coll as c")
        assert len(results) == 2
        expect = coll.get("obj1").read(MInterval.of((0, 4), (0, 4)))
        got = [r for r in results if r.bindings["c"] == "obj1"][0]
        assert np.array_equal(got.value.cells, expect)

    def test_section_reduces_dimensionality(self, executor):
        ex, coll = executor
        results = ex.execute("select c[3, 0:9] from coll as c")
        assert results[0].value.dimension == 1
        assert results[0].value.cells.shape == (10,)

    def test_condenser(self, executor):
        ex, coll = executor
        results = ex.execute("select avg_cells(c) from coll as c")
        means = sorted(r.scalar() for r in results)
        assert means[0] == pytest.approx(coll.get("obj1").read_all().mean())
        assert means[1] == pytest.approx(coll.get("obj2").read_all().mean())

    def test_where_filters_objects(self, executor):
        ex, _ = executor
        results = ex.execute("select name(c) from coll as c where min_cells(c) >= 100")
        assert [r.value for r in results] == ["obj2"]

    def test_where_on_name(self, executor):
        ex, _ = executor
        results = ex.execute('select avg_cells(c) from coll as c where name(c) = "obj1"')
        assert len(results) == 1

    def test_induced_arithmetic(self, executor):
        ex, coll = executor
        results = ex.execute(
            'select max_cells(c[0:4,0:4] * 2 + 1) from coll as c where name(c) = "obj1"'
        )
        expect = coll.get("obj1").read(MInterval.of((0, 4), (0, 4))).max() * 2 + 1
        assert results[0].scalar() == pytest.approx(expect)

    def test_induced_between_two_objects(self, executor):
        ex, coll = executor
        results = ex.execute(
            'select avg_cells(a[0:4,0:4] - b[0:4,0:4]) from coll as a, coll as b '
            'where name(a) = "obj2" and name(b) = "obj1"'
        )
        region = MInterval.of((0, 4), (0, 4))
        expect = (coll.get("obj2").read(region) - coll.get("obj1").read(region)).mean()
        assert results[0].scalar() == pytest.approx(expect)

    def test_sdom(self, executor):
        ex, _ = executor
        results = ex.execute('select sdom(c) from coll as c where name(c) = "obj1"')
        assert str(results[0].value) == "0:19,0:19"

    def test_oid(self, executor):
        ex, _ = executor
        results = ex.execute('select oid(c) from coll as c where name(c) = "obj1"')
        assert results[0].value == 77

    def test_scale_in_query(self, executor):
        ex, coll = executor
        results = ex.execute(
            'select avg_cells(scale(c, 2, 2)) from coll as c where name(c) = "obj1"'
        )
        assert results[0].scalar() == pytest.approx(
            coll.get("obj1").read_all().mean(), rel=1e-6
        )

    def test_count_cells_with_comparison(self, executor):
        ex, coll = executor
        results = ex.execute(
            'select count_cells(c > 5.0) from coll as c where name(c) = "obj1"'
        )
        expect = int((coll.get("obj1").read_all() > 5.0).sum())
        assert results[0].scalar() == expect

    def test_subset_out_of_domain_rejected(self, executor):
        ex, _ = executor
        from repro.errors import DomainError

        with pytest.raises(DomainError):
            ex.execute("select c[0:100, 0:4] from coll as c")

    def test_wrong_subset_arity_rejected(self, executor):
        ex, _ = executor
        with pytest.raises(QueryError):
            ex.execute("select c[0:4] from coll as c")

    def test_where_must_be_scalar_bool(self, executor):
        ex, _ = executor
        with pytest.raises(QueryError):
            ex.execute("select 1 from coll as c where c > 0")

    def test_unknown_variable(self, executor):
        ex, _ = executor
        with pytest.raises(QueryError):
            ex.execute("select z from coll as c")

    def test_unknown_function(self, executor):
        ex, _ = executor
        with pytest.raises(QueryError):
            ex.execute("select frobnicate(c) from coll as c")

    def test_lazy_reference_reads_only_requested_region(self, executor):
        """Trims push down: only tiles under the subset are materialised."""
        ex, coll = executor
        mdd = coll.get("obj1")
        touched = []
        original = mdd.materialize_tile

        def spy(tile):
            touched.append(tile.tile_id)
            return original(tile)

        mdd.materialize_tile = spy
        ex.execute('select avg_cells(c[0:4, 0:4]) from coll as c where name(c) = "obj1"')
        assert set(touched) == {0}  # only the first 10x10 tile

    def test_extension_function(self, executor):
        ex, _ = executor
        ex.register_extension("touch", lambda _ex, args: 123)
        results = ex.execute('select touch(c) from coll as c where name(c) = "obj1"')
        assert results[0].value == 123

    def test_duplicate_extension_rejected(self, executor):
        ex, _ = executor
        ex.register_extension("touch", lambda _ex, args: 1)
        with pytest.raises(QueryError):
            ex.register_extension("touch", lambda _ex, args: 2)

    def test_condenser_hook_short_circuits(self, executor):
        ex, coll = executor
        calls = []

        def hook(name, ref):
            calls.append((name, ref.mdd.name))
            return 42.0

        ex.condenser_hook = hook
        results = ex.execute('select avg_cells(c) from coll as c where name(c) = "obj1"')
        assert results[0].value == 42.0
        assert ("avg_cells", "obj1") in calls

    def test_condenser_hook_none_falls_through(self, executor):
        ex, coll = executor
        ex.condenser_hook = lambda name, ref: None
        results = ex.execute('select avg_cells(c) from coll as c where name(c) = "obj1"')
        assert results[0].scalar() == pytest.approx(coll.get("obj1").read_all().mean())
