"""Mutation smoke: the harness must catch intentionally seeded bugs and
shrink them to small self-contained repros.

``oracle-flip`` corrupts one returned byte (a silent data error);
``pin-leak`` takes an unmatched pin reference (a resource leak).  Either
escaping the harness would mean the differential oracle or the
conservation invariants have gone blind.
"""

from __future__ import annotations

import pytest

from repro.simtest import (
    MUTATIONS,
    default_still_fails,
    generate_program,
    render_failure_report,
    run_program,
    shrink_program,
    write_repro_artifacts,
)

pytestmark = pytest.mark.simtest


def _first_caught(mutate, seeds=range(1, 11), ops=40):
    for seed in seeds:
        program = generate_program(seed, ops)
        result = run_program(program, mutate=mutate)
        if result.violations:
            return program, result
    pytest.fail(f"mutation {mutate!r} was not caught on seeds {list(seeds)}")


@pytest.mark.parametrize("mutate", MUTATIONS)
def test_mutation_caught_and_shrunk_to_small_repro(mutate):
    program, result = _first_caught(mutate)
    outcome = shrink_program(
        program, result, default_still_fails(mutate), max_runs=200
    )
    assert outcome.minimized_ops <= 10
    assert outcome.result.violations
    # The minimized program still fails on a fresh run (no state leaked
    # from the shrinking search into the verdict).
    fresh = run_program(outcome.program, mutate=mutate)
    assert fresh.violations


def test_oracle_flip_trips_the_oracle():
    _program, result = _first_caught("oracle-flip")
    assert any(v.invariant == "oracle" for v in result.violations)


def test_pin_leak_trips_quiescence():
    _program, result = _first_caught("pin-leak")
    assert any(v.invariant == "quiescence" for v in result.violations)


def test_artifacts_round_trip(tmp_path):
    program, result = _first_caught("pin-leak")
    outcome = shrink_program(
        program, result, default_still_fails("pin-leak"), max_runs=200
    )
    paths = write_repro_artifacts(
        outcome.result, str(tmp_path), mutate="pin-leak"
    )
    assert len(paths) == 2
    script = (tmp_path / f"repro_seed{program.seed}.py").read_text()
    assert "replay_json" in script
    assert '"seed"' in script
    report = render_failure_report(outcome.result, "pin-leak")
    assert "violations:" in report
    assert ">>>" in report


def test_unmutated_baseline_is_clean():
    """The seeds used for mutation smoke are clean without the mutation —
    so a caught violation is attributable to the seeded bug alone."""
    program, _result = _first_caught("pin-leak")
    assert run_program(program).ok
