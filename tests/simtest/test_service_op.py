"""The ``service`` simtest op: reads through the SN/DN service tier.

The op routes 2-6 queries through a :class:`ServiceCluster` whose data
nodes share the run's HEAVEN instance (oracle mode), so every answer
must be byte-identical to the reference model and every tenant's byte
charges must reconcile with its own results.  These tests pin that the
generator emits the op, that programs containing it run clean and
deterministically, that it stays closed under deletion, and that the
oracle actually checks the service tier's bytes (flip mutation).
"""

from __future__ import annotations

import pytest

from repro.simtest import (
    Op,
    SimConfig,
    WorkloadProgram,
    generate_program,
    replay_json,
    run_program,
)

pytestmark = pytest.mark.simtest


def _has_service(program) -> bool:
    return any(op.kind == "service" for op in program.ops)


def test_generator_emits_service_ops():
    found = 0
    for seed in range(40):
        if _has_service(generate_program(seed, 60)):
            found += 1
    assert found >= 10, (
        f"only {found}/40 seeds drew a service op: the weight is wired wrong"
    )


def test_service_op_params_are_json_closed():
    for seed in range(20):
        program = generate_program(seed, 60)
        if not _has_service(program):
            continue
        round_tripped = WorkloadProgram.from_json(program.to_json())
        assert [op.to_dict() for op in round_tripped.ops] == [
            op.to_dict() for op in program.ops
        ]
        for op in round_tripped.ops:
            if op.kind == "service":
                assert 2 <= len(op.params["queries"]) <= 6
                assert op.params["nodes"] in (1, 2, 4)
                assert 1 <= op.params["tenants"] <= 3
        return
    pytest.fail("no seed in 0..19 drew a service op")


def test_seeds_with_service_ops_run_clean():
    ran = 0
    for seed in range(30):
        program = generate_program(seed, 50)
        if not _has_service(program):
            continue
        result = run_program(program)
        assert result.ok, "\n".join(v.describe() for v in result.violations)
        ran += 1
        if ran >= 3:
            return
    pytest.fail("fewer than 3 seeds in 0..29 drew service ops")


def test_service_runs_are_deterministic():
    for seed in range(30):
        program = generate_program(seed, 50)
        if not _has_service(program):
            continue
        first = run_program(program)
        second = run_program(program)
        assert first.event_digest == second.event_digest
        assert first.report_digest == second.report_digest
        return
    pytest.fail("no seed in 0..29 drew a service op")


def test_orphan_service_op_is_skipped_not_crashed():
    """Closure under deletion: a service op whose objects were shrunk
    away must skip cleanly so the shrinker can minimise around it."""
    program = WorkloadProgram(
        seed=0,
        config=SimConfig(),
        ops=[
            Op(
                "service",
                {
                    "queries": [
                        ["u0", "ghost", "0:10,0:10"],
                        ["u0", "ghost", "2:8,2:8"],
                    ],
                    "nodes": 2,
                    "tenants": 1,
                },
            )
        ],
    )
    result = run_program(program)
    assert result.ok
    assert result.steps[0].status == "skipped"


def test_service_op_replays_via_json():
    for seed in range(30):
        program = generate_program(seed, 50)
        if not _has_service(program):
            continue
        direct = run_program(program)
        replayed = replay_json(program.to_json())
        assert replayed.event_digest == direct.event_digest
        return
    pytest.fail("no seed in 0..29 drew a service op")


def test_oracle_flip_mutation_is_caught_on_service_ops():
    """The harness self-test: a corrupted service answer must trip the
    oracle, proving the op class actually checks bytes end to end."""
    for seed in range(40):
        program = generate_program(seed, 50)
        if not _has_service(program):
            continue
        result = run_program(program, mutate="oracle-flip")
        flagged = [
            v for v in result.violations if v.op.startswith("service")
        ]
        if flagged:
            return
    pytest.fail("oracle-flip never tripped a service op's byte check")
