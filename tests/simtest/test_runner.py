"""SimRunner: clean fixed seeds, determinism, and replay round trips."""

from __future__ import annotations

import pytest

from repro.simtest import generate_program, replay_json, run_program

pytestmark = pytest.mark.simtest

#: small fixed subset of the CI seed matrix, kept fast for tier-1
SMOKE_SEEDS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_fixed_seed_runs_clean(seed):
    result = run_program(generate_program(seed, 40))
    assert result.ok, "\n".join(v.describe() for v in result.violations)
    assert len(result.steps) == 40


def test_same_seed_same_digests():
    program = generate_program(7, 80)
    first = run_program(program)
    second = run_program(program)
    assert first.event_digest == second.event_digest
    assert first.report_digest == second.report_digest
    assert first.final_virtual_seconds == second.final_virtual_seconds
    assert [s.status for s in first.steps] == [s.status for s in second.steps]


def test_replay_json_matches_direct_run():
    program = generate_program(13, 40)
    direct = run_program(program)
    replayed = replay_json(program.to_json())
    assert replayed.event_digest == direct.event_digest
    assert replayed.report_digest == direct.report_digest


def test_virtual_time_advances():
    result = run_program(generate_program(3, 40))
    assert result.final_virtual_seconds > 0


def test_faulted_seed_still_clean():
    """A seed whose config draws fault mixins must absorb every injected
    fault through retry/failover without tripping an invariant."""
    for seed in range(1, 30):
        program = generate_program(seed, 40)
        if program.config.fault_mixins:
            result = run_program(program)
            assert result.ok, "\n".join(
                v.describe() for v in result.violations
            )
            return
    pytest.fail("no seed in 1..29 drew fault mixins")
