"""Workload program generation: determinism, closure and serialization."""

from __future__ import annotations

import pytest

from repro.simtest import (
    FAULT_MIXINS,
    OP_KINDS,
    SimConfig,
    WorkloadProgram,
    generate_program,
)

pytestmark = pytest.mark.simtest


def test_generation_is_deterministic():
    first = generate_program(31, 80)
    second = generate_program(31, 80)
    assert first.to_json() == second.to_json()


def test_different_seeds_differ():
    assert generate_program(1, 80).to_json() != generate_program(2, 80).to_json()


def test_requested_length_and_known_kinds():
    program = generate_program(9, 120)
    assert len(program.ops) == 120
    assert all(op.kind in OP_KINDS for op in program.ops)


def test_json_round_trip():
    program = generate_program(17, 60)
    restored = WorkloadProgram.from_json(program.to_json())
    assert restored.seed == program.seed
    assert restored.config == program.config
    assert restored.ops == program.ops
    assert restored.to_json() == program.to_json()


def test_replace_ops_preserves_seed_and_config():
    program = generate_program(5, 40)
    sliced = program.replace_ops(list(program.ops[:7]))
    assert sliced.seed == program.seed
    assert sliced.config == program.config
    assert len(sliced.ops) == 7


def test_config_fields_stay_in_generator_ranges():
    for seed in range(40):
        config = generate_program(seed, 1).config
        assert config.num_drives in (1, 2, 4, 8)
        assert 1 <= config.parallel_drives <= config.num_drives
        assert config.policy in ("lru", "fifo", "lfu", "size", "gds")
        assert config.compression in ("none", "zlib")
        assert all(mixin in FAULT_MIXINS for mixin in config.fault_mixins)


def test_offline_pulses_always_close():
    """Every generated program ends with the library back online, so the
    quiescence sweep at the end of a run is meaningful."""
    for seed in range(25):
        online = True
        for op in generate_program(seed, 100).ops:
            if op.kind == "offline":
                online = not op.params["offline"]
        assert online


def test_sim_config_round_trip():
    config = SimConfig.from_dict(generate_program(3, 1).config.to_dict())
    assert config == generate_program(3, 1).config
