"""The ``concurrent`` simtest op: generation, execution, shrinkability.

The op submits 2-8 overlapping queries through the admission layer with
a seeded interleaving schedule; the runner checks every query's cells
against the oracle and reconciles the fused tape-byte split against the
event log.  These tests pin that the generator actually emits it, that
programs containing it run clean and deterministically, and that it
stays closed under deletion (skip, don't crash, when its objects are
shrunk away).
"""

from __future__ import annotations

import pytest

from repro.simtest import (
    Op,
    SimConfig,
    WorkloadProgram,
    generate_program,
    replay_json,
    run_program,
)

pytestmark = pytest.mark.simtest


def _has_concurrent(program) -> bool:
    return any(op.kind == "concurrent" for op in program.ops)


def test_generator_emits_concurrent_ops():
    found = 0
    for seed in range(40):
        if _has_concurrent(generate_program(seed, 60)):
            found += 1
    assert found >= 10, (
        f"only {found}/40 seeds drew a concurrent op: the weight is wired"
        " wrong"
    )


def test_concurrent_op_params_are_json_closed():
    for seed in range(20):
        program = generate_program(seed, 60)
        if not _has_concurrent(program):
            continue
        round_tripped = WorkloadProgram.from_json(program.to_json())
        assert [op.to_dict() for op in round_tripped.ops] == [
            op.to_dict() for op in program.ops
        ]
        for op in round_tripped.ops:
            if op.kind == "concurrent":
                assert 2 <= len(op.params["queries"]) <= 8
                assert "schedule_seed" in op.params
        return
    pytest.fail("no seed in 0..19 drew a concurrent op")


def test_seeds_with_concurrent_ops_run_clean():
    ran = 0
    for seed in range(30):
        program = generate_program(seed, 50)
        if not _has_concurrent(program):
            continue
        result = run_program(program)
        assert result.ok, "\n".join(v.describe() for v in result.violations)
        ran += 1
        if ran >= 3:
            return
    pytest.fail("fewer than 3 seeds in 0..29 drew concurrent ops")


def test_concurrent_runs_are_deterministic():
    for seed in range(30):
        program = generate_program(seed, 50)
        if not _has_concurrent(program):
            continue
        first = run_program(program)
        second = run_program(program)
        assert first.event_digest == second.event_digest
        assert first.report_digest == second.report_digest
        return
    pytest.fail("no seed in 0..29 drew a concurrent op")


def test_orphan_concurrent_op_is_skipped_not_crashed():
    """Closure under deletion: a concurrent op whose ingest/archive were
    shrunk away must skip cleanly so the shrinker can minimise around it."""
    program = WorkloadProgram(
        seed=0,
        config=SimConfig(),
        ops=[
            Op(
                "concurrent",
                {
                    "queries": [
                        ["u0", "ghost", "0:10,0:10", 0.0, 1.0],
                        ["u0", "ghost", "2:8,2:8", 1.0, 2.0],
                    ],
                    "schedule_seed": 1,
                    "holdback_s": 0.0,
                    "aging_bound_s": 0.0,
                },
            )
        ],
    )
    result = run_program(program)
    assert result.ok
    assert result.steps[0].status == "skipped"


def test_concurrent_op_replays_via_json():
    for seed in range(30):
        program = generate_program(seed, 50)
        if not _has_concurrent(program):
            continue
        direct = run_program(program)
        replayed = replay_json(program.to_json())
        assert replayed.event_digest == direct.event_digest
        return
    pytest.fail("no seed in 0..29 drew a concurrent op")


def test_oracle_flip_mutation_is_caught_on_concurrent_ops():
    """The harness self-test: a corrupted concurrent output must trip the
    oracle, proving the op class actually checks bytes."""
    for seed in range(40):
        program = generate_program(seed, 50)
        if not _has_concurrent(program):
            continue
        result = run_program(program, mutate="oracle-flip")
        flagged = [
            v for v in result.violations if v.op.startswith("concurrent")
        ]
        if flagged:
            return
    pytest.fail("oracle-flip never tripped a concurrent op's byte check")
