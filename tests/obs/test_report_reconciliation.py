"""Metrics ↔ report consistency: every numeric RetrievalReport field must
equal the corresponding ``repro_*`` metric delta for a fixed scenario.

This pins the field-by-field mapping in
:data:`repro.obs.reconcile.REPORT_FIELD_METRICS`: a new report field
cannot ship without a metric, and accounting drift between the span-window
bookkeeping (reports) and the collected device stats (metrics) fails here
before the obs-layer gates can even see it.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.core.heaven import RetrievalReport
from repro.obs import (
    REPORT_FIELD_METRICS,
    event_window_bytes,
    metrics_delta,
    metrics_snapshot,
    reconcile_report,
    reconcile_tape_bytes,
)
from repro.tertiary import KB, MB


@pytest.fixture
def observed_heaven() -> Heaven:
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=256 * KB,
            disk_cache_bytes=4 * MB,
            memory_cache_bytes=8 * MB,
        ),
        observability=True,
    )
    heaven.create_collection("col")
    mdd = MDD(
        "obj",
        MInterval.of((0, 95), (0, 95)),
        DOUBLE,
        tiling=RegularTiling((16, 16)),
        source=HashedNoiseSource(11),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "obj")
    heaven.library.unmount_all()
    return heaven


def test_every_numeric_report_field_is_mapped():
    """Structural completeness: the mapping covers exactly the numeric
    fields, so adding one to RetrievalReport forces a metric too."""
    numeric = {
        field.name
        for field in dataclasses.fields(RetrievalReport)
        if field.type in ("int", "float", "bool")
    }
    assert numeric == set(REPORT_FIELD_METRICS)


@pytest.mark.parametrize("region", ["0:47,0:47", "16:79,32:63", "0:95,0:95"])
def test_cold_read_reconciles_field_by_field(observed_heaven, region):
    registry = observed_heaven.obs.metrics
    before = metrics_snapshot(registry)
    cursor = observed_heaven.clock.log.cursor()
    _cells, report = observed_heaven.read_with_report(
        "col", "obj", MInterval.parse(region)
    )
    delta = metrics_delta(before, metrics_snapshot(registry))
    assert reconcile_report(report, delta) == []
    assert reconcile_tape_bytes(report, observed_heaven.clock.log, cursor) is None


def test_warm_then_cold_sequence_reconciles(observed_heaven):
    """Repeated and overlapping reads: cache hits, re-pins on assembly and
    zero-tape reads must all keep report == metric delta."""
    registry = observed_heaven.obs.metrics
    for region in ("0:31,0:31", "0:31,0:31", "16:47,16:47"):
        before = metrics_snapshot(registry)
        _cells, report = observed_heaven.read_with_report(
            "col", "obj", MInterval.parse(region)
        )
        delta = metrics_delta(before, metrics_snapshot(registry))
        assert reconcile_report(report, delta) == []


def test_read_many_batch_reconciles(observed_heaven):
    registry = observed_heaven.obs.metrics
    before = metrics_snapshot(registry)
    cursor = observed_heaven.clock.log.cursor()
    _outputs, report = observed_heaven.read_many(
        [
            ("col", "obj", MInterval.parse("0:15,0:95")),
            ("col", "obj", MInterval.parse("48:63,0:95")),
        ]
    )
    delta = metrics_delta(before, metrics_snapshot(registry))
    assert reconcile_report(report, delta) == []
    assert reconcile_tape_bytes(report, observed_heaven.clock.log, cursor) is None


def test_event_window_bytes_counts_only_drive_reads(observed_heaven):
    cursor = observed_heaven.clock.log.cursor()
    _cells, report = observed_heaven.read_with_report(
        "col", "obj", MInterval.parse("0:47,0:47")
    )
    log = observed_heaven.clock.log
    assert event_window_bytes(log, cursor) == report.bytes_from_tape
    # A window opened after the read sees nothing.
    assert event_window_bytes(log, log.cursor()) == 0
