"""Tests for the span tracer: nesting, propagation, event attribution."""

import pytest

from repro.obs.trace import NOOP_SPAN, Span, Tracer, null_tracer
from repro.tertiary import SimClock


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def tracer(clock: SimClock) -> Tracer:
    return Tracer(clock=clock, enabled=True)


class TestNesting:
    def test_children_attach_to_enclosing_span(self, tracer):
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner in outer.children
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_roots_retained_in_finish_order(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_current_tracks_innermost(self, tracer):
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_walk_is_depth_first(self, tracer):
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("c"):
                    pass
            with tracer.span("d"):
                pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_exception_still_finishes_span(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert tracer.roots[0].finished

    def test_root_retention_is_bounded(self, clock):
        tracer = Tracer(clock=clock, enabled=True, max_finished=2)
        for index in range(5):
            with tracer.span(f"s{index}"):
                pass
        assert [r.name for r in tracer.roots] == ["s3", "s4"]
        assert tracer.dropped_roots == 3


class TestDisabled:
    def test_disabled_tracer_hands_out_shared_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("anything") as span:
            assert span is NOOP_SPAN
        assert tracer.roots == []

    def test_noop_span_is_inert(self):
        NOOP_SPAN.set(irrelevant=1)
        assert NOOP_SPAN.virtual_elapsed == 0.0
        assert NOOP_SPAN.count("load") == 0
        assert NOOP_SPAN.aggregate() == {}
        assert list(NOOP_SPAN.walk()) == []

    def test_always_span_measures_but_is_not_retained(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        with tracer.span("measured", always=True) as span:
            clock.charge(2.5, "read", "drive0", nbytes=100)
        assert isinstance(span, Span)
        assert span.virtual_elapsed == pytest.approx(2.5)
        assert span.count("read") == 1
        assert tracer.roots == []

    def test_null_tracer_is_disabled(self):
        with null_tracer.span("x") as span:
            assert span is NOOP_SPAN


class TestAttribution:
    def test_span_window_captures_only_its_events(self, clock, tracer):
        clock.charge(1.0, "seek", "drive0")
        with tracer.span("windowed") as span:
            clock.charge(2.0, "read", "drive0", nbytes=10)
        clock.charge(4.0, "seek", "drive0")
        assert span.virtual_elapsed == pytest.approx(2.0)
        assert span.count("read") == 1
        assert span.count("seek") == 0
        assert span.bytes_in("read") == 10
        assert span.time_in("read") == pytest.approx(2.0)

    def test_self_aggregate_excludes_children(self, clock, tracer):
        with tracer.span("parent") as parent:
            clock.charge(1.0, "seek", "drive0")
            with tracer.span("child") as child:
                clock.charge(2.0, "read", "drive0")
            clock.charge(3.0, "seek", "drive0")
        assert parent.time_in("read") == pytest.approx(2.0)  # whole window
        own = parent.self_aggregate()
        assert "read" not in own
        assert own["seek"].seconds == pytest.approx(4.0)
        assert child.self_aggregate()["read"].seconds == pytest.approx(2.0)

    def test_children_virtual_time_sums_to_parent(self, clock, tracer):
        with tracer.span("parent") as parent:
            for _ in range(3):
                with tracer.span("child"):
                    clock.charge(1.5, "read", "drive0")
        child_sum = sum(c.virtual_elapsed for c in parent.children)
        assert child_sum == pytest.approx(parent.virtual_elapsed)

    def test_attributes_via_kwargs_and_set(self, tracer):
        with tracer.span("s", colour="red") as span:
            span.set(size=4)
        assert span.attributes == {"colour": "red", "size": 4}

    def test_to_dict_shape(self, clock, tracer):
        with tracer.span("s"):
            clock.charge(1.0, "read", "drive0", nbytes=8)
        record = tracer.roots[0].to_dict()
        assert record["name"] == "s"
        assert record["parent_id"] is None
        assert record["virtual_elapsed_s"] == pytest.approx(1.0)
        assert record["breakdown"]["read"]["bytes"] == 8

    def test_clear_drops_roots(self, tracer):
        with tracer.span("s"):
            pass
        tracer.clear()
        assert tracer.roots == []
        assert tracer.dropped_roots == 0
