"""Tests for the metrics registry: counters, gauges, histogram buckets."""

import math

import pytest

from repro.obs.metrics import (
    BYTE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    TIME_BUCKETS_S,
)


class TestCounter:
    def test_inc_accumulates(self):
        counter = Counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == pytest.approx(3.5)

    def test_labels_are_independent_series(self):
        counter = Counter("repro_cache_hits_total")
        counter.inc(tier="disk")
        counter.inc(3, tier="memory")
        assert counter.value(tier="disk") == 1
        assert counter.value(tier="memory") == 3
        assert counter.value(tier="tape") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricsError):
            Counter("repro_x_total").inc(-1)

    def test_collector_set_cannot_decrease(self):
        counter = Counter("repro_x_total")
        counter.set(10)
        with pytest.raises(MetricsError):
            counter.set(9)

    def test_invalid_name_rejected(self):
        with pytest.raises(MetricsError):
            Counter("has spaces")


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("repro_used_bytes")
        gauge.set(100, tier="disk")
        gauge.add(-40, tier="disk")
        assert gauge.value(tier="disk") == 60

    def test_samples_sorted_by_labels(self):
        gauge = Gauge("repro_used_bytes")
        gauge.set(2, tier="memory")
        gauge.set(1, tier="disk")
        labels = [labels for _name, labels, _v in gauge.samples()]
        assert labels == [{"tier": "disk"}, {"tier": "memory"}]


class TestHistogram:
    def test_bucketing_is_le_semantics(self):
        histogram = Histogram("repro_read_seconds", boundaries=(0.1, 1.0, 10.0))
        assert histogram.bucket_for(0.05) == 0.1
        assert histogram.bucket_for(0.1) == 0.1  # boundary is inclusive (le)
        assert histogram.bucket_for(0.5) == 1.0
        assert histogram.bucket_for(99.0) == math.inf

    def test_observe_fills_cumulative_buckets(self):
        histogram = Histogram("repro_read_seconds", boundaries=(1.0, 10.0))
        for value in (0.5, 0.7, 5.0, 50.0):
            histogram.observe(value)
        samples = dict(
            ((name, labels.get("le", "")), value)
            for name, labels, value in histogram.samples()
        )
        assert samples[("repro_read_seconds_bucket", "1")] == 2
        assert samples[("repro_read_seconds_bucket", "10")] == 3
        assert samples[("repro_read_seconds_bucket", "+Inf")] == 4
        assert samples[("repro_read_seconds_sum", "")] == pytest.approx(56.2)
        assert samples[("repro_read_seconds_count", "")] == 4

    def test_non_increasing_boundaries_rejected(self):
        with pytest.raises(MetricsError):
            Histogram("repro_x", boundaries=(1.0, 1.0))
        with pytest.raises(MetricsError):
            Histogram("repro_x", boundaries=())
        with pytest.raises(MetricsError):
            Histogram("repro_x", boundaries=(1.0, math.inf))

    def test_default_bucket_sets_are_increasing(self):
        for buckets in (TIME_BUCKETS_S, BYTE_BUCKETS):
            assert all(a < b for a, b in zip(buckets, buckets[1:]))


class TestRegistry:
    def test_duplicate_name_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(MetricsError):
            registry.gauge("repro_x_total")

    def test_get_and_contains(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total")
        assert registry.get("repro_x_total") is counter
        assert "repro_x_total" in registry
        with pytest.raises(MetricsError):
            registry.get("repro_missing")

    def test_collectors_run_on_collect(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("repro_level")
        state = {"level": 0}
        registry.register_collector(lambda: gauge.set(state["level"]))
        state["level"] = 7
        registry.collect()
        assert gauge.value() == 7

    def test_snapshot_renders_label_keys(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total")
        counter.inc(2, tier="disk")
        snapshot = registry.snapshot()
        assert snapshot["repro_hits_total"] == {"tier=disk": 2.0}

    def test_instruments_sorted_by_name(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total")
        registry.counter("repro_a_total")
        assert [i.name for i in registry.instruments()] == [
            "repro_a_total",
            "repro_b_total",
        ]
