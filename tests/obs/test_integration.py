"""End-to-end observability: span trees over real HEAVEN scenarios."""

import pytest

from repro import Heaven, HeavenConfig, MInterval
from repro.obs import Observability, leaf_totals
from repro.tertiary import KB, MB
from repro.workloads import ClimateGrid, climate_object
from repro.arrays import RegularTiling

#: event kinds charged by the tape path (mount + seek + transfer phases)
TAPE_KINDS = {"exchange", "load", "seek", "rewind", "settle", "read"}


def _make_heaven(observability=None) -> Heaven:
    config = HeavenConfig(
        super_tile_bytes=512 * KB,
        disk_cache_bytes=16 * MB,
        memory_cache_bytes=4 * MB,
    )
    return Heaven(config, observability=observability)


def _load_object(heaven: Heaven) -> None:
    heaven.create_collection("climate")
    obj = climate_object(
        "temp", ClimateGrid(90, 45, 8, 6), seed=1,
        tiling=RegularTiling((30, 15, 4, 3)),
    )
    heaven.insert("climate", obj)
    heaven.archive("climate", "temp")
    heaven.library.unmount_all()


REGION = MInterval.of((0, 29), (0, 14), (0, 3), (0, 2))


class TestColdReadAttribution:
    def test_cold_read_time_is_mostly_tape(self):
        heaven = _make_heaven(observability=True)
        _load_object(heaven)
        _cells, report = heaven.read_with_report("climate", "temp", REGION)
        root = next(r for r in heaven.tracer.roots if r.name == "heaven.read")
        assert root.virtual_elapsed == pytest.approx(report.virtual_seconds)
        tape_seconds = sum(
            totals.seconds
            for kind, totals in root.aggregate().items()
            if kind in TAPE_KINDS
        )
        # A cold read's cost is dominated by mount + seek + transfer: the
        # span tree must attribute at least 90 % of its virtual time there.
        assert tape_seconds >= 0.9 * root.virtual_elapsed

    def test_read_span_tree_shape(self):
        heaven = _make_heaven(observability=True)
        _load_object(heaven)
        heaven.read("climate", "temp", REGION)
        root = next(r for r in heaven.tracer.roots if r.name == "heaven.read")
        names = [s.name for s in root.walk()]
        assert "heaven.stage" in names
        assert "cache.lookup" in names
        assert "scheduler.plan" in names
        assert "library.stage" in names
        assert "heaven.assemble" in names

    def test_query_parents_staging_spans(self):
        heaven = _make_heaven(observability=True)
        _load_object(heaven)
        heaven.query("select c[0:29, 0:14, 0:3, 0:2] from climate as c")
        root = next(r for r in heaven.tracer.roots if r.name == "query")
        names = [s.name for s in root.walk()]
        assert "heaven.stage" in names
        assert "library.stage" in names

    def test_scenario_root_accounts_for_all_virtual_time(self):
        heaven = _make_heaven(observability=True)
        with heaven.tracer.span("scenario"):
            _load_object(heaven)
            heaven.read("climate", "temp", REGION)
            heaven.query("select avg_cells(c) from climate as c")
        totals = leaf_totals(
            [r for r in heaven.tracer.roots if r.name == "scenario"]
        )
        attributed = sum(t.seconds for t in totals.values())
        assert attributed == pytest.approx(heaven.clock.now, rel=0.01)


class TestExchangeAccounting:
    def test_span_exchanges_match_library_stats_diff(self):
        heaven = _make_heaven(observability=True)
        _load_object(heaven)
        before = heaven.library.stats().exchanges
        _cells, report = heaven.read_with_report("climate", "temp", REGION)
        after = heaven.library.stats().exchanges
        assert report.exchanges == after - before
        assert report.exchanges >= 1  # cold read must mount

    def test_warm_read_needs_no_exchange(self):
        heaven = _make_heaven(observability=True)
        _load_object(heaven)
        heaven.read("climate", "temp", REGION)
        _cells, warm = heaven.read_with_report("climate", "temp", REGION)
        assert warm.exchanges == 0
        assert warm.bytes_from_tape == 0

    def test_reports_identical_with_observability_on_and_off(self):
        reports = []
        for observability in (False, True):
            heaven = _make_heaven(observability=observability)
            _load_object(heaven)
            _cells, report = heaven.read_with_report("climate", "temp", REGION)
            reports.append(report)
        off, on = reports
        assert off.exchanges == on.exchanges
        assert off.virtual_seconds == pytest.approx(on.virtual_seconds)
        assert off.bytes_from_tape == on.bytes_from_tape
        assert off.bytes_useful == on.bytes_useful

    def test_read_many_batch_report(self):
        heaven = _make_heaven(observability=True)
        _load_object(heaven)
        regions = [
            ("climate", "temp", REGION),
            ("climate", "temp", MInterval.of((30, 59), (15, 29), (0, 3), (0, 2))),
        ]
        outputs, report = heaven.read_many(regions)
        assert len(outputs) == 2
        assert report.exchanges >= 1
        assert report.virtual_seconds > 0


class TestObservabilityKnobs:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        heaven = _make_heaven()
        assert not heaven.obs.enabled
        assert heaven.instruments is None
        assert heaven.tracer.roots == []

    def test_env_var_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        heaven = _make_heaven()
        assert heaven.obs.enabled
        assert heaven.instruments is not None

    def test_env_var_zero_is_off(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "0")
        heaven = _make_heaven()
        assert not heaven.obs.enabled

    def test_prebuilt_observability_is_adopted(self):
        obs = Observability(enabled=True)
        heaven = _make_heaven(observability=obs)
        assert heaven.obs is obs
        assert obs.tracer.clock is heaven.clock

    def test_disabled_reads_retain_no_spans(self):
        heaven = _make_heaven(observability=False)
        _load_object(heaven)
        heaven.read("climate", "temp", REGION)
        assert heaven.tracer.roots == []


class TestInstruments:
    def test_metrics_reflect_activity(self):
        heaven = _make_heaven(observability=True)
        _load_object(heaven)
        heaven.read("climate", "temp", REGION)
        heaven.query("select avg_cells(c) from climate as c")
        snapshot = heaven.obs.metrics.snapshot()
        assert snapshot["repro_tape_exchanges_total"][""] >= 1
        assert snapshot["repro_tape_bytes_written_total"][""] > 0
        assert snapshot["repro_cache_lookups_total"]["tier=disk"] >= 1
        assert snapshot["repro_super_tiles_built_total"][""] >= 1
        assert snapshot["repro_objects_archived"][""] == 1
        assert snapshot["repro_wal_records_total"][""] > 0
        assert snapshot["repro_txns_total"]["outcome=committed"] > 0
        assert snapshot["repro_queries_total"]["kind=select"] == 1
        assert snapshot["repro_virtual_seconds"][""] == pytest.approx(
            heaven.clock.now
        )
        assert snapshot["repro_read_virtual_seconds_count"][""] >= 1

    def test_bounded_event_log_dropped_metric(self):
        config = HeavenConfig(
            super_tile_bytes=512 * KB,
            disk_cache_bytes=16 * MB,
            event_log_max_events=16,
        )
        heaven = Heaven(config, observability=True)
        _load_object(heaven)
        heaven.read("climate", "temp", REGION)
        assert len(heaven.clock.log) <= 16
        snapshot = heaven.obs.metrics.snapshot()
        assert snapshot["repro_eventlog_dropped_total"][""] == (
            heaven.clock.log.dropped
        )
        assert snapshot["repro_eventlog_dropped_total"][""] > 0
