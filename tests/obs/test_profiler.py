"""Tests for the wall-clock statistical profiler and divergence metric."""

import json
import signal
import zlib

import pytest

from repro.obs import (
    FRAME_PHASES,
    PHASES,
    SPAN_PHASES,
    Profile,
    ProfilerError,
    Tracer,
    WallProfiler,
    divergence_by_kind,
    phase_of_span,
    profile_call,
    render_divergence,
    render_hot_functions,
    render_phase_breakdown,
    render_profile_flamegraph,
)
from repro.tertiary import SimClock


def _frame(name, file="f.py", line=1):
    return (name, file, line)


class TestProfileAggregation:
    def test_record_accumulates_stacks_and_phases(self):
        profile = Profile("ticks", "deterministic")
        stack = (_frame("main"), _frame("work"))
        profile.record(stack, "decode", 2.0)
        profile.record(stack, "decode", 1.0)
        profile.record((_frame("main"),), "other", 1.0)
        assert profile.samples == 3
        assert profile.total_weight == 4.0
        assert profile.stack_weights[stack] == 3.0
        assert profile.by_phase()["decode"] == 3.0
        # every known phase is present, even at zero
        assert set(profile.by_phase()) == set(PHASES)

    def test_hot_functions_rank_by_self_weight(self):
        profile = Profile("ticks", "deterministic")
        profile.record((_frame("a"), _frame("b")), "other", 5.0)
        profile.record((_frame("a"),), "other", 1.0)
        ranked = profile.hot_functions()
        assert ranked[0].name == "b"
        assert ranked[0].self_weight == 5.0
        # a is on both stacks: cumulative 6, self only 1
        a = next(stat for stat in ranked if stat.name == "a")
        assert a.cum_weight == 6.0
        assert a.self_weight == 1.0

    def test_recursive_stacks_count_cumulative_once(self):
        profile = Profile("ticks", "deterministic")
        frame = _frame("recurse")
        profile.record((frame, frame, frame), "other", 2.0)
        stat = profile.hot_functions()[0]
        assert stat.cum_weight == 2.0  # not 6.0
        assert stat.self_weight == 2.0

    def test_to_dict_is_json_safe(self):
        profile = Profile("ticks", "deterministic")
        profile.record((_frame("a"),), "cache", 1.0)
        doc = json.loads(json.dumps(profile.to_dict()))
        assert doc["unit"] == "ticks"
        assert doc["phases"]["cache"] == 1.0
        assert doc["hot_functions"][0]["name"] == "a"


def _decode_workload(rounds=40):
    """A workload whose hot path calls a FRAME_PHASES-mapped function."""
    payload = zlib.compress(bytes(4096))
    total = 0
    for _ in range(rounds):
        total += _decode_tile(payload)
    return total


def _decode_tile(payload):
    # Name intentionally collides with FRAME_PHASES["_decode_tile"].
    return len(zlib.decompress(payload))


class TestDeterministicMode:
    def test_identical_workload_gives_identical_profile(self):
        def run():
            _, profile = profile_call(
                _decode_workload, mode="deterministic", tick_every=8
            )
            return profile

        first, second = run(), run()
        assert first.unit == "ticks"
        assert first.samples == second.samples
        assert first.stack_weights == second.stack_weights
        assert first.phase_weights == second.phase_weights
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )

    def test_frame_phase_override_attributes_decode(self):
        _, profile = profile_call(
            _decode_workload, mode="deterministic", tick_every=4
        )
        assert profile.samples > 0
        assert profile.by_phase()["decode"] > 0

    def test_span_phase_attribution_via_tracer(self):
        clock = SimClock()
        tracer = Tracer(clock=clock, enabled=True)
        profiler = WallProfiler(
            tracer=tracer, mode="deterministic", tick_every=1
        )
        with tracer.span("cache.lookup"):
            with profiler:
                sum(len(str(n)) for n in range(200))
        profile = profiler.profile
        assert profile.samples > 0
        # no FRAME_PHASES names on this stack -> span attribution wins
        assert profile.by_phase()["cache"] == pytest.approx(
            profile.total_weight
        )

    def test_profiler_hook_restored_after_stop(self):
        import sys

        before = sys.getprofile()
        _, profile = profile_call(lambda: None, mode="deterministic")
        assert sys.getprofile() is before
        assert profile.mode == "deterministic"


class TestSignalMode:
    @pytest.mark.skipif(
        not hasattr(signal, "setitimer"), reason="no setitimer on platform"
    )
    def test_signal_mode_samples_wall_time(self):
        _, profile = profile_call(
            lambda: _decode_workload(rounds=4000),
            mode="signal",
            interval_s=0.001,
        )
        assert profile.unit == "seconds"
        assert profile.samples > 0
        assert profile.total_weight == pytest.approx(
            profile.samples * 0.001
        )

    def test_auto_mode_resolves(self):
        profiler = WallProfiler(mode="auto")
        assert profiler.mode in ("signal", "deterministic")


class TestProfilerLifecycle:
    def test_invalid_configuration_rejected(self):
        with pytest.raises(ProfilerError):
            WallProfiler(mode="nonsense")
        with pytest.raises(ProfilerError):
            WallProfiler(interval_s=0)
        with pytest.raises(ProfilerError):
            WallProfiler(tick_every=0)

    def test_double_start_and_unstarted_stop_rejected(self):
        profiler = WallProfiler(mode="deterministic")
        with pytest.raises(ProfilerError):
            profiler.stop()
        profiler.start()
        try:
            with pytest.raises(ProfilerError):
                profiler.start()
        finally:
            profiler.stop()


class TestPhaseTables:
    def test_phase_maps_only_name_known_phases(self):
        for phase in SPAN_PHASES.values():
            assert phase in PHASES
        for phase in FRAME_PHASES.values():
            assert phase in PHASES
        assert phase_of_span("no.such.span") == "other"


class TestDivergence:
    def _trace(self):
        clock = SimClock()
        tracer = Tracer(clock=clock, enabled=True)
        with tracer.span("heaven.read"):
            with tracer.span("heaven.stage"):
                clock.charge(4.0, "read", "drive0", nbytes=64)
            with tracer.span("scheduler.plan"):
                pass  # pure software: no virtual time
        return tracer.roots

    def test_ratio_is_host_us_per_virtual_second(self):
        divergence = divergence_by_kind(self._trace())
        stage = divergence["heaven.stage"]
        assert stage.spans == 1
        assert stage.virtual_seconds == pytest.approx(4.0)
        assert stage.phase == "stage"
        assert stage.host_us_per_virtual_second == pytest.approx(
            stage.wall_seconds * 1e6 / 4.0
        )

    def test_pure_software_span_has_no_ratio(self):
        divergence = divergence_by_kind(self._trace())
        plan = divergence["scheduler.plan"]
        assert plan.virtual_seconds == 0.0
        assert plan.host_us_per_virtual_second is None

    def test_render_divergence_lists_every_kind(self):
        text = render_divergence(self._trace())
        assert "heaven.stage" in text
        assert "scheduler.plan" in text
        assert "n/a (no virtual time)" in text


class TestProfileRenderers:
    def _profile(self):
        profile = Profile("ticks", "deterministic")
        profile.record(
            (_frame("main"), _frame("stage_all"), _frame("read_segment")),
            "stage",
            8.0,
        )
        profile.record((_frame("main"), _frame("assemble")), "assemble", 2.0)
        return profile

    def test_flamegraph_renders_trie(self):
        text = render_profile_flamegraph(self._profile())
        lines = text.splitlines()
        assert any("main" in line for line in lines)
        # children indented under main, heaviest first
        stage_at = next(i for i, l in enumerate(lines) if "stage_all" in l)
        assemble_at = next(i for i, l in enumerate(lines) if "assemble" in l)
        assert stage_at < assemble_at

    def test_flamegraph_truncates_rows(self):
        profile = Profile("ticks", "deterministic")
        for index in range(30):
            profile.record((_frame(f"fn{index:02d}"),), "other", 1.0)
        text = render_profile_flamegraph(profile, max_rows=5)
        assert "truncated to the 5 heaviest rows" in text

    def test_hot_function_and_phase_charts(self):
        profile = self._profile()
        hot = render_hot_functions(profile, top=2)
        assert "read_segment" in hot
        phases = render_phase_breakdown(profile)
        assert "stage" in phases

    def test_empty_profile_renders_placeholder(self):
        empty = Profile("ticks", "deterministic")
        assert render_profile_flamegraph(empty)
        assert render_hot_functions(empty)
