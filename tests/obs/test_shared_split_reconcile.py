"""Field-by-field pinning of the shared tape-byte split reconciliation.

The admission layer's accounting contract: the per-query
``bytes_from_tape`` shares of fused sweeps plus the explicit
unattributed remainder equal the event log's drive-read bytes *exactly*
— no double counting of shared staged segments, no dropped bytes.  These
tests pin both the happy path and the mismatch diagnostics of
:func:`repro.obs.reconcile.reconcile_shared_tape_bytes`.
"""

from __future__ import annotations

import dataclasses

from repro.arrays import (
    DOUBLE,
    HashedNoiseSource,
    MDD,
    MInterval,
    RegularTiling,
)
from repro.core import Heaven, HeavenConfig
from repro.core.admission import AdmissionController, QuerySpec
from repro.core.scheduler import split_shared_bytes
from repro.obs import reconcile_shared_tape_bytes
from repro.obs.reconcile import event_window_bytes
from repro.tertiary import MB


def run_shared_queries():
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=8 * 1024,
            disk_cache_bytes=64 * 1024,
            memory_cache_bytes=16 * MB,
        )
    )
    heaven.create_collection("col")
    mdd = MDD(
        "o0",
        MInterval.of((0, 63), (0, 63)),
        DOUBLE,
        tiling=RegularTiling((16, 16)),
        source=HashedNoiseSource(0, 0.0, 5.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "o0")
    heaven.library.unmount_all()
    regions = [
        MInterval.of((0, 63), (0, 63)),
        MInterval.of((0, 31), (0, 63)),
        MInterval.of((0, 63), (32, 63)),
    ]
    now = heaven.clock.now
    specs = [
        QuerySpec("col", "o0", region, arrival_s=now, name=f"q{index}")
        for index, region in enumerate(regions)
    ]
    _outputs, report = AdmissionController(heaven).run(specs)
    return heaven, report


class TestSharedSplitReconciliation:
    def test_sum_of_shares_plus_unattributed_is_event_log_exact(self):
        heaven, report = run_shared_queries()
        window_bytes = event_window_bytes(
            heaven.clock.log, report.log_cursor_start
        )
        attributed = sum(r.bytes_from_tape for r in report.queries)
        assert attributed + report.unattributed_tape_bytes == window_bytes
        assert report.total_bytes_attributed == report.bytes_from_tape
        assert (
            reconcile_shared_tape_bytes(
                report.queries,
                heaven.clock.log,
                report.log_cursor_start,
                unattributed=report.unattributed_tape_bytes,
            )
            is None
        )

    def test_shared_segments_not_double_counted(self):
        """Queries sharing every staged segment must split, not duplicate:
        no single query may be charged the full window alone unless it is
        the only one touching tape."""
        heaven, report = run_shared_queries()
        window_bytes = event_window_bytes(
            heaven.clock.log, report.log_cursor_start
        )
        sharers = [r for r in report.queries if r.bytes_from_tape > 0]
        assert len(sharers) >= 2, "the overlapping mix must share staging"
        for r in sharers:
            assert r.bytes_from_tape < window_bytes

    def test_mismatch_message_names_every_query(self):
        heaven, report = run_shared_queries()
        tampered = list(report.queries)
        tampered[0] = dataclasses.replace(
            tampered[0], bytes_from_tape=tampered[0].bytes_from_tape + 1
        )
        message = reconcile_shared_tape_bytes(
            tampered,
            heaven.clock.log,
            report.log_cursor_start,
            unattributed=report.unattributed_tape_bytes,
        )
        assert message is not None
        for r in tampered:
            assert r.object_name in message
        assert "unattributed" in message

    def test_lease_stats_balance_after_run(self):
        heaven, _report = run_shared_queries()
        stats = heaven.disk_cache.stats
        assert stats.leases > 0
        assert stats.lease_releases == stats.leases
        assert heaven.disk_cache.pinned_keys() == []

    def test_split_share_fields_feed_the_report(self):
        """The per-query share is rebuilt from the same split primitive the
        scheduler uses — field-by-field, not just in aggregate."""
        shares = split_shared_bytes(100, (1, 2, 3))
        assert shares == {1: 34, 2: 33, 3: 33}
        assert sum(shares.values()) == 100
