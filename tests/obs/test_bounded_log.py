"""Tests for the bounded event log and absolute-cursor windows."""

import pytest

from repro.tertiary import SimClock
from repro.tertiary.clock import Event, EventLog


def _event(kind: str = "seek", duration: float = 1.0) -> Event:
    return Event(time=0.0, duration=duration, kind=kind, device="d0")


class TestBoundedMode:
    def test_unbounded_by_default(self):
        log = EventLog()
        for _ in range(1000):
            log.append(_event())
        assert len(log) == 1000
        assert log.dropped == 0

    def test_cap_never_exceeded_and_drops_counted(self):
        log = EventLog(max_events=10)
        for _ in range(100):
            log.append(_event())
            assert len(log) <= 10
        assert log.dropped == 100 - len(log)
        assert log.total_appended == 100

    def test_oldest_chunk_dropped_first(self):
        log = EventLog(max_events=4)
        for index in range(5):
            log.append(_event(kind=f"k{index}"))
        kinds = [e.kind for e in log]
        assert kinds[-1] == "k4"
        assert "k0" not in kinds  # chunk drop removed the oldest half

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            EventLog(max_events=1)
        with pytest.raises(ValueError):
            EventLog(max_events=0)

    def test_set_limit_trims_immediately(self):
        log = EventLog()
        for _ in range(10):
            log.append(_event())
        log.set_limit(4)
        assert len(log) == 4
        assert log.dropped == 6

    def test_clear_resets_base(self):
        log = EventLog(max_events=4)
        for _ in range(10):
            log.append(_event())
        log.clear()
        assert len(log) == 0
        assert log.dropped == 0
        assert log.total_appended == 0


class TestAbsoluteCursors:
    def test_cursor_is_total_appended(self):
        log = EventLog(max_events=4)
        for _ in range(10):
            log.append(_event())
        assert log.cursor() == 10

    def test_window_survives_drops(self):
        log = EventLog(max_events=6)
        for index in range(4):
            log.append(_event(kind=f"k{index}"))
        cursor = log.cursor()
        for index in range(4, 10):
            log.append(_event(kind=f"k{index}"))
        kinds = [e.kind for e in log.window(cursor)]
        # Cursor 4 onwards: events k4..k9, minus whatever bounded mode
        # discarded — never events *before* the cursor.
        assert kinds == [e.kind for e in log][-len(kinds):]
        assert all(int(k[1:]) >= 4 for k in kinds)

    def test_aggregate_over_window(self):
        log = EventLog()
        log.append(_event(kind="seek", duration=2.0))
        start = log.cursor()
        log.append(_event(kind="read", duration=3.0))
        log.append(_event(kind="read", duration=4.0))
        end = log.cursor()
        log.append(_event(kind="seek", duration=5.0))
        totals = log.aggregate(start, end)
        assert set(totals) == {"read"}
        assert totals["read"].count == 2
        assert totals["read"].seconds == pytest.approx(7.0)

    def test_breakdown_with_cursor_start(self):
        log = EventLog()
        log.append(_event(kind="seek", duration=2.0))
        cursor = log.cursor()
        log.append(_event(kind="read", duration=3.0))
        assert log.breakdown(start=cursor) == {"read": pytest.approx(3.0)}


class TestSimClockIntegration:
    def test_clock_passes_cap_through(self):
        clock = SimClock(max_events=4)
        for _ in range(10):
            clock.charge(1.0, "seek", "d0")
        assert clock.log.max_events == 4
        assert clock.log.dropped == 10 - len(clock.log)
        assert clock.now == pytest.approx(10.0)  # time unaffected by drops

    def test_charge_totals_equal_clock_now_when_unbounded(self):
        clock = SimClock()
        clock.charge(1.5, "seek", "d0")
        clock.charge(2.5, "read", "d0")
        assert sum(e.duration for e in clock.log) == pytest.approx(clock.now)
