"""Wall-clock paths of the exporters and the wall-latency instruments.

The virtual-time exports were covered from PR 2 on; these tests pin the
host-time side added with the profiler: JSONL wall fields, the wall-scaled
flamegraph, the wall-latency histograms and the divergence gauge.
"""

import json
import math

import pytest

from repro.core import Heaven, HeavenConfig
from repro.obs import (
    WALL_TIME_BUCKETS_S,
    Tracer,
    prometheus_text,
    render_flamegraph,
    spans_to_jsonl,
)
from repro.tertiary import MB, SimClock
from repro.workloads import ClimateGrid, climate_object
from repro.arrays import MInterval


def _sample_trace():
    clock = SimClock()
    tracer = Tracer(clock=clock, enabled=True)
    with tracer.span("read"):
        with tracer.span("stage"):
            clock.charge(2.0, "read", "drive0", nbytes=256)
    return tracer.roots


def _observed_read():
    heaven = Heaven(
        HeavenConfig(super_tile_bytes=4 * MB, disk_cache_bytes=64 * MB),
        observability=True,
    )
    heaven.create_collection("c")
    heaven.insert("c", climate_object("t", ClimateGrid(90, 45, 8, 6), seed=3))
    heaven.archive("c", "t")
    heaven.library.unmount_all()
    region = MInterval.of((10, 50), (10, 30), (0, 3), (0, 2))
    heaven.read_with_report("c", "t", region)
    return heaven


class TestJsonlWallFields:
    def test_include_wall_emits_wall_elapsed(self):
        roots = _sample_trace()
        records = [
            json.loads(line)
            for line in spans_to_jsonl(roots, include_wall=True).splitlines()
        ]
        assert records
        for record in records:
            assert "wall_elapsed_ms" in record
            assert record["wall_elapsed_ms"] >= 0.0

    def test_exclude_wall_strips_the_field(self):
        roots = _sample_trace()
        records = [
            json.loads(line)
            for line in spans_to_jsonl(roots, include_wall=False).splitlines()
        ]
        assert all("wall_elapsed_ms" not in record for record in records)


class TestWallFlamegraph:
    def test_wall_clock_scales_by_wall_time(self):
        roots = _sample_trace()
        text = render_flamegraph(roots, clock="wall")
        assert "ms" in text
        assert "read" in text and "stage" in text

    def test_virtual_clock_unchanged_default(self):
        roots = _sample_trace()
        assert render_flamegraph(roots) == render_flamegraph(
            roots, clock="virtual"
        )

    def test_unknown_clock_rejected(self):
        with pytest.raises(ValueError):
            render_flamegraph(_sample_trace(), clock="lunar")


class TestWallHistograms:
    def test_bucket_boundaries_strictly_increasing(self):
        assert all(
            b2 > b1
            for b1, b2 in zip(WALL_TIME_BUCKETS_S, WALL_TIME_BUCKETS_S[1:])
        )
        assert all(math.isfinite(b) for b in WALL_TIME_BUCKETS_S)

    def test_read_path_populates_wall_histograms(self):
        heaven = _observed_read()
        registry = heaven.obs.metrics
        read_hist = registry.get("repro_read_wall_seconds")
        assemble_hist = registry.get("repro_assemble_wall_seconds")
        stage_hist = registry.get("repro_stage_wall_seconds")
        assert read_hist.count >= 1
        assert assemble_hist.count >= 1
        assert stage_hist.count >= 1
        # wall latencies are real perf_counter deltas: tiny but positive
        assert read_hist.sum > 0.0

    def test_prometheus_text_exposes_bucket_series(self):
        heaven = _observed_read()
        text = prometheus_text(heaven.obs.metrics)
        assert 'repro_read_wall_seconds_bucket{le="+Inf"}' in text
        assert "repro_read_wall_seconds_sum" in text
        assert "repro_read_wall_seconds_count" in text


class TestDivergenceGauge:
    def test_collect_populates_per_kind_ratio(self):
        heaven = _observed_read()
        snapshot = heaven.obs.metrics.snapshot()
        series = snapshot.get("repro_span_host_us_per_virtual_second", {})
        # at least the read path's kinds are present with positive ratios
        assert any("heaven.read" in labels for labels in series)
        assert all(value > 0 for value in series.values())

    def test_registry_size_gauge_reports_instrument_count(self):
        heaven = _observed_read()
        snapshot = heaven.obs.metrics.snapshot()
        size = snapshot["repro_metrics_registered"][""]
        assert size == len(heaven.obs.metrics)
