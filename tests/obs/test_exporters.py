"""Tests for trace/metrics exporters: JSONL, Prometheus text, ASCII art."""

import json

import pytest

from repro.obs import (
    KIND_PHASES,
    MetricsRegistry,
    Tracer,
    leaf_totals,
    phase_of,
    prometheus_text,
    render_flamegraph,
    render_leaf_table,
    render_span_tree,
    spans_to_jsonl,
)
from repro.tertiary import SimClock


def _sample_trace():
    clock = SimClock()
    tracer = Tracer(clock=clock, enabled=True)
    with tracer.span("read", object="temp"):
        with tracer.span("stage"):
            clock.charge(6.0, "exchange", "robot")
            clock.charge(1.0, "seek", "drive0")
            clock.charge(2.0, "read", "drive0", nbytes=1024)
        with tracer.span("assemble"):
            clock.charge(0.5, "disk-read", "cache", nbytes=512)
    return clock, tracer


class TestPhases:
    def test_every_known_kind_has_a_phase(self):
        assert phase_of("exchange") == "mount"
        assert phase_of("load") == "mount"
        assert phase_of("seek") == "seek"
        assert phase_of("read") == "transfer"
        assert phase_of("pipeline-stall") == "stall"
        assert phase_of("antigravity") == "other"

    def test_phase_table_is_total_over_simulated_kinds(self):
        simulated = {
            "exchange", "load", "seek", "rewind", "settle", "read", "write",
            "disk-read", "disk-write", "pipeline-stall",
        }
        assert simulated == set(KIND_PHASES)


class TestJsonl:
    def test_one_record_per_span_depth_first(self):
        _clock, tracer = _sample_trace()
        lines = spans_to_jsonl(tracer.roots).splitlines()
        names = [json.loads(line)["name"] for line in lines]
        assert names == ["read", "stage", "assemble"]

    def test_without_wall_is_deterministic_across_runs(self):
        _c1, first = _sample_trace()
        _c2, second = _sample_trace()
        assert spans_to_jsonl(first.roots, include_wall=False) == spans_to_jsonl(
            second.roots, include_wall=False
        )

    def test_wall_field_toggle(self):
        _clock, tracer = _sample_trace()
        with_wall = json.loads(spans_to_jsonl(tracer.roots).splitlines()[0])
        without = json.loads(
            spans_to_jsonl(tracer.roots, include_wall=False).splitlines()[0]
        )
        assert "wall_elapsed_ms" in with_wall
        assert "wall_elapsed_ms" not in without


class TestPrometheus:
    def test_exposition_format(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total", "cache hits")
        counter.inc(3, tier="disk")
        registry.gauge("repro_level", "water level").set(1.5)
        text = prometheus_text(registry)
        assert "# HELP repro_hits_total cache hits\n" in text
        assert "# TYPE repro_hits_total counter\n" in text
        assert 'repro_hits_total{tier="disk"} 3\n' in text
        assert "# TYPE repro_level gauge\n" in text
        assert "repro_level 1.5\n" in text

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""

    def test_output_is_stable(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total").inc()
        registry.counter("repro_a_total").inc()
        assert prometheus_text(registry) == prometheus_text(registry)


class TestAscii:
    def test_span_tree_shows_hierarchy_and_phases(self):
        _clock, tracer = _sample_trace()
        text = render_span_tree(tracer.roots, include_wall=False)
        lines = text.splitlines()
        assert lines[0].startswith("read")
        assert lines[1].startswith("  stage")
        assert "mount=6.000s" in lines[1]
        assert "transfer=2.000s" in lines[1]
        assert "(object=temp)" in lines[0]

    def test_flamegraph_scales_bars_to_widest_root(self):
        _clock, tracer = _sample_trace()
        art = render_flamegraph(tracer.roots, width=10)
        lines = art.splitlines()
        assert len(lines) == 3
        root_bar = lines[0].count("#")
        stage_bar = lines[1].count("#")
        assert root_bar == 10  # widest span fills the width
        assert 0 < stage_bar < root_bar

    def test_flamegraph_empty(self):
        assert "no spans" in render_flamegraph([])

    def test_leaf_totals_sum_to_clock(self):
        clock, tracer = _sample_trace()
        totals = leaf_totals(tracer.roots)
        assert sum(t.seconds for t in totals.values()) == pytest.approx(clock.now)
        assert totals["read"].bytes == 1024

    def test_leaf_table_lists_kinds(self):
        _clock, tracer = _sample_trace()
        table = render_leaf_table(tracer.roots)
        assert "exchange (mount)" in table
        assert "disk-read (disk)" in table
        assert render_leaf_table([]) == "(no simulator events recorded)"
