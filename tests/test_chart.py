"""Tests for the ASCII chart helpers."""

import pytest

from repro.bench import bar_chart, series_chart, sparkline


class TestBarChart:
    def test_longest_bar_for_peak(self):
        chart = bar_chart("T", ["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[2].count("#") == 10
        assert lines[3].count("#") == 5

    def test_zero_value_no_bar(self):
        chart = bar_chart("T", ["a", "b"], [0.0, 1.0], width=10)
        assert chart.splitlines()[2].count("#") == 0

    def test_labels_aligned(self):
        chart = bar_chart("T", ["x", "longer"], [1, 2])
        lines = chart.splitlines()
        assert lines[2].index("|") == lines[3].index("|")

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bar_chart("T", ["a"], [1, 2])

    def test_empty(self):
        assert bar_chart("T", [], []) == "T"


class TestSeriesChart:
    def test_grouped_rows(self):
        chart = series_chart(
            "T",
            [("fifo", [4.0, 8.0]), ("sched", [2.0, 3.0])],
            labels=[8, 16],
            width=8,
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        assert len(lines) == 4
        assert "fifo" in lines[0] and "sched" in lines[1]

    def test_scaling_shared_across_series(self):
        chart = series_chart(
            "T", [("a", [10.0]), ("b", [5.0])], labels=["x"], width=10
        )
        lines = [l for l in chart.splitlines() if "|" in l]
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5


class TestSparkline:
    def test_monotone_levels(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert len(line) == 8
        assert line[0] == " " and line[-1] == "#"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "==="

    def test_u_shape_visible(self):
        line = sparkline([9, 3, 1, 3, 9])
        assert line[0] == line[-1]
        assert line[2] == " "

    def test_empty(self):
        assert sparkline([]) == ""
