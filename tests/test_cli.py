"""Tests for the command-line interface."""

import pytest

from repro.cli import _SCENARIOS, build_parser, main

ALL_SCENARIOS = sorted(_SCENARIOS)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_export_defaults(self):
        args = build_parser().parse_args(["export"])
        assert args.object_mb == 256
        assert args.profile == "DLT-7000"

    def test_retrieval_options(self):
        args = build_parser().parse_args(
            ["retrieval", "--selectivity", "0.02", "--policy", "gds"]
        )
        assert args.selectivity == 0.02
        assert args.policy == "gds"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["retrieval", "--policy", "psychic"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "--profile", "VHS"])

    def test_trace_defaults_to_demo(self):
        args = build_parser().parse_args(["trace"])
        assert args.scenario == "demo"
        assert args.jsonl is False

    def test_trace_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "teleport"])

    def test_stats_scenario(self):
        args = build_parser().parse_args(["stats", "retrieval"])
        assert args.scenario == "retrieval"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "retrieval"
        assert args.seed == 0
        assert args.mount_fail_rate == 0.2
        assert args.media_error_rate == 0.05
        assert args.robot_jam_rate == 0.05
        assert args.drive_stall_rate == 0.1
        assert args.drives == 2

    def test_chaos_options(self):
        args = build_parser().parse_args(
            ["chaos", "retrieval", "--seed", "42", "--drives", "1",
             "--mount-fail-rate", "0.9"]
        )
        assert args.seed == 42
        assert args.drives == 1
        assert args.mount_fail_rate == 0.9

    def test_chaos_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "mainframe"])

    def test_thrash_scenario_registered(self):
        for command in ("trace", "stats", "chaos"):
            args = build_parser().parse_args([command, "thrash"])
            assert args.scenario == "thrash"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.nodes == 4
        assert args.requests == 8
        assert args.tenants == 2
        assert args.selectivity == 0.05
        assert args.seed == 0

    def test_service_scenario_registered(self):
        for command in ("trace", "stats", "chaos"):
            args = build_parser().parse_args([command, "service"])
            assert args.scenario == "service"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "DLT-7000" in out
        assert "eviction policies" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "archived" in out
        assert "RasQL" in out

    def test_export(self, capsys):
        assert main(["export", "--object-mb", "16", "--super-tile-mb", "4",
                     "--tile-kb", "256"]) == 0
        out = capsys.readouterr().out
        assert "coupled" in out and "tct" in out

    def test_retrieval(self, capsys):
        assert main([
            "retrieval", "--object-mb", "16", "--queries", "2",
            "--super-tile-mb", "4", "--selectivity", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "disk cache:" in out

    def test_retrieval_native_media(self, capsys):
        assert main([
            "retrieval", "--object-mb", "8", "--queries", "1",
            "--super-tile-mb", "4", "--media-gb", "0",
        ]) == 0

    def test_trace_prints_span_tree_and_accounts_all_time(self, capsys):
        assert main(["trace", "demo"]) == 0
        out = capsys.readouterr().out
        assert "scenario.demo" in out
        assert "heaven.read" in out
        assert "library.stage" in out
        assert "virtual time by leaf event kind" in out
        assert "100.00 % attributed" in out

    def test_trace_jsonl(self, capsys):
        import json

        assert main(["trace", "retrieval", "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "scenario.retrieval"
        assert all("virtual_elapsed_s" in r for r in records)

    def test_stats_prints_prometheus_text(self, capsys):
        assert main(["stats", "demo"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_tape_exchanges_total counter" in out
        assert "# TYPE repro_virtual_seconds gauge" in out
        assert "repro_objects_archived 1" in out

    def test_chaos_run_reports_fault_summary(self, capsys):
        assert main(["chaos", "retrieval", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "retries" in out
        assert "virtual time" in out

    def test_chaos_exhaustion_exits_nonzero(self, capsys):
        rc = main(["chaos", "retrieval", "--seed", "1",
                   "--mount-fail-rate", "0.9", "--drives", "1"])
        assert rc == 1
        assert "aborted" in capsys.readouterr().out

    def test_parallel_command_smoke(self, capsys):
        assert main(["parallel", "--drives", "2"]) == 0
        out = capsys.readouterr().out
        assert "Parallel staging" in out
        assert "speedup" in out

    def test_trace_wall_adds_divergence_and_wall_flamegraph(self, capsys):
        assert main(["trace", "demo", "--wall"]) == 0
        out = capsys.readouterr().out
        assert "Host time vs virtual time by span kind" in out
        assert "ms" in out

    def test_trace_jsonl_wall_fields(self, capsys):
        import json

        assert main(["trace", "demo", "--jsonl", "--wall"]) == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert all("wall_elapsed_ms" in r for r in records)

    def test_trace_jsonl_omits_wall_by_default(self, capsys):
        import json

        assert main(["trace", "demo", "--jsonl"]) == 0
        records = [
            json.loads(line)
            for line in capsys.readouterr().out.strip().splitlines()
        ]
        assert all("wall_elapsed_ms" not in r for r in records)

    def test_stats_trailer_reports_log_and_registry_state(self, capsys):
        assert main(["stats", "demo"]) == 0
        out = capsys.readouterr().out
        assert "# eventlog:" in out
        assert "events retained" in out
        assert "# metrics registry:" in out
        # divergence gauge rides along in the regular exposition
        assert "repro_span_host_us_per_virtual_second" in out

    def test_profile_command_deterministic(self, capsys):
        assert main(["profile", "retrieval", "--mode", "deterministic"]) == 0
        out = capsys.readouterr().out
        assert "profiler mode: ticks" in out
        assert "by pipeline phase" in out
        assert "functions by self" in out
        assert "Host time vs virtual time by span kind" in out

    def test_bench_command_writes_results(self, tmp_path, capsys):
        assert main([
            "bench", "tile_decode", "parallel_dispatch",
            "--scale", "smoke", "--repetitions", "2", "--warmup", "0",
            "--out-dir", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "Wall-clock benchmarks" in out
        assert "calibration workload" in out
        assert (tmp_path / "BENCH_tile_decode.json").is_file()
        assert (tmp_path / "BENCH_parallel_dispatch.json").is_file()

    def test_bench_unknown_name_exits_2(self, tmp_path, capsys):
        assert main(["bench", "warpdrive", "--out-dir", str(tmp_path)]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_serve_smoke(self, capsys):
        assert main(["serve", "--nodes", "2", "--requests", "4"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        assert "rejected 429-style" in out


class TestScenarioMatrix:
    """Every registered scenario must run under every scenario-taking
    command: exit code 0 and non-empty output, so a new scenario (or a
    regression in an old one) cannot silently break the CLI surface."""

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_trace(self, scenario, capsys):
        assert main(["trace", scenario]) == 0
        out = capsys.readouterr().out
        assert out.strip()
        assert f"scenario.{scenario}" in out

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_trace_jsonl(self, scenario, capsys):
        assert main(["trace", scenario, "--jsonl"]) == 0
        assert capsys.readouterr().out.strip()

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_stats(self, scenario, capsys):
        assert main(["stats", scenario]) == 0
        out = capsys.readouterr().out
        assert "repro_virtual_seconds" in out

    @pytest.mark.parametrize("scenario", ALL_SCENARIOS)
    def test_chaos(self, scenario, capsys):
        # Mild fault rates: every scenario must survive via retry/failover.
        assert main([
            "chaos", scenario, "--seed", "2",
            "--mount-fail-rate", "0.05", "--media-error-rate", "0.01",
            "--robot-jam-rate", "0.01", "--drive-stall-rate", "0.05",
        ]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out or "retries" in out


class TestSimtestCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["simtest"])
        assert args.seed == 0
        assert args.ops == 60
        assert args.mutate is None
        assert args.check_determinism is False
        assert args.expect_fail is False
        assert args.out == ".simtest-failures"

    def test_unknown_mutation_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simtest", "--mutate", "bit-rot"])

    def test_clean_seed_exits_zero(self, capsys):
        assert main(["simtest", "--seed", "3", "--ops", "25"]) == 0
        out = capsys.readouterr().out
        assert "event digest:" in out
        assert "0 violation(s)" in out

    def test_check_determinism(self, capsys):
        assert main(["simtest", "--seed", "4", "--ops", "25",
                     "--check-determinism"]) == 0
        assert "digests identical" in capsys.readouterr().out

    def test_mutation_smoke_expect_fail(self, capsys, tmp_path):
        assert main(["simtest", "--seed", "1", "--ops", "60",
                     "--mutate", "pin-leak", "--expect-fail",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "shrunk" in out
        assert "mutation smoke ok" in out
        assert (tmp_path / "repro_seed1.py").exists()
        assert (tmp_path / "failure_seed1.txt").exists()

    def test_expect_fail_on_clean_run_exits_nonzero(self, capsys):
        assert main(["simtest", "--seed", "3", "--ops", "25",
                     "--expect-fail"]) == 1

    def test_replay_round_trip(self, capsys, tmp_path):
        from repro.simtest import generate_program

        program = generate_program(5, 20)
        path = tmp_path / "program.json"
        path.write_text(program.to_json())
        assert main(["simtest", "--replay", str(path)]) == 0
        out = capsys.readouterr().out
        assert "seed=5" in out
