"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_export_defaults(self):
        args = build_parser().parse_args(["export"])
        assert args.object_mb == 256
        assert args.profile == "DLT-7000"

    def test_retrieval_options(self):
        args = build_parser().parse_args(
            ["retrieval", "--selectivity", "0.02", "--policy", "gds"]
        )
        assert args.selectivity == 0.02
        assert args.policy == "gds"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["retrieval", "--policy", "psychic"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "--profile", "VHS"])

    def test_trace_defaults_to_demo(self):
        args = build_parser().parse_args(["trace"])
        assert args.scenario == "demo"
        assert args.jsonl is False

    def test_trace_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "teleport"])

    def test_stats_scenario(self):
        args = build_parser().parse_args(["stats", "retrieval"])
        assert args.scenario == "retrieval"

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "retrieval"
        assert args.seed == 0
        assert args.mount_fail_rate == 0.2
        assert args.media_error_rate == 0.05
        assert args.robot_jam_rate == 0.05
        assert args.drive_stall_rate == 0.1
        assert args.drives == 2

    def test_chaos_options(self):
        args = build_parser().parse_args(
            ["chaos", "retrieval", "--seed", "42", "--drives", "1",
             "--mount-fail-rate", "0.9"]
        )
        assert args.seed == 42
        assert args.drives == 1
        assert args.mount_fail_rate == 0.9

    def test_chaos_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "mainframe"])

    def test_thrash_scenario_registered(self):
        for command in ("trace", "stats", "chaos"):
            args = build_parser().parse_args([command, "thrash"])
            assert args.scenario == "thrash"


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "DLT-7000" in out
        assert "eviction policies" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "archived" in out
        assert "RasQL" in out

    def test_export(self, capsys):
        assert main(["export", "--object-mb", "16", "--super-tile-mb", "4",
                     "--tile-kb", "256"]) == 0
        out = capsys.readouterr().out
        assert "coupled" in out and "tct" in out

    def test_retrieval(self, capsys):
        assert main([
            "retrieval", "--object-mb", "16", "--queries", "2",
            "--super-tile-mb", "4", "--selectivity", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "disk cache:" in out

    def test_retrieval_native_media(self, capsys):
        assert main([
            "retrieval", "--object-mb", "8", "--queries", "1",
            "--super-tile-mb", "4", "--media-gb", "0",
        ]) == 0

    def test_trace_prints_span_tree_and_accounts_all_time(self, capsys):
        assert main(["trace", "demo"]) == 0
        out = capsys.readouterr().out
        assert "scenario.demo" in out
        assert "heaven.read" in out
        assert "library.stage" in out
        assert "virtual time by leaf event kind" in out
        assert "100.00 % attributed" in out

    def test_trace_jsonl(self, capsys):
        import json

        assert main(["trace", "retrieval", "--jsonl"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["name"] == "scenario.retrieval"
        assert all("virtual_elapsed_s" in r for r in records)

    def test_stats_prints_prometheus_text(self, capsys):
        assert main(["stats", "demo"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_tape_exchanges_total counter" in out
        assert "# TYPE repro_virtual_seconds gauge" in out
        assert "repro_objects_archived 1" in out

    def test_chaos_run_reports_fault_summary(self, capsys):
        assert main(["chaos", "retrieval", "--seed", "42"]) == 0
        out = capsys.readouterr().out
        assert "faults injected" in out
        assert "retries" in out
        assert "virtual time" in out

    def test_chaos_exhaustion_exits_nonzero(self, capsys):
        rc = main(["chaos", "retrieval", "--seed", "1",
                   "--mount-fail-rate", "0.9", "--drives", "1"])
        assert rc == 1
        assert "aborted" in capsys.readouterr().out
