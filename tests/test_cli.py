"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_export_defaults(self):
        args = build_parser().parse_args(["export"])
        assert args.object_mb == 256
        assert args.profile == "DLT-7000"

    def test_retrieval_options(self):
        args = build_parser().parse_args(
            ["retrieval", "--selectivity", "0.02", "--policy", "gds"]
        )
        assert args.selectivity == 0.02
        assert args.policy == "gds"

    def test_unknown_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["retrieval", "--policy", "psychic"])

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["export", "--profile", "VHS"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "DLT-7000" in out
        assert "eviction policies" in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "archived" in out
        assert "RasQL" in out

    def test_export(self, capsys):
        assert main(["export", "--object-mb", "16", "--super-tile-mb", "4",
                     "--tile-kb", "256"]) == 0
        out = capsys.readouterr().out
        assert "coupled" in out and "tct" in out

    def test_retrieval(self, capsys):
        assert main([
            "retrieval", "--object-mb", "16", "--queries", "2",
            "--super-tile-mb", "4", "--selectivity", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "disk cache:" in out

    def test_retrieval_native_media(self, capsys):
        assert main([
            "retrieval", "--object-mb", "8", "--queries", "1",
            "--super-tile-mb", "4", "--media-gb", "0",
        ]) == 0
