"""End-to-end integration scenarios across every layer.

These tests replay the paper's motivating workflows: a climate archive
answering subset queries across the hierarchy, cross-object time series,
the HSM baseline vs HEAVEN comparison, and failure injection (aborted
transactions, cache pressure) during archive operation.
"""

import numpy as np
import pytest

from repro.arrays import DOUBLE, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig, MultiBoxFrame
from repro.errors import ReproError
from repro.tertiary import DLT_7000, HSMSystem, MB, TapeLibrary, scaled_profile
from repro.workloads import (
    ClimateGrid,
    climate_object,
    monthly_series,
    slice_region,
    subcube,
)


def small_heaven(**overrides):
    defaults = dict(
        super_tile_bytes=512 * 1024,
        disk_cache_bytes=32 * MB,
        memory_cache_bytes=8 * MB,
    )
    defaults.update(overrides)
    return Heaven(HeavenConfig(**defaults))


class TestClimateArchiveScenario:
    """The DKRZ story: archive model output, answer subset queries."""

    GRID = ClimateGrid(longitudes=120, latitudes=60, heights=8, time_steps=12)

    def test_full_workflow(self):
        heaven = small_heaven()
        heaven.create_collection("climate")
        obj = climate_object("run1", self.GRID, seed=2)
        truth = obj.source.region(obj.domain, obj.cell_type)

        heaven.insert("climate", obj)
        report = heaven.archive("climate", "run1")
        assert report.bytes_written == obj.size_bytes

        # Abb. 1.1 left: subcube.
        cube = MInterval.of((10, 40), (20, 50), (2, 5), (0, 3))
        assert np.array_equal(
            heaven.read("climate", "run1", cube), truth[10:41, 20:51, 2:6, 0:4]
        )

        # Abb. 1.1 middle: full cross-section at one latitude.
        cross = slice_region(obj.domain, axis=1, position=30)
        got = heaven.read("climate", "run1", cross)
        assert got.shape == (120, 1, 8, 12)

        # Aggregation via the query language, answered from the hierarchy.
        results = heaven.query(
            "select avg_cells(c[0:119, 0:59, 0:7, 0:0]) from climate as c"
        )
        assert results[0].scalar() == pytest.approx(
            truth[:, :, :, 0:1].mean(), rel=1e-9
        )

    def test_cross_object_time_series(self):
        """Abb. 1.1 right: a thin slice over every monthly object."""
        heaven = small_heaven()
        heaven.create_collection("months")
        grid = ClimateGrid(60, 30, 4)
        series = monthly_series("m", 4, grid, seed=9)
        for obj in series:
            heaven.insert("months", obj)
            heaven.archive("months", obj.name)
        region = slice_region(grid.domain(), axis=2, position=2)
        means = []
        for obj in series:
            means.append(heaven.read("months", obj.name, region).mean())
        expect = [
            obj.source.region(region, obj.cell_type).mean() for obj in series
        ]
        assert means == pytest.approx(expect)

    def test_many_queries_stay_correct_under_cache_pressure(self):
        heaven = small_heaven(
            super_tile_bytes=256 * 1024,
            disk_cache_bytes=1 * MB,
            memory_cache_bytes=512 * 1024,
        )
        heaven.create_collection("climate")
        obj = climate_object(
            "run1",
            ClimateGrid(120, 60, 8, 12),  # ~5.3 MB
            seed=4,
            tiling=RegularTiling((30, 30, 4, 6)),
        )
        heaven.insert("climate", obj)
        heaven.archive("climate", "run1")
        rng = np.random.default_rng(11)
        for _ in range(12):
            region = subcube(obj.domain, 0.03, rng)
            expect = obj.source.region(region, obj.cell_type)
            assert np.array_equal(heaven.read("climate", "run1", region), expect)
        assert heaven.disk_cache.stats.evictions > 0  # pressure was real


class TestHSMComparisonScenario:
    """File-granular HSM vs tile-granular HEAVEN on the same request."""

    def test_heaven_moves_fraction_of_hsm_bytes(self):
        profile = scaled_profile(DLT_7000, 512 * MB)
        object_bytes = 16 * MB

        hsm = HSMSystem(TapeLibrary(profile))
        hsm.archive_file("obj", object_bytes)
        hsm.read_file("obj", 0, object_bytes // 100)  # 1 % request
        hsm_bytes = hsm.stats.bytes_staged_from_tape

        heaven = small_heaven(tape_profile=profile, super_tile_bytes=1 * MB)
        heaven.create_collection("c")
        mdd = climate_object(
            "obj", ClimateGrid(128, 128, 8, 16), seed=1,
            tiling=RegularTiling((32, 32, 8, 4)),
        )
        assert mdd.size_bytes == object_bytes
        heaven.insert("c", mdd)
        heaven.archive("c", "obj")
        region = subcube(mdd.domain, 0.01, np.random.default_rng(0))
        _cells, report = heaven.read_with_report("c", "obj", region)

        assert hsm_bytes == object_bytes
        assert report.bytes_from_tape < hsm_bytes / 4


class TestFramingScenario:
    def test_framed_read_over_tape(self):
        heaven = small_heaven()
        heaven.create_collection("c")
        obj = climate_object("o", ClimateGrid(60, 60, 4), seed=3)
        heaven.insert("c", obj)
        heaven.archive("c", "o")
        frame = MultiBoxFrame(
            [
                MInterval.of((0, 9), (0, 59), (0, 3)),
                MInterval.of((50, 59), (0, 59), (0, 3)),
            ]
        )
        framed, mask = heaven.read_frame("c", "o", frame, fill=np.nan)
        direct = obj.source.region(framed.domain, obj.cell_type)
        assert np.array_equal(framed.cells[mask], direct[mask])
        assert np.isnan(framed.cells[~mask]).all()


class TestRobustness:
    def test_aborted_insert_leaves_no_trace(self):
        """A crash mid-insert rolls back catalog rows and tile BLOBs."""
        heaven = small_heaven()
        heaven.create_collection("c")
        db = heaven.db
        obj = climate_object(
            "o", ClimateGrid(20, 20, 4), seed=0, tiling=RegularTiling((10, 10, 2))
        )
        original_put = db.put_blob
        calls = {"n": 0}

        def failing_put(payload=None, size=None):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("simulated disk failure mid-export")
            return original_put(payload, size)

        db.put_blob = failing_put
        with pytest.raises(RuntimeError):
            heaven.storage.insert_object("c", obj)
        db.put_blob = original_put
        assert len(db.blobs) == 0
        assert db.select("ras_mddobjects") == []
        assert db.select("ras_tiles") == []
        assert not db.in_transaction

    def test_everything_raises_repro_errors(self):
        heaven = small_heaven()
        with pytest.raises(ReproError):
            heaven.collection("ghost")
        with pytest.raises(ReproError):
            heaven.archived("ghost")
        with pytest.raises(ReproError):
            heaven.query("select broken from")

    def test_two_objects_share_the_library(self):
        heaven = small_heaven()
        heaven.create_collection("c")
        a = climate_object("a", ClimateGrid(40, 40, 4), seed=1)
        b = climate_object("b", ClimateGrid(40, 40, 4), seed=2)
        heaven.insert("c", a)
        heaven.insert("c", b)
        heaven.archive("c", "a")
        heaven.archive("c", "b")
        region = MInterval.of((0, 39), (0, 19), (0, 1))
        got_a = heaven.read("c", "a", region)
        got_b = heaven.read("c", "b", region)
        assert not np.array_equal(got_a, got_b)
        assert np.array_equal(got_a, a.source.region(region, a.cell_type))
        assert np.array_equal(got_b, b.source.region(region, b.cell_type))
