"""Unit tests of the seeded fault-injection plan itself."""

from __future__ import annotations

import pytest

from repro.errors import (
    DriveFaultError,
    FaultError,
    HSMFaultError,
    MediaFaultError,
    RobotFaultError,
)
from repro.faults import FAULT_SITES, NO_FAULTS, FaultPlan, FaultSpec, RetryPolicy
from repro.tertiary import DLT_7000, Medium, SimClock


def drain(plan: FaultPlan, hook, *args, hits: int = 200):
    """Call *hook* repeatedly, recording which invocations fault."""
    fired = []
    for index in range(hits):
        try:
            hook(*args)
        except FaultError as fault:
            fired.append((index, type(fault).__name__))
    return fired


class TestDeterminism:
    def test_same_seed_same_fault_sequence(self):
        spec = FaultSpec(mount_failure_rate=0.3)
        a = FaultPlan(seed=11, spec=spec)
        b = FaultPlan(seed=11, spec=spec)
        seq_a = drain(a, a.on_drive_load, "drive-0", "tape-0")
        seq_b = drain(b, b.on_drive_load, "drive-0", "tape-0")
        assert seq_a == seq_b
        assert seq_a  # the rate is high enough that something fired

    def test_different_seeds_diverge(self):
        spec = FaultSpec(mount_failure_rate=0.3)
        a = FaultPlan(seed=1, spec=spec)
        b = FaultPlan(seed=2, spec=spec)
        assert drain(a, a.on_drive_load, "d", "m") != drain(
            b, b.on_drive_load, "d", "m"
        )

    def test_reset_rewinds_the_stream(self):
        plan = FaultPlan(seed=5, spec=FaultSpec(robot_jam_rate=0.25))
        first = drain(plan, plan.on_exchange, "robot-0", "tape-0")
        plan.reset()
        assert drain(plan, plan.on_exchange, "robot-0", "tape-0") == first
        assert plan.stats.count("robot") == len(first)

    def test_zero_rates_draw_nothing(self):
        """Rate 0 must not consume RNG state — the byte-identity guarantee."""
        plan = FaultPlan(seed=3)
        state_before = plan._rng.getstate()
        drain(plan, plan.on_drive_load, "d", "m", hits=50)
        drain(plan, plan.on_exchange, "r", "m", hits=50)
        plan.on_transfer("d", 4096)
        plan.on_hsm_stage("f")
        assert plan._rng.getstate() == state_before
        assert plan.stats.total == 0


class TestScheduledFaults:
    def test_fail_next_fires_once(self):
        plan = FaultPlan()
        plan.fail_next("mount")
        with pytest.raises(DriveFaultError):
            plan.on_drive_load("drive-0", "tape-0")
        plan.on_drive_load("drive-0", "tape-0")  # second call clean
        assert plan.stats.count("mount") == 1

    def test_fail_next_device_filter(self):
        plan = FaultPlan()
        plan.fail_next("mount", device="drive-1")
        plan.on_drive_load("drive-0", "tape-0")  # other drive: no fault
        with pytest.raises(DriveFaultError):
            plan.on_drive_load("drive-1", "tape-0")

    def test_fail_next_count(self):
        plan = FaultPlan()
        plan.fail_next("robot", count=2)
        assert plan.scheduled("robot") == 2
        for _ in range(2):
            with pytest.raises(RobotFaultError):
                plan.on_exchange("robot-0", "tape-0")
        plan.on_exchange("robot-0", "tape-0")

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().fail_next("warp-core")
        with pytest.raises(ValueError):
            FaultPlan().fail_next("mount", count=0)

    def test_hsm_site(self):
        plan = FaultPlan()
        plan.fail_next("hsm")
        with pytest.raises(HSMFaultError):
            plan.on_hsm_stage("file-a")


class TestOffline:
    def test_offline_blocks_every_exchange(self):
        plan = FaultPlan()
        plan.set_offline(True)
        for _ in range(3):
            with pytest.raises(RobotFaultError):
                plan.on_exchange("robot-0", "tape-0")
        plan.set_offline(False)
        plan.on_exchange("robot-0", "tape-0")


class TestPenalties:
    def test_fault_penalty_charged_as_fault_event(self):
        clock = SimClock()
        plan = FaultPlan(spec=FaultSpec(mount_failure_penalty_s=12.5))
        plan.bind(clock)
        plan.fail_next("mount")
        with pytest.raises(DriveFaultError):
            plan.on_drive_load("drive-0", "tape-0")
        assert clock.now == pytest.approx(12.5)
        events = [e for e in clock.log.events() if e.kind == "fault"]
        assert len(events) == 1
        assert events[0].device == "drive-0"
        assert plan.stats.penalty_seconds == pytest.approx(12.5)

    def test_stall_charges_but_does_not_raise(self):
        clock = SimClock()
        plan = FaultPlan(seed=0, spec=FaultSpec(drive_stall_rate=1.0,
                                                drive_stall_max_s=8.0))
        plan.bind(clock)
        plan.on_transfer("drive-0", 1 << 20)
        assert 0.0 <= clock.now <= 8.0
        assert plan.stats.count("stall") == 1

    def test_unbound_plan_counts_but_cannot_charge(self):
        plan = FaultPlan()
        plan.fail_next("mount")
        with pytest.raises(DriveFaultError):
            plan.on_drive_load("d", "m")
        assert plan.stats.total == 1


class TestBadSpots:
    def medium(self) -> Medium:
        medium = Medium("tape-9", DLT_7000)
        return medium

    def test_transient_bad_spot_heals_after_one_hit(self):
        medium = self.medium()
        medium.add_bad_spot(100, 50)
        plan = FaultPlan()
        with pytest.raises(MediaFaultError):
            plan.on_media_read(medium, 80, 100, "drive-0")
        plan.on_media_read(medium, 80, 100, "drive-0")  # healed
        assert medium.bad_spots == []

    def test_permanent_bad_spot_keeps_failing(self):
        medium = self.medium()
        medium.add_bad_spot(0, 10, transient=False)
        plan = FaultPlan()
        for _ in range(3):
            with pytest.raises(MediaFaultError):
                plan.on_media_read(medium, 0, 4, "drive-0")
        assert len(medium.bad_spots) == 1

    def test_non_overlapping_read_unaffected(self):
        medium = self.medium()
        medium.add_bad_spot(1000, 10)
        FaultPlan().on_media_read(medium, 0, 1000, "drive-0")
        FaultPlan().on_media_read(medium, 1010, 100, "drive-0")

    def test_bad_spot_must_fit_the_medium(self):
        with pytest.raises(ValueError):
            self.medium().add_bad_spot(-1, 10)
        with pytest.raises(ValueError):
            self.medium().add_bad_spot(0, 0)


class TestSpecValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            FaultSpec(mount_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultSpec(media_error_rate=-0.1)

    def test_penalties_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            FaultSpec(robot_jam_penalty_s=-1.0)

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_retry_policy_delay_growth_and_cap(self):
        policy = RetryPolicy(backoff_base_s=2.0, backoff_factor=2.0,
                             backoff_max_s=5.0)
        assert policy.delay(1) == 2.0
        assert policy.delay(2) == 4.0
        assert policy.delay(3) == 5.0  # capped


class TestNullPlan:
    def test_null_plan_is_inert(self):
        NO_FAULTS.on_drive_load("d", "m")
        NO_FAULTS.on_exchange("r", "m")
        NO_FAULTS.on_transfer("d", 100)
        NO_FAULTS.on_hsm_stage("f")
        assert NO_FAULTS.offline is False
        assert NO_FAULTS.stats.total == 0
        assert NO_FAULTS.scheduled("mount") == 0

    def test_all_sites_enumerated(self):
        assert set(FAULT_SITES) == {"mount", "robot", "media", "stall", "hsm"}
