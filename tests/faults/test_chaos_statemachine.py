"""Stateful chaos testing: random fault plans against HSM and HEAVEN.

Hypothesis drives arbitrary interleavings of reads, fault injections,
offline windows and cache churn, asserting the system-level invariants of
the fault model:

* **no data loss once archived** — whenever a read completes it returns
  exactly the archived bytes, and once all faults clear every archived
  object is fully readable again;
* **reads either succeed or raise a typed StorageError** — never a bare
  exception, never a partial/corrupt result;
* **virtual time is monotone** — faults and backoff only ever advance the
  clock.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro import FaultPlan, FaultSpec, Heaven, HeavenConfig, MInterval
from repro.errors import StorageError
from repro.tertiary import DLT_7000, HSMSystem, SimClock, TapeLibrary
from repro.workloads import ClimateGrid, climate_object

#: only scheduled faults — zero random rates keep runs shrinkable and let
#: teardown verify full recoverability once the schedule is drained
SITES = ("mount", "robot", "media", "hsm")

REGIONS = [
    MInterval.of((0, 14), (0, 7), (0, 1), (0, 1)),
    MInterval.of((15, 29), (8, 14), (2, 3), (2, 2)),
    MInterval.of((5, 24), (3, 11), (1, 2), (0, 2)),
    MInterval.of((0, 29), (0, 14), (0, 3), (0, 2)),
]


class HeavenChaosMachine(RuleBasedStateMachine):
    """Random fault plans against the full HEAVEN read path."""

    def __init__(self) -> None:
        super().__init__()
        self.plan = FaultPlan(seed=0, spec=FaultSpec())
        self.heaven = Heaven(
            HeavenConfig(fault_plan=self.plan, num_drives=2)
        )
        self.heaven.create_collection("c")
        obj = climate_object("t", ClimateGrid(30, 15, 4, 3))
        self.heaven.insert("c", obj)
        # Ground truth read from disk BEFORE archiving.
        self.expected = {
            str(region): obj.read(region).copy() for region in REGIONS
        }
        self.heaven.archive("c", "t")
        self.last_now = self.heaven.clock.now

    @rule(index=st.integers(0, len(REGIONS) - 1))
    def read(self, index):
        region = REGIONS[index]
        try:
            cells = self.heaven.read("c", "t", region)
        except StorageError:
            return  # typed failure is an allowed outcome
        assert np.array_equal(cells, self.expected[str(region)])

    @rule(site=st.sampled_from(SITES), count=st.integers(1, 3))
    def inject(self, site, count):
        self.plan.fail_next(site, count=count)

    @rule()
    def go_offline(self):
        self.plan.set_offline(True)

    @rule()
    def back_online(self):
        self.plan.set_offline(False)

    @rule()
    def unmount(self):
        self.heaven.library.unmount_all()

    @rule(offset=st.integers(0, 1 << 20))
    def scratch_medium(self, offset):
        media = self.heaven.library.media()
        if not media:
            return
        medium = media[offset % len(media)]
        if medium.capacity > offset + 64:
            medium.add_bad_spot(offset, 64, transient=True)

    @rule()
    def drop_caches(self):
        self.heaven.memory_cache.invalidate_object("t")

    @invariant()
    def virtual_time_monotone(self):
        assert self.heaven.clock.now >= self.last_now
        self.last_now = self.heaven.clock.now

    @invariant()
    def drives_consistent(self):
        mounted = [
            d.medium.medium_id
            for d in self.heaven.library.drives
            if d.medium is not None
        ]
        assert len(mounted) == len(set(mounted))

    def teardown(self):
        """No data loss once archived: with all faults cleared every
        region reads back exactly as before archiving."""
        self.plan.reset()
        for medium in self.heaven.library.media():
            for spot in medium.bad_spots:
                medium.clear_bad_spot(spot)
        for region in REGIONS:
            cells = self.heaven.read("c", "t", region)
            assert np.array_equal(cells, self.expected[str(region)])


class HSMChaosMachine(RuleBasedStateMachine):
    """Random fault plans against the file-granular HSM baseline."""

    FILES = ("alpha", "beta", "gamma")

    def __init__(self) -> None:
        super().__init__()
        self.plan = FaultPlan(seed=0, spec=FaultSpec())
        library = TapeLibrary(
            DLT_7000, num_drives=2, clock=SimClock(), faults=self.plan
        )
        self.hsm = HSMSystem(library)
        self.payloads = {}
        self.last_now = self.hsm.clock.now

    @rule(name=st.sampled_from(FILES), size_kb=st.integers(1, 64))
    def archive(self, name, size_kb):
        if name in self.payloads:
            return
        payload = (name.encode() * (size_kb * 1024))[: size_kb * 1024]
        try:
            self.hsm.archive_file(name, len(payload), payload=payload)
        except StorageError:
            return  # e.g. library offline — the archive simply did not happen
        self.payloads[name] = payload

    @precondition(lambda self: self.payloads)
    @rule(name=st.sampled_from(FILES), offset=st.integers(0, 512))
    def read(self, name, offset):
        if name not in self.payloads:
            return
        payload = self.payloads[name]
        offset = min(offset, len(payload) - 1)
        try:
            data = self.hsm.read_file(name, offset, 1)
        except StorageError:
            return
        assert data == payload[offset : offset + 1]

    @precondition(lambda self: self.payloads)
    @rule(name=st.sampled_from(FILES))
    def purge(self, name):
        self.hsm.purge(name)

    @rule(site=st.sampled_from(SITES), count=st.integers(1, 3))
    def inject(self, site, count):
        self.plan.fail_next(site, count=count)

    @rule()
    def toggle_offline(self):
        self.plan.set_offline(not self.plan.offline)

    @invariant()
    def virtual_time_monotone(self):
        assert self.hsm.clock.now >= self.last_now
        self.last_now = self.hsm.clock.now

    @invariant()
    def catalog_never_loses_files(self):
        assert set(self.payloads) <= set(self.hsm.files())

    def teardown(self):
        """Every archived file survives the chaos byte-for-byte."""
        self.plan.reset()
        for name, payload in self.payloads.items():
            self.hsm.purge(name)
            assert self.hsm.read_file(name) == payload


TestHeavenChaos = HeavenChaosMachine.TestCase
TestHeavenChaos.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)

TestHSMChaos = HSMChaosMachine.TestCase
TestHSMChaos.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
