"""Deterministic replay: same seed + plan ⇒ byte-identical runs.

The whole simulator is virtual-time deterministic; the fault layer must
preserve that.  One seeded plan replayed over the same workload yields the
identical fault sequence, event log and retrieval reports.  Different seeds
are *expected* to diverge — that divergence is asserted too, documenting
that the seed is the only source of randomness.
"""

from __future__ import annotations

import dataclasses

from repro import FaultPlan, FaultSpec, Heaven, HeavenConfig, MInterval
from repro.errors import StorageError
from repro.workloads import ClimateGrid, climate_object

SPEC = FaultSpec(
    mount_failure_rate=0.25,
    robot_jam_rate=0.1,
    media_error_rate=0.05,
    drive_stall_rate=0.2,
)

REGIONS = [
    MInterval.of((0, 29), (0, 14), (0, 1), (0, 2)),
    MInterval.of((30, 59), (15, 29), (2, 3), (3, 5)),
    MInterval.of((60, 89), (30, 44), (4, 5), (0, 2)),
    MInterval.of((0, 89), (0, 44), (0, 7), (0, 5)),
]


def run_workload(seed: int, spec: FaultSpec = SPEC):
    """Archive + mixed reads under a seeded plan; returns run artefacts."""
    plan = FaultPlan(seed=seed, spec=spec)
    heaven = Heaven(HeavenConfig(fault_plan=plan, num_drives=2))
    heaven.create_collection("c")
    heaven.insert("c", climate_object("t", ClimateGrid(90, 45, 8, 6)))
    heaven.archive("c", "t")
    heaven.library.unmount_all()
    reports = []
    outcomes = []
    for region in REGIONS:
        try:
            _cells, report = heaven.read_with_report("c", "t", region)
            reports.append(dataclasses.asdict(report))
            outcomes.append("ok")
        except StorageError as error:
            outcomes.append(type(error).__name__)
    events = [
        (e.kind, e.device, e.detail, e.duration, e.bytes)
        for e in heaven.clock.log.events()
    ]
    return {
        "reports": reports,
        "outcomes": outcomes,
        "events": events,
        "virtual_seconds": heaven.clock.now,
        "injected": dict(plan.stats.injected),
        "penalty": plan.stats.penalty_seconds,
        "recovery": dataclasses.asdict(heaven.library.recovery),
    }


class TestReplay:
    def test_same_seed_is_byte_identical(self):
        first = run_workload(seed=42)
        second = run_workload(seed=42)
        assert first == second

    def test_replay_covers_faults(self):
        """The replayed workload actually exercises the fault machinery."""
        run = run_workload(seed=42)
        assert sum(run["injected"].values()) > 0
        assert any(kind == "fault" for kind, *_rest in run["events"])

    def test_different_seeds_diverge(self):
        """Documented divergence: the seed is the only randomness source,
        so distinct seeds produce distinct fault timelines."""
        runs = [run_workload(seed=s) for s in (1, 2, 3)]
        event_sets = {tuple(r["events"]) for r in runs}
        assert len(event_sets) > 1

    def test_plan_reset_replays_in_place(self):
        """reset() rewinds one plan object for a second identical run."""
        plan = FaultPlan(seed=9, spec=SPEC)

        def run_with(existing_plan):
            heaven = Heaven(
                HeavenConfig(fault_plan=existing_plan, num_drives=2)
            )
            heaven.create_collection("c")
            heaven.insert("c", climate_object("t", ClimateGrid(90, 45, 8, 6)))
            heaven.archive("c", "t")
            heaven.library.unmount_all()
            try:
                heaven.read("c", "t", REGIONS[1])
            except StorageError:
                pass
            return [
                (e.kind, e.device, e.duration)
                for e in heaven.clock.log.events()
            ]

        first = run_with(plan)
        plan.reset()
        second = run_with(plan)
        assert first == second


class TestByteIdentityWithoutFaults:
    def test_zero_rate_plan_equals_no_plan(self):
        """A configured-but-silent plan must not perturb the timeline —
        the hard byte-identity constraint for fault-free runs."""
        silent = run_workload(seed=0, spec=FaultSpec())

        def run_plain():
            heaven = Heaven(HeavenConfig(num_drives=2))
            heaven.create_collection("c")
            heaven.insert("c", climate_object("t", ClimateGrid(90, 45, 8, 6)))
            heaven.archive("c", "t")
            heaven.library.unmount_all()
            reports = []
            outcomes = []
            for region in REGIONS:
                _cells, report = heaven.read_with_report("c", "t", region)
                reports.append(dataclasses.asdict(report))
                outcomes.append("ok")
            events = [
                (e.kind, e.device, e.detail, e.duration, e.bytes)
                for e in heaven.clock.log.events()
            ]
            return {
                "reports": reports,
                "outcomes": outcomes,
                "events": events,
                "virtual_seconds": heaven.clock.now,
            }

        plain = run_plain()
        for key in ("reports", "outcomes", "events", "virtual_seconds"):
            assert silent[key] == plain[key], key

    def test_seed_is_irrelevant_when_rates_are_zero(self):
        assert run_workload(1, FaultSpec()) == run_workload(2, FaultSpec())
