"""Recovery behaviour under injected faults: retry, failover, degradation,
WAL-backed export cleanup — the tentpole's end-to-end guarantees."""

from __future__ import annotations

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    Heaven,
    HeavenConfig,
    MInterval,
    RetryExhaustedError,
    RetryPolicy,
    recover_incomplete_exports,
)
from repro.arrays import ArrayStorage
from repro.core import EXPORT_SEGMENTS_TABLE, ClusteredPlacement, TCTExporter
from repro.core.clustering import Placement
from repro.core.super_tile import star_partition
from repro.dbms import Database
from repro.dbms.wal import LogKind, WriteAheadLog
from repro.arrays import RegularTiling
from repro.tertiary import DLT_7000, HSMSystem, MB, SimClock, TapeLibrary
from repro.workloads import ClimateGrid, climate_object

REGION_A = MInterval.of((30, 59), (15, 29), (2, 3), (3, 5))
REGION_B = MInterval.of((60, 89), (30, 44), (4, 5), (0, 2))

FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base_s=1.0)


def faulty_heaven(plan: FaultPlan, **overrides) -> Heaven:
    observability = overrides.pop("observability", None)
    config = HeavenConfig(
        fault_plan=plan,
        num_drives=overrides.pop("num_drives", 2),
        retry_policy=overrides.pop("retry_policy", RetryPolicy()),
        **overrides,
    )
    heaven = Heaven(config, observability=observability)
    heaven.create_collection("c")
    obj = climate_object("t", ClimateGrid(90, 45, 8, 6))
    heaven.insert("c", obj)
    heaven.archive("c", "t")
    heaven.library.unmount_all()
    return heaven


class TestMountRecovery:
    def test_cold_read_survives_mount_failure_via_failover(self):
        """The PR's acceptance scenario: mount fault → retry → failover →
        the read completes, and the fault is visible in report and stats."""
        plan = FaultPlan(seed=3)
        heaven = faulty_heaven(plan)
        plan.fail_next("mount")
        cells, report = heaven.read_with_report("c", "t", REGION_A)
        assert cells.shape == (30, 15, 2, 3)
        assert report.faults >= 1
        assert report.backoffs >= 1
        assert heaven.library.recovery.retries >= 1
        assert heaven.library.recovery.failovers >= 1
        assert plan.stats.count("mount") == 1
        fault_events = [e for e in heaven.clock.log.events() if e.kind == "fault"]
        assert fault_events, "fault penalty must appear as a 'fault' event"

    def test_failed_mount_charges_penalty_time(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan)
        before = heaven.clock.now
        plan.fail_next("mount")
        heaven.read("c", "t", REGION_A)
        charged = heaven.clock.now - before
        assert charged >= plan.spec.mount_failure_penalty_s

    def test_retry_budget_exhaustion_raises_typed_error(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan, num_drives=1, retry_policy=FAST_RETRY)
        plan.fail_next("mount", count=FAST_RETRY.max_attempts)
        with pytest.raises(RetryExhaustedError):
            heaven.read("c", "t", REGION_A)
        assert heaven.library.recovery.exhausted >= 1
        # The object is still readable once the faults stop.
        heaven.read("c", "t", REGION_A)

    def test_robot_jam_retried_without_failover(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan)
        plan.fail_next("robot")
        heaven.read("c", "t", REGION_A)
        assert heaven.library.recovery.retries >= 1
        assert heaven.library.recovery.failovers == 0


class TestMediaRecovery:
    def test_transient_bad_spot_retried(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan)
        entry = heaven.archived("t")
        segment = entry.super_tiles[0].segment_name
        medium_id, extent = heaven.library.segment(segment)
        heaven.library.medium(medium_id).add_bad_spot(extent.offset, 10)
        cells, report = heaven.read_with_report("c", "t", REGION_A)
        assert cells.size > 0
        assert plan.stats.count("media") >= 1

    def test_permanent_bad_spot_exhausts_retries(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan, retry_policy=FAST_RETRY)
        entry = heaven.archived("t")
        medium_ids = {st.medium_id for st in entry.super_tiles}
        for medium_id in medium_ids:
            medium = heaven.library.medium(medium_id)
            medium.add_bad_spot(0, medium.capacity, transient=False)
        with pytest.raises(RetryExhaustedError):
            heaven.read("c", "t", REGION_A)


class TestHSMRecovery:
    def make_hsm(self, plan: FaultPlan) -> HSMSystem:
        library = TapeLibrary(
            DLT_7000, num_drives=1, clock=SimClock(), faults=plan,
            retry=FAST_RETRY,
        )
        return HSMSystem(library)

    def test_transient_staging_error_retried(self):
        plan = FaultPlan()
        hsm = self.make_hsm(plan)
        hsm.archive_file("a", 4 * MB)
        plan.fail_next("hsm")
        before = hsm.clock.now
        hsm.stage_file("a")
        assert hsm.is_staged("a")
        assert hsm.stats.stage_faults == 1
        assert hsm.stats.stage_retries == 1
        assert hsm.clock.now - before >= plan.spec.hsm_error_penalty_s

    def test_persistent_staging_error_exhausts(self):
        plan = FaultPlan()
        hsm = self.make_hsm(plan)
        hsm.archive_file("a", 4 * MB)
        plan.fail_next("hsm", count=FAST_RETRY.max_attempts)
        with pytest.raises(RetryExhaustedError):
            hsm.stage_file("a")
        assert not hsm.is_staged("a")


class TestOfflineDegradation:
    def test_warm_cache_read_succeeds_while_offline(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan)
        heaven.read("c", "t", REGION_A)  # warm the caches
        heaven.library.unmount_all()
        plan.set_offline(True)
        cells, report = heaven.read_with_report("c", "t", REGION_A)
        assert cells.size > 0
        assert report.degraded is True
        assert report.bytes_from_tape == 0
        assert heaven.degraded_reads_served == 1

    def test_cold_read_while_offline_raises_typed_error(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan, retry_policy=FAST_RETRY)
        plan.set_offline(True)
        with pytest.raises(RetryExhaustedError):
            heaven.read("c", "t", REGION_B)
        # back online: the same read now completes
        plan.set_offline(False)
        heaven.read("c", "t", REGION_B)

    def test_degradation_counting_can_be_disabled(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan, degraded_reads=False)
        heaven.read("c", "t", REGION_A)
        heaven.library.unmount_all()
        plan.set_offline(True)
        _cells, report = heaven.read_with_report("c", "t", REGION_A)
        assert report.degraded is False
        assert heaven.degraded_reads_served == 0


class TestFaultMetrics:
    def test_fault_and_retry_metrics_nonzero(self):
        plan = FaultPlan(seed=3)
        heaven = faulty_heaven(plan, observability=True)
        plan.fail_next("mount")
        heaven.read("c", "t", REGION_A)
        heaven.obs.metrics.collect()
        metrics = heaven.obs.metrics
        assert metrics.get("repro_faults_injected_total").value(site="mount") == 1
        assert metrics.get("repro_retries_total").value() >= 1
        assert metrics.get("repro_drive_failovers_total").value() >= 1
        assert metrics.get("repro_backoff_seconds_total").value() > 0
        assert metrics.get("repro_fault_penalty_seconds_total").value() > 0

    def test_degraded_reads_metric(self):
        plan = FaultPlan()
        heaven = faulty_heaven(plan, observability=True)
        heaven.read("c", "t", REGION_A)
        heaven.library.unmount_all()
        plan.set_offline(True)
        heaven.read("c", "t", REGION_A)
        heaven.obs.metrics.collect()
        assert heaven.obs.metrics.get("repro_degraded_reads_total").value() == 1


class TestExportWAL:
    def build_export(self):
        clock = SimClock()
        db = Database(clock)
        storage = ArrayStorage(db)
        library = TapeLibrary(DLT_7000, clock=clock)
        storage.create_collection("c")
        mdd = climate_object("t", ClimateGrid(90, 45, 8, 6),
                             tiling=RegularTiling((30, 15, 4, 3)))
        storage.insert_object("c", mdd)
        exporter = TCTExporter(storage, library, wal=db.wal)
        super_tiles = star_partition(mdd, 256 * 1024)
        assert len(super_tiles) >= 3
        return db, library, exporter, mdd, super_tiles

    def test_successful_export_commits(self):
        db, library, exporter, mdd, super_tiles = self.build_export()
        plan = ClusteredPlacement().plan(super_tiles, library)
        exporter.export(mdd, plan)
        records = db.wal.records_for(-1)
        kinds = [r.kind for r in records]
        assert kinds[0] is LogKind.BEGIN
        assert kinds[-1] is LogKind.COMMIT
        inserts = [r for r in records if r.kind is LogKind.INSERT]
        assert len(inserts) == len(super_tiles)
        assert all(r.table == EXPORT_SEGMENTS_TABLE for r in inserts)
        assert all(library.has_segment(r.after["segment"]) for r in inserts)

    def test_failed_export_rolls_back_half_written_segments(self):
        db, library, exporter, mdd, super_tiles = self.build_export()
        placements = ClusteredPlacement().plan(super_tiles, library)
        # Sabotage a later placement: an unknown medium id fails mid-export.
        placements[2] = Placement(placements[2].super_tile, "no-such-medium")
        with pytest.raises(Exception):
            exporter.export(mdd, placements)
        records = db.wal.records_for(-1)
        assert records[-1].kind is LogKind.ABORT
        written = [r.after["segment"] for r in records
                   if r.kind is LogKind.INSERT]
        assert written, "segments before the failure were journalled"
        assert all(not library.has_segment(s) for s in written)

    def test_recover_incomplete_exports_cleans_crash_leftovers(self):
        db, library, exporter, mdd, super_tiles = self.build_export()
        # Simulate a crash mid-export: segments on tape, WAL open-ended.
        wal = db.wal
        wal.append(-1, LogKind.BEGIN)
        for index in range(2):
            name = f"crashed/st{index}"
            library.write_segment(name, 1024)
            wal.append(-1, LogKind.INSERT, table=EXPORT_SEGMENTS_TABLE,
                       after={"segment": name, "medium_id": "tape-0000",
                              "object": "t"})
        assert recover_incomplete_exports(wal, library) == 2
        assert not library.has_segment("crashed/st0")
        assert not library.has_segment("crashed/st1")
        # Idempotent: the recovery appended the missing ABORT.
        assert recover_incomplete_exports(wal, library) == 0

    def test_recovery_ignores_committed_exports(self):
        db, library, exporter, mdd, super_tiles = self.build_export()
        plan = ClusteredPlacement().plan(super_tiles, library)
        exporter.export(mdd, plan)
        assert recover_incomplete_exports(db.wal, library) == 0
        assert library.has_segment(super_tiles[0].segment_name)

    def test_exporter_without_wal_journals_nothing(self):
        clock = SimClock()
        db = Database(clock)
        storage = ArrayStorage(db)
        library = TapeLibrary(DLT_7000, clock=clock)
        storage.create_collection("c")
        mdd = climate_object("t", ClimateGrid(90, 45, 8, 6))
        storage.insert_object("c", mdd)
        appends_before = db.wal.appends
        exporter = TCTExporter(storage, library)
        super_tiles = star_partition(mdd, 4 * MB)
        exporter.export(mdd, ClusteredPlacement().plan(super_tiles, library))
        assert db.wal.appends == appends_before
