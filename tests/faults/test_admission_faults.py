"""The admission layer under injected faults.

Hold-back windows and fused sweeps must compose with the recovery layer:
mount failures inside a sweep are retried transparently (byte identity
still holds), and when the retry budget is spent mid-run the controller
must release every per-query lease on its way out — quiescence is part
of the error contract, not just the happy path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import FaultPlan, FaultSpec, RetryPolicy
from repro.arrays import (
    DOUBLE,
    HashedNoiseSource,
    MDD,
    MInterval,
    RegularTiling,
)
from repro.core import Heaven, HeavenConfig
from repro.core.admission import AdmissionController, QuerySpec
from repro.errors import StorageError
from repro.tertiary import MB

REGIONS = [
    MInterval.of((0, 63), (0, 63)),
    MInterval.of((0, 31), (0, 63)),
    MInterval.of((16, 47), (0, 31)),
]


def build_heaven(plan=None, **overrides) -> Heaven:
    config = HeavenConfig(
        super_tile_bytes=8 * 1024,
        disk_cache_bytes=64 * 1024,
        memory_cache_bytes=16 * MB,
        num_drives=overrides.pop("num_drives", 2),
        fault_plan=plan,
        **overrides,
    )
    heaven = Heaven(config)
    heaven.create_collection("col")
    mdd = MDD(
        "o0",
        MInterval.of((0, 63), (0, 63)),
        DOUBLE,
        tiling=RegularTiling((16, 16)),
        source=HashedNoiseSource(0, 0.0, 5.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "o0")
    heaven.library.unmount_all()
    return heaven


def specs_on(heaven, arrivals) -> list:
    now = heaven.clock.now
    return [
        QuerySpec(
            collection="col",
            object_name="o0",
            region=region,
            arrival_s=now + offset,
            name=f"q{index}",
        )
        for index, (region, offset) in enumerate(zip(REGIONS, arrivals))
    ]


class TestAdmissionUnderFaults:
    def test_holdback_with_mount_failures_stays_byte_identical(self):
        # Schedule the faults after archive so only the admission run,
        # not the setup, sees them.
        plan = FaultPlan(seed=11, spec=FaultSpec())
        heaven = build_heaven(plan)
        plan.fail_next("mount", count=2)
        specs = specs_on(heaven, [0.0, 2.0, 4.0])
        controller = AdmissionController(heaven, holdback_s=3.0)
        outputs, report = controller.run(specs)

        oracle = build_heaven()
        expected = [oracle.read("col", "o0", region) for region in REGIONS]
        for got, want in zip(outputs, expected):
            assert np.array_equal(got, want)
        assert plan.stats.injected.get("mount", 0) >= 2, (
            "the scheduled plan must actually inject mount failures"
        )
        assert heaven.library.recovery.retries > 0
        assert report.sweeps >= 1
        heaven.assert_quiescent()

    def test_exhausted_retries_mid_sweep_leak_no_leases(self):
        plan = FaultPlan(seed=3, spec=FaultSpec())
        heaven = build_heaven(
            plan,
            retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=1.0),
        )
        plan.fail_next("mount", count=16)  # outlast retries on both drives
        specs = specs_on(heaven, [0.0, 0.0, 0.0])
        controller = AdmissionController(heaven, holdback_s=2.0)
        with pytest.raises(StorageError):
            controller.run(specs)
        # The error path released every per-query lease: nothing pinned.
        assert heaven.disk_cache.pinned_keys() == []
        heaven.assert_quiescent()

    def test_faulted_run_reports_reconcile(self):
        from repro.obs import reconcile_shared_tape_bytes

        plan = FaultPlan(seed=23, spec=FaultSpec())
        heaven = build_heaven(plan)
        plan.fail_next("mount", count=1)
        specs = specs_on(heaven, [0.0, 1.0, 2.0])
        controller = AdmissionController(heaven, holdback_s=2.0)
        _outputs, report = controller.run(specs)
        violation = reconcile_shared_tape_bytes(
            report.queries,
            heaven.clock.log,
            report.log_cursor_start,
            unattributed=report.unattributed_tape_bytes,
        )
        assert violation is None
