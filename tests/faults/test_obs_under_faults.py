"""Observability stays truthful under injected faults.

Covers the trace/stats CLI paths and ``scripts/trace_overhead.py`` while
faults are firing, and pins the contract that spans close correctly even
when the traced read raises — a fault must show up in the trace, never
corrupt it.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

from repro import (
    FaultPlan,
    Heaven,
    HeavenConfig,
    MInterval,
    RetryExhaustedError,
    RetryPolicy,
    cli,
)
from repro.workloads import ClimateGrid, climate_object

REGION = MInterval.of((30, 59), (15, 29), (2, 3), (3, 5))

SCRIPTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "scripts"


def load_trace_overhead():
    spec = importlib.util.spec_from_file_location(
        "trace_overhead", SCRIPTS_DIR / "trace_overhead.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def observed_heaven(plan: FaultPlan, **overrides) -> Heaven:
    config = HeavenConfig(
        fault_plan=plan,
        num_drives=overrides.pop("num_drives", 2),
        retry_policy=overrides.pop("retry_policy", RetryPolicy()),
        **overrides,
    )
    heaven = Heaven(config, observability=True)
    heaven.create_collection("c")
    heaven.insert("c", climate_object("t", ClimateGrid(90, 45, 8, 6)))
    heaven.archive("c", "t")
    heaven.library.unmount_all()
    return heaven


class TestSpansUnderFaults:
    def test_fault_appears_inside_the_read_span(self):
        plan = FaultPlan(seed=3)
        heaven = observed_heaven(plan)
        plan.fail_next("mount")
        heaven.read("c", "t", REGION)
        root = heaven.tracer.roots[-1]
        assert root.finished
        assert root.count("fault") >= 1
        assert root.count("backoff") >= 1
        assert root.time_in("fault") >= plan.spec.mount_failure_penalty_s

    def test_span_stack_unwinds_when_read_raises(self):
        """Even a failed read leaves the tracer balanced: no dangling
        open spans, and the failed attempt is retained as a root."""
        plan = FaultPlan()
        heaven = observed_heaven(
            plan, retry_policy=RetryPolicy(max_attempts=2, backoff_base_s=1.0)
        )
        roots_before = len(heaven.tracer.roots)
        plan.set_offline(True)
        with pytest.raises(RetryExhaustedError):
            heaven.read("c", "t", REGION)
        assert heaven.tracer._stack == []
        assert heaven.tracer.current is None
        assert len(heaven.tracer.roots) > roots_before
        failed = heaven.tracer.roots[-1]
        assert failed.finished
        assert failed.count("fault") >= 1
        # The tracer is still usable: the next (fault-free) read nests fine.
        plan.set_offline(False)
        heaven.read("c", "t", REGION)
        assert heaven.tracer._stack == []


class TestCLIPathsUnderFaults:
    def test_trace_chaos_renders_fault_spans(self, capsys):
        assert cli.main(["trace", "chaos"]) == 0
        out = capsys.readouterr().out
        assert "fault" in out
        assert "read" in out

    def test_trace_chaos_jsonl_is_parseable(self, capsys):
        assert cli.main(["trace", "chaos", "--jsonl"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        assert lines
        spans = [json.loads(line) for line in lines]
        assert all("name" in span for span in spans)

    def test_stats_chaos_reports_fault_counters(self, capsys):
        assert cli.main(["stats", "chaos"]) == 0
        out = capsys.readouterr().out
        assert "repro_faults_injected_total" in out
        assert "repro_retries_total" in out


class TestTraceOverheadScript:
    def test_workload_reports_identical_with_and_without_tracing(self):
        module = load_trace_overhead()
        module.OBJECT = ClimateGrid(30, 15, 4, 3)
        module.QUERIES = 2
        assert module.run_workload(False) == module.run_workload(True)

    def test_main_passes_on_shrunk_workload(self, capsys):
        module = load_trace_overhead()
        module.OBJECT = ClimateGrid(30, 15, 4, 3)
        module.QUERIES = 2
        # This test guards the report-identity plumbing, not the wall-clock
        # bound — a tiny workload makes the ratio meaningless noise.
        module.MAX_OVERHEAD = 100.0
        assert module.main(["--repeats", "1"]) == 0
        assert "OK" in capsys.readouterr().out
