"""Shared fixtures for the HEAVEN reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import (
    DOUBLE,
    HashedNoiseSource,
    MDD,
    MInterval,
    RegularTiling,
)
from repro.core import Heaven, HeavenConfig
from repro.dbms import Database
from repro.tertiary import DLT_7000, MB, SimClock, TapeLibrary


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def library(clock: SimClock) -> TapeLibrary:
    return TapeLibrary(DLT_7000, num_drives=2, clock=clock)


@pytest.fixture
def db(clock: SimClock) -> Database:
    return Database(clock)


@pytest.fixture
def small_mdd() -> MDD:
    """A 96x96 double object with 32x32 tiles and deterministic noise."""
    return MDD(
        "small",
        MInterval.of((0, 95), (0, 95)),
        DOUBLE,
        tiling=RegularTiling((32, 32)),
        source=HashedNoiseSource(42, 0.0, 100.0),
    )


@pytest.fixture
def cube_mdd() -> MDD:
    """A 3-D 128x128x32 double object (4 MB) with 32x32x8 tiles."""
    return MDD(
        "cube",
        MInterval.of((0, 127), (0, 127), (0, 31)),
        DOUBLE,
        tiling=RegularTiling((32, 32, 8)),
        source=HashedNoiseSource(7, -10.0, 10.0),
    )


@pytest.fixture
def heaven_small() -> Heaven:
    """A HEAVEN instance tuned for fast unit tests (small super-tiles)."""
    config = HeavenConfig(
        super_tile_bytes=1 * MB,
        disk_cache_bytes=32 * MB,
        memory_cache_bytes=8 * MB,
    )
    return Heaven(config)


@pytest.fixture
def archived_heaven(heaven_small: Heaven, cube_mdd: MDD) -> Heaven:
    """HEAVEN with one archived 3-D object in collection 'col'."""
    heaven_small.create_collection("col")
    heaven_small.insert("col", cube_mdd)
    heaven_small.archive("col", "cube")
    return heaven_small
