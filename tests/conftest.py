"""Shared fixtures, markers and Hypothesis profiles for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.arrays import (
    DOUBLE,
    HashedNoiseSource,
    MDD,
    MInterval,
    RegularTiling,
)
from repro.core import Heaven, HeavenConfig
from repro.dbms import Database
from repro.tertiary import DLT_7000, MB, SimClock, TapeLibrary

# -- Hypothesis profiles ---------------------------------------------------------------
#
# "ci" derandomizes example generation so reruns of a red build reproduce
# the same failure instead of flaking green; print_blob still prints the
# @reproduce_failure blob on any failure so it can be replayed locally.
# The CI chaos job overrides the profile by passing --hypothesis-seed,
# which must not be combined with derandomize — in that case the "dev"
# profile (seeded, blob-printing) applies.

settings.register_profile("dev", print_blob=True)
settings.register_profile(
    "ci",
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)

#: test directory -> marker applied to everything collected beneath it
_DIRECTORY_MARKERS = {
    "concurrency": "concurrency",
    "faults": "chaos",
    "simtest": "simtest",
    "service": "service",
}


def pytest_configure(config: pytest.Config) -> None:
    seed = config.getoption("--hypothesis-seed", default=None)
    if os.environ.get("CI") and seed in (None, ""):
        settings.load_profile("ci")
    else:
        settings.load_profile("dev")


def pytest_collection_modifyitems(
    config: pytest.Config, items: list[pytest.Item]
) -> None:
    rootdir = config.rootdir
    for item in items:
        relative = item.path.relative_to(str(rootdir))
        parts = relative.parts
        if len(parts) >= 2 and parts[0] == "tests":
            marker = _DIRECTORY_MARKERS.get(parts[1])
            if marker is not None:
                item.add_marker(getattr(pytest.mark, marker))


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def library(clock: SimClock) -> TapeLibrary:
    return TapeLibrary(DLT_7000, num_drives=2, clock=clock)


@pytest.fixture
def db(clock: SimClock) -> Database:
    return Database(clock)


@pytest.fixture
def small_mdd() -> MDD:
    """A 96x96 double object with 32x32 tiles and deterministic noise."""
    return MDD(
        "small",
        MInterval.of((0, 95), (0, 95)),
        DOUBLE,
        tiling=RegularTiling((32, 32)),
        source=HashedNoiseSource(42, 0.0, 100.0),
    )


@pytest.fixture
def cube_mdd() -> MDD:
    """A 3-D 128x128x32 double object (4 MB) with 32x32x8 tiles."""
    return MDD(
        "cube",
        MInterval.of((0, 127), (0, 127), (0, 31)),
        DOUBLE,
        tiling=RegularTiling((32, 32, 8)),
        source=HashedNoiseSource(7, -10.0, 10.0),
    )


@pytest.fixture
def heaven_small() -> Heaven:
    """A HEAVEN instance tuned for fast unit tests (small super-tiles)."""
    config = HeavenConfig(
        super_tile_bytes=1 * MB,
        disk_cache_bytes=32 * MB,
        memory_cache_bytes=8 * MB,
    )
    return Heaven(config)


@pytest.fixture
def archived_heaven(heaven_small: Heaven, cube_mdd: MDD) -> Heaven:
    """HEAVEN with one archived 3-D object in collection 'col'."""
    heaven_small.create_collection("col")
    heaven_small.insert("col", cube_mdd)
    heaven_small.archive("col", "cube")
    return heaven_small
