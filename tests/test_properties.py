"""Property-based tests (hypothesis) on the core data structures.

Each property encodes an invariant the rest of the system silently relies
on: interval algebra laws, tiling exact-cover, index completeness, STAR
partition correctness, cache capacity bounds, and end-to-end read fidelity.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.arrays import (
    DOUBLE,
    GridIndex,
    HashedNoiseSource,
    MDD,
    MInterval,
    RTreeIndex,
    RegularTiling,
    SInterval,
    validate_tiling,
)
from repro.core import (
    LRUPolicy,
    MemoryTileCache,
    star_partition,
    tiles_to_super_tiles,
)
from repro.core.cache import DiskCache
from repro.tertiary import DISK_ARRAY, SimClock


# -- strategies ----------------------------------------------------------------

def sintervals(max_abs=200, max_extent=60):
    return st.tuples(
        st.integers(-max_abs, max_abs), st.integers(0, max_extent)
    ).map(lambda t: SInterval(t[0], t[0] + t[1]))


def mintervals(dims=st.integers(1, 3)):
    return dims.flatmap(
        lambda d: st.tuples(*([sintervals()] * d)).map(MInterval)
    )


def domains_2d(max_extent=40):
    return st.tuples(
        st.integers(1, max_extent), st.integers(1, max_extent)
    ).map(lambda t: MInterval.from_shape(t))


# -- interval algebra -------------------------------------------------------------


class TestIntervalProperties:
    @given(sintervals(), sintervals())
    def test_intersection_commutative(self, a, b):
        assert a.intersection(b) == b.intersection(a)

    @given(sintervals(max_abs=25, max_extent=40), sintervals(max_abs=25, max_extent=40))
    def test_intersection_contained_in_both(self, a, b):
        overlap = a.intersection(b)
        assume(overlap is not None)
        assert a.contains_interval(overlap)
        assert b.contains_interval(overlap)

    @given(sintervals(), sintervals())
    def test_hull_contains_both(self, a, b):
        hull = a.hull(b)
        assert hull.contains_interval(a)
        assert hull.contains_interval(b)

    @given(sintervals(), st.integers(1, 20))
    def test_split_regular_partitions(self, interval, chunk):
        parts = interval.split_regular(chunk)
        assert sum(p.extent for p in parts) == interval.extent
        assert parts[0].lo == interval.lo
        assert parts[-1].hi == interval.hi
        for left, right in zip(parts, parts[1:]):
            assert right.lo == left.hi + 1

    @given(mintervals(), mintervals())
    def test_minterval_intersection_symmetry(self, a, b):
        assume(a.dimension == b.dimension)
        assert a.intersection(b) == b.intersection(a)

    @given(mintervals())
    def test_parse_str_roundtrip(self, domain):
        assert MInterval.parse(str(domain)) == domain

    @given(mintervals())
    def test_cell_count_is_shape_product(self, domain):
        assert domain.cell_count == int(np.prod(domain.shape))


# -- tiling and indexes --------------------------------------------------------------


class TestTilingProperties:
    @given(
        domains_2d(max_extent=24),
        st.integers(1, 15),
        st.integers(1, 15),
    )
    @settings(max_examples=50, deadline=None)
    def test_regular_tiling_exact_cover(self, domain, tile_w, tile_h):
        tiles = RegularTiling((tile_w, tile_h)).tile_domains(domain, DOUBLE)
        validate_tiling(domain, tiles)

    @given(
        domains_2d(max_extent=30),
        st.integers(2, 8),
        st.integers(2, 8),
        st.data(),
    )
    @settings(max_examples=40)
    def test_grid_index_matches_bruteforce(self, domain, tile_w, tile_h, data):
        tiles = RegularTiling((tile_w, tile_h)).tile_domains(domain, DOUBLE)
        index = GridIndex(domain, (tile_w, tile_h))
        for tile_id, tile in enumerate(tiles):
            index.insert(tile_id, tile)
        lo0 = data.draw(st.integers(domain[0].lo, domain[0].hi))
        lo1 = data.draw(st.integers(domain[1].lo, domain[1].hi))
        hi0 = data.draw(st.integers(lo0, domain[0].hi))
        hi1 = data.draw(st.integers(lo1, domain[1].hi))
        region = MInterval.of((lo0, hi0), (lo1, hi1))
        expect = sorted(i for i, t in enumerate(tiles) if t.intersects(region))
        assert index.intersecting(region) == expect

    @given(
        st.lists(
            st.tuples(st.integers(0, 300), st.integers(0, 300)),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30)
    def test_rtree_finds_every_inserted_box(self, origins):
        rtree = RTreeIndex(max_entries=4)
        boxes = []
        for i, (x, y) in enumerate(origins):
            box = MInterval.of((x, x + 4), (y, y + 4))
            boxes.append(box)
            rtree.insert(i, box)
        for i, box in enumerate(boxes):
            assert i in rtree.intersecting(box)
        assert rtree.all_ids() == list(range(len(boxes)))


# -- STAR partition ------------------------------------------------------------------


class TestStarProperties:
    @given(
        st.integers(1, 6),
        st.integers(1, 6),
        st.integers(1, 20),
    )
    @settings(max_examples=40)
    def test_partition_is_exact_and_ordered(self, tiles_x, tiles_y, target_tiles):
        mdd = MDD(
            "p",
            MInterval.from_shape((tiles_x * 8, tiles_y * 8)),
            DOUBLE,
            tiling=RegularTiling((8, 8)),
        )
        tile_bytes = 8 * 8 * 8
        super_tiles = star_partition(mdd, target_tiles * tile_bytes)
        seen = [t for stile in super_tiles for t in stile.tile_ids]
        assert sorted(seen) == sorted(mdd.tiles)
        assert len(seen) == len(set(seen))
        mapping = tiles_to_super_tiles(super_tiles)
        assert set(mapping) == set(mdd.tiles)
        # Hull never exceeds the object and sizes are positive.
        for stile in super_tiles:
            assert mdd.domain.contains(stile.domain)
            assert stile.size_bytes > 0


# -- caches --------------------------------------------------------------------------


class TestCacheProperties:
    @given(
        st.lists(
            st.tuples(st.text(min_size=1, max_size=4), st.integers(1, 100)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=40)
    def test_disk_cache_never_exceeds_capacity(self, inserts):
        cache = DiskCache(200, LRUPolicy(), DISK_ARRAY, SimClock())
        for key, size in inserts:
            if key in cache or size > 200:
                continue
            cache.insert(key, size, 1.0)
            assert cache.used_bytes <= 200

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=80))
    @settings(max_examples=40)
    def test_memory_cache_consistency(self, accesses):
        cache = MemoryTileCache(5 * 80)  # room for 5 ten-byte tiles... approx
        stored = {}
        for tile_id in accesses:
            cells = np.full(10, tile_id, dtype=np.int8)  # 10 bytes
            cache.put("o", tile_id, cells)
            stored[tile_id] = cells
        # Everything retrievable is correct (no corruption on eviction).
        for tile_id, cells in stored.items():
            got = cache.get("o", tile_id)
            if got is not None:
                assert np.array_equal(got, cells)
        assert cache.used_bytes <= cache.capacity_bytes


# -- end-to-end read fidelity -----------------------------------------------------------


class TestReadFidelityProperties:
    @given(st.data())
    @settings(max_examples=15, deadline=None)
    def test_mdd_read_equals_source(self, data):
        width = data.draw(st.integers(8, 60))
        height = data.draw(st.integers(8, 60))
        tile = data.draw(st.integers(3, 17))
        seed = data.draw(st.integers(0, 5))
        mdd = MDD(
            "f",
            MInterval.from_shape((width, height)),
            DOUBLE,
            tiling=RegularTiling((tile, tile)),
            source=HashedNoiseSource(seed),
        )
        lo0 = data.draw(st.integers(0, width - 1))
        lo1 = data.draw(st.integers(0, height - 1))
        hi0 = data.draw(st.integers(lo0, width - 1))
        hi1 = data.draw(st.integers(lo1, height - 1))
        region = MInterval.of((lo0, hi0), (lo1, hi1))
        direct = mdd.source.region(region, DOUBLE)
        assembled = mdd.read(region)
        assert np.array_equal(assembled, direct)
