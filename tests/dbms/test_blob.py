"""Dedicated BLOB-store tests (peek, restore, capacity accounting)."""

import pytest

from repro.dbms import BlobStore
from repro.errors import BlobNotFoundError
from repro.tertiary import SimClock


@pytest.fixture
def store():
    return BlobStore(SimClock())


class TestBlobStore:
    def test_put_assigns_increasing_oids(self, store):
        a = store.put(b"a")
        b = store.put(b"bb")
        assert b > a
        assert len(store) == 2
        assert store.total_bytes == 3

    def test_peek_does_not_charge_io(self, store):
        oid = store.put(b"data")
        before = store.disk.clock.now
        assert store.peek(oid) == b"data"
        assert store.disk.clock.now == before

    def test_get_charges_io(self, store):
        oid = store.put(b"data")
        before = store.disk.clock.now
        store.get(oid)
        assert store.disk.clock.now > before

    def test_delete_releases_capacity(self, store):
        oid = store.put(b"x" * 100)
        used = store.disk.used_bytes
        assert store.delete(oid) == 100
        assert store.disk.used_bytes == used - 100
        assert oid not in store

    def test_restore_brings_blob_back(self, store):
        oid = store.put(b"payload")
        store.delete(oid)
        store.restore(oid, 7, b"payload")
        assert store.peek(oid) == b"payload"
        assert store.size(oid) == 7

    def test_restore_existing_oid_rejected(self, store):
        oid = store.put(b"x")
        with pytest.raises(ValueError):
            store.restore(oid, 1, b"x")

    def test_size_only_mode_drops_payloads(self):
        store = BlobStore(SimClock(), retain_payload=False)
        oid = store.put(b"payload")
        assert store.peek(oid) is None
        assert store.size(oid) == 7

    def test_unknown_oid_operations_raise(self, store):
        for operation in (store.get, store.size, store.delete, store.peek):
            with pytest.raises(BlobNotFoundError):
                operation(404)
