"""Tests for the engine: transactions, WAL, BLOBs, select."""

import pytest

from repro.dbms import Column, ColumnType, Database, LogKind
from repro.errors import (
    BlobNotFoundError,
    SchemaError,
    TransactionError,
)


@pytest.fixture
def db():
    database = Database()
    database.create_table(
        "t",
        [
            Column("id", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT),
        ],
        primary_key="id",
    )
    return database


class TestDDL:
    def test_create_and_drop(self, db):
        db.create_table("u", [Column("a", ColumnType.INTEGER)])
        assert "u" in db.tables()
        db.drop_table("u")
        assert "u" not in db.tables()

    def test_duplicate_table_rejected(self, db):
        with pytest.raises(SchemaError):
            db.create_table("t", [Column("a", ColumnType.INTEGER)])

    def test_unknown_table_raises(self, db):
        with pytest.raises(SchemaError):
            db.table("ghost")


class TestTransactions:
    def test_commit_persists(self, db):
        with db.transaction():
            db.insert("t", {"id": 1, "name": "a"})
        assert db.select("t") == [{"id": 1, "name": "a"}]

    def test_rollback_on_exception(self, db):
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.insert("t", {"id": 1})
                raise RuntimeError("boom")
        assert db.select("t") == []

    def test_rollback_restores_updates_and_deletes(self, db):
        db.insert("t", {"id": 1, "name": "a"})
        db.insert("t", {"id": 2, "name": "b"})
        db.begin()
        rid = db.table("t").find_pk(1)[0]
        db.update("t", rid, {"name": "z"})
        db.delete_rows("t", lambda r: r["id"] == 2)
        db.rollback()
        rows = db.select("t", order_by="id")
        assert rows == [{"id": 1, "name": "a"}, {"id": 2, "name": "b"}]

    def test_nested_begin_rejected(self, db):
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()

    def test_commit_without_txn_rejected(self, db):
        with pytest.raises(TransactionError):
            db.commit()

    def test_autocommit_outside_txn(self, db):
        db.insert("t", {"id": 5})
        assert not db.in_transaction
        assert len(db.select("t")) == 1

    def test_wal_records_lifecycle(self, db):
        with db.transaction():
            db.insert("t", {"id": 1})
        kinds = [r.kind for r in db.wal.records()]
        assert kinds == [LogKind.BEGIN, LogKind.INSERT, LogKind.COMMIT]
        assert db.wal.committed_txns()

    def test_wal_abort_record_on_rollback(self, db):
        db.begin()
        db.insert("t", {"id": 1})
        db.rollback()
        kinds = [r.kind for r in db.wal.records()]
        assert LogKind.ABORT in kinds


class TestBlobs:
    def test_put_get_roundtrip(self, db):
        oid = db.put_blob(b"payload")
        assert db.blobs.get(oid) == b"payload"
        assert db.blobs.size(oid) == 7

    def test_size_only_blob(self, db):
        oid = db.put_blob(size=1000)
        assert db.blobs.size(oid) == 1000
        assert db.blobs.get(oid) is None

    def test_missing_blob_raises(self, db):
        with pytest.raises(BlobNotFoundError):
            db.blobs.get(999)

    def test_blob_rollback_removes(self, db):
        db.begin()
        oid = db.put_blob(b"x")
        db.rollback()
        with pytest.raises(BlobNotFoundError):
            db.blobs.get(oid)

    def test_blob_delete_rollback_restores(self, db):
        oid = db.put_blob(b"x")
        db.begin()
        db.delete_blob(oid)
        db.rollback()
        assert db.blobs.get(oid) == b"x"

    def test_blob_io_charges_clock(self, db):
        before = db.clock.now
        db.put_blob(b"z" * 1024)
        assert db.clock.now > before

    def test_put_needs_payload_or_size(self, db):
        with pytest.raises(ValueError):
            db.put_blob()


class TestSelect:
    def test_projection_and_order(self, db):
        db.insert("t", {"id": 2, "name": "b"})
        db.insert("t", {"id": 1, "name": "a"})
        rows = db.select("t", columns=["id"], order_by="id")
        assert rows == [{"id": 1}, {"id": 2}]

    def test_predicate(self, db):
        for i in range(4):
            db.insert("t", {"id": i})
        rows = db.select("t", predicate=lambda r: r["id"] % 2 == 0)
        assert {r["id"] for r in rows} == {0, 2}

    def test_unknown_projection_column_rejected(self, db):
        with pytest.raises(SchemaError):
            db.select("t", columns=["ghost"])
