"""Tests for schemas, tables, constraints and secondary indexes."""

import pytest

from repro.dbms import Column, ColumnType, Schema, Table
from repro.errors import ConstraintError, SchemaError


def make_table(primary_key="id"):
    return Table(
        "t",
        Schema(
            [
                Column("id", ColumnType.INTEGER, nullable=False),
                Column("name", ColumnType.TEXT),
                Column("score", ColumnType.REAL),
            ],
            primary_key=primary_key,
        ),
    )


class TestSchema:
    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.INTEGER), Column("a", ColumnType.TEXT)])

    def test_pk_must_be_column(self):
        with pytest.raises(SchemaError):
            Schema([Column("a", ColumnType.INTEGER)], primary_key="b")

    def test_validate_fills_missing_with_none(self):
        schema = Schema([Column("a", ColumnType.INTEGER), Column("b", ColumnType.TEXT)])
        assert schema.validate({"a": 1}) == {"a": 1, "b": None}

    def test_validate_rejects_unknown_column(self):
        schema = Schema([Column("a", ColumnType.INTEGER)])
        with pytest.raises(SchemaError):
            schema.validate({"zz": 1})

    def test_not_null_enforced(self):
        schema = Schema([Column("a", ColumnType.INTEGER, nullable=False)])
        with pytest.raises(ConstraintError):
            schema.validate({"a": None})


class TestTableCRUD:
    def test_insert_and_get(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a", "score": 2.5})
        assert table.get(rowid)["name"] == "a"
        assert len(table) == 1

    def test_pk_uniqueness(self):
        table = make_table()
        table.insert({"id": 1})
        with pytest.raises(ConstraintError):
            table.insert({"id": 1})

    def test_update_changes_and_returns_before(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        before = table.update(rowid, {"name": "b"})
        assert before["name"] == "a"
        assert table.get(rowid)["name"] == "b"

    def test_update_pk_to_existing_rejected(self):
        table = make_table()
        table.insert({"id": 1})
        rowid = table.insert({"id": 2})
        with pytest.raises(ConstraintError):
            table.update(rowid, {"id": 1})

    def test_delete_and_restore(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        row = table.delete(rowid)
        assert len(table) == 0
        table.restore(rowid, row)
        assert table.get(rowid)["name"] == "a"

    def test_restore_existing_rowid_rejected(self):
        table = make_table()
        rowid = table.insert({"id": 1})
        with pytest.raises(ConstraintError):
            table.restore(rowid, {"id": 9, "name": None, "score": None})

    def test_get_returns_copy(self):
        table = make_table()
        rowid = table.insert({"id": 1, "name": "a"})
        row = table.get(rowid)
        row["name"] = "mutated"
        assert table.get(rowid)["name"] == "a"


class TestTableLookups:
    def test_scan_with_predicate(self):
        table = make_table()
        for i in range(5):
            table.insert({"id": i, "score": float(i)})
        rows = [row for _rid, row in table.scan(lambda r: r["score"] >= 3)]
        assert {r["id"] for r in rows} == {3, 4}

    def test_find_by_indexed_column(self):
        table = make_table()
        table.create_index("name")
        table.insert({"id": 1, "name": "x"})
        table.insert({"id": 2, "name": "x"})
        table.insert({"id": 3, "name": "y"})
        assert len(table.find_by("name", "x")) == 2

    def test_find_by_unindexed_column_scans(self):
        table = make_table()
        table.insert({"id": 1, "name": "x"})
        assert len(table.find_by("name", "x")) == 1

    def test_find_pk(self):
        table = make_table()
        table.insert({"id": 7, "name": "seven"})
        found = table.find_pk(7)
        assert found is not None and found[1]["name"] == "seven"
        assert table.find_pk(8) is None

    def test_find_pk_without_pk_rejected(self):
        table = make_table(primary_key=None)
        with pytest.raises(SchemaError):
            table.find_pk(1)

    def test_index_backfill_on_create(self):
        table = make_table()
        table.insert({"id": 1, "name": "x"})
        index = table.create_index("name")
        assert index.lookup("x")

    def test_duplicate_index_rejected(self):
        table = make_table()
        table.create_index("name")
        with pytest.raises(SchemaError):
            table.create_index("name")

    def test_index_maintained_on_update_and_delete(self):
        table = make_table()
        table.create_index("name")
        rowid = table.insert({"id": 1, "name": "x"})
        table.update(rowid, {"name": "y"})
        assert table.index_on("name").lookup("x") == []
        assert table.index_on("name").lookup("y") == [rowid]
        table.delete(rowid)
        assert table.index_on("name").lookup("y") == []
