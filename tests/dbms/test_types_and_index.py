"""Tests for column types and the ordered index."""

import pytest

from repro.dbms import ColumnType, OrderedIndex, coerce
from repro.errors import SchemaError


class TestCoerce:
    def test_exact_types_pass(self):
        assert coerce(5, ColumnType.INTEGER, "c") == 5
        assert coerce("x", ColumnType.TEXT, "c") == "x"
        assert coerce(b"x", ColumnType.BYTES, "c") == b"x"
        assert coerce(True, ColumnType.BOOLEAN, "c") is True

    def test_none_passes_through(self):
        assert coerce(None, ColumnType.INTEGER, "c") is None

    def test_int_widens_to_real(self):
        value = coerce(5, ColumnType.REAL, "c")
        assert value == 5.0 and isinstance(value, float)

    def test_bool_rejected_for_integer(self):
        with pytest.raises(SchemaError):
            coerce(True, ColumnType.INTEGER, "c")

    def test_string_not_coerced_to_number(self):
        with pytest.raises(SchemaError):
            coerce("5", ColumnType.INTEGER, "c")

    def test_float_rejected_for_integer(self):
        with pytest.raises(SchemaError):
            coerce(5.0, ColumnType.INTEGER, "c")


class TestOrderedIndex:
    def test_lookup_exact(self):
        index = OrderedIndex("i")
        index.insert(5, 1)
        index.insert(3, 2)
        index.insert(5, 3)
        assert sorted(index.lookup(5)) == [1, 3]
        assert index.lookup(4) == []

    def test_unique_rejects_duplicates(self):
        index = OrderedIndex("i", unique=True)
        index.insert(1, 10)
        with pytest.raises(KeyError):
            index.insert(1, 11)

    def test_range_scan_inclusive(self):
        index = OrderedIndex("i")
        for key in [1, 3, 5, 7, 9]:
            index.insert(key, key * 10)
        keys = [k for k, _ in index.range(3, 7)]
        assert keys == [3, 5, 7]

    def test_range_scan_exclusive_bounds(self):
        index = OrderedIndex("i")
        for key in [1, 3, 5, 7]:
            index.insert(key, key)
        keys = [k for k, _ in index.range(1, 7, include_low=False, include_high=False)]
        assert keys == [3, 5]

    def test_range_open_ended(self):
        index = OrderedIndex("i")
        for key in [2, 4, 6]:
            index.insert(key, key)
        assert [k for k, _ in index.range(low=4)] == [4, 6]
        assert [k for k, _ in index.range(high=4)] == [2, 4]
        assert [k for k, _ in index.range()] == [2, 4, 6]

    def test_remove_specific_entry(self):
        index = OrderedIndex("i")
        index.insert(1, 10)
        index.insert(1, 11)
        index.remove(1, 10)
        assert index.lookup(1) == [11]

    def test_remove_missing_raises(self):
        index = OrderedIndex("i")
        index.insert(1, 10)
        with pytest.raises(KeyError):
            index.remove(1, 99)

    def test_min_max(self):
        index = OrderedIndex("i")
        assert index.min_key() is None
        index.insert(5, 1)
        index.insert(2, 2)
        assert index.min_key() == 2
        assert index.max_key() == 5
