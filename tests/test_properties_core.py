"""Property-based tests on HEAVEN-core invariants (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import DOUBLE, MDD, MInterval, RegularTiling
from repro.core import (
    AccessStatistics,
    ElevatorScheduler,
    TapeRequest,
    intra_cluster_order,
    optimal_super_tile_bytes,
    plan_parallel,
    star_partition,
)
from repro.tertiary import DLT_7000, MB, TapeLibrary, scaled_profile

PROFILE = scaled_profile(DLT_7000, 256 * MB)


def request_batches():
    """Batches of requests over a handful of media with random offsets."""

    def build(entries):
        return [
            TapeRequest(
                key=f"r{i}",
                medium_id=f"m{medium}",
                offset=offset * 1024,
                length=1024,
            )
            for i, (medium, offset) in enumerate(entries)
        ]

    return st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 1000)),
        min_size=1,
        max_size=40,
    ).map(build)


class TestSchedulerProperties:
    @given(request_batches())
    @settings(max_examples=50)
    def test_elevator_is_a_permutation(self, batch):
        library = TapeLibrary(PROFILE)
        for m in range(5):
            library.new_medium(f"m{m}")
        ordered = ElevatorScheduler().order(batch, library)
        assert sorted(r.key for r in ordered) == sorted(r.key for r in batch)

    @given(request_batches())
    @settings(max_examples=50)
    def test_elevator_groups_media_contiguously(self, batch):
        library = TapeLibrary(PROFILE)
        for m in range(5):
            library.new_medium(f"m{m}")
        ordered = ElevatorScheduler().order(batch, library)
        seen = []
        for request in ordered:
            if not seen or seen[-1] != request.medium_id:
                assert request.medium_id not in seen  # no medium revisited
                seen.append(request.medium_id)

    @given(request_batches())
    @settings(max_examples=50)
    def test_elevator_sweeps_forward_within_media(self, batch):
        library = TapeLibrary(PROFILE)
        for m in range(5):
            library.new_medium(f"m{m}")
        ordered = ElevatorScheduler().order(batch, library)
        last_offset = {}
        for request in ordered:
            previous = last_offset.get(request.medium_id)
            if previous is not None:
                assert request.offset >= previous
            last_offset[request.medium_id] = request.offset

    @given(request_batches(), st.integers(1, 6))
    @settings(max_examples=40)
    def test_parallel_plan_conserves_requests_and_bounds(self, batch, drives):
        library = TapeLibrary(PROFILE)
        for m in range(5):
            library.new_medium(f"m{m}")
        plan = plan_parallel(batch, library, drives)
        assigned = sorted(r.key for d in plan.drives for r in d.requests)
        assert assigned == sorted(r.key for r in batch)
        assert plan.makespan_seconds <= plan.serial_seconds + 1e-9
        assert plan.makespan_seconds >= plan.serial_seconds / drives - 1e-9


class TestStarProperties3D:
    @given(
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 4),
        st.integers(1, 30),
    )
    @settings(max_examples=40, deadline=None)
    def test_3d_partition_exact_and_contiguous(self, gx, gy, gz, target_tiles):
        mdd = MDD(
            "p",
            MInterval.from_shape((gx * 4, gy * 4, gz * 4)),
            DOUBLE,
            tiling=RegularTiling((4, 4, 4)),
        )
        tile_bytes = 4 * 4 * 4 * 8
        super_tiles = star_partition(mdd, target_tiles * tile_bytes)
        seen = [t for stile in super_tiles for t in stile.tile_ids]
        assert sorted(seen) == sorted(mdd.tiles)
        for stile in super_tiles:
            # Hull contains exactly the member cells: blocks have no holes.
            member_cells = sum(
                mdd.tiles[t].domain.cell_count for t in stile.tile_ids
            )
            assert stile.domain.cell_count == member_cells


class TestIntraOrderProperties:
    @given(st.permutations([0, 1, 2]))
    @settings(max_examples=6, deadline=None)
    def test_intra_order_is_permutation_of_members(self, fractions_order):
        mdd = MDD(
            "p",
            MInterval.from_shape((16, 16, 16)),
            DOUBLE,
            tiling=RegularTiling((4, 4, 4)),
        )
        stats = AccessStatistics(dimension=3)
        region_axes = []
        for axis, rank in enumerate(fractions_order):
            extent = [16, 8, 2][rank]
            region_axes.append((0, extent - 1))
        stats.record(MInterval.of(*region_axes), mdd.domain, 8)
        stile = star_partition(mdd, mdd.size_bytes)[0]
        ordered = intra_cluster_order(stile, mdd, stats)
        assert sorted(ordered) == sorted(stile.tile_ids)


class TestOptimalSizeProperties:
    @given(
        st.floats(1e3, 1e12),
        st.integers(1, 10**7),
    )
    @settings(max_examples=50)
    def test_clamped_within_bounds_and_medium(self, request_bytes, min_bytes):
        max_bytes = min_bytes * 64
        size = optimal_super_tile_bytes(
            DLT_7000, request_bytes, min_bytes, max_bytes
        )
        assert min_bytes <= size <= max_bytes or size == DLT_7000.media_capacity_bytes
        assert size <= DLT_7000.media_capacity_bytes

    @given(st.floats(1e3, 1e12), st.floats(2.0, 100.0))
    @settings(max_examples=50)
    def test_monotone_in_request_size(self, request_bytes, factor):
        small = optimal_super_tile_bytes(DLT_7000, request_bytes, 1, 10**15)
        large = optimal_super_tile_bytes(
            DLT_7000, request_bytes * factor, 1, 10**15
        )
        assert large >= small
