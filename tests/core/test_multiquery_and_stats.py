"""Tests for read_many batching, stats persistence, archive-failure cleanup,
and the CFD struct-cell workload through the full hierarchy."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig, Placement, PlacementPolicy
from repro.errors import HeavenError
from repro.tertiary import MB
from repro.workloads import FlowGrid, cfd_object, flow_cell_type


class SharedStripe(PlacementPolicy):
    """Round-robin super-tiles over a FIXED media set shared by all
    objects — the interleaved multi-object layout where inter-query
    scheduling pays off."""

    def __init__(self, media_ids):
        self.media_ids = list(media_ids)

    def plan(self, super_tiles, library):
        return [
            Placement(st, self.media_ids[i % len(self.media_ids)])
            for i, st in enumerate(super_tiles)
        ]


def multi_object_heaven(scattered=True, objects=3):
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=8 * 1024,   # 4 tiles per super-tile -> 8 STs/object
            disk_cache_bytes=64 * MB,
            memory_cache_bytes=16 * MB,
            num_drives=1,
        )
    )
    heaven.create_collection("col")
    placement = None
    if scattered:
        media = [heaven.library.new_medium(f"shared-{i}") for i in range(3)]
        placement = SharedStripe([m.medium_id for m in media])
    mdds = []
    for i in range(objects):
        mdd = MDD(
            f"o{i}",
            MInterval.of((0, 63), (0, 63)),
            DOUBLE,
            tiling=RegularTiling((16, 16)),
            source=HashedNoiseSource(i, 0.0, 5.0),
        )
        heaven.insert("col", mdd)
        heaven.archive("col", mdd.name, placement=placement)
        mdds.append(mdd)
    heaven.library.unmount_all()
    return heaven, mdds


class TestReadMany:
    REGION = MInterval.of((0, 30), (0, 30))

    def test_results_match_individual_reads(self):
        heaven, mdds = multi_object_heaven()
        batch = [("col", m.name, self.REGION) for m in mdds]
        outputs, report = heaven.read_many(batch)
        assert len(outputs) == 3
        for cells, mdd in zip(outputs, mdds):
            expect = mdd.source.region(self.REGION, mdd.cell_type)
            assert np.array_equal(cells, expect)
        assert report.bytes_useful == sum(int(c.nbytes) for c in outputs)

    def test_batch_needs_fewer_exchanges_than_serial(self):
        heaven_a, mdds_a = multi_object_heaven()
        exchanges_before = heaven_a.library.stats().exchanges
        for mdd in mdds_a:
            heaven_a.read("col", mdd.name, self.REGION)
        serial_exchanges = heaven_a.library.stats().exchanges - exchanges_before

        heaven_b, mdds_b = multi_object_heaven()
        _outputs, report = heaven_b.read_many(
            [("col", m.name, self.REGION) for m in mdds_b]
        )
        assert report.exchanges < serial_exchanges

    def test_batch_faster_than_serial(self):
        heaven_a, mdds_a = multi_object_heaven()
        start = heaven_a.clock.now
        for mdd in mdds_a:
            heaven_a.read("col", mdd.name, self.REGION)
        serial_seconds = heaven_a.clock.now - start

        heaven_b, mdds_b = multi_object_heaven()
        _outputs, report = heaven_b.read_many(
            [("col", m.name, self.REGION) for m in mdds_b]
        )
        assert report.virtual_seconds < serial_seconds

    def test_mixed_batch_with_unarchived_object(self):
        heaven, mdds = multi_object_heaven(objects=2)
        plain = MDD(
            "plain",
            MInterval.of((0, 15), (0, 15)),
            DOUBLE,
            source=HashedNoiseSource(42),
        )
        heaven.insert("col", plain)
        outputs, _report = heaven.read_many(
            [
                ("col", "o0", self.REGION),
                ("col", "plain", MInterval.of((0, 15), (0, 15))),
            ]
        )
        assert np.array_equal(
            outputs[1], plain.source.region(MInterval.of((0, 15), (0, 15)), DOUBLE)
        )

    def test_same_object_twice_stages_once(self):
        heaven, mdds = multi_object_heaven(objects=1)
        outputs, report = heaven.read_many(
            [("col", "o0", self.REGION), ("col", "o0", self.REGION)]
        )
        assert np.array_equal(outputs[0], outputs[1])
        # The second request found everything already requested/staged.
        second_run = heaven.read_many(
            [("col", "o0", self.REGION), ("col", "o0", self.REGION)]
        )[1]
        assert second_run.bytes_from_tape == 0


class TestStatsPersistence:
    def test_roundtrip_through_catalog(self):
        heaven, mdds = multi_object_heaven(scattered=False, objects=1)
        region = MInterval.of((0, 63), (0, 7))
        heaven.read("col", "o0", region)
        heaven.read("col", "o0", region)
        assert heaven.persist_access_statistics() == 1

        fresh = Heaven(HeavenConfig())
        fresh.db = heaven.db  # same base DBMS ("next session")
        assert fresh.restore_access_statistics() == 1
        stats = fresh.access_stats["o0"]
        assert stats.queries == 2
        assert stats.axis_order()[0] == 0  # axis 0 spanned fully

    def test_restore_without_table_is_noop(self):
        heaven = Heaven(HeavenConfig())
        assert heaven.restore_access_statistics() == 0

    def test_persist_overwrites_previous_snapshot(self):
        heaven, _ = multi_object_heaven(scattered=False, objects=1)
        heaven.read("col", "o0", MInterval.of((0, 5), (0, 5)))
        heaven.persist_access_statistics()
        heaven.read("col", "o0", MInterval.of((0, 5), (0, 5)))
        heaven.persist_access_statistics()
        rows = heaven.db.select(Heaven.STATS_TABLE)
        assert len(rows) == 1
        assert rows[0]["queries"] == 2


class TestArchiveFailureCleanup:
    def test_failed_export_leaves_no_orphan_segments(self):
        heaven, _ = multi_object_heaven(scattered=False, objects=1)
        mdd = MDD(
            "doomed",
            MInterval.of((0, 63), (0, 63)),
            DOUBLE,
            tiling=RegularTiling((16, 16)),
            source=HashedNoiseSource(7),
        )
        heaven.insert("col", mdd)
        original = heaven.library.write_segment
        calls = {"n": 0}

        def failing_write(name, length, payload=None, medium_id=None):
            calls["n"] += 1
            if calls["n"] == 3:
                raise RuntimeError("simulated drive fault")
            return original(name, length, payload=payload, medium_id=medium_id)

        heaven.library.write_segment = failing_write
        segments_before = sum(len(m) for m in heaven.library.media())
        with pytest.raises(RuntimeError):
            # 4 super-tiles; the 3rd write faults after 2 succeeded.
            heaven.archive("col", "doomed", super_tile_bytes=8 * 1024)
        heaven.library.write_segment = original
        assert sum(len(m) for m in heaven.library.media()) == segments_before
        assert not heaven.is_archived("doomed")
        # Still readable from disk and archivable afterwards.
        region = MInterval.of((0, 7), (0, 7))
        assert np.array_equal(
            heaven.read("col", "doomed", region),
            mdd.source.region(region, DOUBLE),
        )
        heaven.archive("col", "doomed")
        assert heaven.is_archived("doomed")


class TestCFDWorkload:
    def test_struct_cells_through_full_hierarchy(self):
        heaven = Heaven(
            HeavenConfig(
                super_tile_bytes=512 * 1024,
                disk_cache_bytes=64 * MB,
                memory_cache_bytes=16 * MB,
                compression="zlib",
            )
        )
        heaven.create_collection("cfd")
        obj = cfd_object("run", FlowGrid(32, 16, 16), seed=4)
        region = MInterval.of((0, 15), (0, 15), (0, 7))
        expect = obj.source.region(region, obj.cell_type)
        heaven.insert("cfd", obj)
        heaven.archive("cfd", "run")
        got = heaven.read("cfd", "run", region)
        assert got.dtype.names == ("u", "v", "w", "p")
        for name in got.dtype.names:
            assert np.array_equal(got[name], expect[name])

    def test_struct_objects_skip_scalar_catalogs(self):
        heaven = Heaven(
            HeavenConfig(
                super_tile_bytes=512 * 1024,
                pyramid_factors=(2,),
            )
        )
        heaven.create_collection("cfd")
        obj = cfd_object("run", FlowGrid(16, 8, 8))
        heaven.insert("cfd", obj)
        heaven.archive("cfd", "run")
        assert not heaven.precomputed.has_object("run")
        assert not heaven.pyramids.has_object("run")

    def test_flow_physics(self):
        obj = cfd_object("run", FlowGrid(32, 16, 8), seed=1)
        cells = obj.read_all()
        # Parabolic profile: centreline u larger than near-wall u.
        assert cells["u"][:, 8, :].mean() > cells["u"][:, 1, :].mean()
        # Pressure falls downstream.
        assert cells["p"][0].mean() > cells["p"][-1].mean()

    def test_field_access_in_query(self):
        heaven = Heaven(HeavenConfig(super_tile_bytes=512 * 1024))
        heaven.create_collection("cfd")
        obj = cfd_object("run", FlowGrid(16, 8, 8), seed=2)
        heaven.insert("cfd", obj)
        heaven.archive("cfd", "run")
        results = heaven.query("select avg_cells(c.u) from cfd as c")
        expect = obj.source.region(obj.domain, obj.cell_type)["u"].mean()
        assert results[0].scalar() == pytest.approx(expect, rel=1e-6)
