"""Tests for query scheduling over tape request batches."""

import pytest

from repro.core import ElevatorScheduler, FIFOScheduler, TapeRequest, execute_batch
from repro.errors import HeavenError
from repro.tertiary import DLT_7000, MB, SimClock, TapeLibrary, scaled_profile

PROFILE = scaled_profile(DLT_7000, 64 * MB)


@pytest.fixture
def library_with_segments():
    """Two media, four segments each, in known positions."""
    library = TapeLibrary(PROFILE, num_drives=1)
    requests = []
    for m in range(2):
        medium = library.new_medium(f"m{m}")
        for s in range(4):
            name = f"m{m}s{s}"
            library.write_segment(name, 4 * MB, medium_id=f"m{m}")
            medium_id, segment = library.segment(name)
            requests.append(
                TapeRequest(
                    key=name,
                    medium_id=medium_id,
                    offset=segment.offset,
                    length=segment.length,
                )
            )
    library.unmount_all()
    library.clock.reset()
    return library, requests


class TestOrdering:
    def test_fifo_keeps_arrival_order(self, library_with_segments):
        library, requests = library_with_segments
        shuffled = [requests[5], requests[0], requests[6], requests[1]]
        ordered = FIFOScheduler().order(shuffled, library)
        assert ordered == shuffled

    def test_elevator_groups_by_medium(self, library_with_segments):
        library, requests = library_with_segments
        interleaved = [requests[0], requests[4], requests[1], requests[5]]
        ordered = ElevatorScheduler().order(interleaved, library)
        media_sequence = [r.medium_id for r in ordered]
        # One contiguous block per medium.
        changes = sum(
            1 for a, b in zip(media_sequence, media_sequence[1:]) if a != b
        )
        assert changes == 1

    def test_elevator_sorts_by_offset_within_medium(self, library_with_segments):
        library, requests = library_with_segments
        backwards = [requests[3], requests[1], requests[2], requests[0]]
        ordered = ElevatorScheduler().order(backwards, library)
        offsets = [r.offset for r in ordered]
        assert offsets == sorted(offsets)

    def test_elevator_prefers_mounted_medium(self, library_with_segments):
        library, requests = library_with_segments
        library.mount("m1")
        ordered = ElevatorScheduler().order([requests[0], requests[4]], library)
        assert ordered[0].medium_id == "m1"

    def test_elevator_prefers_denser_media(self, library_with_segments):
        library, requests = library_with_segments
        batch = [requests[0], requests[4], requests[5], requests[6]]
        ordered = ElevatorScheduler().order(batch, library)
        assert ordered[0].medium_id == "m1"  # 3 requests vs 1


class TestExecution:
    def test_scheduled_fewer_exchanges_than_fifo(self, library_with_segments):
        library, requests = library_with_segments
        interleaved = [
            requests[0], requests[4], requests[1], requests[5],
            requests[2], requests[6], requests[3], requests[7],
        ]
        fifo_report = execute_batch(interleaved, library, FIFOScheduler())
        library.unmount_all()
        library.clock.reset()
        for d in library.drives:
            d.stats.seeks = 0
        elevator_report = execute_batch(interleaved, library, ElevatorScheduler())
        assert fifo_report.exchanges == 8
        assert elevator_report.exchanges == 2
        assert elevator_report.virtual_seconds < fifo_report.virtual_seconds

    def test_elevator_reduces_seek_distance(self, library_with_segments):
        library, requests = library_with_segments
        backwards = [requests[3], requests[2], requests[1], requests[0]]
        fifo_report = execute_batch(backwards, library, FIFOScheduler())
        library.unmount_all()
        elevator_report = execute_batch(backwards, library, ElevatorScheduler())
        assert (
            elevator_report.seek_distance_bytes < fifo_report.seek_distance_bytes
        )

    def test_report_counts_bytes(self, library_with_segments):
        library, requests = library_with_segments
        report = execute_batch(requests[:3], library)
        assert report.bytes_read == 12 * MB
        assert report.requests == 3
        assert len(report.order) == 3

    def test_empty_batch(self, library_with_segments):
        library, _ = library_with_segments
        report = execute_batch([], library)
        assert report.requests == 0
        assert report.virtual_seconds == 0

    def test_scheduler_must_preserve_requests(self, library_with_segments):
        library, requests = library_with_segments

        class Dropper(FIFOScheduler):
            def order(self, reqs, lib):
                return list(reqs)[:-1]

        with pytest.raises(HeavenError):
            execute_batch(requests[:2], library, Dropper())
