"""Tests for the Heaven façade: archive, transparent retrieval, caching."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig, ScatterPlacement
from repro.errors import HeavenError
from repro.tertiary import MB


class TestArchive:
    def test_archive_requires_insert(self, heaven_small, cube_mdd):
        heaven_small.create_collection("col")
        heaven_small.collection("col").add(cube_mdd)
        with pytest.raises(HeavenError):
            heaven_small.archive("col", "cube")

    def test_double_archive_rejected(self, archived_heaven):
        with pytest.raises(HeavenError):
            archived_heaven.archive("col", "cube")

    def test_archive_reports_segments(self, heaven_small, cube_mdd):
        heaven_small.create_collection("col")
        heaven_small.insert("col", cube_mdd)
        report = heaven_small.archive("col", "cube")
        assert report.mode == "tct"
        assert report.bytes_written == cube_mdd.size_bytes
        assert heaven_small.is_archived("cube")

    def test_disk_copy_released_by_default(self, heaven_small, cube_mdd):
        heaven_small.create_collection("col")
        heaven_small.insert("col", cube_mdd)
        blobs_before = heaven_small.db.blobs.total_bytes
        heaven_small.archive("col", "cube")
        assert heaven_small.db.blobs.total_bytes < blobs_before
        assert not archived_entry(heaven_small).disk_copy

    def test_keep_disk_copy(self, heaven_small, cube_mdd):
        heaven_small.create_collection("col")
        heaven_small.insert("col", cube_mdd)
        heaven_small.archive("col", "cube", keep_disk_copy=True)
        assert archived_entry(heaven_small).disk_copy

    def test_archive_with_scatter_placement(self, heaven_small, cube_mdd):
        heaven_small.create_collection("col")
        heaven_small.insert("col", cube_mdd)
        heaven_small.archive("col", "cube", placement=ScatterPlacement(spread=3))
        media = {st.medium_id for st in archived_entry(heaven_small).super_tiles}
        assert len(media) == 3


def archived_entry(heaven):
    return heaven.archived("cube")


class TestRetrieval:
    REGION = MInterval.of((10, 50), (70, 120), (3, 12))

    def test_read_matches_source(self, archived_heaven, cube_mdd):
        expect = cube_mdd.source.region(self.REGION, cube_mdd.cell_type)
        got = archived_heaven.read("col", "cube", self.REGION)
        assert np.array_equal(got, expect)

    def test_report_counts(self, archived_heaven):
        _cells, report = archived_heaven.read_with_report("col", "cube", self.REGION)
        assert report.tiles_needed > 0
        assert report.super_tiles_staged > 0
        assert report.bytes_from_tape >= report.bytes_useful * 0  # staged runs
        assert report.virtual_seconds > 0

    def test_second_read_served_from_cache(self, archived_heaven):
        archived_heaven.read("col", "cube", self.REGION)
        _cells, report = archived_heaven.read_with_report("col", "cube", self.REGION)
        assert report.bytes_from_tape == 0
        assert report.super_tiles_staged == 0

    def test_cached_read_much_faster(self, archived_heaven):
        _c, cold = archived_heaven.read_with_report("col", "cube", self.REGION)
        _c, warm = archived_heaven.read_with_report("col", "cube", self.REGION)
        assert warm.virtual_seconds < cold.virtual_seconds / 10

    def test_partial_run_widened_on_demand(self, archived_heaven, cube_mdd):
        """A later read needing more of a cached segment restages it."""
        thin = MInterval.of((0, 10), (0, 10), (0, 2))
        archived_heaven.read("col", "cube", thin)
        wide = MInterval.of((0, 127), (0, 127), (0, 31))
        got = archived_heaven.read("col", "cube", wide)
        expect = cube_mdd.source.region(wide, cube_mdd.cell_type)
        assert np.array_equal(got, expect)

    def test_single_tile_resolver_path(self, archived_heaven, cube_mdd):
        """Reading through mdd.read directly (no prepare) stages on demand."""
        region = MInterval.of((0, 5), (0, 5), (0, 5))
        expect = cube_mdd.source.region(region, cube_mdd.cell_type)
        assert np.array_equal(cube_mdd.read(region), expect)

    def test_access_statistics_recorded(self, archived_heaven):
        archived_heaven.read("col", "cube", self.REGION)
        stats = archived_heaven.access_stats["cube"]
        assert stats.queries == 1

    def test_unarchived_object_reads_from_disk(self, heaven_small, small_mdd):
        heaven_small.create_collection("d")
        heaven_small.insert("d", small_mdd)
        region = MInterval.of((0, 20), (0, 20))
        expect = small_mdd.source.region(region, small_mdd.cell_type)
        got = heaven_small.read("d", "small", region)
        assert np.array_equal(got, expect)
        assert heaven_small.library.stats().bytes_read == 0


class TestQueryIntegration:
    def test_query_over_archived_object(self, archived_heaven, cube_mdd):
        results = archived_heaven.query(
            "select avg_cells(c[0:31, 0:31, 0:7]) from col as c"
        )
        expect = cube_mdd.source.region(
            MInterval.of((0, 31), (0, 31), (0, 7)), cube_mdd.cell_type
        ).mean()
        assert results[0].scalar() == pytest.approx(expect)

    def test_tile_aligned_condenser_answered_from_catalog(self, archived_heaven):
        tape_before = archived_heaven.library.stats().bytes_read
        archived_heaven.query("select avg_cells(c[0:31, 0:31, 0:7]) from col as c")
        assert archived_heaven.precomputed.stats.answered_pure >= 1
        assert archived_heaven.library.stats().bytes_read == tape_before

    def test_frame_query_extension(self, archived_heaven, cube_mdd):
        results = archived_heaven.query(
            'select avg_cells(frame(c, "0:9,0:9,0:9; 30:39,0:9,0:9")) from col as c'
        )
        assert len(results) == 1

    def test_frame_extension_validates_args(self, archived_heaven):
        with pytest.raises(HeavenError):
            archived_heaven.query('select frame(c) from col as c')


class TestSnapshot:
    def test_snapshot_keys(self, archived_heaven):
        archived_heaven.read("col", "cube", MInterval.of((0, 9), (0, 9), (0, 9)))
        snap = archived_heaven.snapshot()
        assert snap["archived_objects"] == ["cube"]
        assert snap["virtual_seconds"] > 0
        assert "exchange" in snap["time_breakdown"]
