"""Tests for the Super-Tile concept and the STAR algorithm."""

import pytest

from repro.arrays import DOUBLE, MDD, MInterval, RegularTiling, SizeBoundedTiling
from repro.core import (
    SuperTile,
    grid_block_shape,
    run_pack_partition,
    star_partition,
    tiles_to_super_tiles,
)
from repro.errors import HeavenError

KB = 1024


def grid_object(shape=(128, 128), tile=(32, 32)):
    """16 tiles of 8 KB each (32*32*8 B)."""
    return MDD("g", MInterval.from_shape(shape), DOUBLE, tiling=RegularTiling(tile))


class TestGridBlockShape:
    def test_fills_fastest_axis_first(self):
        shape = grid_block_shape([4, 4], 8, axis_order=[1, 0])
        assert shape == [2, 4]

    def test_caps_at_grid_counts(self):
        shape = grid_block_shape([2, 3], 100, axis_order=[1, 0])
        assert shape == [2, 3]

    def test_single_tile_blocks(self):
        assert grid_block_shape([4, 4], 1, axis_order=[1, 0]) == [1, 1]

    def test_custom_axis_order(self):
        shape = grid_block_shape([4, 4], 4, axis_order=[0, 1])
        assert shape == [4, 1]

    def test_non_permutation_rejected(self):
        with pytest.raises(HeavenError):
            grid_block_shape([4, 4], 4, axis_order=[0, 0])


class TestStarPartition:
    def test_partition_covers_all_tiles_once(self):
        mdd = grid_object()
        super_tiles = star_partition(mdd, 32 * KB)  # 4 tiles per super-tile
        assert sum(st.tile_count for st in super_tiles) == 16
        assert len({t for st in super_tiles for t in st.tile_ids}) == 16

    def test_target_size_respected(self):
        mdd = grid_object()
        super_tiles = star_partition(mdd, 32 * KB)
        assert len(super_tiles) == 4
        for st in super_tiles:
            assert st.size_bytes == 32 * KB

    def test_members_are_spatially_contiguous(self):
        mdd = grid_object()
        super_tiles = star_partition(mdd, 32 * KB)
        for st in super_tiles:
            hull_cells = st.domain.cell_count
            member_cells = sum(mdd.tiles[t].domain.cell_count for t in st.tile_ids)
            assert hull_cells == member_cells  # hull has no holes

    def test_one_tile_target_gives_tile_per_super_tile(self):
        mdd = grid_object()
        super_tiles = star_partition(mdd, 8 * KB)
        assert len(super_tiles) == 16

    def test_huge_target_gives_single_super_tile(self):
        mdd = grid_object()
        super_tiles = star_partition(mdd, 10**9)
        assert len(super_tiles) == 1
        assert super_tiles[0].domain == mdd.domain

    def test_nonpositive_target_rejected(self):
        with pytest.raises(HeavenError):
            star_partition(grid_object(), 0)

    def test_axis_order_changes_block_orientation(self):
        mdd = grid_object()
        default = star_partition(mdd, 32 * KB)  # fills axis 1 first
        transposed = star_partition(mdd, 32 * KB, axis_order=[0, 1])
        assert default[0].domain.shape == (32, 128)
        assert transposed[0].domain.shape == (128, 32)

    def test_irregular_tiling_falls_back_to_run_packing(self):
        mdd = MDD(
            "irr",
            MInterval.from_shape((100, 100)),
            DOUBLE,
            tiling=SizeBoundedTiling(8 * KB),
        )
        # SizeBoundedTiling builds a grid but the MDD uses an R-tree index
        # only for non-regular schemes; size tiling is regular under the
        # hood, so force the fallback path directly:
        super_tiles = run_pack_partition(mdd, 32 * KB)
        assert sum(st.tile_count for st in super_tiles) == mdd.tile_count()

    def test_3d_partition(self):
        mdd = MDD(
            "cube",
            MInterval.from_shape((64, 64, 64)),
            DOUBLE,
            tiling=RegularTiling((32, 32, 32)),
        )
        super_tiles = star_partition(mdd, 4 * 32 * 32 * 32 * 8)
        assert len(super_tiles) == 2
        assert all(st.tile_count == 4 for st in super_tiles)


class TestRunPackPartition:
    def test_respects_target(self):
        mdd = grid_object()
        super_tiles = run_pack_partition(mdd, 24 * KB)  # 3 tiles of 8 KB fit
        assert all(st.size_bytes <= 24 * KB for st in super_tiles)

    def test_single_oversized_tile_gets_own_super_tile(self):
        mdd = grid_object()
        super_tiles = run_pack_partition(mdd, 4 * KB)  # smaller than one tile
        assert len(super_tiles) == 16


class TestSuperTileExtents:
    def test_assign_extents_back_to_back(self):
        mdd = grid_object()
        st = star_partition(mdd, 32 * KB)[0]
        st.assign_extents({t: mdd.tiles[t].size_bytes for t in st.tile_ids})
        offsets = [st.tile_extents[t][0] for t in st.tile_ids]
        assert offsets == [0, 8 * KB, 16 * KB, 24 * KB]

    def test_extents_must_sum_to_size(self):
        mdd = grid_object()
        st = star_partition(mdd, 32 * KB)[0]
        with pytest.raises(HeavenError):
            st.assign_extents({t: 1 for t in st.tile_ids})

    def test_run_covering(self):
        mdd = grid_object()
        st = star_partition(mdd, 32 * KB)[0]
        st.assign_extents({t: mdd.tiles[t].size_bytes for t in st.tile_ids})
        second, third = st.tile_ids[1], st.tile_ids[2]
        start, length = st.run_covering([second, third])
        assert start == 8 * KB and length == 16 * KB

    def test_run_covering_needs_tiles(self):
        st = SuperTile(0, "x", [0], MInterval.of((0, 1)), 16)
        st.assign_extents({0: 16})
        with pytest.raises(HeavenError):
            st.run_covering([])

    def test_tiles_to_super_tiles_map(self):
        mdd = grid_object()
        super_tiles = star_partition(mdd, 32 * KB)
        mapping = tiles_to_super_tiles(super_tiles)
        assert set(mapping) == set(mdd.tiles)
        for st in super_tiles:
            for tile_id in st.tile_ids:
                assert mapping[tile_id] is st
