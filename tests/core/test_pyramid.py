"""Tests for materialised scaling pyramids."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling, RGB
from repro.arrays.query.executor import MDDRef
from repro.core import Heaven, HeavenConfig, PyramidCatalog
from repro.errors import HeavenError
from repro.tertiary import MB


@pytest.fixture
def mdd():
    return MDD(
        "m",
        MInterval.of((0, 63), (0, 63)),
        DOUBLE,
        tiling=RegularTiling((32, 32)),
        source=HashedNoiseSource(31, 0.0, 10.0),
    )


@pytest.fixture
def catalog(mdd):
    cat = PyramidCatalog()
    cat.build(mdd, [2, 4])
    return cat


class TestBuild:
    def test_levels_registered(self, mdd, catalog):
        assert catalog.has_object("m")
        assert catalog.levels_of("m") == [2, 4]

    def test_level_cells_are_block_means(self, mdd, catalog):
        base = mdd.read_all()
        ref = MDDRef(mdd)
        answer = catalog.try_answer(ref, [2, 2])
        assert answer is not None
        expect = base.reshape(32, 2, 32, 2).mean(axis=(1, 3))
        assert np.allclose(answer.cells, expect)

    def test_pyramid_size_fraction(self, mdd, catalog):
        # 2-D levels at 2 and 4: 1/4 + 1/16 of the base size.
        expected = mdd.size_bytes * (1 / 4 + 1 / 16)
        assert catalog.total_bytes("m") == pytest.approx(expected, rel=0.01)

    def test_factors_below_two_rejected(self, mdd):
        with pytest.raises(HeavenError):
            PyramidCatalog().build(mdd, [1])

    def test_struct_cells_rejected(self):
        mdd = MDD("rgb", MInterval.of((0, 7), (0, 7)), RGB)
        with pytest.raises(HeavenError):
            PyramidCatalog().build(mdd, [2])

    def test_drop_and_invalidate(self, catalog):
        catalog.invalidate("m")
        assert not catalog.has_object("m")


class TestTryAnswer:
    def test_aligned_subregion(self, mdd, catalog):
        ref = MDDRef(mdd).subset([(0, 31, False), (32, 63, False)])
        answer = catalog.try_answer(ref, [2, 2])
        assert answer is not None
        assert answer.domain == MInterval.of((0, 15), (16, 31))
        expect = mdd.read(MInterval.of((0, 31), (32, 63)))
        assert np.allclose(
            answer.cells, expect.reshape(16, 2, 16, 2).mean(axis=(1, 3))
        )

    def test_unaligned_region_declined(self, mdd, catalog):
        ref = MDDRef(mdd).subset([(1, 32, False), (0, 63, False)])
        assert catalog.try_answer(ref, [2, 2]) is None
        assert catalog.stats.declined == 1

    def test_missing_factor_declined(self, mdd, catalog):
        assert catalog.try_answer(MDDRef(mdd), [8, 8]) is None

    def test_anisotropic_declined(self, mdd, catalog):
        assert catalog.try_answer(MDDRef(mdd), [2, 4]) is None

    def test_unknown_object_declined(self, catalog):
        other = MDD("other", MInterval.of((0, 7), (0, 7)))
        assert catalog.try_answer(MDDRef(other), [2, 2]) is None

    def test_sectioned_ref_declined(self, mdd, catalog):
        ref = MDDRef(mdd).subset([(3, 3, True), (0, 63, False)])
        assert catalog.try_answer(ref, [2]) is None

    def test_answer_is_a_copy(self, mdd, catalog):
        a = catalog.try_answer(MDDRef(mdd), [2, 2])
        b = catalog.try_answer(MDDRef(mdd), [2, 2])
        a.cells[0, 0] = 12345.0
        assert b.cells[0, 0] != 12345.0


class TestHeavenIntegration:
    def make_heaven(self, factors=(2, 4)):
        heaven = Heaven(
            HeavenConfig(
                super_tile_bytes=512 * 1024,
                disk_cache_bytes=32 * MB,
                memory_cache_bytes=8 * MB,
                pyramid_factors=factors,
            )
        )
        heaven.create_collection("col")
        mdd = MDD(
            "obj",
            MInterval.of((0, 127), (0, 127)),
            DOUBLE,
            tiling=RegularTiling((32, 32)),
            source=HashedNoiseSource(8, 0.0, 1.0),
        )
        heaven.insert("col", mdd)
        heaven.archive("col", "obj")
        return heaven, mdd

    def test_scale_query_answered_without_tape(self):
        heaven, mdd = self.make_heaven()
        tape_before = heaven.library.stats().bytes_read
        results = heaven.query("select scale(c, 4, 4) from col as c")
        assert heaven.library.stats().bytes_read == tape_before
        assert heaven.pyramids.stats.answered == 1
        assert results[0].value.domain.shape == (32, 32)

    def test_scale_result_matches_direct_computation(self):
        heaven, mdd = self.make_heaven()
        results = heaven.query("select scale(c, 2, 2) from col as c")
        base = mdd.source.region(mdd.domain, mdd.cell_type)
        expect = base.reshape(64, 2, 64, 2).mean(axis=(1, 3))
        assert np.allclose(results[0].value.cells, expect)

    def test_unavailable_factor_falls_back_to_tape(self):
        heaven, mdd = self.make_heaven(factors=(2,))
        tape_before = heaven.library.stats().bytes_read
        heaven.query("select scale(c, 8, 8) from col as c")
        assert heaven.library.stats().bytes_read > tape_before

    def test_update_invalidates_pyramids(self):
        heaven, mdd = self.make_heaven()
        heaven.update(
            "col", "obj", MInterval.of((0, 3), (0, 3)), np.zeros((4, 4))
        )
        assert not heaven.pyramids.has_object("obj")

    def test_delete_drops_pyramids(self):
        heaven, _ = self.make_heaven()
        heaven.delete("col", "obj")
        assert not heaven.pyramids.has_object("obj")

    def test_pyramids_off_by_default(self, heaven_small, cube_mdd):
        heaven_small.create_collection("col")
        heaven_small.insert("col", cube_mdd)
        heaven_small.archive("col", "cube")
        assert not heaven_small.pyramids.has_object("cube")
