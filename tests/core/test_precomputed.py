"""Tests for the precomputed-results catalog."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling, RGB
from repro.arrays.query.executor import MDDRef
from repro.core import PrecomputedCatalog, TileAggregate
from repro.errors import HeavenError


@pytest.fixture
def mdd():
    return MDD(
        "m",
        MInterval.of((0, 39), (0, 39)),
        DOUBLE,
        tiling=RegularTiling((20, 20)),
        source=HashedNoiseSource(21, 0.0, 10.0),
    )


@pytest.fixture
def catalog(mdd):
    cat = PrecomputedCatalog()
    cat.register_object(mdd)
    return cat


class TestTileAggregate:
    def test_of_array(self):
        cells = np.array([[1.0, 2.0], [3.0, 4.0]])
        agg = TileAggregate.of(cells)
        assert agg.count == 4
        assert agg.total == 10.0
        assert agg.minimum == 1.0
        assert agg.maximum == 4.0

    def test_struct_rejected(self):
        cells = np.zeros((2, 2), dtype=RGB.dtype)
        with pytest.raises(HeavenError):
            TileAggregate.of(cells)


class TestRegistration:
    def test_register_counts_tiles(self, mdd):
        catalog = PrecomputedCatalog()
        assert catalog.register_object(mdd) == 4
        assert catalog.has_object("m")

    def test_struct_object_rejected(self):
        catalog = PrecomputedCatalog()
        mdd = MDD("rgb", MInterval.of((0, 3), (0, 3)), RGB)
        with pytest.raises(HeavenError):
            catalog.register_object(mdd)

    def test_drop_object(self, mdd, catalog):
        catalog.drop_object("m")
        assert not catalog.has_object("m")


class TestTryAnswer:
    def test_pure_answer_on_tile_aligned_region(self, mdd, catalog):
        ref = MDDRef(mdd).subset([(0, 19, False), (0, 39, False)])  # tiles 0,1
        expect = mdd.read(MInterval.of((0, 19), (0, 39)))
        assert catalog.try_answer("avg_cells", ref) == pytest.approx(expect.mean())
        assert catalog.try_answer("add_cells", ref) == pytest.approx(expect.sum())
        assert catalog.try_answer("max_cells", ref) == pytest.approx(expect.max())
        assert catalog.try_answer("min_cells", ref) == pytest.approx(expect.min())
        assert catalog.stats.answered_pure == 4
        assert catalog.stats.answered_hybrid == 0

    def test_pure_answer_reads_no_cells(self, mdd, catalog):
        reads = []
        original = mdd.read
        mdd.read = lambda region: (reads.append(region), original(region))[1]
        ref = MDDRef(mdd)  # whole object is tile-aligned
        catalog.try_answer("avg_cells", ref)
        assert reads == []

    def test_hybrid_answer_on_unaligned_region(self, mdd, catalog):
        region = MInterval.of((5, 33), (2, 37))
        ref = MDDRef(mdd).subset([(5, 33, False), (2, 37, False)])
        expect = mdd.read(region)
        assert catalog.try_answer("avg_cells", ref) == pytest.approx(expect.mean())
        assert catalog.stats.answered_hybrid == 1

    def test_hybrid_region_covering_one_full_tile(self, mdd, catalog):
        # Region covers tile 0 fully plus slivers of the others.
        region = MInterval.of((0, 24), (0, 24))
        ref = MDDRef(mdd).subset([(0, 24, False), (0, 24, False)])
        expect = mdd.read(region)
        assert catalog.try_answer("add_cells", ref) == pytest.approx(expect.sum())

    def test_declines_unknown_object(self, mdd):
        catalog = PrecomputedCatalog()
        assert catalog.try_answer("avg_cells", MDDRef(mdd)) is None
        assert catalog.stats.declined == 1

    def test_declines_nondecomposable_condenser(self, mdd, catalog):
        assert catalog.try_answer("var_cells", MDDRef(mdd)) is None

    def test_answer_with_sectioned_ref(self, mdd, catalog):
        ref = MDDRef(mdd).subset([(5, 5, True), (0, 39, False)])
        expect = mdd.read(MInterval.of((5, 5), (0, 39)))
        assert catalog.try_answer("avg_cells", ref) == pytest.approx(expect.mean())


class TestInvalidation:
    def test_invalidate_then_decline(self, mdd, catalog):
        catalog.invalidate_tiles("m", [0])
        ref = MDDRef(mdd).subset([(0, 19, False), (0, 19, False)])
        assert catalog.try_answer("avg_cells", ref) is None

    def test_refresh_tile_after_update(self, mdd, catalog):
        region = MInterval.of((0, 19), (0, 19))
        mdd.write(region, np.full((20, 20), 5.0))
        catalog.refresh_tile(mdd, 0)
        ref = MDDRef(mdd).subset([(0, 19, False), (0, 19, False)])
        assert catalog.try_answer("avg_cells", ref) == pytest.approx(5.0)

    def test_invalidate_unknown_object_is_noop(self, catalog):
        catalog.invalidate_tiles("ghost", [0])
