"""Tests for object framing: non-hypercube range queries."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import (
    BoxFrame,
    HalfSpaceFrame,
    MaskFrame,
    MultiBoxFrame,
    read_frame,
    tiles_in_frame,
)
from repro.errors import FramingError


@pytest.fixture
def mdd():
    return MDD(
        "m",
        MInterval.of((0, 99), (0, 99)),
        DOUBLE,
        tiling=RegularTiling((25, 25)),
        source=HashedNoiseSource(13, 0.0, 1.0),
    )


class TestBoxFrame:
    def test_mask_inside_and_outside(self):
        frame = BoxFrame(MInterval.of((2, 4), (2, 4)))
        mask = frame.mask(MInterval.of((0, 5), (0, 5)))
        assert mask[2, 2] and mask[4, 4]
        assert not mask[0, 0] and not mask[5, 5]

    def test_intersects_exact_geometry(self):
        frame = BoxFrame(MInterval.of((0, 9), (0, 9)))
        assert frame.intersects(MInterval.of((9, 20), (9, 20)))
        assert not frame.intersects(MInterval.of((10, 20), (0, 9)))


class TestMultiBoxFrame:
    def test_union_mask(self):
        frame = MultiBoxFrame(
            [MInterval.of((0, 1), (0, 1)), MInterval.of((3, 4), (3, 4))]
        )
        mask = frame.mask(MInterval.of((0, 4), (0, 4)))
        assert mask.sum() == 8
        assert frame.bounding_box() == MInterval.of((0, 4), (0, 4))

    def test_parse(self):
        frame = MultiBoxFrame.parse("0:9,0:9; 20:29,0:9")
        assert len(frame.boxes) == 2
        assert frame.boxes[1] == MInterval.of((20, 29), (0, 9))

    def test_parse_empty_rejected(self):
        with pytest.raises(FramingError):
            MultiBoxFrame.parse(" ; ")

    def test_empty_rejected(self):
        with pytest.raises(FramingError):
            MultiBoxFrame([])

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(FramingError):
            MultiBoxFrame([MInterval.of((0, 1)), MInterval.of((0, 1), (0, 1))])


class TestMaskFrame:
    def test_arbitrary_cells(self):
        domain = MInterval.of((0, 3), (0, 3))
        cells = np.eye(4, dtype=bool)
        frame = MaskFrame(domain, cells)
        mask = frame.mask(domain)
        assert np.array_equal(mask, cells)

    def test_mask_clipped_to_region(self):
        domain = MInterval.of((0, 3), (0, 3))
        frame = MaskFrame(domain, np.ones((4, 4), dtype=bool))
        mask = frame.mask(MInterval.of((2, 5), (2, 5)))
        assert mask[:2, :2].all()
        assert not mask[2:, :].any()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(FramingError):
            MaskFrame(MInterval.of((0, 3)), np.ones((5,), dtype=bool))


class TestHalfSpaceFrame:
    def test_diagonal_triangle(self):
        bounding = MInterval.of((0, 9), (0, 9))
        # x + y <= 9 : lower-left triangle (inclusive anti-diagonal).
        frame = HalfSpaceFrame(bounding, [([1.0, 1.0], 9.0)])
        mask = frame.mask(bounding)
        assert mask[0, 0] and mask[9, 0] and mask[0, 9]
        assert not mask[9, 9]
        assert mask.sum() == 55  # 10+9+...+1

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(FramingError):
            HalfSpaceFrame(MInterval.of((0, 9), (0, 9)), [([1.0], 1.0)])

    def test_needs_constraints(self):
        with pytest.raises(FramingError):
            HalfSpaceFrame(MInterval.of((0, 9)), [])


class TestTileSelection:
    def test_l_shape_skips_unneeded_tiles(self, mdd):
        # L-shape: left column of tiles plus bottom row of tiles.
        frame = MultiBoxFrame(
            [MInterval.of((0, 99), (0, 24)), MInterval.of((75, 99), (0, 99))]
        )
        needed = tiles_in_frame(mdd, frame)
        bounding_tiles = mdd.tiles_for(frame.bounding_box())
        assert len(needed) == 7  # 4 + 4 - 1 shared corner
        assert len(bounding_tiles) == 16

    def test_diagonal_frame_tile_saving(self, mdd):
        frame = HalfSpaceFrame(mdd.domain, [([1.0, 1.0], 99.0)])
        needed = tiles_in_frame(mdd, frame)
        assert len(needed) == 10  # upper-left triangle of the 4x4 tile grid
        assert len(mdd.tiles_for(mdd.domain)) == 16


class TestReadFrame:
    def test_framed_cells_match_direct_read(self, mdd):
        frame = MultiBoxFrame(
            [MInterval.of((0, 9), (0, 9)), MInterval.of((30, 39), (30, 39))]
        )
        framed, mask = read_frame(mdd, frame, fill=np.nan)
        direct = mdd.read(frame.bounding_box())
        assert framed.domain == frame.bounding_box()
        assert np.array_equal(framed.cells[mask], direct[mask])

    def test_outside_frame_is_fill(self, mdd):
        frame = BoxFrame(MInterval.of((0, 9), (0, 9)))
        big = MultiBoxFrame([frame.box, MInterval.of((20, 29), (20, 29))])
        framed, mask = read_frame(mdd, big, fill=-999.0)
        assert (framed.cells[~mask] == -999.0).all()

    def test_disjoint_frame_rejected(self, mdd):
        frame = BoxFrame(MInterval.of((500, 600), (0, 9)))
        with pytest.raises(FramingError):
            read_frame(mdd, frame)

    def test_aggregate_over_frame_mask(self, mdd):
        frame = HalfSpaceFrame(mdd.domain, [([1.0, 1.0], 50.0)])
        framed, mask = read_frame(mdd, frame)
        full = mdd.read_all()
        expect = full[frame.mask(mdd.domain)].mean()
        got = framed.cells[mask].mean()
        assert got == pytest.approx(expect)
