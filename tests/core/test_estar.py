"""Tests for eSTAR: access statistics, automatic size, intra clustering."""

import math

import pytest

from repro.arrays import DOUBLE, MDD, MInterval, RegularTiling
from repro.core import (
    AccessStatistics,
    estar_partition,
    intra_cluster_order,
    optimal_super_tile_bytes,
    star_partition,
)
from repro.errors import HeavenError
from repro.tertiary import DLT_7000, MB

DOMAIN = MInterval.from_shape((128, 128, 32))


def cube(name="c"):
    return MDD(name, DOMAIN, DOUBLE, tiling=RegularTiling((32, 32, 8)))


class TestAccessStatistics:
    def test_mean_fractions(self):
        stats = AccessStatistics(dimension=3)
        stats.record(MInterval.of((0, 63), (0, 127), (0, 3)), DOMAIN, 8)
        stats.record(MInterval.of((0, 127), (0, 127), (0, 3)), DOMAIN, 8)
        fractions = stats.mean_fractions()
        assert fractions[0] == pytest.approx(0.75)
        assert fractions[1] == pytest.approx(1.0)
        assert fractions[2] == pytest.approx(0.125)

    def test_axis_order_by_descending_fraction(self):
        stats = AccessStatistics(dimension=3)
        stats.record(MInterval.of((0, 63), (0, 127), (0, 3)), DOMAIN, 8)
        assert stats.axis_order() == [1, 0, 2]

    def test_no_queries_defaults(self):
        stats = AccessStatistics(dimension=3)
        assert stats.mean_fractions() == [1.0, 1.0, 1.0]
        assert stats.mean_request_bytes() is None
        # Tie-break falls back to innermost-axis-first (row-major default).
        assert stats.axis_order() == [2, 1, 0]

    def test_mean_request_bytes(self):
        stats = AccessStatistics(dimension=3)
        stats.record(MInterval.of((0, 9), (0, 9), (0, 9)), DOMAIN, 8)
        assert stats.mean_request_bytes() == pytest.approx(1000 * 8)

    def test_dimension_mismatch_rejected(self):
        stats = AccessStatistics(dimension=2)
        with pytest.raises(HeavenError):
            stats.record(MInterval.of((0, 1)), MInterval.of((0, 9)), 8)


class TestOptimalSize:
    def test_formula(self):
        expected_request = 100 * MB
        t_pos = DLT_7000.avg_seek_time_s / 2.0
        optimum = math.sqrt(expected_request * t_pos * DLT_7000.transfer_rate_bps)
        got = optimal_super_tile_bytes(DLT_7000, expected_request, 1, 10**12)
        assert got == pytest.approx(optimum, rel=0.01)

    def test_clamping(self):
        assert optimal_super_tile_bytes(DLT_7000, 1.0, 8 * MB, 16 * MB) == 8 * MB
        assert (
            optimal_super_tile_bytes(DLT_7000, 10**15, 8 * MB, 16 * MB) == 16 * MB
        )

    def test_never_exceeds_medium(self):
        size = optimal_super_tile_bytes(
            DLT_7000, 10**15, 1, 10 * DLT_7000.media_capacity_bytes
        )
        assert size <= DLT_7000.media_capacity_bytes

    def test_larger_requests_want_larger_super_tiles(self):
        small = optimal_super_tile_bytes(DLT_7000, 1 * MB, 1, 10**12)
        large = optimal_super_tile_bytes(DLT_7000, 100 * MB, 1, 10**12)
        assert large > small

    def test_nonpositive_request_rejected(self):
        with pytest.raises(HeavenError):
            optimal_super_tile_bytes(DLT_7000, 0.0, 1, 100)


class TestEstarPartition:
    def test_explicit_target_matches_star(self):
        mdd = cube()
        star = star_partition(mdd, 2 * MB)
        estar = estar_partition(mdd, DLT_7000, target_bytes=2 * MB)
        assert len(star) == len(estar)

    def test_auto_size_without_stats_uses_default_selectivity(self):
        mdd = cube()
        super_tiles = estar_partition(mdd, DLT_7000, min_bytes=64 * 1024)
        assert super_tiles  # partition exists and is valid
        assert sum(st.tile_count for st in super_tiles) == mdd.tile_count()

    def test_stats_reorient_blocks(self):
        mdd = cube()
        stats = AccessStatistics(dimension=3)
        # Queries span axis 0 fully, slice axis 2 thinly.
        for _ in range(5):
            stats.record(MInterval.of((0, 127), (0, 31), (0, 1)), DOMAIN, 8)
        super_tiles = estar_partition(
            mdd, DLT_7000, stats=stats, target_bytes=4 * 32 * 32 * 8 * 8
        )
        # Blocks should extend along axis 0 (most co-accessed) first.
        first = super_tiles[0]
        assert first.domain[0].extent == 128

    def test_auto_size_from_stats(self):
        mdd = cube()
        stats = AccessStatistics(dimension=3)
        stats.record(MInterval.of((0, 127), (0, 127), (0, 0)), DOMAIN, 8)
        super_tiles = estar_partition(mdd, DLT_7000, stats=stats, min_bytes=1024)
        assert sum(st.tile_count for st in super_tiles) == mdd.tile_count()


class TestIntraClusterOrder:
    def test_default_is_tile_id_order(self):
        mdd = cube()
        st = star_partition(mdd, 8 * MB)[0]
        assert intra_cluster_order(st, mdd) == sorted(st.tile_ids)

    def test_thin_axis_becomes_primary_sort_key(self):
        mdd = cube()
        stats = AccessStatistics(dimension=3)
        # Queries span axes 0 and 1 fully, cut axis 2 thinly.
        stats.record(MInterval.of((0, 127), (0, 127), (0, 1)), DOMAIN, 8)
        st = star_partition(mdd, mdd.size_bytes)[0]  # all tiles in one st
        order = intra_cluster_order(st, mdd, stats)
        origins = [mdd.tiles[t].domain.origin for t in order]
        # Axis 2 (thin) must vary slowest: all tiles with z=0 first.
        z_values = [o[2] for o in origins]
        assert z_values == sorted(z_values)

    def test_ordering_improves_run_length_for_thin_queries(self):
        """The point of intra clustering: needed tiles form a short run."""
        mdd = cube()
        stats = AccessStatistics(dimension=3)
        stats.record(MInterval.of((0, 127), (0, 127), (0, 1)), DOMAIN, 8)
        st = star_partition(mdd, mdd.size_bytes)[0]
        sizes = {t: mdd.tiles[t].size_bytes for t in st.tile_ids}

        # Tiles needed by a thin query at z in [0, 7] (first z-layer).
        needed = [t.tile_id for t in mdd.tiles_for(MInterval.of((0, 127), (0, 127), (0, 7)))]

        st.tile_ids = intra_cluster_order(st, mdd, stats)
        st.assign_extents(sizes)
        _start, clustered_run = st.run_covering(needed)

        st.tile_ids = sorted(st.tile_ids)
        st.assign_extents(sizes)
        _start, default_run = st.run_covering(needed)

        assert clustered_run < default_run
        assert clustered_run == sum(sizes[t] for t in needed)  # perfectly dense
