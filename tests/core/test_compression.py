"""Tests for per-tile compression of archived data."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, ConstantSource, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig, NoneCodec, ZlibCodec, codec_names, make_codec
from repro.errors import HeavenError
from repro.tertiary import MB


class TestCodecs:
    def test_names(self):
        assert codec_names() == ["none", "zlib"]

    def test_make_unknown_rejected(self):
        with pytest.raises(HeavenError):
            make_codec("lz4")

    def test_none_roundtrip(self):
        codec = NoneCodec()
        raw = b"abcdef"
        assert codec.decompress(codec.compress(raw), 6) == raw

    def test_none_size_mismatch_rejected(self):
        with pytest.raises(HeavenError):
            NoneCodec().decompress(b"abc", 5)

    def test_zlib_roundtrip(self):
        codec = ZlibCodec()
        raw = bytes(range(256)) * 16
        stored = codec.compress(raw)
        assert codec.decompress(stored, len(raw)) == raw

    def test_zlib_compresses_redundant_data(self):
        codec = ZlibCodec()
        raw = b"\x00" * 4096
        assert len(codec.compress(raw)) < 100

    def test_zlib_wrong_expected_size_rejected(self):
        codec = ZlibCodec()
        stored = codec.compress(b"x" * 100)
        with pytest.raises(HeavenError):
            codec.decompress(stored, 99)

    def test_zlib_level_validated(self):
        with pytest.raises(HeavenError):
            ZlibCodec(level=0)

    def test_stored_size_real_vs_estimated(self):
        codec = ZlibCodec()
        raw = b"\x01" * 1000
        assert codec.stored_size(1000, raw) == len(codec.compress(raw))
        assert codec.stored_size(1000, None) == 600  # 0.6 estimate

    def test_stored_size_never_zero(self):
        assert ZlibCodec().stored_size(0, None) == 1

    def test_incompressible_data_takes_stored_frame(self):
        # DEFLATE saves < 1/16 on high-entropy bytes -> raw is stored
        # verbatim behind a one-byte marker instead of inflating forever.
        codec = ZlibCodec()
        raw = np.random.default_rng(1).bytes(4096)
        stored = codec.compress(raw)
        assert stored == b"\x00" + raw
        assert codec.decompress(stored, 4096) == raw

    def test_stored_frame_view_is_zero_copy(self):
        codec = ZlibCodec()
        raw = np.random.default_rng(2).bytes(1024)
        stored = codec.compress(raw)
        view = codec.decompress_view(stored, 1024)
        assert view.readonly
        assert view.obj is stored  # a view over the frame, not a copy

    def test_stored_frame_size_mismatch_rejected(self):
        codec = ZlibCodec()
        stored = codec.compress(np.random.default_rng(3).bytes(512))
        with pytest.raises(HeavenError):
            codec.decompress(stored, 511)
        with pytest.raises(HeavenError):
            codec.decompress_view(stored, 513)

    def test_corrupt_frame_marker_rejected(self):
        codec = ZlibCodec()
        with pytest.raises(HeavenError):
            codec.decompress(b"\x07garbage", 7)
        with pytest.raises(HeavenError):
            codec.decompress(b"", 0)


def build_heaven(compression: str, source=None, retain=True):
    heaven = Heaven(
        HeavenConfig(
            compression=compression,
            super_tile_bytes=256 * 1024,
            disk_cache_bytes=32 * MB,
            memory_cache_bytes=8 * MB,
            retain_payload=retain,
        )
    )
    heaven.create_collection("col")
    mdd = MDD(
        "obj",
        MInterval.of((0, 127), (0, 127)),
        DOUBLE,
        tiling=RegularTiling((32, 32)),
        source=source if source is not None else ConstantSource(3.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "obj")
    return heaven, mdd


class TestCompressedArchive:
    def test_compressed_archive_uses_less_tape(self):
        plain, _ = build_heaven("none")
        packed, _ = build_heaven("zlib")
        plain_bytes = sum(m.used_bytes for m in plain.library.media())
        packed_bytes = sum(m.used_bytes for m in packed.library.media())
        assert packed_bytes < plain_bytes / 10  # constant field: huge ratio

    def test_reads_stay_correct_through_compression(self):
        source = HashedNoiseSource(3, 0.0, 50.0)
        heaven, mdd = build_heaven("zlib", source=source)
        region = MInterval.of((10, 90), (40, 110))
        expect = source.region(region, DOUBLE)
        assert np.array_equal(heaven.read("col", "obj", region), expect)

    def test_retrieval_moves_compressed_bytes(self):
        heaven, mdd = build_heaven("zlib")
        region = MInterval.of((0, 31), (0, 31))  # exactly one tile
        _cells, report = heaven.read_with_report("col", "obj", region)
        assert report.bytes_from_tape < mdd.tiles[0].size_bytes

    def test_stored_sizes_recorded(self):
        heaven, mdd = build_heaven("zlib")
        entry = heaven.archived("obj")
        assert entry.stored_sizes is not None
        assert set(entry.stored_sizes) == set(mdd.tiles)
        assert all(s >= 1 for s in entry.stored_sizes.values())

    def test_update_recompresses(self):
        source = HashedNoiseSource(5, 0.0, 9.0)
        heaven, mdd = build_heaven("zlib", source=source)
        region = MInterval.of((0, 31), (0, 31))
        patch = np.arange(1024, dtype=np.float64).reshape(32, 32)
        heaven.update("col", "obj", region, patch)
        assert np.array_equal(heaven.read("col", "obj", region), patch)
        # Untouched cells survive the recompression.
        other = MInterval.of((64, 95), (64, 95))
        assert np.array_equal(
            heaven.read("col", "obj", other), source.region(other, DOUBLE)
        )

    def test_size_only_mode_uses_estimate(self):
        heaven, mdd = build_heaven("zlib", retain=False)
        entry = heaven.archived("obj")
        tile_size = mdd.tiles[0].size_bytes
        assert all(
            s == int(tile_size * 0.6) for s in entry.stored_sizes.values()
        )
        # Reads fall back to the deterministic source and stay correct.
        region = MInterval.of((0, 10), (0, 10))
        assert np.array_equal(
            heaven.read("col", "obj", region),
            np.full((11, 11), 3.0),
        )

    def test_reimport_after_compressed_archive(self):
        source = HashedNoiseSource(9, -4.0, 4.0)
        heaven, mdd = build_heaven("zlib", source=source)
        whole = source.region(mdd.domain, DOUBLE)
        heaven.reimport("col", "obj")
        assert np.array_equal(mdd.read_all(), whole)

    def test_invalid_codec_name_rejected_at_config(self):
        with pytest.raises(HeavenError):
            Heaven(HeavenConfig(compression="lzma"))
