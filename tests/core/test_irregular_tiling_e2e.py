"""End-to-end tests for irregularly tiled objects through HEAVEN.

Non-regular tilings (directional, aligned) use the R-tree index; STAR then
falls back to run packing. Everything downstream — export, staging, caches,
queries — must work identically.
"""

import numpy as np
import pytest

from repro.arrays import (
    AlignedTiling,
    DOUBLE,
    DirectionalTiling,
    HashedNoiseSource,
    MDD,
    MInterval,
    RTreeIndex,
)
from repro.core import Heaven, HeavenConfig, run_pack_partition
from repro.tertiary import MB


def build(tiling):
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=64 * 1024,
            disk_cache_bytes=16 * MB,
            memory_cache_bytes=4 * MB,
        )
    )
    heaven.create_collection("col")
    mdd = MDD(
        "obj",
        MInterval.of((0, 63), (0, 63)),
        DOUBLE,
        tiling=tiling,
        source=HashedNoiseSource(23, 0.0, 3.0),
    )
    heaven.insert("col", mdd)
    return heaven, mdd


class TestDirectionalTilingE2E:
    TILING = DirectionalTiling([[20, 45], [32]])

    def test_uses_rtree_index(self):
        _heaven, mdd = build(self.TILING)
        assert isinstance(mdd.index, RTreeIndex)

    def test_archive_and_read(self):
        heaven, mdd = build(self.TILING)
        heaven.archive("col", "obj")
        region = MInterval.of((10, 50), (20, 60))
        expect = mdd.source.region(region, mdd.cell_type)
        assert np.array_equal(heaven.read("col", "obj", region), expect)

    def test_query_over_irregular_archive(self):
        heaven, mdd = build(self.TILING)
        heaven.archive("col", "obj")
        results = heaven.query("select avg_cells(c[0:19, 0:31]) from col as c")
        expect = mdd.source.region(
            MInterval.of((0, 19), (0, 31)), mdd.cell_type
        ).mean()
        assert results[0].scalar() == pytest.approx(expect)

    def test_run_pack_partition_sizes(self):
        _heaven, mdd = build(self.TILING)
        super_tiles = run_pack_partition(mdd, 64 * 1024)
        assert sum(st.tile_count for st in super_tiles) == mdd.tile_count()
        # Variable tile sizes: no super-tile overshoots (single-tile STs
        # excepted).
        for st in super_tiles:
            if st.tile_count > 1:
                assert st.size_bytes <= 64 * 1024


class TestAlignedTilingE2E:
    TILING = AlignedTiling(max_tile_bytes=16 * 1024, preferred_axes=[0])

    def test_archive_update_read(self):
        heaven, mdd = build(self.TILING)
        heaven.archive("col", "obj")
        region = MInterval.of((0, 63), (0, 3))
        patch = np.full((64, 4), 42.0)
        heaven.update("col", "obj", region, patch)
        assert np.array_equal(heaven.read("col", "obj", region), patch)

    def test_reimport_round_trip(self):
        heaven, mdd = build(self.TILING)
        truth = mdd.source.region(mdd.domain, mdd.cell_type)
        heaven.archive("col", "obj")
        heaven.reimport("col", "obj")
        assert np.array_equal(mdd.read_all(), truth)
