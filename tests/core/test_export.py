"""Tests for the export pipelines: coupled vs. decoupled TCT."""

import numpy as np
import pytest

from repro.arrays import ArrayStorage, DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import ClusteredPlacement, CoupledExporter, ScatterPlacement, TCTExporter, star_partition
from repro.dbms import Database
from repro.errors import ExportError
from repro.tertiary import DLT_7000, MB, SimClock, TapeLibrary, scaled_profile

PROFILE = scaled_profile(DLT_7000, 256 * MB)


@pytest.fixture
def rig():
    clock = SimClock()
    storage = ArrayStorage(Database(clock))
    library = TapeLibrary(PROFILE, clock=clock)
    storage.create_collection("c")
    mdd = MDD(
        "obj",
        MInterval.from_shape((256, 256)),   # 512 KB
        DOUBLE,
        tiling=RegularTiling((64, 64)),     # 16 tiles of 32 KB
        source=HashedNoiseSource(4),
    )
    storage.insert_object("c", mdd)
    return storage, library, mdd


class TestCoupledExporter:
    def test_one_segment_per_tile(self, rig):
        storage, library, mdd = rig
        report = CoupledExporter(storage, library).export(mdd)
        assert report.segments_written == 16
        assert report.bytes_written == mdd.size_bytes
        assert library.stats().bytes_written == mdd.size_bytes

    def test_payload_preserved_on_tape(self, rig):
        storage, library, mdd = rig
        CoupledExporter(storage, library).export(mdd)
        raw = library.read_segment(f"{mdd.oid}/t0")
        expect = mdd.materialize_tile(mdd.tiles[0]).tobytes()
        assert raw == expect

    def test_unpersisted_object_rejected(self, rig):
        storage, library, _ = rig
        loose = MDD("loose", MInterval.of((0, 7)))
        with pytest.raises(ExportError):
            CoupledExporter(storage, library).export(loose)

    def test_breakdown_includes_settle_per_tile(self, rig):
        storage, library, mdd = rig
        report = CoupledExporter(storage, library).export(mdd)
        assert report.breakdown.get("settle", 0) == pytest.approx(
            16 * PROFILE.stop_start_penalty_s
        )


class TestTCTExporter:
    def export_tct(self, rig, pipelined=True, target=4):
        storage, library, mdd = rig
        super_tiles = star_partition(mdd, target * 32 * 1024)
        plan = ClusteredPlacement().plan(super_tiles, library)
        report = TCTExporter(storage, library).export(mdd, plan, pipelined=pipelined)
        return report, super_tiles, library, mdd

    def test_one_segment_per_super_tile(self, rig):
        report, super_tiles, library, mdd = self.export_tct(rig)
        assert report.segments_written == len(super_tiles)
        assert report.bytes_written == mdd.size_bytes

    def test_placement_recorded_on_super_tiles(self, rig):
        _report, super_tiles, library, mdd = self.export_tct(rig)
        for st in super_tiles:
            assert st.exported
            assert library.has_segment(st.segment_name)
            assert st.tile_extents  # extents assigned

    def test_segment_payload_is_tile_concatenation(self, rig):
        _report, super_tiles, library, mdd = self.export_tct(rig)
        st = super_tiles[0]
        raw = library.medium(st.medium_id).payload(st.segment_name)
        expect = b"".join(
            mdd.materialize_tile(mdd.tiles[t]).tobytes() for t in st.tile_ids
        )
        assert raw == expect

    def test_tct_beats_coupled(self, rig):
        report_tct, _sts, _lib, _mdd = self.export_tct(rig)
        clock2 = SimClock()
        storage2 = ArrayStorage(Database(clock2))
        library2 = TapeLibrary(PROFILE, clock=clock2)
        storage2.create_collection("c")
        mdd2 = MDD(
            "obj",
            MInterval.from_shape((256, 256)),
            DOUBLE,
            tiling=RegularTiling((64, 64)),
            source=HashedNoiseSource(4),
        )
        storage2.insert_object("c", mdd2)
        report_coupled = CoupledExporter(storage2, library2).export(mdd2)
        assert report_tct.virtual_seconds < report_coupled.virtual_seconds

        # Excluding the one-time mount (identical in both runs), the win
        # from streaming + pipelining is large: settle is paid per tile in
        # the coupled path but per super-tile in the TCT path.
        def without_mount(report):
            mount = report.breakdown.get("exchange", 0) + report.breakdown.get("load", 0)
            return report.virtual_seconds - mount

        assert without_mount(report_coupled) / without_mount(report_tct) > 2

    def test_pipelining_hides_disk_time(self, rig):
        report_piped, _s, _l, _m = self.export_tct(rig, pipelined=True)
        storage, library, mdd = rig
        # Fresh rig for the unpipelined run.
        clock2 = SimClock()
        storage2 = ArrayStorage(Database(clock2))
        library2 = TapeLibrary(PROFILE, clock=clock2)
        storage2.create_collection("c")
        mdd2 = MDD(
            "obj",
            MInterval.from_shape((256, 256)),
            DOUBLE,
            tiling=RegularTiling((64, 64)),
            source=HashedNoiseSource(4),
        )
        storage2.insert_object("c", mdd2)
        super_tiles = star_partition(mdd2, 4 * 32 * 1024)
        plan = ClusteredPlacement().plan(super_tiles, library2)
        report_sync = TCTExporter(storage2, library2).export(
            mdd2, plan, pipelined=False
        )
        assert report_piped.virtual_seconds <= report_sync.virtual_seconds

    def test_scatter_placement_spreads_media(self, rig):
        storage, library, mdd = rig
        super_tiles = star_partition(mdd, 4 * 32 * 1024)
        plan = ScatterPlacement(spread=4).plan(super_tiles, library)
        TCTExporter(storage, library).export(mdd, plan)
        media = {st.medium_id for st in super_tiles}
        assert len(media) == 4

    def test_unpersisted_object_rejected(self, rig):
        storage, library, _ = rig
        loose = MDD("loose", MInterval.of((0, 7)))
        with pytest.raises(ExportError):
            TCTExporter(storage, library).export(loose, [])

    def test_throughput_property(self, rig):
        report, *_ = self.export_tct(rig)
        assert report.throughput_mb_s > 0
