"""Property tests for the zero-copy decode/assembly pipeline.

The zero-copy rewrite hands out read-only *views* over cache-owned
buffers instead of defensive copies, which moves the safety burden onto
three invariants this suite hammers with Hypothesis:

* **round-trip identity** — whatever shapes, tilings, codecs and read
  regions, the assembled cells are byte-identical to the source ground
  truth (a view with a wrong offset/stride corrupts silently, so this is
  checked cell-exact, not statistically);
* **no writable aliasing** — nothing the pipeline returns to a caller
  shares memory with a cache-owned array, and every cache-owned array is
  frozen (a writable alias lets one query corrupt another's bytes);
* **codec view/into variants agree with the plain path** — same bytes,
  proper overflow errors, read-only outputs.

A seed sweep over the whole-system simulation harness closes the loop:
the differential oracle replays every read against ground truth, so any
aliasing or stale-view bug the unit properties missed surfaces as a
byte-difference violation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.core.compression import NoneCodec, ZlibCodec
from repro.errors import HeavenError
from repro.simtest import generate_program, run_program
from repro.tertiary import MB

pytestmark = pytest.mark.property


# ---------------------------------------------------------------------------
# codec properties
# ---------------------------------------------------------------------------

CODECS = [NoneCodec(), ZlibCodec()]


@st.composite
def raw_payloads(draw):
    n = draw(st.integers(min_value=1, max_value=4096))
    kind = draw(st.sampled_from(["random", "constant", "ramp"]))
    if kind == "random":
        seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
        return np.random.default_rng(seed).bytes(n)
    if kind == "constant":
        byte = draw(st.integers(min_value=0, max_value=255))
        return bytes([byte]) * n
    return bytes(i % 251 for i in range(n))


class TestCodecViewVariants:
    @given(raw=raw_payloads())
    @settings(max_examples=40, deadline=None)
    def test_decompress_view_round_trips_read_only(self, raw):
        for codec in CODECS:
            stored = codec.compress(raw)
            view = codec.decompress_view(stored, len(raw))
            assert isinstance(view, memoryview)
            assert view.readonly
            assert bytes(view) == raw

    @given(raw=raw_payloads())
    @settings(max_examples=40, deadline=None)
    def test_decompress_into_fills_exact_buffer(self, raw):
        for codec in CODECS:
            stored = codec.compress(raw)
            out = memoryview(bytearray(len(raw)))
            n = codec.decompress_into(stored, out)
            assert n == len(raw)
            assert bytes(out) == raw

    @given(raw=raw_payloads())
    @settings(max_examples=20, deadline=None)
    def test_decompress_into_rejects_wrong_sized_buffer(self, raw):
        for codec in CODECS:
            stored = codec.compress(raw)
            too_small = memoryview(bytearray(len(raw) - 1)) if len(raw) > 1 else None
            if too_small is not None:
                with pytest.raises(HeavenError):
                    codec.decompress_into(stored, too_small)
            too_big = memoryview(bytearray(len(raw) + 1))
            with pytest.raises(HeavenError):
                codec.decompress_into(stored, too_big)

    @given(raw=raw_payloads())
    @settings(max_examples=20, deadline=None)
    def test_view_matches_plain_decompress(self, raw):
        for codec in CODECS:
            stored = codec.compress(raw)
            assert bytes(codec.decompress_view(stored, len(raw))) == codec.decompress(
                stored, len(raw)
            )

    @given(raw=raw_payloads())
    @settings(max_examples=20, deadline=None)
    def test_memoryview_input_accepted(self, raw):
        # The staging pipeline hands codecs memoryview slices of staged
        # runs, not bytes.
        for codec in CODECS:
            stored = memoryview(codec.compress(raw))
            assert bytes(codec.decompress_view(stored, len(raw))) == raw


# ---------------------------------------------------------------------------
# end-to-end pipeline properties
# ---------------------------------------------------------------------------

@st.composite
def read_scenarios(draw):
    side = draw(st.integers(min_value=8, max_value=40))
    tile = draw(st.integers(min_value=4, max_value=16))
    compression = draw(st.sampled_from(["none", "zlib"]))
    seed = draw(st.integers(min_value=0, max_value=999))
    lo0 = draw(st.integers(min_value=0, max_value=side - 1))
    hi0 = draw(st.integers(min_value=lo0, max_value=side - 1))
    lo1 = draw(st.integers(min_value=0, max_value=side - 1))
    hi1 = draw(st.integers(min_value=lo1, max_value=side - 1))
    return side, tile, compression, seed, ((lo0, hi0), (lo1, hi1))


def build_archived(side, tile, compression, seed):
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=8 * 1024,
            disk_cache_bytes=64 * 1024,
            memory_cache_bytes=16 * MB,
            compression=compression,
        )
    )
    heaven.create_collection("col")
    mdd = MDD(
        "obj",
        MInterval.of((0, side - 1), (0, side - 1)),
        DOUBLE,
        tiling=RegularTiling((tile, tile)),
        source=HashedNoiseSource(seed, 0.0, 5.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "obj")
    heaven.library.unmount_all()
    return heaven, mdd


class TestPipelineProperties:
    @given(scenario=read_scenarios())
    @settings(max_examples=25, deadline=None)
    def test_read_is_byte_identical_to_ground_truth(self, scenario):
        side, tile, compression, seed, bounds = scenario
        heaven, mdd = build_archived(side, tile, compression, seed)
        region = MInterval.of(*bounds)
        cells = heaven.read("col", "obj", region)
        expected = mdd.source.region(region, mdd.cell_type)
        assert cells.tobytes() == expected.tobytes()

    @given(scenario=read_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_results_never_alias_cache_and_cache_is_frozen(self, scenario):
        side, tile, compression, seed, bounds = scenario
        heaven, mdd = build_archived(side, tile, compression, seed)
        region = MInterval.of(*bounds)
        cells = heaven.read("col", "obj", region)
        assert cells.flags.writeable
        for tile_id in mdd.tiles:
            cached = heaven.memory_cache.get("obj", tile_id)
            if cached is None:
                continue
            assert not cached.flags.writeable
            assert not np.shares_memory(cells, cached)

    @given(scenario=read_scenarios())
    @settings(max_examples=15, deadline=None)
    def test_repeated_reads_stable_and_copyless(self, scenario):
        """A second read over warmed caches returns the same bytes and
        still performs zero redundant assembly copies — cached views stay
        intact across reads."""
        side, tile, compression, seed, bounds = scenario
        heaven, mdd = build_archived(side, tile, compression, seed)
        region = MInterval.of(*bounds)
        first = heaven.read("col", "obj", region).copy()
        second = heaven.read("col", "obj", region)
        assert first.tobytes() == second.tobytes()
        assert heaven.assembly_bytes_copied == 0

    @given(scenario=read_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_mutating_result_does_not_corrupt_cache(self, scenario):
        """The caller owns the result array outright: writing to it must
        not leak into cached tiles (the aliasing bug class the pipeline's
        copy discipline exists to prevent)."""
        side, tile, compression, seed, bounds = scenario
        heaven, mdd = build_archived(side, tile, compression, seed)
        region = MInterval.of(*bounds)
        cells = heaven.read("col", "obj", region)
        cells.fill(-1234.5)
        again = heaven.read("col", "obj", region)
        expected = mdd.source.region(region, mdd.cell_type)
        assert again.tobytes() == expected.tobytes()


# ---------------------------------------------------------------------------
# whole-system differential sweep
# ---------------------------------------------------------------------------

class TestSimtestByteIdentity:
    """The simulation harness replays read/read_many/read_frame/update
    against a ground-truth oracle; a clean sweep means the zero-copy
    rewrite changed no observable bytes anywhere in the op mix."""

    @pytest.mark.parametrize("seed", range(25))
    def test_seed_sweep_byte_identical(self, seed):
        result = run_program(generate_program(seed, num_ops=12))
        assert result.ok, result.summary()
