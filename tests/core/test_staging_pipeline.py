"""Tests for the batch staging pipeline: wave admission, cache pinning,
merged shared-super-tile runs, exact cost accounting and update naming.

These are the regression tests for the staging bugs fixed in the pinned
pipeline rework: early-staged segments must survive until assembly even
when the batch is larger than the disk cache (no per-tile restages), runs
of a super-tile shared by several queries must be merged before the tape
request is issued, and the retrieval report must match the event-log
ground truth byte for byte.
"""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import DiskCache, Heaven, HeavenConfig, LRUPolicy
from repro.errors import CacheError, CachePinnedError
from repro.tertiary import DISK_ARRAY, MB, SimClock


def make_heaven(**overrides):
    defaults = dict(
        super_tile_bytes=8 * 1024,    # 4 tiles of 2 KB per super-tile
        disk_cache_bytes=16 * 1024,   # two resident super-tiles at most
        memory_cache_bytes=16 * MB,
        num_drives=1,
    )
    defaults.update(overrides)
    heaven = Heaven(HeavenConfig(**defaults))
    heaven.create_collection("col")
    return heaven


def archive_objects(heaven, count=3, side=64):
    mdds = []
    for i in range(count):
        mdd = MDD(
            f"o{i}",
            MInterval.of((0, side - 1), (0, side - 1)),
            DOUBLE,
            tiling=RegularTiling((16, 16)),
            source=HashedNoiseSource(i, 0.0, 5.0),
        )
        heaven.insert("col", mdd)
        heaven.archive("col", mdd.name)
        mdds.append(mdd)
    heaven.library.unmount_all()
    return mdds


def window_ground_truth(log, start):
    """Event-log ground truth over ``[start, now)``: tape bytes, exchanges,
    restage fallbacks."""
    events = log.window(start)
    return (
        sum(e.bytes for e in events if e.kind == "read"),
        sum(1 for e in events if e.kind == "load"),
        sum(1 for e in events if e.kind == "restage"),
    )


class TestWaveAdmission:
    """A batch larger than the disk cache is served in pinned waves."""

    def run_batch(self):
        heaven = make_heaven()
        mdds = archive_objects(heaven)
        region = MInterval.of((0, 63), (0, 63))  # every tile of every object
        batch = [("col", m.name, region) for m in mdds]
        start = heaven.clock.log.cursor()
        outputs, report = heaven.read_many(batch)
        return heaven, mdds, region, outputs, report, start

    def test_no_restages_under_cache_pressure(self):
        heaven, mdds, _region, _outputs, report, start = self.run_batch()
        # Batch footprint (3 x 32 KB) is double the 16 KB disk cache.
        assert report.bytes_from_tape > heaven.disk_cache.capacity_bytes
        _bytes, _loads, restages = window_ground_truth(heaven.clock.log, start)
        assert restages == 0
        assert report.restages == 0
        assert heaven.restages == 0

    def test_multiple_waves_used(self):
        _heaven, _mdds, _region, _outputs, report, _start = self.run_batch()
        assert report.waves > 1
        assert report.pins > 0

    def test_report_matches_event_log_exactly(self):
        heaven, _mdds, _region, _outputs, report, start = self.run_batch()
        tape_bytes, loads, _restages = window_ground_truth(
            heaven.clock.log, start
        )
        assert report.bytes_from_tape == tape_bytes
        assert report.exchanges == loads

    def test_results_stay_correct(self):
        _heaven, mdds, region, outputs, _report, _start = self.run_batch()
        for cells, mdd in zip(outputs, mdds):
            expect = mdd.source.region(region, mdd.cell_type)
            assert np.array_equal(cells, expect)

    def test_all_pins_released_after_batch(self):
        heaven, _mdds, _region, _outputs, _report, _start = self.run_batch()
        assert heaven.disk_cache.pinned_bytes == 0
        assert heaven.disk_cache.pinned_keys() == []

    def test_segment_larger_than_whole_cache_degrades_gracefully(self):
        # Runs that exceed the cache capacity outright cannot be staged at
        # all; their tiles must be decoded straight into the memory cache.
        heaven = make_heaven(disk_cache_bytes=6 * 1024)  # < one 8 KB segment
        mdds = archive_objects(heaven, count=2)
        region = MInterval.of((0, 63), (0, 63))
        start = heaven.clock.log.cursor()
        outputs, report = heaven.read_many(
            [("col", m.name, region) for m in mdds]
        )
        _bytes, _loads, restages = window_ground_truth(heaven.clock.log, start)
        assert restages == 0
        assert heaven.disk_cache.pinned_bytes == 0
        for cells, mdd in zip(outputs, mdds):
            expect = mdd.source.region(region, mdd.cell_type)
            assert np.array_equal(cells, expect)
        assert report.bytes_from_tape == _bytes

    def test_single_reads_under_pressure_also_exact(self):
        heaven = make_heaven()
        (mdd,) = archive_objects(heaven, count=1)
        region = MInterval.of((0, 63), (0, 63))
        start = heaven.clock.log.cursor()
        cells, report = heaven.read_with_report("col", "o0", region)
        tape_bytes, loads, _ = window_ground_truth(heaven.clock.log, start)
        assert report.bytes_from_tape == tape_bytes
        assert report.exchanges == loads
        assert np.array_equal(cells, mdd.source.region(region, DOUBLE))


class TestMergedRuns:
    """Queries sharing a super-tile get ONE tape request covering both."""

    def shared_super_tile_heaven(self):
        # One 32 KB super-tile holds all 16 tiles of the object.
        heaven = make_heaven(
            super_tile_bytes=1 * MB,
            disk_cache_bytes=4 * MB,
            partial_super_tile_reads=True,
        )
        (mdd,) = archive_objects(heaven, count=1)
        entry = heaven.archived("o0")
        assert len(entry.super_tiles) == 1
        return heaven, mdd, entry

    def test_partial_runs_merge_across_the_batch(self):
        heaven, mdd, entry = self.shared_super_tile_heaven()
        near = MInterval.of((0, 15), (0, 15))      # first tile
        far = MInterval.of((48, 63), (48, 63))     # last tile
        start = heaven.clock.log.cursor()
        outputs, _report = heaven.read_many(
            [("col", "o0", near), ("col", "o0", far)]
        )
        reads = [
            e for e in heaven.clock.log.window(start) if e.kind == "read"
        ]
        # One merged request, not one partial run per query.
        assert len(reads) == 1
        st = entry.super_tiles[0]
        union = sorted(
            {t.tile_id for t in mdd.tiles_for(near)}
            | {t.tile_id for t in mdd.tiles_for(far)}
        )
        expect_offset, expect_length = st.run_covering(union)
        run = entry.staged_runs[st.segment_name]
        assert run[0] <= expect_offset
        assert run[0] + run[1] >= expect_offset + expect_length
        assert np.array_equal(outputs[0], mdd.source.region(near, DOUBLE))
        assert np.array_equal(outputs[1], mdd.source.region(far, DOUBLE))

    def test_merged_run_cheaper_than_serial_partial_reads(self):
        heaven, _mdd, _entry = self.shared_super_tile_heaven()
        near = MInterval.of((0, 15), (0, 15))
        far = MInterval.of((48, 63), (48, 63))
        _outputs, report = heaven.read_many(
            [("col", "o0", near), ("col", "o0", far)]
        )
        assert report.exchanges == 1


class TestPinnedCache:
    """Pinned entries are unevictable; exhaustion raises a typed error."""

    def cache(self):
        return DiskCache(10 * MB, LRUPolicy(), DISK_ARRAY, SimClock())

    def test_insert_raises_when_everything_is_pinned(self):
        cache = self.cache()
        cache.insert("a", 6 * MB, 1.0, pin=True)
        with pytest.raises(CachePinnedError):
            cache.insert("b", 6 * MB, 1.0)
        assert cache.stats.pin_evictions_blocked > 0
        assert "a" in cache  # the pinned entry survived the attempt

    def test_unpin_makes_entry_evictable_again(self):
        cache = self.cache()
        cache.insert("a", 6 * MB, 1.0, pin=True)
        cache.unpin("a")
        cache.insert("b", 6 * MB, 1.0)
        assert "a" not in cache
        assert "b" in cache

    def test_eviction_skips_pinned_lru_entry(self):
        cache = self.cache()
        cache.insert("old", 4 * MB, 1.0, pin=True)
        cache.insert("new", 4 * MB, 1.0)
        cache.insert("newer", 4 * MB, 1.0)  # LRU victim would be "old"
        assert "old" in cache
        assert "new" not in cache

    def test_pin_refcounts(self):
        cache = self.cache()
        cache.insert("a", 1 * MB, 1.0)
        cache.pin("a")
        cache.pin("a")
        assert cache.pin_count("a") == 2
        cache.unpin("a")
        assert cache.is_pinned("a")
        cache.unpin("a")
        assert not cache.is_pinned("a")
        assert cache.stats.pins == 2
        assert cache.stats.unpins == 2

    def test_pin_absent_and_unpin_unpinned_rejected(self):
        cache = self.cache()
        with pytest.raises(CacheError):
            cache.pin("ghost")
        cache.insert("a", 1 * MB, 1.0)
        with pytest.raises(CacheError):
            cache.unpin("a")

    def test_invalidate_clears_pins(self):
        cache = self.cache()
        cache.insert("a", 1 * MB, 1.0, pin=True)
        assert cache.invalidate("a")
        assert not cache.is_pinned("a")
        assert cache.pinned_bytes == 0

    def test_pinned_bytes_tracks_pinned_entries_only(self):
        cache = self.cache()
        cache.insert("a", 2 * MB, 1.0, pin=True)
        cache.insert("b", 3 * MB, 1.0)
        assert cache.pinned_bytes == 2 * MB
        cache.unpin("a")
        assert cache.pinned_bytes == 0

    def test_typed_error_is_a_cache_error(self):
        assert issubclass(CachePinnedError, CacheError)


class TestUpdateSegmentNaming:
    """Updated segments get monotonic version suffixes, not timestamps."""

    def test_versions_are_monotonic_and_stable_length(self):
        heaven = make_heaven(super_tile_bytes=1 * MB, disk_cache_bytes=4 * MB)
        (mdd,) = archive_objects(heaven, count=1)
        region = MInterval.of((0, 15), (0, 15))
        patch = np.full((16, 16), 7.5, dtype=np.float64)

        heaven.update("col", "o0", region, patch)
        entry = heaven.archived("o0")
        first = entry.super_tiles[0].segment_name
        assert first.endswith(".v1")

        heaven.update("col", "o0", region, patch)
        second = heaven.archived("o0").super_tiles[0].segment_name
        assert second.endswith(".v2")
        # The version suffix replaces the previous one, it never stacks.
        assert second.count(".v") == 1
        assert len(second) == len(first)

    def test_updates_at_same_virtual_time_never_collide(self):
        # The old scheme derived names from the clock, colliding whenever
        # two updates landed within the same virtual millisecond.
        heaven = make_heaven(super_tile_bytes=1 * MB, disk_cache_bytes=4 * MB)
        archive_objects(heaven, count=1)
        region = MInterval.of((0, 15), (0, 15))
        names = set()
        for value in range(3):
            patch = np.full((16, 16), float(value), dtype=np.float64)
            heaven.update("col", "o0", region, patch)
            names.add(heaven.archived("o0").super_tiles[0].segment_name)
        assert len(names) == 3
        cells = heaven.read("col", "o0", region)
        assert np.array_equal(cells, np.full((16, 16), 2.0))
