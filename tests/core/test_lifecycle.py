"""Tests for archive lifecycle: delete, update, re-import, prefetch."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.errors import HeavenError
from repro.tertiary import MB


def build_heaven(**overrides):
    config = HeavenConfig(
        super_tile_bytes=32 * 1024,  # 4 tiles per super-tile -> 4 super-tiles
        disk_cache_bytes=16 * MB,
        memory_cache_bytes=4 * MB,
        **overrides,
    )
    heaven = Heaven(config)
    heaven.create_collection("col")
    mdd = MDD(
        "obj",
        MInterval.of((0, 127), (0, 127)),
        DOUBLE,
        tiling=RegularTiling((32, 32)),
        source=HashedNoiseSource(3, 0.0, 50.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "obj")
    return heaven, mdd


class TestDelete:
    def test_delete_removes_all_layers(self):
        heaven, mdd = build_heaven()
        heaven.read("col", "obj", MInterval.of((0, 31), (0, 31)))
        heaven.delete("col", "obj")
        assert not heaven.is_archived("obj")
        assert "obj" not in heaven.collection("col")
        assert not heaven.precomputed.has_object("obj")
        # All tape segments gone from the directory.
        assert all(
            len(m) == 0 for m in heaven.library.media()
        )

    def test_read_after_delete_fails(self):
        heaven, _ = build_heaven()
        heaven.delete("col", "obj")
        with pytest.raises(Exception):
            heaven.read("col", "obj", MInterval.of((0, 1), (0, 1)))


class TestUpdate:
    def test_update_changes_cells(self):
        heaven, mdd = build_heaven()
        region = MInterval.of((10, 19), (10, 19))
        patch = np.full((10, 10), -77.0)
        count = heaven.update("col", "obj", region, patch)
        assert count >= 1
        assert np.array_equal(heaven.read("col", "obj", region), patch)

    def test_update_preserves_rest_of_object(self):
        heaven, mdd = build_heaven()
        untouched = MInterval.of((100, 120), (100, 120))
        before = heaven.read("col", "obj", untouched).copy()
        heaven.update(
            "col", "obj", MInterval.of((0, 9), (0, 9)), np.zeros((10, 10))
        )
        assert np.array_equal(heaven.read("col", "obj", untouched), before)

    def test_update_refreshes_precomputed(self):
        heaven, _ = build_heaven()
        region = MInterval.of((0, 31), (0, 31))  # exactly tile 0
        heaven.update("col", "obj", region, np.full((32, 32), 4.0))
        results = heaven.query("select avg_cells(c[0:31, 0:31]) from col as c")
        assert results[0].scalar() == pytest.approx(4.0)

    def test_update_writes_new_segments(self):
        heaven, _ = build_heaven()
        segments_before = sum(len(m) for m in heaven.library.media())
        heaven.update(
            "col", "obj", MInterval.of((0, 9), (0, 9)), np.zeros((10, 10))
        )
        segments_after = sum(len(m) for m in heaven.library.media())
        assert segments_after == segments_before  # one deleted, one added

    def test_update_unarchived_object_writes_in_place(self):
        heaven = Heaven(HeavenConfig(super_tile_bytes=512 * 1024))
        heaven.create_collection("d")
        mdd = MDD("plain", MInterval.of((0, 31), (0, 31)), DOUBLE)
        heaven.insert("d", mdd)
        count = heaven.update(
            "d", "plain", MInterval.of((0, 3), (0, 3)), np.ones((4, 4))
        )
        assert count == 0
        assert np.array_equal(
            heaven.read("d", "plain", MInterval.of((0, 3), (0, 3))), np.ones((4, 4))
        )


class TestReimport:
    def test_reimport_restores_disk_residence(self):
        heaven, mdd = build_heaven()
        whole = mdd.read_all().copy()
        count = heaven.reimport("col", "obj")
        assert count == mdd.tile_count()
        assert not heaven.is_archived("obj")
        # Reads no longer touch tape.
        tape_before = heaven.library.stats().bytes_read
        got = heaven.read("col", "obj", mdd.domain)
        assert np.array_equal(got, whole)
        assert heaven.library.stats().bytes_read == tape_before

    def test_reimport_unarchived_rejected(self):
        heaven, _ = build_heaven()
        heaven.reimport("col", "obj")
        with pytest.raises(HeavenError):
            heaven.reimport("col", "obj")


class TestPrefetch:
    def test_sequential_prefetch_stages_neighbours(self):
        heaven, mdd = build_heaven(prefetch="sequential", prefetch_depth=1)
        entry = heaven.archived("obj")
        first_st = entry.super_tiles[0]
        region = first_st.domain
        heaven.read("col", "obj", region)
        # The next super-tile in cluster order was prefetched too.
        neighbour = entry.super_tiles[1]
        assert neighbour.segment_name in heaven.disk_cache

    def test_prefetched_neighbour_read_is_cache_hit(self):
        heaven, mdd = build_heaven(prefetch="sequential", prefetch_depth=1)
        entry = heaven.archived("obj")
        heaven.read("col", "obj", entry.super_tiles[0].domain)
        _c, report = heaven.read_with_report(
            "col", "obj", entry.super_tiles[1].domain
        )
        assert report.bytes_from_tape == 0

    def test_no_prefetch_by_default(self):
        heaven, mdd = build_heaven()
        entry = heaven.archived("obj")
        heaven.read("col", "obj", entry.super_tiles[0].domain)
        assert entry.super_tiles[1].segment_name not in heaven.disk_cache

    def test_invalid_prefetch_config_rejected(self):
        with pytest.raises(ValueError):
            HeavenConfig(prefetch="psychic")
