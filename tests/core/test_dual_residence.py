"""Tests for dual residence (keep_disk_copy=True): disk serves, tape backs."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.tertiary import MB


def build(keep=True):
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=32 * 1024,
            disk_cache_bytes=16 * MB,
            memory_cache_bytes=4 * MB,
        )
    )
    heaven.create_collection("col")
    mdd = MDD(
        "obj",
        MInterval.of((0, 63), (0, 63)),
        DOUBLE,
        tiling=RegularTiling((16, 16)),
        source=HashedNoiseSource(11, 0.0, 7.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "obj", keep_disk_copy=keep)
    return heaven, mdd


class TestDualResidence:
    REGION = MInterval.of((5, 40), (10, 55))

    def test_reads_served_from_disk_not_tape(self):
        heaven, mdd = build(keep=True)
        tape_before = heaven.library.stats().bytes_read
        cells = heaven.read("col", "obj", self.REGION)
        assert heaven.library.stats().bytes_read == tape_before
        expect = mdd.source.region(self.REGION, mdd.cell_type)
        assert np.array_equal(cells, expect)

    def test_without_disk_copy_reads_hit_tape(self):
        heaven, _ = build(keep=False)
        tape_before = heaven.library.stats().bytes_read
        heaven.read("col", "obj", self.REGION)
        assert heaven.library.stats().bytes_read > tape_before

    def test_dual_read_faster_than_tape_read(self):
        dual, _ = build(keep=True)
        tape_only, _ = build(keep=False)
        _c, dual_report = dual.read_with_report("col", "obj", self.REGION)
        _c, tape_report = tape_only.read_with_report("col", "obj", self.REGION)
        assert dual_report.virtual_seconds < tape_report.virtual_seconds
        assert dual_report.bytes_from_tape == 0

    def test_update_keeps_disk_copy_consistent(self):
        heaven, mdd = build(keep=True)
        region = MInterval.of((0, 15), (0, 15))
        patch = np.full((16, 16), -5.0)
        heaven.update("col", "obj", region, patch)
        heaven.memory_cache.invalidate_object("obj")
        tape_before = heaven.library.stats().bytes_read
        got = heaven.read("col", "obj", region)
        assert np.array_equal(got, patch)
        assert heaven.library.stats().bytes_read == tape_before  # still disk

    def test_update_also_refreshes_tape_copy(self):
        heaven, mdd = build(keep=True)
        region = MInterval.of((0, 15), (0, 15))
        patch = np.full((16, 16), 9.0)
        heaven.update("col", "obj", region, patch)
        # Drop the disk copy: reads must now come from the updated tape.
        entry = heaven.archived("obj")
        heaven._release_disk_copy(entry)
        heaven.memory_cache.invalidate_object("obj")
        got = heaven.read("col", "obj", region)
        assert np.array_equal(got, patch)

    def test_delete_releases_both_copies(self):
        heaven, _ = build(keep=True)
        heaven.delete("col", "obj")
        assert len(heaven.db.blobs) == 0
        assert all(len(m) == 0 for m in heaven.library.media())
