"""Tests for the HSM attachment mode and the parallel-drive planner."""

import numpy as np
import pytest

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig, TapeRequest, plan_parallel
from repro.errors import HeavenError
from repro.tertiary import DLT_7000, MB, TapeLibrary, scaled_profile


def build(attachment: str):
    heaven = Heaven(
        HeavenConfig(
            attachment=attachment,
            super_tile_bytes=256 * 1024,
            disk_cache_bytes=32 * MB,
            memory_cache_bytes=8 * MB,
        )
    )
    heaven.create_collection("col")
    mdd = MDD(
        "obj",
        MInterval.of((0, 127), (0, 127)),
        DOUBLE,
        tiling=RegularTiling((32, 32)),
        source=HashedNoiseSource(5, 0.0, 9.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", "obj")
    return heaven, mdd


class TestHSMAttachment:
    REGION = MInterval.of((0, 40), (0, 40))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            HeavenConfig(attachment="carrier-pigeon")

    def test_drive_mode_has_no_hsm_disk(self):
        heaven, _ = build("drive")
        assert heaven.hsm_staging is None

    def test_reads_stay_correct_through_hsm(self):
        heaven, mdd = build("hsm")
        expect = mdd.source.region(self.REGION, mdd.cell_type)
        assert np.array_equal(heaven.read("col", "obj", self.REGION), expect)

    def test_hsm_mode_stages_whole_super_tiles(self):
        drive_heaven, _ = build("drive")
        hsm_heaven, _ = build("hsm")
        _c, drive_report = drive_heaven.read_with_report("col", "obj", self.REGION)
        _c, hsm_report = hsm_heaven.read_with_report("col", "obj", self.REGION)
        # File granularity: the HSM path cannot read partial runs.
        assert hsm_report.bytes_from_tape >= drive_report.bytes_from_tape
        entry = hsm_heaven.archived("obj")
        for key, run in entry.staged_runs.items():
            st = next(
                s for s in entry.super_tiles if s.segment_name == key
            )
            assert run == (0, st.size_bytes)

    def test_hsm_mode_charges_double_hop(self):
        heaven, _ = build("hsm")
        heaven.read("col", "obj", self.REGION)
        assert heaven.hsm_staging is not None
        assert heaven.hsm_staging.stats.bytes_written > 0
        assert heaven.hsm_staging.stats.bytes_read > 0

    def test_hsm_mode_slower_than_drive_mode(self):
        drive_heaven, _ = build("drive")
        hsm_heaven, _ = build("hsm")
        _c, drive_report = drive_heaven.read_with_report("col", "obj", self.REGION)
        _c, hsm_report = hsm_heaven.read_with_report("col", "obj", self.REGION)
        assert hsm_report.virtual_seconds > drive_report.virtual_seconds

    def test_hsm_migration_passes_through_staging(self):
        heaven, mdd = build("hsm")
        assert heaven.hsm_staging is not None
        assert heaven.hsm_staging.stats.bytes_written >= mdd.size_bytes


class TestParallelPlanner:
    PROFILE = scaled_profile(DLT_7000, 64 * MB)

    def build_requests(self, media=4, per_medium=4):
        library = TapeLibrary(self.PROFILE, retain_payload=False)
        requests = []
        for m in range(media):
            library.new_medium(f"m{m}")
            for s in range(per_medium):
                name = f"m{m}/s{s}"
                library.write_segment(name, 4 * MB, medium_id=f"m{m}")
                _mid, segment = library.segment(name)
                requests.append(
                    TapeRequest(name, f"m{m}", segment.offset, segment.length)
                )
        return library, requests

    def test_single_drive_makespan_equals_serial(self):
        library, requests = self.build_requests()
        plan = plan_parallel(requests, library, 1)
        assert plan.makespan_seconds == pytest.approx(plan.serial_seconds)
        assert plan.speedup == pytest.approx(1.0)

    def test_speedup_grows_with_drives(self):
        library, requests = self.build_requests(media=8)
        speedups = [
            plan_parallel(requests, library, d).speedup for d in (1, 2, 4)
        ]
        assert speedups[0] < speedups[1] < speedups[2]

    def test_speedup_bounded_by_drives_and_media(self):
        library, requests = self.build_requests(media=4)
        plan = plan_parallel(requests, library, 8)
        assert plan.speedup <= 4.001  # media are indivisible

    def test_media_never_split_across_drives(self):
        library, requests = self.build_requests(media=5)
        plan = plan_parallel(requests, library, 3)
        seen = {}
        for drive in plan.drives:
            for medium in drive.media:
                assert medium not in seen
                seen[medium] = drive.drive_index
        assert len(seen) == 5

    def test_all_requests_assigned(self):
        library, requests = self.build_requests(media=3, per_medium=5)
        plan = plan_parallel(requests, library, 2)
        assigned = sum(len(d.requests) for d in plan.drives)
        assert assigned == len(requests)

    def test_balanced_load(self):
        library, requests = self.build_requests(media=8, per_medium=2)
        # Uniform per-medium costs: return the write path's leftover mount
        # to the shelf, otherwise one medium is legitimately cheaper.
        library.unmount_all()
        plan = plan_parallel(requests, library, 4)
        busy = [d.busy_seconds for d in plan.drives]
        assert max(busy) <= min(busy) * 1.5  # LPT keeps it roughly even

    def test_mounted_medium_skips_exchange_cost(self):
        library, requests = self.build_requests(media=3, per_medium=1)
        holders = [d for d in library.drives if d.medium is not None]
        assert holders  # the write path left the last medium in a drive
        # The warm plan serves the mounted medium in place: it skips the
        # exchange+load but must wind the head back from where the write
        # path left it (the cold plan starts at 0 after loading), so the
        # saving is the full exchange minus that repositioning seek.
        expected = sum(
            library.profile.full_exchange_time()
            - library.profile.seek_time(d.head_position)
            for d in holders
        )
        warm = plan_parallel(requests, library, 1)
        library.unmount_all()
        cold = plan_parallel(requests, library, 1)
        assert cold.serial_seconds - warm.serial_seconds == pytest.approx(
            expected
        )
        assert warm.serial_seconds < cold.serial_seconds

    def test_zero_drives_rejected(self):
        library, requests = self.build_requests(media=1)
        with pytest.raises(HeavenError):
            plan_parallel(requests, library, 0)

    def test_empty_batch(self):
        library, _ = self.build_requests(media=1)
        plan = plan_parallel([], library, 2)
        assert plan.makespan_seconds == 0.0
