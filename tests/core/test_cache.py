"""Tests for eviction policies and the two cache levels."""

import numpy as np
import pytest

from repro.core import (
    DiskCache,
    FIFOPolicy,
    GDSPolicy,
    LFUPolicy,
    LRUPolicy,
    MemoryTileCache,
    SizePolicy,
    make_policy,
    policy_names,
)
from repro.errors import CacheError
from repro.tertiary import DISK_ARRAY, MB, SimClock


class TestPolicies:
    def test_lru_evicts_least_recent(self):
        policy = LRUPolicy()
        policy.insert("a", 1, 1.0)
        policy.insert("b", 1, 1.0)
        policy.access("a")
        assert policy.victim() == "b"

    def test_fifo_ignores_access(self):
        policy = FIFOPolicy()
        policy.insert("a", 1, 1.0)
        policy.insert("b", 1, 1.0)
        policy.access("a")
        assert policy.victim() == "a"

    def test_lfu_evicts_least_frequent(self):
        policy = LFUPolicy()
        policy.insert("a", 1, 1.0)
        policy.insert("b", 1, 1.0)
        policy.access("a")
        policy.access("a")
        policy.access("b")
        assert policy.victim() == "b"

    def test_size_evicts_largest(self):
        policy = SizePolicy()
        policy.insert("small", 10, 1.0)
        policy.insert("big", 1000, 1.0)
        assert policy.victim() == "big"

    def test_gds_prefers_keeping_costly_entries(self):
        policy = GDSPolicy()
        policy.insert("cheap", 100, 1.0)    # cost/size = 0.01
        policy.insert("costly", 100, 100.0)  # cost/size = 1.0
        assert policy.victim() == "cheap"

    def test_gds_inflation_ages_entries(self):
        policy = GDSPolicy()
        policy.insert("old_costly", 100, 50.0)  # priority 0.5
        policy.insert("cheap1", 100, 1.0)
        policy.remove(policy.victim())  # evict cheap1, inflation rises
        # Repeated evictions keep raising L; eventually old entries age out.
        for i in range(250):
            policy.insert(f"filler{i}", 100, 1.0)
            victim = policy.victim()
            if victim == "old_costly":
                break
            policy.remove(victim)
        else:
            pytest.fail("inflation never aged out the old costly entry")

    def test_empty_policy_has_no_victim(self):
        for name in policy_names():
            with pytest.raises(CacheError):
                make_policy(name).victim()

    def test_make_policy_unknown(self):
        with pytest.raises(CacheError):
            make_policy("random")

    def test_policy_names(self):
        assert set(policy_names()) == {"lru", "fifo", "lfu", "size", "gds"}


@pytest.fixture
def disk_cache():
    return DiskCache(10 * MB, LRUPolicy(), DISK_ARRAY, SimClock())


class TestDiskCache:
    def test_insert_lookup_read(self, disk_cache):
        disk_cache.insert("seg", 1024, 10.0, payload=b"x" * 1024)
        assert disk_cache.lookup("seg")
        assert disk_cache.read("seg", 100, 10) == b"x" * 10

    def test_miss_recorded(self, disk_cache):
        assert not disk_cache.lookup("ghost")
        assert disk_cache.stats.misses == 1

    def test_capacity_enforced_with_eviction(self, disk_cache):
        disk_cache.insert("a", 6 * MB, 1.0)
        disk_cache.insert("b", 6 * MB, 1.0)  # evicts a
        assert "a" not in disk_cache
        assert "b" in disk_cache
        assert disk_cache.stats.evictions == 1

    def test_oversized_entry_rejected(self, disk_cache):
        with pytest.raises(CacheError):
            disk_cache.insert("huge", 11 * MB, 1.0)

    def test_duplicate_insert_rejected(self, disk_cache):
        disk_cache.insert("a", 10, 1.0)
        with pytest.raises(CacheError):
            disk_cache.insert("a", 10, 1.0)

    def test_read_out_of_range_rejected(self, disk_cache):
        disk_cache.insert("a", 100, 1.0, payload=b"y" * 100)
        with pytest.raises(CacheError):
            disk_cache.read("a", 90, 20)

    def test_read_uncached_rejected(self, disk_cache):
        with pytest.raises(CacheError):
            disk_cache.read("ghost", 0, 1)

    def test_invalidate_not_counted_as_eviction(self, disk_cache):
        disk_cache.insert("a", 10, 1.0)
        assert disk_cache.invalidate("a")
        assert not disk_cache.invalidate("a")
        assert disk_cache.stats.evictions == 0

    def test_on_evict_callback(self):
        evicted = []
        cache = DiskCache(
            1 * MB, LRUPolicy(), DISK_ARRAY, SimClock(), on_evict=evicted.append
        )
        cache.insert("a", 600 * 1024, 1.0)
        cache.insert("b", 600 * 1024, 1.0)
        assert evicted == ["a"]

    def test_io_charges_clock(self, disk_cache):
        before = disk_cache.disk.clock.now
        disk_cache.insert("a", 1 * MB, 1.0)
        after_insert = disk_cache.disk.clock.now
        assert after_insert > before
        disk_cache.read("a", 0, 1024)
        assert disk_cache.disk.clock.now > after_insert

    def test_hit_ratio(self, disk_cache):
        disk_cache.insert("a", 10, 1.0)
        disk_cache.lookup("a")
        disk_cache.lookup("a")
        disk_cache.lookup("ghost")
        assert disk_cache.stats.hit_ratio == pytest.approx(2 / 3)


class TestMemoryTileCache:
    def test_put_get(self):
        cache = MemoryTileCache(1 * MB)
        cells = np.arange(10, dtype=np.float64)
        cache.put("obj", 0, cells)
        assert np.array_equal(cache.get("obj", 0), cells)

    def test_miss_returns_none(self):
        cache = MemoryTileCache(1 * MB)
        assert cache.get("obj", 0) is None
        assert cache.stats.misses == 1

    def test_lru_eviction_by_bytes(self):
        cache = MemoryTileCache(2048)
        a = np.zeros(128, dtype=np.float64)  # 1024 B
        b = np.zeros(128, dtype=np.float64)
        c = np.zeros(128, dtype=np.float64)
        cache.put("o", 0, a)
        cache.put("o", 1, b)
        cache.get("o", 0)  # refresh 0
        cache.put("o", 2, c)  # evicts 1
        assert cache.get("o", 1) is None
        assert cache.get("o", 0) is not None

    def test_oversized_tile_bypasses(self):
        cache = MemoryTileCache(100)
        cache.put("o", 0, np.zeros(1000, dtype=np.float64))
        assert cache.get("o", 0) is None
        assert cache.used_bytes == 0

    def test_replace_same_key_updates_bytes(self):
        cache = MemoryTileCache(4096)
        cache.put("o", 0, np.zeros(128, dtype=np.float64))
        cache.put("o", 0, np.zeros(256, dtype=np.float64))
        assert cache.used_bytes == 2048

    def test_invalidate_object(self):
        cache = MemoryTileCache(1 * MB)
        cache.put("a", 0, np.zeros(8))
        cache.put("a", 1, np.zeros(8))
        cache.put("b", 0, np.zeros(8))
        assert cache.invalidate_object("a") == 2
        assert cache.get("b", 0) is not None
        assert cache.get("a", 0) is None

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(CacheError):
            MemoryTileCache(0)

    def test_cached_tiles_are_read_only(self):
        # Regression: callers used to be able to scribble on the cached
        # array and silently corrupt every later read of the tile.
        cache = MemoryTileCache(1 * MB)
        cache.put("obj", 0, np.arange(10, dtype=np.float64))
        cached = cache.get("obj", 0)
        with pytest.raises(ValueError):
            cached[0] = 99.0
        assert cache.get("obj", 0)[0] == 0.0

    def test_put_freezes_the_stored_array(self):
        cache = MemoryTileCache(1 * MB)
        cells = np.arange(10, dtype=np.float64)
        cache.put("obj", 0, cells)
        with pytest.raises(ValueError):
            cells[3] = -1.0  # put() took ownership; the name is frozen too
