"""Regression tests for the zero-copy read path and its satellite bugfixes.

Three bugs are pinned here (each failed before its fix):

* the restage fallback in ``Heaven._resolve_tile`` trusted whatever run a
  re-stage landed without re-checking that it covers the tile — a
  narrower or shifted run (an interleaved batch re-planning the segment)
  made the disk-cache read raise on a negative offset or return the
  wrong bytes;
* ``MDD.from_array`` stored *views* of the caller's array as tile
  payloads, so a later ``mdd.write`` silently mutated the user's input
  in place (the copy-on-write guard never fired on a writable view);
* ``read_with_report`` attributed pins via a global ``stats.pins`` delta,
  charging the read for pins other (nested/interleaved) queries took
  between the two samples.

Plus the zero-copy pipeline invariants: decoded tiles are read-only
views, assembled results never alias cache memory, and the
``repro_assembly_bytes_copied_total`` counter stays at zero.
"""

import numpy as np

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.core.heaven import StagingTicket, _DecodeArena
from repro.tertiary import MB


def make_heaven(observability=False, **overrides):
    defaults = dict(
        super_tile_bytes=8 * 1024,    # 4 tiles of 2 KB per super-tile
        disk_cache_bytes=16 * 1024,
        memory_cache_bytes=16 * MB,
        num_drives=1,
        retain_payload=True,
    )
    defaults.update(overrides)
    heaven = Heaven(HeavenConfig(**defaults), observability=observability)
    heaven.create_collection("col")
    return heaven


def archive_object(heaven, name="o0", side=64, seed=0):
    mdd = MDD(
        name,
        MInterval.of((0, side - 1), (0, side - 1)),
        DOUBLE,
        tiling=RegularTiling((16, 16)),
        source=HashedNoiseSource(seed, 0.0, 5.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", mdd.name)
    heaven.library.unmount_all()
    return mdd


def expected_cells(mdd, region):
    return mdd.source.region(region, mdd.cell_type) if mdd.source else None


class TestRestageCoverageRecheck:
    """Satellite 1: a non-covering re-staged run must not be read through."""

    def _prime_fallback(self, heaven, mdd):
        """Drop the target tile's segment so the resolver must restage."""
        entry = heaven._archived[mdd.name]
        tile = mdd.tiles[0]
        super_tile = entry.super_tile_of(tile.tile_id)
        key = super_tile.segment_name
        if key in heaven.disk_cache:
            heaven.disk_cache.invalidate(key)
        entry.staged_runs.pop(key, None)
        heaven.memory_cache.invalidate_object(mdd.name)
        return entry, tile, super_tile, key

    def test_narrow_restage_falls_back_to_direct_stream(self, monkeypatch):
        """A re-stage that lands a run NOT covering the tile (an
        interleaved batch re-planned the segment around its own tiles)
        must fall through to the direct tape stream, not read wrong
        bytes.  Before the fix this raised CacheError on the negative
        in-run offset."""
        heaven = make_heaven()
        mdd = archive_object(heaven)
        entry, tile, super_tile, key = self._prime_fallback(heaven, mdd)

        # Target tile 0 sits at run offset 0; the hostile re-stage lands
        # a run starting past it, so (tile_offset - run[0]) goes negative.
        tile_offset, tile_length = super_tile.tile_extents[tile.tile_id]
        other_offset = max(
            off for off, _len in super_tile.tile_extents.values()
        )
        assert other_offset > tile_offset

        def hostile_stage(mdd_arg, tile_ids):
            # Every staging attempt (prepare, hook, resolver fallback)
            # lands the same non-covering run and pins nothing.
            if key not in heaven.disk_cache:
                run = (other_offset, super_tile.size_bytes - other_offset)
                payload = heaven._segment_payload(key, run[0], run[1])
                heaven.disk_cache.insert(key, run[1], 1.0, payload=payload)
                entry.staged_runs[key] = run
            return StagingTicket(cache=heaven.disk_cache)

        monkeypatch.setattr(heaven, "_stage_tiles", hostile_stage)
        cells = heaven.read("col", mdd.name, tile.domain)
        np.testing.assert_array_equal(cells, expected_cells(mdd, tile.domain))
        assert heaven.restages >= 1

    def test_shifted_restage_does_not_decode_wrong_bytes(self, monkeypatch):
        """A shifted covering-length-but-wrong-offset run previously
        decoded the NEIGHBOUR tile's bytes silently."""
        heaven = make_heaven()
        mdd = archive_object(heaven)
        entry, tile, super_tile, key = self._prime_fallback(heaven, mdd)

        extents = sorted(super_tile.tile_extents.values())
        assert len(extents) >= 2
        second_offset, second_length = extents[1]

        def hostile_stage(mdd_arg, tile_ids):
            # Covers only the second tile's extent; same length as the
            # target's, so the old code read the neighbour's bytes.
            if key not in heaven.disk_cache:
                run = (second_offset, second_length)
                payload = heaven._segment_payload(key, run[0], run[1])
                heaven.disk_cache.insert(key, run[1], 1.0, payload=payload)
                entry.staged_runs[key] = run
            return StagingTicket(cache=heaven.disk_cache)

        monkeypatch.setattr(heaven, "_stage_tiles", hostile_stage)
        cells = heaven.read("col", mdd.name, tile.domain)
        np.testing.assert_array_equal(cells, expected_cells(mdd, tile.domain))

    def test_organic_restage_with_covering_run_reads_through(self, monkeypatch):
        """The legitimate fallback ladder (resolver restages after an
        eviction, the run covers) keeps working unchanged."""
        heaven = make_heaven()
        mdd = archive_object(heaven)
        entry, tile, _super_tile, _key = self._prime_fallback(heaven, mdd)
        # Neuter the prepare hook and read the MDD directly: the resolver
        # hits the fallback cold and must restage for real.
        monkeypatch.setattr(mdd, "prepare_read", lambda region: (lambda: None))
        cells = mdd.read(tile.domain)
        np.testing.assert_array_equal(cells, expected_cells(mdd, tile.domain))
        assert heaven.restages >= 1


class TestFromArrayCopiesInput:
    """Satellite 2: from_array must never alias the caller's array."""

    def test_write_does_not_mutate_caller_array_1d(self):
        # 1-D slices of a 1-D array are contiguous views — exactly the
        # case ascontiguousarray passed through unchanged before the fix.
        original = np.arange(64, dtype=np.float64)
        snapshot = original.copy()
        mdd = MDD.from_array("m", original, tiling=RegularTiling((16,)))
        mdd.write(MInterval.of((0, 63)), np.full(64, -1.0))
        np.testing.assert_array_equal(original, snapshot)

    def test_write_does_not_mutate_caller_array_2d(self):
        original = np.arange(64, dtype=np.float64).reshape(8, 8)
        snapshot = original.copy()
        mdd = MDD.from_array("m", original, tiling=RegularTiling((8, 8)))
        mdd.write(MInterval.of((0, 7), (0, 7)), np.zeros((8, 8)))
        np.testing.assert_array_equal(original, snapshot)

    def test_payloads_do_not_share_memory_with_input(self):
        original = np.arange(256, dtype=np.float64).reshape(16, 16)
        mdd = MDD.from_array("m", original, tiling=RegularTiling((8, 8)))
        for tile in mdd.tiles.values():
            assert not np.shares_memory(tile.payload, original)

    def test_round_trip_values_unchanged(self):
        original = np.arange(100, dtype=np.float64).reshape(10, 10)
        mdd = MDD.from_array("m", original, tiling=RegularTiling((4, 4)))
        np.testing.assert_array_equal(mdd.read_all(), original)


class TestPinAttribution:
    """Satellite 3: reads report their OWN pins, not global pin traffic."""

    def baseline_pins(self):
        heaven = make_heaven()
        mdd = archive_object(heaven)
        region = MInterval.of((0, 15), (0, 15))
        _cells, report = heaven.read_with_report("col", mdd.name, region)
        return report.pins

    def test_nested_read_pins_not_charged_to_outer(self, monkeypatch):
        """A query running inside another's lifetime (cooperative
        interleaving, sub-queries) used to inflate the outer report's
        pin count via the global stats delta."""
        baseline = self.baseline_pins()
        heaven = make_heaven()
        mdd = archive_object(heaven, "o0", seed=0)
        other = archive_object(heaven, "o1", seed=1)
        region = MInterval.of((0, 15), (0, 15))

        original_read = mdd.read

        def read_with_interleaved_query(read_region):
            out = original_read(read_region)
            # Simulates another task's turn: its pins move stats.pins
            # inside the outer read's sampling window.
            heaven.read("col", other.name, MInterval.of((0, 63), (0, 63)))
            return out

        monkeypatch.setattr(mdd, "read", read_with_interleaved_query)
        _cells, report = heaven.read_with_report("col", mdd.name, region)
        assert report.pins == baseline

    def test_serial_read_pins_match_global_delta(self):
        """With nothing interleaved the owned count IS the global delta —
        the reconciliation simtest relies on (report.pins == metric
        delta) staying exact."""
        heaven = make_heaven()
        mdd = archive_object(heaven)
        region = MInterval.of((0, 63), (0, 63))
        before = heaven.disk_cache.stats.pins
        _cells, report = heaven.read_with_report("col", mdd.name, region)
        assert report.pins == heaven.disk_cache.stats.pins - before

    def test_restage_fallback_pins_attributed_to_owner(self):
        """Mid-assembly restage pins belong to the read that triggered
        them."""
        heaven = make_heaven()
        mdd = archive_object(heaven)
        region = MInterval.of((0, 15), (0, 15))
        heaven.read("col", mdd.name, region)  # warm
        # Kill the staged segment and the memory tiles: next read restages.
        entry = heaven._archived[mdd.name]
        for key in list(entry.staged_runs):
            if key in heaven.disk_cache:
                heaven.disk_cache.invalidate(key)
            entry.staged_runs.pop(key, None)
        heaven.memory_cache.invalidate_object(mdd.name)
        before = heaven.disk_cache.stats.pins
        _cells, report = heaven.read_with_report("col", mdd.name, region)
        assert report.pins == heaven.disk_cache.stats.pins - before

    def test_concurrent_queries_reconcile_lease_counts(self):
        """Per-query pin (lease) counts across admission sum to the
        cache's lease traffic: no query is charged another's pins."""
        heaven = make_heaven(disk_cache_bytes=64 * 1024)
        archive_object(heaven, "o0", seed=0)
        archive_object(heaven, "o1", seed=1)
        region = MInterval.of((0, 63), (0, 63))
        requests = [
            ("col", "o0", region),
            ("col", "o1", region),
            ("col", "o0", MInterval.of((0, 15), (0, 15))),
        ]
        leases_before = heaven.disk_cache.stats.leases
        _outputs, multi = heaven.read_concurrent(requests, schedule_seed=3)
        lease_delta = heaven.disk_cache.stats.leases - leases_before
        assert sum(r.pins for r in multi.queries) == lease_delta
        assert all(r.pins >= 0 for r in multi.queries)


class TestZeroCopyPipeline:
    """Tentpole invariants: views not copies, and the counter proves it."""

    def test_memory_cached_tiles_are_read_only_views(self):
        heaven = make_heaven()
        mdd = archive_object(heaven)
        heaven.read("col", mdd.name, MInterval.of((0, 63), (0, 63)))
        seen = 0
        for tile_id in mdd.tiles:
            cells = heaven.memory_cache.get(mdd.name, tile_id)
            if cells is None:
                continue
            seen += 1
            assert not cells.flags.writeable
            # Zero-copy: the cached array is a VIEW over the staged
            # segment bytes, not an owning copy.
            assert not cells.flags.owndata
        assert seen > 0

    def test_result_does_not_alias_cache_memory(self):
        heaven = make_heaven()
        mdd = archive_object(heaven)
        out = heaven.read("col", mdd.name, MInterval.of((0, 63), (0, 63)))
        assert out.flags.writeable
        for tile_id in mdd.tiles:
            cells = heaven.memory_cache.get(mdd.name, tile_id)
            if cells is not None:
                assert not np.shares_memory(out, cells)

    def test_assembly_bytes_copied_stays_zero(self):
        heaven = make_heaven()
        mdd = archive_object(heaven)
        heaven.read("col", mdd.name, MInterval.of((0, 63), (0, 63)))
        heaven.read_many(
            [("col", mdd.name, MInterval.of((0, 31), (0, 31)))]
        )
        assert heaven.assembly_bytes_copied == 0

    def test_assembly_bytes_copied_counter_collected(self):
        heaven = make_heaven(observability=True)
        mdd = archive_object(heaven)
        heaven.read("col", mdd.name, MInterval.of((0, 15), (0, 15)))
        snapshot = heaven.obs.metrics.snapshot()
        assert "repro_assembly_bytes_copied_total" in snapshot
        assert sum(snapshot["repro_assembly_bytes_copied_total"].values()) == 0

    def test_compressed_read_round_trips(self):
        heaven = make_heaven(compression="zlib")
        mdd = archive_object(heaven)
        region = MInterval.of((0, 63), (0, 63))
        cells = heaven.read("col", mdd.name, region)
        np.testing.assert_array_equal(cells, expected_cells(mdd, region))

    def test_update_after_zero_copy_read(self):
        """update() snapshots the frozen resolver views before patching."""
        heaven = make_heaven()
        mdd = archive_object(heaven)
        region = MInterval.of((0, 7), (0, 7))
        patch = np.full(region.shape, 9.5)
        heaven.update("col", mdd.name, region, patch)
        np.testing.assert_array_equal(
            heaven.read("col", mdd.name, region), patch
        )


class TestDecodeArena:
    """Wave-scoped decompression arena mechanics."""

    def test_carve_is_monotonic_and_bounded(self):
        arena = _DecodeArena(10)
        a = arena.carve(4)
        b = arena.carve(6)
        assert a is not None and b is not None
        assert arena.carve(1) is None
        a[:] = b"aaaa"
        b[:] = b"bbbbbb"
        assert bytes(a) == b"aaaa" and bytes(b) == b"bbbbbb"

    def test_zero_request_on_exhausted_arena(self):
        arena = _DecodeArena(0)
        assert arena.carve(1) is None
        assert arena.carve(0) is not None
