"""Property tests for request coalescing (``core/scheduler.py``).

The forward-only merge must never drop or double-serve bytes: every run's
extent is exactly the union of its member requests' extents, the request
multiset survives unchanged and in order, and the edge cases that have
historically broken run-merging logic — zero-length extents, exactly
adjacent runs, fully contained overlaps and single-byte gaps — behave as
documented.
"""

from __future__ import annotations

from typing import List, Sequence

import pytest
from hypothesis import given, strategies as st

from repro.core.scheduler import CoalescedRun, TapeRequest, coalesce_requests

pytestmark = pytest.mark.property


def _req(offset: int, length: int, medium: str = "m0", key: str = "") -> TapeRequest:
    return TapeRequest(
        key=key or f"seg@{offset}+{length}",
        medium_id=medium,
        offset=offset,
        length=length,
    )


def _flat_requests(runs: Sequence[CoalescedRun]) -> List[TapeRequest]:
    return [request for run in runs for request in run.requests]


def _assert_runs_sound(ordered: Sequence[TapeRequest]) -> List[CoalescedRun]:
    """Shared invariants of any coalescing result."""
    runs = coalesce_requests(ordered)
    # Never drop, reorder or duplicate a request.
    assert _flat_requests(runs) == list(ordered)
    for run in runs:
        assert run.length >= 0
        assert run.end == run.offset + run.length
        # One medium per physical seek+stream.
        assert all(r.medium_id == run.medium_id for r in run.requests)
        # The run extent is exactly the union of its members: the merge
        # rule admits a request only if it starts inside (or right at the
        # end of) the accumulated run, so no internal gap can exist and
        # no byte outside a member extent is ever streamed.
        assert run.offset == min(r.offset for r in run.requests)
        assert run.end == max(r.offset + r.length for r in run.requests)
        covered = run.offset
        for request in run.requests:
            assert request.offset <= covered  # starts inside the run so far
            covered = max(covered, request.offset + request.length)
        assert covered == run.end
    return runs


# -- deterministic edge cases ----------------------------------------------------------


class TestEdgeCases:
    def test_zero_length_extent_merges_without_growing_the_run(self):
        runs = _assert_runs_sound([_req(0, 10), _req(4, 0)])
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (0, 10)

    def test_zero_length_extent_at_run_end_merges(self):
        runs = _assert_runs_sound([_req(0, 10), _req(10, 0)])
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (0, 10)

    def test_zero_length_leading_request_seeds_an_empty_run(self):
        runs = _assert_runs_sound([_req(5, 0), _req(5, 8)])
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (5, 8)

    def test_exactly_adjacent_runs_merge_into_one_stream(self):
        runs = _assert_runs_sound([_req(0, 10), _req(10, 10)])
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (0, 20)

    def test_fully_contained_overlap_does_not_extend_the_run(self):
        runs = _assert_runs_sound([_req(0, 100), _req(20, 30)])
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (0, 100)

    def test_partial_overlap_extends_to_the_union(self):
        runs = _assert_runs_sound([_req(0, 10), _req(5, 10)])
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (0, 15)

    def test_single_byte_gap_stays_two_seeks(self):
        runs = _assert_runs_sound([_req(0, 10), _req(11, 10)])
        assert len(runs) == 2
        assert (runs[0].offset, runs[0].end) == (0, 10)
        assert (runs[1].offset, runs[1].end) == (11, 21)

    def test_backwards_adjacency_never_merges(self):
        # FIFO visiting adjacent blocks in reverse keeps paying each seek.
        runs = _assert_runs_sound([_req(10, 10), _req(0, 10)])
        assert len(runs) == 2

    def test_media_boundary_never_merges(self):
        runs = _assert_runs_sound(
            [_req(0, 10, medium="m0"), _req(10, 10, medium="m1")]
        )
        assert len(runs) == 2
        assert [run.medium_id for run in runs] == ["m0", "m1"]

    def test_empty_batch(self):
        assert coalesce_requests([]) == []


# -- randomized properties -------------------------------------------------------------

_extents = st.tuples(
    st.integers(min_value=0, max_value=200),  # offset
    st.integers(min_value=0, max_value=40),  # length (0 allowed)
    st.sampled_from(["m0", "m1"]),
)


@given(st.lists(_extents, max_size=30))
def test_arbitrary_order_never_drops_or_double_serves(extents):
    ordered = [
        _req(offset, length, medium=medium, key=f"r{i}")
        for i, (offset, length, medium) in enumerate(extents)
    ]
    _assert_runs_sound(ordered)


@given(st.lists(_extents, max_size=30))
def test_elevator_order_coalesces_touching_neighbours(extents):
    """After the elevator sort, consecutive same-medium runs never touch —
    any touching pair would have been merged."""
    ordered = [
        _req(offset, length, medium=medium, key=f"r{i}")
        for i, (offset, length, medium) in enumerate(extents)
    ]
    ordered.sort(key=lambda r: (r.medium_id, r.offset, r.key))
    runs = _assert_runs_sound(ordered)
    for left, right in zip(runs, runs[1:]):
        if left.medium_id == right.medium_id:
            assert right.offset > left.end


@given(
    st.integers(min_value=0, max_value=50),
    st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=15),
)
def test_back_to_back_segments_become_one_stream(start, lengths):
    """An ascending sweep over gap-free segments is exactly one seek+stream."""
    ordered = []
    offset = start
    for i, length in enumerate(lengths):
        ordered.append(_req(offset, length, key=f"r{i}"))
        offset += length
    runs = _assert_runs_sound(ordered)
    assert len(runs) == 1
    assert runs[0].offset == start
    assert runs[0].length == sum(lengths)
