"""Invariants of the discrete-event parallel executor (hypothesis + unit).

The executor's claims are checked on *executed* batches, not estimates:

* makespan is bracketed by the device work:
  ``makespan <= serial_device_seconds <= drives * makespan``;
* every request of a batch is served exactly once;
* the event-log window decomposes exactly into per-drive busy time plus
  robot-wait time (nothing double-charged, nothing lost);
* a fixed-seed workload returns byte-identical arrays whether staging
  runs serial or parallel.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import DOUBLE, HashedNoiseSource, MDD, MInterval, RegularTiling
from repro.core import (
    Heaven,
    HeavenConfig,
    ParallelExecutor,
    TapeRequest,
    coalesce_requests,
    plan_parallel,
)
from repro.errors import HeavenError, StorageError
from repro.tertiary import DLT_7000, MB, TapeLibrary, Timeline, scaled_profile
from repro.tertiary.hsm import HSMSystem

PROFILE = scaled_profile(DLT_7000, 256 * MB)


def request_batches():
    """Batches of raw-extent requests over a handful of media."""

    def build(entries):
        return [
            TapeRequest(
                key=f"r{i}",
                medium_id=f"m{medium}",
                offset=offset * 1024,
                length=(1 + i % 3) * 1024,
            )
            for i, (medium, offset) in enumerate(entries)
        ]

    return st.lists(
        st.tuples(st.integers(0, 4), st.integers(0, 1000)),
        min_size=1,
        max_size=30,
    ).map(build)


def build_library(num_drives: int) -> TapeLibrary:
    library = TapeLibrary(PROFILE, num_drives=num_drives, retain_payload=False)
    for m in range(5):
        library.new_medium(f"m{m}")
    return library


class TestExecutorProperties:
    @given(request_batches(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_makespan_bracketed_by_device_work(self, batch, drives):
        library = build_library(4)
        report = ParallelExecutor(library, num_drives=drives).execute(batch)
        makespan = report.makespan_seconds
        work = report.serial_device_seconds
        assert makespan <= work + 1e-9
        assert work <= drives * makespan + 1e-9

    @given(request_batches(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_every_request_served_exactly_once(self, batch, drives):
        library = build_library(4)
        report = ParallelExecutor(library, num_drives=drives).execute(batch)
        assert sorted(report.order) == sorted(r.key for r in batch)
        assert report.requests == len(batch)

    @given(request_batches(), st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_event_window_decomposes_into_busy_plus_wait(self, batch, drives):
        library = build_library(4)
        log = library.clock.log
        start = log.cursor()
        report = ParallelExecutor(library, num_drives=drives).execute(batch)
        window = log.window(start, log.cursor())
        busy = sum(share.busy_seconds for share in report.drives)
        wait = sum(share.wait_seconds for share in report.drives)
        assert report.serial_device_seconds == pytest.approx(busy)
        assert report.robot_wait_seconds == pytest.approx(wait)
        assert sum(e.duration for e in window) == pytest.approx(busy + wait)

    @given(request_batches(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_executed_matches_plan_within_tolerance(self, batch, drives):
        library = build_library(4)
        plan = plan_parallel(batch, library, drives)
        # validate_estimates=True: per-medium drift beyond 10 % raises.
        report = ParallelExecutor(library, num_drives=drives).execute(batch)
        assert report.estimate_drift <= 0.10
        assert report.makespan_seconds == pytest.approx(
            plan.makespan_seconds, rel=0.10
        )

    @given(request_batches())
    @settings(max_examples=40, deadline=None)
    def test_single_drive_has_no_robot_wait(self, batch):
        library = build_library(1)
        report = ParallelExecutor(library, num_drives=1).execute(batch)
        assert report.robot_wait_seconds == 0.0
        assert report.makespan_seconds == pytest.approx(
            report.serial_device_seconds
        )


class TestCoalescing:
    def reqs(self, *extents):
        return [
            TapeRequest(f"r{i}", "m0", offset, length)
            for i, (offset, length) in enumerate(extents)
        ]

    def test_adjacent_requests_merge(self):
        runs = coalesce_requests(self.reqs((0, 10), (10, 10), (20, 5)))
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (0, 25)
        assert [r.key for r in runs[0].requests] == ["r0", "r1", "r2"]

    def test_overlapping_requests_merge_without_double_read(self):
        runs = coalesce_requests(self.reqs((0, 20), (10, 20)))
        assert len(runs) == 1
        assert (runs[0].offset, runs[0].length) == (0, 30)

    def test_gap_splits_runs(self):
        runs = coalesce_requests(self.reqs((0, 10), (20, 10)))
        assert [(r.offset, r.length) for r in runs] == [(0, 10), (20, 10)]

    def test_backward_request_is_not_merged(self):
        # Forward-only: a FIFO batch sweeping backwards keeps its seeks.
        runs = coalesce_requests(self.reqs((50, 10), (0, 10)))
        assert [(r.offset, r.length) for r in runs] == [(50, 10), (0, 10)]


class TestTimelineMechanics:
    def test_charges_advance_only_the_active_timeline(self):
        library = build_library(1)
        clock = library.clock
        timeline = Timeline.at("t", clock.now)
        with clock.timeline(timeline):
            clock.charge(5.0, "read", "d0")
            assert timeline.now == pytest.approx(5.0)
        assert clock.global_now == 0.0
        clock.sync_to([timeline])
        assert clock.now == pytest.approx(5.0)

    def test_sync_inside_timeline_rejected(self):
        library = build_library(1)
        clock = library.clock
        timeline = Timeline.at("t", clock.now)
        with clock.timeline(timeline):
            with pytest.raises(RuntimeError):
                clock.sync_to([timeline])

    def test_mount_on_rejects_medium_held_elsewhere(self):
        library = build_library(2)
        first, second = library.drives
        library.mount_on("m0", first)
        with pytest.raises(StorageError):
            library.mount_on("m0", second)
        assert library.mount_on("m0", first) is first  # idempotent holder

    def test_executor_rejects_nested_batches(self):
        library = build_library(2)
        timeline = Timeline.at("t", 0.0)
        executor = ParallelExecutor(library, num_drives=2)
        with library.clock.timeline(timeline):
            with pytest.raises(HeavenError):
                executor.execute([TapeRequest("r0", "m0", 0, 1024)])


class TestHeavenByteIdentity:
    REGIONS = [
        MInterval.of((0, 100), (0, 100)),
        MInterval.of((20, 127), (64, 127)),
        MInterval.of((0, 31), (0, 127)),
    ]

    def build(self, parallel_drives: int) -> Heaven:
        heaven = Heaven(
            HeavenConfig(
                tape_profile=scaled_profile(DLT_7000, 512 * 1024),
                num_drives=2,
                parallel_drives=parallel_drives,
                super_tile_bytes=256 * 1024,
                disk_cache_bytes=32 * MB,
                memory_cache_bytes=8 * MB,
            )
        )
        heaven.create_collection("col")
        for i in range(3):
            mdd = MDD(
                f"obj{i}",
                MInterval.of((0, 127), (0, 127)),
                DOUBLE,
                tiling=RegularTiling((32, 32)),
                source=HashedNoiseSource(5 + i, 0.0, 9.0),
            )
            heaven.insert("col", mdd)
            heaven.archive("col", f"obj{i}")
        heaven.library.unmount_all()
        return heaven

    def test_serial_and_parallel_staging_return_identical_bytes(self):
        serial = self.build(1)
        parallel = self.build(2)
        batch = [
            ("col", f"obj{i}", region)
            for i in range(3)
            for region in self.REGIONS
        ]
        serial_cells, _sr = serial.read_many(batch)
        parallel_cells, _pr = parallel.read_many(batch)
        for a, b in zip(serial_cells, parallel_cells):
            assert np.array_equal(a, b)
        assert parallel.parallel_batches > 0  # the parallel path really ran

    def test_parallel_staging_not_slower_than_serial(self):
        serial = self.build(1)
        parallel = self.build(2)
        batch = [("col", f"obj{i}", self.REGIONS[0]) for i in range(3)]
        t0 = serial.clock.now
        serial.read_many(batch)
        t1 = parallel.clock.now
        parallel.read_many(batch)
        assert parallel.clock.now - t1 <= serial.clock.now - t0 + 1e-9


class TestHSMBatchStaging:
    def build(self, parallel_drives: int) -> HSMSystem:
        library = TapeLibrary(
            scaled_profile(DLT_7000, 8 * MB), num_drives=2, retain_payload=True
        )
        hsm = HSMSystem(library, parallel_drives=parallel_drives)
        for i in range(6):
            payload = hashlib.sha256(str(i).encode()).digest() * 100_000
            hsm.archive_file(f"f{i}", len(payload), payload=payload)
        library.unmount_all()
        return hsm

    def test_batch_staging_is_payload_identical(self):
        names = [f"f{i}" for i in range(6)]
        serial, parallel = self.build(1), self.build(2)
        serial.stage_files(names)
        parallel.stage_files(names)
        for name in names:
            assert serial.read_file(name, 64, 128) == parallel.read_file(
                name, 64, 128
            )
        assert (
            serial.stats.bytes_staged_from_tape
            == parallel.stats.bytes_staged_from_tape
        )

    def test_batch_staging_faster_on_two_drives(self):
        names = [f"f{i}" for i in range(6)]
        serial, parallel = self.build(1), self.build(2)
        t0 = serial.clock.now
        serial.stage_files(names)
        serial_cost = serial.clock.now - t0
        t1 = parallel.clock.now
        parallel.stage_files(names)
        parallel_cost = parallel.clock.now - t1
        assert parallel_cost < serial_cost

    def test_restage_of_staged_batch_is_all_hits(self):
        names = [f"f{i}" for i in range(6)]
        hsm = self.build(2)
        hsm.stage_files(names)
        misses = hsm.stats.stage_misses
        hsm.stage_files(names)
        assert hsm.stats.stage_misses == misses
        assert hsm.stats.stage_hits >= len(names)
