"""Tests for the genetics and CFD workload generators."""

import numpy as np
import pytest

from repro.arrays import FLOAT, MInterval
from repro.core import tiles_in_frame
from repro.workloads import (
    AlignmentGrid,
    FlowGrid,
    alignment_object,
    cfd_object,
    diagonal_band_frame,
    flow_cell_type,
)


class TestGenetics:
    GRID = AlignmentGrid(length_a=512, length_b=512)

    def test_scores_in_unit_range(self):
        obj = alignment_object("a", self.GRID, seed=1)
        cells = obj.read(MInterval.of((0, 127), (0, 127)))
        assert cells.min() >= 0.0 and cells.max() <= 1.0

    def test_diagonal_dominates_off_diagonal(self):
        obj = alignment_object("a", self.GRID, seed=1)
        diag = obj.read(MInterval.of((100, 140), (100, 140)))
        off = obj.read(MInterval.of((100, 140), (400, 440)))
        assert diag.mean() > off.mean() + 0.3

    def test_deterministic(self):
        region = MInterval.of((0, 63), (0, 63))
        a = alignment_object("a", self.GRID, seed=3).read(region)
        b = alignment_object("a", self.GRID, seed=3).read(region)
        assert np.array_equal(a, b)

    def test_band_frame_selects_diagonal_tiles(self):
        from repro.arrays import RegularTiling

        obj = alignment_object(
            "a", self.GRID, seed=1, tiling=RegularTiling((64, 64))
        )
        frame = diagonal_band_frame(self.GRID, half_width=16)
        needed = tiles_in_frame(obj, frame)
        assert 0 < len(needed) < obj.tile_count()
        # Every selected tile touches the diagonal band.
        slope = 1.0
        for tile in needed:
            i0, i1 = tile.domain[0].lo, tile.domain[0].hi
            j0, j1 = tile.domain[1].lo, tile.domain[1].hi
            # Band intersects tile iff min over corners of |j - i| <= 16
            # or the band crosses through; the hull check suffices here:
            assert j0 - i1 <= 16 and i0 - j1 <= 16

    def test_band_mask_symmetry(self):
        frame = diagonal_band_frame(AlignmentGrid(64, 64), half_width=4)
        mask = frame.mask(MInterval.of((0, 63), (0, 63)))
        assert np.array_equal(mask, mask.T)
        assert mask.diagonal().all()
        assert not mask[0, 63] and not mask[63, 0]

    def test_rectangular_matrix(self):
        grid = AlignmentGrid(length_a=256, length_b=512)
        obj = alignment_object("r", grid, seed=2)
        # Band follows the scaled diagonal j = 2i.
        near = obj.read(MInterval.of((100, 100), (200, 200)))
        far = obj.read(MInterval.of((100, 100), (450, 450)))
        assert near.mean() > far.mean()


class TestCFDGenerator:
    def test_cell_type_registered_once(self):
        a = flow_cell_type()
        b = flow_cell_type()
        assert a is b
        assert a.dtype.names == ("u", "v", "w", "p")

    def test_no_slip_walls(self):
        obj = cfd_object("f", FlowGrid(16, 16, 8), seed=3)
        cells = obj.read_all()
        wall = cells["u"][:, 0, :]
        centre = cells["u"][:, 8, :]
        assert abs(wall).max() < 1e-9
        assert centre.mean() > 1.0

    def test_turbulence_deterministic(self):
        region = MInterval.of((0, 7), (0, 7), (0, 3))
        a = cfd_object("f", FlowGrid(16, 16, 8), seed=4).read(region)
        b = cfd_object("f", FlowGrid(16, 16, 8), seed=4).read(region)
        for name in a.dtype.names:
            assert np.array_equal(a[name], b[name])
