"""Tests for workload generators and access patterns."""

import numpy as np
import pytest

from repro.arrays import CHAR, DOUBLE, FLOAT, MInterval, RGB
from repro.errors import HeavenError
from repro.workloads import (
    ClimateGrid,
    SceneGrid,
    SimulationBox,
    ZipfQueryStream,
    climate_object,
    cosmology_object,
    cross_series_regions,
    monthly_series,
    satellite_object,
    slice_region,
    subcube,
)


class TestClimate:
    GRID = ClimateGrid(longitudes=60, latitudes=30, heights=8, time_steps=12)

    def test_domain_shape(self):
        assert self.GRID.domain().shape == (60, 30, 8, 12)
        assert ClimateGrid(10, 10, 4).domain().shape == (10, 10, 4)

    def test_deterministic(self):
        a = climate_object("c", self.GRID, seed=5).read(
            MInterval.of((0, 9), (0, 9), (0, 1), (0, 1))
        )
        b = climate_object("c", self.GRID, seed=5).read(
            MInterval.of((0, 9), (0, 9), (0, 1), (0, 1))
        )
        assert np.array_equal(a, b)

    def test_equator_warmer_than_pole(self):
        obj = climate_object("c", self.GRID, seed=1)
        equator = obj.read(MInterval.of((0, 59), (14, 15), (0, 0), (0, 0))).mean()
        pole = obj.read(MInterval.of((0, 59), (0, 1), (0, 0), (0, 0))).mean()
        assert equator > pole + 10

    def test_temperature_falls_with_height(self):
        obj = climate_object("c", self.GRID, seed=1)
        ground = obj.read(MInterval.of((0, 59), (0, 29), (0, 0), (0, 0))).mean()
        top = obj.read(MInterval.of((0, 59), (0, 29), (7, 7), (0, 0))).mean()
        assert ground > top

    def test_monthly_series_distinct_objects(self):
        series = monthly_series("m", 3, ClimateGrid(20, 10, 4))
        assert [o.name for o in series] == ["m-00", "m-01", "m-02"]
        a = series[0].read(MInterval.of((0, 4), (0, 4), (0, 0)))
        b = series[1].read(MInterval.of((0, 4), (0, 4), (0, 0)))
        assert not np.array_equal(a, b)


class TestSatellite:
    def test_char_band(self):
        obj = satellite_object("s", SceneGrid(256, 256), cell_type=CHAR)
        cells = obj.read(MInterval.of((0, 31), (0, 31)))
        assert cells.dtype == np.uint8
        assert cells.max() <= 200

    def test_rgb_cells(self):
        obj = satellite_object("s", SceneGrid(128, 128), cell_type=RGB)
        cells = obj.read(MInterval.of((0, 15), (0, 15)))
        assert cells.dtype.names == ("r", "g", "b")

    def test_time_axis(self):
        obj = satellite_object("s", SceneGrid(128, 128, passes=4))
        assert obj.domain.dimension == 3


class TestCosmology:
    def test_density_positive_and_skewed(self):
        obj = cosmology_object("d", SimulationBox(64), cell_type=FLOAT)
        cells = obj.read(MInterval.of((0, 63), (0, 63), (0, 7)))
        assert (cells > 0).all()
        assert cells.mean() < np.percentile(cells, 95)  # heavy right tail


class TestAccessPatterns:
    DOMAIN = MInterval.of((0, 99), (0, 199), (0, 49))

    def test_subcube_selectivity(self):
        rng = np.random.default_rng(0)
        for selectivity in (0.01, 0.1, 0.5):
            region = subcube(self.DOMAIN, selectivity, rng)
            actual = region.cell_count / self.DOMAIN.cell_count
            assert actual == pytest.approx(selectivity, rel=0.35)
            assert self.DOMAIN.contains(region)

    def test_subcube_full_selectivity(self):
        rng = np.random.default_rng(0)
        assert subcube(self.DOMAIN, 1.0, rng) == self.DOMAIN

    def test_subcube_bad_selectivity(self):
        rng = np.random.default_rng(0)
        with pytest.raises(HeavenError):
            subcube(self.DOMAIN, 0.0, rng)

    def test_slice_region(self):
        region = slice_region(self.DOMAIN, axis=2, position=10, thickness=2)
        assert region[0] == self.DOMAIN[0]
        assert region[2].lo == 10 and region[2].extent == 2

    def test_slice_default_position_centres(self):
        region = slice_region(self.DOMAIN, axis=0)
        assert self.DOMAIN[0].contains(region[0].lo)
        assert region[0].extent == 1

    def test_slice_bad_axis(self):
        with pytest.raises(HeavenError):
            slice_region(self.DOMAIN, axis=9)

    def test_cross_series(self):
        domains = [self.DOMAIN] * 4
        regions = cross_series_regions(domains, axis=2, position=5)
        assert len(regions) == 4
        assert all(r[2] == regions[0][2] for r in regions)


class TestZipfStream:
    def test_deterministic_with_seed(self):
        domains = [MInterval.of((0, 99), (0, 99))] * 4
        a = ZipfQueryStream(domains, seed=7).take(20)
        b = ZipfQueryStream(domains, seed=7).take(20)
        assert [(e.object_index, str(e.region)) for e in a] == [
            (e.object_index, str(e.region)) for e in b
        ]

    def test_popularity_skew(self):
        domains = [MInterval.of((0, 99), (0, 99))] * 8
        events = ZipfQueryStream(domains, zipf_s=1.5, seed=1).take(500)
        counts = np.bincount([e.object_index for e in events], minlength=8)
        assert counts[0] > counts[-1] * 2

    def test_locality_produces_repeats(self):
        domains = [MInterval.of((0, 999), (0, 999))]
        events = ZipfQueryStream(domains, locality=0.9, seed=2).take(100)
        distinct = len({str(e.region) for e in events})
        assert distinct < 30  # hot regions dominate

    def test_empty_domains_rejected(self):
        with pytest.raises(HeavenError):
            ZipfQueryStream([])
