"""Cross-query fusion must measurably beat independent serial queries.

The acceptance bar for the admission layer: the fused run's media
exchanges and tape bytes are *strictly lower* than N independent users
each staging on their own instance (the same comparison ``python -m
repro multiquery`` prints).
"""

from __future__ import annotations

import numpy as np

from repro.arrays import MInterval

from .conftest import archive_object, make_heaven, run_concurrent


def _independent_serial(regions):
    """Each query on its own fresh instance: everyone pays own staging."""
    total_bytes = total_exchanges = 0
    outputs = []
    for region in regions:
        heaven = make_heaven()
        archive_object(heaven)
        cells, report = heaven.read_with_report("col", "o0", region)
        outputs.append(cells)
        total_bytes += report.bytes_from_tape
        total_exchanges += report.exchanges
    return outputs, total_bytes, total_exchanges


class TestFusionBeatsSerial:
    def test_fused_run_strictly_cheaper_than_independent_users(self):
        # One scan plus two overlapping subwindows: heavy sharing.
        regions = [
            MInterval.of((0, 63), (0, 63)),
            MInterval.of((0, 31), (0, 63)),
            MInterval.of((16, 47), (0, 63)),
        ]
        serial_outputs, serial_bytes, serial_exchanges = (
            _independent_serial(regions)
        )
        heaven, fused_outputs, report = run_concurrent(regions)

        for got, want in zip(fused_outputs, serial_outputs):
            assert np.array_equal(got, want)

        assert report.bytes_from_tape < serial_bytes, (
            f"fusion saved nothing: fused {report.bytes_from_tape} B vs "
            f"{serial_bytes} B across {len(regions)} independent users"
        )
        assert report.exchanges < serial_exchanges, (
            f"fused run paid {report.exchanges} exchanges, independent "
            f"users paid {serial_exchanges}"
        )
        assert report.fusion_saved_bytes > 0
        assert report.fusion_saved_exchanges >= 1
        assert report.fused_segments >= 1
        heaven.assert_quiescent()

    def test_fusion_counters_reach_the_instruments(self):
        from repro.core import Heaven, HeavenConfig
        from repro.core.admission import AdmissionController
        from repro.tertiary import MB

        from .conftest import specs_for

        heaven = Heaven(
            HeavenConfig(
                super_tile_bytes=8 * 1024,
                disk_cache_bytes=64 * 1024,
                memory_cache_bytes=16 * MB,
            ),
            observability=True,
        )
        heaven.create_collection("col")
        archive_object(heaven)
        regions = [
            MInterval.of((0, 63), (0, 63)),
            MInterval.of((0, 63), (0, 63)),
        ]
        specs = specs_for(heaven, regions)
        _outputs, report = AdmissionController(heaven).run(specs)
        assert heaven.admission_sweeps == report.sweeps
        assert heaven.admission_fusion_saved_bytes == report.fusion_saved_bytes
        assert (
            heaven.admission_fusion_saved_exchanges
            == report.fusion_saved_exchanges
        )
        from repro.obs import prometheus_text

        assert heaven.instruments is not None
        heaven.instruments.collect()
        text = prometheus_text(heaven.instruments.registry)
        assert "repro_admission_sweeps_total" in text
        assert "repro_admission_fusion_saved_bytes_total" in text
