"""The admission layer's three correctness properties, Hypothesis-driven.

1. **Interleaving invisibility** — any admissible interleaving of N
   queries (random schedule seed, arrivals, weights, hold-back) returns
   cells byte-identical to serial execution on an identical instance.
2. **Bounded waiting** — with an aging bound configured, no staging
   demand waits longer than the bound in virtual time.
3. **No unrequested bytes** — a fused sweep never stages a byte no query
   demanded: every :class:`FusionAudit` staged run covers its demanded
   union exactly unless it had to absorb a pre-existing cached run.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.arrays import MInterval
from repro.obs import reconcile_shared_tape_bytes

from .conftest import SIDE, run_concurrent, serial_oracle

pytestmark = pytest.mark.property


def regions(max_queries: int = 4):
    def build(spans):
        out = []
        for (a0, b0), (a1, b1) in spans:
            lo0, hi0 = sorted((a0, b0))
            lo1, hi1 = sorted((a1, b1))
            out.append(MInterval.of((lo0, hi0), (lo1, hi1)))
        return out

    coord = st.integers(0, SIDE - 1)
    span = st.tuples(coord, coord)
    return st.lists(
        st.tuples(span, span), min_size=2, max_size=max_queries
    ).map(build)


# The tiny test environment's single sweep (mount + seek + stream a few
# 8 KB super-tiles) costs well under 200 virtual seconds; a 3600 s bound
# leaves the escalation path real headroom while the property stays
# falsifiable (a scheduler that parks a demand forever trips it).
AGING_BOUND_S = 3600.0


class TestInterleavingProperties:
    @given(
        query_regions=regions(),
        schedule_seed=st.integers(0, 2**16),
        arrivals=st.lists(st.integers(0, 40), min_size=4, max_size=4),
        weights=st.lists(
            st.sampled_from([0.5, 1.0, 2.0]), min_size=4, max_size=4
        ),
        holdback=st.sampled_from([0.0, 0.0, 2.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_interleaving_is_byte_identical_to_serial(
        self, query_regions, schedule_seed, arrivals, weights, holdback
    ):
        n = len(query_regions)
        heaven, outputs, report = run_concurrent(
            query_regions,
            arrivals=[float(a) for a in arrivals[:n]],
            weights=weights[:n],
            controller_kwargs=dict(
                schedule_seed=schedule_seed,
                holdback_s=holdback,
                aging_bound_s=AGING_BOUND_S,
            ),
        )
        expected = serial_oracle(query_regions)
        for got, want in zip(outputs, expected):
            assert np.array_equal(got, want)
        heaven.assert_quiescent()
        violation = reconcile_shared_tape_bytes(
            report.queries,
            heaven.clock.log,
            report.log_cursor_start,
            unattributed=report.unattributed_tape_bytes,
        )
        assert violation is None

    @given(
        query_regions=regions(max_queries=5),
        schedule_seed=st.integers(0, 2**16),
        arrivals=st.lists(st.integers(0, 60), min_size=5, max_size=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_no_demand_waits_past_the_aging_bound(
        self, query_regions, schedule_seed, arrivals
    ):
        n = len(query_regions)
        _heaven, _outputs, report = run_concurrent(
            query_regions,
            arrivals=[float(a) for a in arrivals[:n]],
            controller_kwargs=dict(
                schedule_seed=schedule_seed,
                aging_bound_s=AGING_BOUND_S,
            ),
        )
        assert report.max_wait_s <= AGING_BOUND_S, (
            f"a staging demand waited {report.max_wait_s:.1f} virtual s, "
            f"past the {AGING_BOUND_S:.0f} s aging bound "
            f"({report.sweeps} sweeps, depth {report.max_queue_depth})"
        )

    @given(
        query_regions=regions(),
        schedule_seed=st.integers(0, 2**16),
        holdback=st.sampled_from([0.0, 2.0]),
    )
    @settings(max_examples=30, deadline=None)
    def test_fused_sweeps_stage_no_unrequested_bytes(
        self, query_regions, schedule_seed, holdback
    ):
        _heaven, _outputs, report = run_concurrent(
            query_regions,
            controller_kwargs=dict(
                schedule_seed=schedule_seed,
                holdback_s=holdback,
                aging_bound_s=AGING_BOUND_S,
            ),
        )
        assert report.audit, "every run with staging must leave audit rows"
        for entry in report.audit:
            d_off, d_len = entry.demanded_run
            s_off, s_len = entry.staged_run
            # The staged run always covers the demanded union ...
            assert s_off <= d_off
            assert s_off + s_len >= d_off + d_len
            # ... and equals it exactly unless a pre-existing cached run
            # had to be absorbed (the only sanctioned over-stage).
            if not entry.absorbed_cached:
                assert entry.staged_run == entry.demanded_run, (
                    f"sweep staged bytes nobody demanded on {entry.key}: "
                    f"staged {entry.staged_run} vs demanded "
                    f"{entry.demanded_run} for queries {entry.queries}"
                )
