"""Regression: admission sweeps under ``prefetch="sequential"``.

``Heaven.plan_requests`` grows its *needs* dict in place when sequential
prefetch is enabled (``_add_prefetch`` appends neighbour segments that no
query demanded).  The controller passes its fused-demand dict as *needs*,
so after planning it can contain segments with no demanding query.  The
original bug: ``_grant_leases`` and the fusion-audit loop indexed
``by_key[key]`` for those prefetch keys and crashed with ``KeyError``
(first seen as simtest seed 13).  These tests pin the fixed behaviour:
prefetched bytes stay unattributed, no leases are taken for them, and
the audit only covers demanded segments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import MInterval
from repro.obs import reconcile_shared_tape_bytes

from .conftest import run_concurrent, serial_oracle

pytestmark = pytest.mark.property

# Small subwindows on different super-tiles so sequential prefetch has
# unmounted-neighbour segments to pull in alongside the demanded ones.
REGIONS = [
    MInterval.of((0, 15), (0, 15)),
    MInterval.of((0, 15), (16, 31)),
    MInterval.of((48, 63), (0, 63)),
]

CONFIG = {"prefetch": "sequential", "prefetch_depth": 2}


def test_sequential_prefetch_does_not_crash_the_sweep():
    heaven, outputs, report = run_concurrent(REGIONS, config=CONFIG)
    expected = serial_oracle(REGIONS, **CONFIG)
    for got, want in zip(outputs, expected):
        assert np.array_equal(got, want)
    heaven.assert_quiescent()


def test_prefetched_bytes_stay_unattributed_and_reconcile():
    heaven, _outputs, report = run_concurrent(REGIONS, config=CONFIG)
    # Per-query attribution must still cover the event log exactly; the
    # prefetched neighbours land in the unattributed bucket.
    assert (
        reconcile_shared_tape_bytes(
            report.queries,
            heaven.clock.log,
            report.log_cursor_start,
            unattributed=report.unattributed_tape_bytes,
        )
        is None
    )
    # No query is charged for bytes it never demanded.
    for query in report.queries:
        assert query.bytes_from_tape <= report.total_bytes_attributed


def test_prefetch_segments_get_no_leases_or_audit_rows():
    heaven, _outputs, report = run_concurrent(REGIONS, config=CONFIG)
    stats = heaven.disk_cache.stats
    # Every lease taken by the sweeps was released at assembly time --
    # prefetch-only segments never enter the lease ledger at all.
    assert stats.leases == stats.lease_releases
    assert heaven.disk_cache.pinned_keys() == []
    # Audit rows exist only for demanded segments, and each one was
    # demanded by at least one query.
    assert report.audit
    assert report.fused_segments == len(report.audit)
    for row in report.audit:
        assert row.queries
