"""Starvation regression: interactive latency under a concurrent scan.

The adversarial mix from the paper's operational reality: one
full-archive scan (PB-scale in spirit, 32 KB here) racing periodic
interactive subwindow reads.  Weighted-fair scheduling plus the aging
bound must keep the interactive p95 sojourn under a committed bound; on
failure the assertion message renders the full latency table so the
regression is diagnosable from the CI log alone.
"""

from __future__ import annotations

from repro.arrays import MInterval
from repro.bench.suite import percentile

from .conftest import SIDE, run_concurrent

#: committed bound on interactive p95 sojourn (virtual seconds).  The
#: current implementation delivers ~10 s on the test environment; the
#: headroom absorbs cost-model tuning, not scheduling regressions — a
#: starved interactive query queues behind the whole scan plus every
#: earlier interactive and lands well past this.
INTERACTIVE_P95_BOUND_S = 60.0


def _latency_table(names, latencies):
    rows = ["query      latency [virtual s]", "-" * 34]
    for name, latency in zip(names, latencies):
        rows.append(f"{name:<10} {latency:>12.1f}")
    return "\n".join(rows)


class TestStarvation:
    def test_interactive_p95_under_bound_despite_scan(self):
        scan = MInterval.of((0, SIDE - 1), (0, SIDE - 1))
        interactive = [
            MInterval.of((lo, min(SIDE - 1, lo + 15)), (0, SIDE - 1))
            for lo in range(0, SIDE, 16)
        ]
        regions = [scan] + interactive
        arrivals = [0.0] + [10.0 * (i + 1) for i in range(len(interactive))]
        weights = [0.5] + [2.0] * len(interactive)
        _heaven, outputs, report = run_concurrent(
            regions,
            arrivals=arrivals,
            weights=weights,
            controller_kwargs=dict(aging_bound_s=3600.0),
        )
        assert all(out is not None for out in outputs)
        names = ["scan"] + [f"inter{i}" for i in range(len(interactive))]
        interactive_latencies = report.latencies_s[1:]
        p95 = percentile(sorted(interactive_latencies), 95.0)
        assert p95 <= INTERACTIVE_P95_BOUND_S, (
            f"interactive p95 sojourn {p95:.1f} s exceeds the committed "
            f"{INTERACTIVE_P95_BOUND_S:.0f} s bound — interactive queries "
            f"starved behind the scan.\n"
            + _latency_table(names, report.latencies_s)
        )
        # The scan must still finish, and not instantly (it does real work).
        assert report.latencies_s[0] > 0.0

    def test_scan_cannot_monopolise_sweep_service(self):
        """With fair weights, interactive queries finish before the scan
        accumulates all the service — the sweeps interleave."""
        scan = MInterval.of((0, SIDE - 1), (0, SIDE - 1))
        probe = MInterval.of((0, 15), (0, 15))
        _heaven, _outputs, report = run_concurrent(
            [scan, probe],
            arrivals=[0.0, 0.0],
            weights=[0.5, 2.0],
            controller_kwargs=dict(aging_bound_s=3600.0),
        )
        scan_latency, probe_latency = report.latencies_s
        assert probe_latency <= scan_latency, (
            f"the small probe ({probe_latency:.1f} s) finished after the "
            f"full scan ({scan_latency:.1f} s): fair scheduling inverted"
        )
