"""Unit tests for the admission layer's building blocks.

Covers the exact shared-byte split, the weighted-fair medium picker and
its aging escalation, per-query lease accounting, and the single-query
degenerate case (admission must cost the same as a plain read).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrays import MInterval
from repro.core.admission import (
    AdmissionController,
    QuerySpec,
    _Demand,
    _QueryTask,
)
from repro.core.scheduler import (
    TapeRequest,
    attribute_request_bytes,
    split_shared_bytes,
)
from repro.errors import HeavenError
from repro.obs import reconcile_shared_tape_bytes

from .conftest import archive_object, make_heaven, run_concurrent, specs_for


class TestSharedByteSplit:
    def test_split_sums_exactly(self):
        for length in (0, 1, 7, 1024, 999_983):
            for ids in ((1,), (1, 2), (1, 2, 3), (5, 9, 2, 7)):
                shares = split_shared_bytes(length, ids)
                assert sum(shares.values()) == length
                assert set(shares) == set(ids)

    def test_split_is_deterministic_and_id_ordered(self):
        a = split_shared_bytes(10, (3, 1, 2))
        b = split_shared_bytes(10, (2, 3, 1))
        assert a == b
        # 10 = 3*3 + 1: the lowest id gets the remainder byte.
        assert a == {1: 4, 2: 3, 3: 3}

    def test_split_dedupes_ids(self):
        assert split_shared_bytes(9, (4, 4, 4)) == {4: 9}

    def test_split_empty_ids(self):
        assert split_shared_bytes(100, ()) == {}

    def test_attribute_request_bytes_across_requests(self):
        requests = [
            TapeRequest(key="a", medium_id="m", offset=0, length=10,
                        query_ids=(1, 2)),
            TapeRequest(key="b", medium_id="m", offset=10, length=7,
                        query_ids=(2,)),
            TapeRequest(key="c", medium_id="m", offset=20, length=5,
                        query_id=3),
        ]
        totals = attribute_request_bytes(requests)
        assert totals == {1: 5, 2: 12, 3: 5}
        assert sum(totals.values()) == 22

    def test_sharing_queries_falls_back_to_query_id(self):
        solo = TapeRequest(key="a", medium_id="m", offset=0, length=1,
                           query_id=7)
        shared = TapeRequest(key="a", medium_id="m", offset=0, length=1,
                             query_id=1, query_ids=(2, 1, 2))
        assert solo.sharing_queries == (7,)
        assert shared.sharing_queries == (1, 2)


def _task(qid: int, *, weight: float, service: float) -> _QueryTask:
    region = MInterval.of((0, 0))
    task = _QueryTask(
        qid=qid,
        spec=QuerySpec("col", "o0", region),
        weight=weight,
    )
    task.admitted = True
    task.service_s = service
    return task


def _demand(medium: str, enqueued: float) -> _Demand:
    return _Demand(key=f"seg-{medium}", medium_id=medium, tile_ids=[0],
                   run=(0, 1024), enqueued_s=enqueued)


class TestMediumPicker:
    def test_weighted_fair_prefers_least_service_per_weight(self):
        heaven = make_heaven()
        controller = AdmissionController(heaven, aging_bound_s=None)
        now = heaven.clock.now
        # A: 10s service at weight 1 -> need 10.  B: 10s at weight 4 -> 2.5.
        pending = [
            (_task(1, weight=1.0, service=10.0), _demand("m-a", now)),
            (_task(2, weight=4.0, service=10.0), _demand("m-b", now)),
        ]
        assert controller._pick_medium(pending) == "m-b"

    def test_tie_breaks_on_medium_id(self):
        heaven = make_heaven()
        controller = AdmissionController(heaven, aging_bound_s=None)
        now = heaven.clock.now
        pending = [
            (_task(1, weight=1.0, service=0.0), _demand("m-z", now)),
            (_task(2, weight=1.0, service=0.0), _demand("m-a", now)),
        ]
        assert controller._pick_medium(pending) == "m-a"

    def test_aging_escalation_overrides_fairness(self):
        heaven = make_heaven()
        controller = AdmissionController(heaven, aging_bound_s=100.0)
        t0 = heaven.clock.now
        # The starved demand enqueued at t0; a fresher, fairer candidate
        # arrives later.  Push the clock past bound/2.
        heaven.clock.charge(60.0, "wait", "test")
        now = heaven.clock.now
        pending = [
            (_task(1, weight=1.0, service=9999.0), _demand("m-old", t0)),
            (_task(2, weight=4.0, service=0.0), _demand("m-new", now)),
        ]
        assert controller._pick_medium(pending) == "m-old"

    def test_no_escalation_below_half_bound(self):
        heaven = make_heaven()
        controller = AdmissionController(heaven, aging_bound_s=1000.0)
        t0 = heaven.clock.now
        heaven.clock.charge(60.0, "wait", "test")
        now = heaven.clock.now
        pending = [
            (_task(1, weight=1.0, service=9999.0), _demand("m-old", t0)),
            (_task(2, weight=4.0, service=0.0), _demand("m-new", now)),
        ]
        assert controller._pick_medium(pending) == "m-new"


class TestControllerValidation:
    def test_negative_holdback_rejected(self):
        heaven = make_heaven()
        with pytest.raises(HeavenError):
            AdmissionController(heaven, holdback_s=-1.0)

    def test_zero_aging_bound_rejected(self):
        heaven = make_heaven()
        with pytest.raises(HeavenError):
            AdmissionController(heaven, aging_bound_s=0.0)

    def test_empty_run_is_a_noop(self):
        heaven = make_heaven()
        outputs, report = AdmissionController(heaven).run([])
        assert outputs == []
        assert report.sweeps == 0


class TestSingleQuery:
    def test_single_query_matches_plain_read(self):
        region = MInterval.of((5, 40), (10, 50))
        heaven, outputs, report = run_concurrent([region])
        oracle = make_heaven()
        archive_object(oracle)
        expected, serial_report = oracle.read_with_report("col", "o0", region)
        assert np.array_equal(outputs[0], expected)
        assert report.queries[0].bytes_from_tape == serial_report.bytes_from_tape
        assert report.exchanges == serial_report.exchanges
        heaven.assert_quiescent()

    def test_attribution_reconciles_exactly(self):
        regions = [
            MInterval.of((0, 63), (0, 63)),
            MInterval.of((0, 31), (0, 31)),
            MInterval.of((32, 63), (0, 63)),
        ]
        heaven, _outputs, report = run_concurrent(regions)
        violation = reconcile_shared_tape_bytes(
            report.queries,
            heaven.clock.log,
            report.log_cursor_start,
            unattributed=report.unattributed_tape_bytes,
        )
        assert violation is None
        assert report.total_bytes_attributed == report.bytes_from_tape

    def test_leases_balance_and_quiesce(self):
        regions = [
            MInterval.of((0, 63), (0, 63)),
            MInterval.of((0, 63), (0, 63)),
        ]
        heaven, _outputs, _report = run_concurrent(regions)
        stats = heaven.disk_cache.stats
        assert stats.leases > 0
        assert stats.leases == stats.lease_releases
        heaven.assert_quiescent()

    def test_read_concurrent_facade(self):
        heaven = make_heaven()
        archive_object(heaven)
        region = MInterval.of((0, 31), (0, 31))
        outputs, report = heaven.read_concurrent(
            [("col", "o0", region), ("col", "o0", region)]
        )
        assert len(outputs) == 2
        assert np.array_equal(outputs[0], outputs[1])
        assert report.sweeps >= 1
        heaven.assert_quiescent()
