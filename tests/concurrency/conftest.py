"""Shared builders for the multi-query admission test suite.

Everything here runs on a deliberately tiny simulated environment
(8 KB super-tiles, 64x64 DOUBLE objects) so each property example can
afford to build two full HEAVEN instances: one for the concurrent run
and one as the serial oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arrays import (
    DOUBLE,
    HashedNoiseSource,
    MDD,
    MInterval,
    RegularTiling,
)
from repro.core import Heaven, HeavenConfig
from repro.core.admission import AdmissionController, QuerySpec
from repro.tertiary import MB

SIDE = 64


def make_heaven(**overrides) -> Heaven:
    defaults = dict(
        super_tile_bytes=8 * 1024,    # 4 tiles of 2 KB per super-tile
        disk_cache_bytes=64 * 1024,
        memory_cache_bytes=16 * MB,
        num_drives=1,
    )
    defaults.update(overrides)
    heaven = Heaven(HeavenConfig(**defaults))
    heaven.create_collection("col")
    return heaven


def archive_object(
    heaven: Heaven, name: str = "o0", side: int = SIDE, seed: int = 0
) -> MDD:
    mdd = MDD(
        name,
        MInterval.of((0, side - 1), (0, side - 1)),
        DOUBLE,
        tiling=RegularTiling((16, 16)),
        source=HashedNoiseSource(seed, 0.0, 5.0),
    )
    heaven.insert("col", mdd)
    heaven.archive("col", name)
    heaven.library.unmount_all()
    return mdd


def specs_for(
    heaven: Heaven,
    regions: Sequence[MInterval],
    *,
    arrivals: Optional[Sequence[float]] = None,
    weights: Optional[Sequence[Optional[float]]] = None,
    name: str = "o0",
) -> List[QuerySpec]:
    now = heaven.clock.now
    out = []
    for index, region in enumerate(regions):
        out.append(
            QuerySpec(
                collection="col",
                object_name=name,
                region=region,
                arrival_s=now + (arrivals[index] if arrivals else 0.0),
                weight=weights[index] if weights else None,
                name=f"q{index}",
            )
        )
    return out


def serial_oracle(
    regions: Sequence[MInterval], *, seed: int = 0, **config
) -> List[np.ndarray]:
    """Serial execution on a fresh, identical instance: the ground truth."""
    heaven = make_heaven(**config)
    archive_object(heaven, seed=seed)
    return [heaven.read("col", "o0", region) for region in regions]


def run_concurrent(
    regions: Sequence[MInterval],
    *,
    seed: int = 0,
    arrivals: Optional[Sequence[float]] = None,
    weights: Optional[Sequence[Optional[float]]] = None,
    controller_kwargs: Optional[dict] = None,
    config: Optional[dict] = None,
) -> Tuple[Heaven, List[np.ndarray], "object"]:
    heaven = make_heaven(**(config or {}))
    archive_object(heaven, seed=seed)
    specs = specs_for(heaven, regions, arrivals=arrivals, weights=weights)
    controller = AdmissionController(heaven, **(controller_kwargs or {}))
    outputs, report = controller.run(specs)
    return heaven, outputs, report
