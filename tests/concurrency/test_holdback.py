"""Anticipatory hold-back edge cases.

The window is a wager: spend up to ``holdback_s`` of everyone's virtual
time for the chance to absorb a soon-arriving query into the same mount.
The edges that must hold exactly:

* a window that expires with **no** absorbed arrivals costs precisely the
  window — never more;
* a query arriving **exactly at expiry** is absorbed (closed interval);
* the wager pays: an absorbed query shares the mount instead of paying
  its own exchange.
"""

from __future__ import annotations

import numpy as np

from repro.arrays import MInterval
from repro.core.admission import AdmissionController

from .conftest import archive_object, make_heaven, run_concurrent, specs_for

REGION = MInterval.of((0, 31), (0, 31))


def _single_query_latency(holdback: float) -> tuple:
    heaven, _outputs, report = run_concurrent(
        [REGION], controller_kwargs=dict(holdback_s=holdback)
    )
    return report.latencies_s[0], report


class TestHoldbackEdges:
    def test_empty_window_adds_exactly_the_window(self):
        baseline, base_report = _single_query_latency(0.0)
        held, held_report = _single_query_latency(5.0)
        assert held_report.holdback_absorbed == 0
        assert held_report.sweeps == base_report.sweeps == 1
        assert held_report.holdback_seconds == 5.0
        assert held - baseline == 5.0, (
            f"an unabsorbed hold-back window must cost exactly its length: "
            f"baseline {baseline:.3f} s, with 5 s window {held:.3f} s"
        )

    def test_arrival_exactly_at_expiry_is_absorbed(self):
        heaven = make_heaven()
        archive_object(heaven)
        now = heaven.clock.now
        holdback = 7.0
        # q0 arrives now; its dispatch opens a window [now, now+holdback].
        # q1 lands exactly on the expiry instant.
        specs = specs_for(
            heaven, [REGION, REGION], arrivals=[0.0, holdback]
        )
        controller = AdmissionController(heaven, holdback_s=holdback)
        outputs, report = controller.run(specs)
        assert report.holdback_absorbed == 1, (
            "an arrival exactly at window expiry must be absorbed"
        )
        assert report.exchanges == 1, (
            "the absorbed query must share the mount, not pay its own"
        )
        assert report.sweeps == 1
        assert np.array_equal(outputs[0], outputs[1])
        assert heaven.clock.now > now
        heaven.assert_quiescent()

    def test_arrival_just_past_expiry_is_not_absorbed(self):
        heaven = make_heaven()
        archive_object(heaven)
        holdback = 7.0
        specs = specs_for(
            heaven, [REGION, REGION], arrivals=[0.0, holdback + 0.001]
        )
        controller = AdmissionController(heaven, holdback_s=holdback)
        _outputs, report = controller.run(specs)
        assert report.holdback_absorbed == 0
        assert report.sweeps == 2

    def test_absorbed_query_saves_tape_traffic(self):
        """The wager pays off: hold-back with an arrival inside the window
        beats no hold-back with the same offset arrival."""

        def run(holdback: float):
            heaven, _outputs, report = run_concurrent(
                [REGION, REGION],
                arrivals=[0.0, 3.0],
                controller_kwargs=dict(holdback_s=holdback),
            )
            return report

        eager = run(0.0)
        held = run(5.0)
        assert held.holdback_absorbed == 1
        assert held.bytes_from_tape <= eager.bytes_from_tape
        assert held.sweeps <= eager.sweeps
