"""Stateful (hypothesis) model checking of the disk cache.

Drives the cache through arbitrary insert/lookup/invalidate/pin/unpin
sequences against a live-membership model (kept in sync through the
eviction callback), asserting the real cache never disagrees about
membership, never exceeds capacity, serves exactly the bytes that were
inserted — and never, under any interleaving, evicts a pinned entry.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

import pytest

from repro.core import LRUPolicy
from repro.core.cache import DiskCache
from repro.errors import CacheError, CachePinnedError
from repro.tertiary import DISK_ARRAY, SimClock

CAPACITY = 1000


class DiskCacheMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        #: model of CURRENT cache content: key -> payload
        self.present = {}
        #: model of pin reference counts: key -> count (> 0)
        self.pins = {}
        self.cache = DiskCache(
            CAPACITY,
            LRUPolicy(),
            DISK_ARRAY,
            SimClock(),
            on_evict=self._on_evict,
        )

    def _on_evict(self, key):
        # THE staging-pipeline safety property: eviction never touches a
        # pinned entry, no matter what sequence led here.
        assert key not in self.pins, f"pinned entry {key!r} was evicted"
        self.present.pop(key, None)

    def _pinned_bytes(self) -> int:
        return sum(len(self.present[k]) for k in self.pins)

    keys = Bundle("keys")

    @rule(
        target=keys,
        key=st.text(alphabet="abcdef", min_size=1, max_size=3),
        size=st.integers(1, 400),
        pinned=st.booleans(),
    )
    def insert(self, key, size, pinned):
        if key in self.cache:
            return key
        payload = (key * (size // len(key) + 1)).encode()[:size]
        try:
            self.cache.insert(
                key, size, refetch_cost=1.0, payload=payload, pin=pinned
            )
        except CachePinnedError:
            # Only legitimate when the pinned residue leaves no room even
            # after evicting every unpinned entry.
            assert self._pinned_bytes() + size > CAPACITY
            assert key not in self.cache
            return key
        self.present[key] = payload
        if pinned:
            self.pins[key] = 1
        return key

    @rule(key=keys)
    def lookup(self, key):
        assert self.cache.lookup(key) == (key in self.present)

    @rule(key=keys)
    def read_back(self, key):
        if key not in self.present:
            return
        payload = self.present[key]
        assert self.cache.read(key, 0, len(payload)) == payload

    @rule(key=keys)
    def pin(self, key):
        if key in self.present:
            self.cache.pin(key)
            self.pins[key] = self.pins.get(key, 0) + 1
        else:
            with pytest.raises(CacheError):
                self.cache.pin(key)

    @rule(key=keys)
    def unpin(self, key):
        if self.pins.get(key):
            self.cache.unpin(key)
            if self.pins[key] == 1:
                del self.pins[key]
            else:
                self.pins[key] -= 1
        else:
            with pytest.raises(CacheError):
                self.cache.unpin(key)

    @rule(key=keys)
    def invalidate(self, key):
        expected = key in self.present
        assert self.cache.invalidate(key) == expected
        self.present.pop(key, None)
        self.pins.pop(key, None)

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_bytes <= CAPACITY

    @invariant()
    def membership_agrees(self):
        assert set(self.cache.keys()) == set(self.present)

    @invariant()
    def pins_agree(self):
        assert set(self.cache.pinned_keys()) == set(self.pins)
        for key, count in self.pins.items():
            assert self.cache.pin_count(key) == count
        assert self.cache.pinned_bytes == self._pinned_bytes()


TestDiskCacheMachine = DiskCacheMachine.TestCase
TestDiskCacheMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
