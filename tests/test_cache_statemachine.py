"""Stateful (hypothesis) model checking of the disk cache.

Drives the cache through arbitrary insert/lookup/invalidate sequences
against a live-membership model (kept in sync through the eviction
callback), asserting the real cache never disagrees about membership,
never exceeds capacity, and serves exactly the bytes that were inserted.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.core import LRUPolicy
from repro.core.cache import DiskCache
from repro.tertiary import DISK_ARRAY, SimClock

CAPACITY = 1000


class DiskCacheMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        #: model of CURRENT cache content: key -> payload
        self.present = {}
        self.cache = DiskCache(
            CAPACITY,
            LRUPolicy(),
            DISK_ARRAY,
            SimClock(),
            on_evict=lambda key: self.present.pop(key, None),
        )

    keys = Bundle("keys")

    @rule(
        target=keys,
        key=st.text(alphabet="abcdef", min_size=1, max_size=3),
        size=st.integers(1, 400),
    )
    def insert(self, key, size):
        if key in self.cache:
            return key
        payload = (key * (size // len(key) + 1)).encode()[:size]
        self.cache.insert(key, size, refetch_cost=1.0, payload=payload)
        self.present[key] = payload
        return key

    @rule(key=keys)
    def lookup(self, key):
        assert self.cache.lookup(key) == (key in self.present)

    @rule(key=keys)
    def read_back(self, key):
        if key not in self.present:
            return
        payload = self.present[key]
        assert self.cache.read(key, 0, len(payload)) == payload

    @rule(key=keys)
    def invalidate(self, key):
        expected = key in self.present
        assert self.cache.invalidate(key) == expected
        self.present.pop(key, None)

    @invariant()
    def capacity_respected(self):
        assert self.cache.used_bytes <= CAPACITY

    @invariant()
    def membership_agrees(self):
        assert set(self.cache.keys()) == set(self.present)


TestDiskCacheMachine = DiskCacheMachine.TestCase
TestDiskCacheMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
