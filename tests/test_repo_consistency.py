"""Repository self-consistency checks.

Keeps the documentation honest: every experiment DESIGN.md promises has a
benchmark module, every example the README lists exists and is runnable
Python, and the public API exports resolve.
"""

import ast
import importlib
import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(path: str) -> str:
    with open(os.path.join(REPO_ROOT, path)) as handle:
        return handle.read()


class TestExperimentIndex:
    def test_every_design_bench_target_exists(self):
        design = read("DESIGN.md")
        targets = set(re.findall(r"`(bench_[a-z0-9_]+\.py)`", design))
        assert targets, "DESIGN.md lists no bench targets?"
        for target in targets:
            path = os.path.join(REPO_ROOT, "benchmarks", target)
            assert os.path.exists(path), f"DESIGN.md references missing {target}"

    def test_every_bench_module_has_a_test_function(self):
        bench_dir = os.path.join(REPO_ROOT, "benchmarks")
        modules = [
            name for name in os.listdir(bench_dir) if name.startswith("bench_")
        ]
        assert len(modules) >= 18
        for name in modules:
            tree = ast.parse(read(os.path.join("benchmarks", name)))
            test_functions = [
                node.name
                for node in tree.body
                if isinstance(node, ast.FunctionDef) and node.name.startswith("test_")
            ]
            assert test_functions, f"{name} has no test function"

    def test_experiments_md_covers_e1_to_e13(self):
        experiments = read("EXPERIMENTS.md")
        for number in range(1, 14):
            assert f"## E{number} " in experiments or f"## E{number}—" in experiments or f"## E{number} —" in experiments, (
                f"EXPERIMENTS.md misses E{number}"
            )


class TestExamples:
    def test_readme_examples_exist(self):
        readme = read("README.md")
        listed = re.findall(r"python (examples/[a-z_]+\.py)", readme)
        assert len(set(listed)) >= 4
        for example in listed:
            assert os.path.exists(os.path.join(REPO_ROOT, example)), example

    def test_examples_are_valid_python_with_main(self):
        examples_dir = os.path.join(REPO_ROOT, "examples")
        files = [f for f in os.listdir(examples_dir) if f.endswith(".py")]
        assert len(files) >= 4
        for name in files:
            tree = ast.parse(read(os.path.join("examples", name)))
            functions = [
                node.name for node in tree.body if isinstance(node, ast.FunctionDef)
            ]
            assert "main" in functions, f"{name} has no main()"

    def test_quickstart_exists(self):
        assert os.path.exists(os.path.join(REPO_ROOT, "examples", "quickstart.py"))


class TestPublicAPI:
    @pytest.mark.parametrize(
        "module_name",
        ["repro", "repro.arrays", "repro.core", "repro.dbms",
         "repro.tertiary", "repro.workloads", "repro.bench"],
    )
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_version_declared(self):
        import repro

        assert re.match(r"\d+\.\d+\.\d+", repro.__version__)


class TestDeliverables:
    @pytest.mark.parametrize(
        "path",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml",
         "docs/ARCHITECTURE.md", "docs/QUERY_LANGUAGE.md"],
    )
    def test_file_exists(self, path):
        assert os.path.exists(os.path.join(REPO_ROOT, path)), path
