"""Edge-case and utility coverage across packages."""

import numpy as np
import pytest

from repro.arrays import (
    DOUBLE,
    ConstantSource,
    HashedNoiseSource,
    MDD,
    MInterval,
    QuantizedSource,
    RegularTiling,
)
from repro.bench import ResultTable, geometric_mean, speedup
from repro.core import (
    InterleavedObjectPlacement,
    ScatterPlacement,
    interleave_round_robin,
    star_partition,
)
from repro.dbms import LogKind, WriteAheadLog
from repro.errors import HeavenError
from repro.tertiary import DLT_7000, MB, TapeLibrary, scaled_profile


class TestQuantizedSource:
    DOMAIN = MInterval.of((0, 15), (0, 15))

    def test_values_on_grid(self):
        source = QuantizedSource(HashedNoiseSource(1, 0.0, 10.0), step=0.25)
        cells = source.region(self.DOMAIN, DOUBLE)
        assert np.allclose(cells, np.round(cells / 0.25) * 0.25)

    def test_preserves_determinism(self):
        source = QuantizedSource(HashedNoiseSource(1), step=0.5)
        a = source.region(self.DOMAIN, DOUBLE)
        b = source.region(self.DOMAIN, DOUBLE)
        assert np.array_equal(a, b)

    def test_quantisation_improves_compressibility(self):
        import zlib

        raw = HashedNoiseSource(2, 0.0, 10.0)
        quantised = QuantizedSource(raw, step=0.25)
        domain = MInterval.of((0, 63), (0, 63))
        plain = raw.region(domain, DOUBLE).tobytes()
        stepped = quantised.region(domain, DOUBLE).tobytes()
        assert len(zlib.compress(stepped)) < len(zlib.compress(plain)) / 2

    def test_constant_passes_through(self):
        source = QuantizedSource(ConstantSource(3.1), step=0.5)
        cells = source.region(self.DOMAIN, DOUBLE)
        assert (cells == 3.0).all()

    def test_nonpositive_step_rejected(self):
        with pytest.raises(ValueError):
            QuantizedSource(ConstantSource(1.0), step=0.0)

    def test_integer_cells_untouched(self):
        from repro.arrays import LONG

        source = QuantizedSource(ConstantSource(7), step=0.25)
        cells = source.region(self.DOMAIN, LONG)
        assert (cells == 7).all()


class TestInterleavedPlacement:
    PROFILE = scaled_profile(DLT_7000, 64 * MB)

    def make_objects(self, count=3):
        return [
            MDD(
                f"o{i}",
                MInterval.from_shape((64, 64)),
                DOUBLE,
                tiling=RegularTiling((32, 32)),
            )
            for i in range(count)
        ]

    def test_round_robin_interleaving(self):
        objects = self.make_objects(2)
        per_object = [star_partition(o, 8 * 1024) for o in objects]
        merged = interleave_round_robin(per_object)
        assert len(merged) == sum(len(s) for s in per_object)
        names = [st.object_name for st in merged[:4]]
        assert names == ["o0", "o1", "o0", "o1"]

    def test_uneven_streams(self):
        objects = self.make_objects(2)
        short = star_partition(objects[0], 10**9)  # one super-tile
        long = star_partition(objects[1], 8 * 1024)
        merged = interleave_round_robin([short, long])
        assert len(merged) == len(short) + len(long)
        assert {st.object_name for st in merged} == {"o0", "o1"}

    def test_policy_plan_preserves_order(self):
        library = TapeLibrary(self.PROFILE)
        objects = self.make_objects(1)
        sts = star_partition(objects[0], 8 * 1024)
        plan = InterleavedObjectPlacement().plan(sts, library)
        assert [p.super_tile for p in plan] == sts
        assert all(p.medium_id is None for p in plan)

    def test_scatter_spill_grows_media_set(self):
        library = TapeLibrary(self.PROFILE)
        obj = MDD(
            "big",
            MInterval.from_shape((1024, 1024)),  # 8 MB
            DOUBLE,
            tiling=RegularTiling((256, 256)),
        )
        sts = star_partition(obj, 512 * 1024)
        plan = ScatterPlacement(spread=2).plan(sts, library)
        assert len(plan) == len(sts)
        assert len(library.media()) >= 2

    def test_scatter_invalid_spread(self):
        with pytest.raises(HeavenError):
            ScatterPlacement(spread=0)


class TestResultTable:
    def test_render_aligns_columns(self):
        table = ResultTable("T", ["a", "long-column"])
        table.add(1, 2.5)
        table.add(100, 3.25)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert all(len(line) == len(lines[2]) for line in lines[2:5])

    def test_wrong_arity_rejected(self):
        table = ResultTable("T", ["a"])
        with pytest.raises(ValueError):
            table.add(1, 2)

    def test_column_access(self):
        table = ResultTable("T", ["a", "b"])
        table.add(1, "x")
        table.add(2, "y")
        assert table.column("b") == ["x", "y"]

    def test_notes_rendered(self):
        table = ResultTable("T", ["a"])
        table.add(1)
        table.note("hello")
        assert "note: hello" in table.render()

    def test_float_formatting(self):
        table = ResultTable("T", ["v"])
        table.add(12345.6)
        table.add(0.0)
        table.add(0.1234)
        rendered = table.render()
        assert "12,346" in rendered
        assert "0.123" in rendered

    def test_speedup_and_geomean(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(10.0, 0.0) == float("inf")
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestWALUtilities:
    def test_records_for_and_truncate(self):
        wal = WriteAheadLog()
        wal.append(1, LogKind.BEGIN)
        wal.append(2, LogKind.BEGIN)
        wal.append(1, LogKind.COMMIT)
        assert len(wal.records_for(1)) == 2
        assert wal.committed_txns() == [1]
        assert wal.truncate() == 3
        assert len(wal) == 0


class TestMiscEdges:
    def test_mdd_from_array_default_origin(self):
        cells = np.ones((3, 3))
        mdd = MDD.from_array("a", cells)
        assert mdd.domain.origin == (0, 0)

    def test_collection_iteration(self):
        from repro.arrays import Collection

        coll = Collection("c")
        coll.add(MDD("b", MInterval.of((0, 1))))
        coll.add(MDD("a", MInterval.of((0, 1))))
        assert [o.name for o in coll] == ["a", "b"]

    def test_grid_arity_mismatch(self):
        from repro.errors import DomainError

        with pytest.raises(DomainError):
            MInterval.of((0, 9), (0, 9)).grid([5])

    def test_one_dimensional_tiling_and_star(self):
        mdd = MDD(
            "line",
            MInterval.of((0, 1023)),
            DOUBLE,
            tiling=RegularTiling((128,)),
        )
        sts = star_partition(mdd, 2 * 128 * 8)
        assert len(sts) == 4
        assert all(st.tile_count == 2 for st in sts)
