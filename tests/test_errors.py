"""Tests for the exception hierarchy: every layer error is a ReproError."""

import inspect

import pytest

from repro import errors
from repro.errors import (
    ArrayError,
    DatabaseError,
    HeavenError,
    ReproError,
    StorageError,
)


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, ReproError), cls

    def test_layer_bases(self):
        assert issubclass(errors.MediumFullError, StorageError)
        assert issubclass(errors.SegmentNotFoundError, StorageError)
        assert issubclass(errors.HSMError, StorageError)
        assert issubclass(errors.SchemaError, DatabaseError)
        assert issubclass(errors.TransactionError, DatabaseError)
        assert issubclass(errors.BlobNotFoundError, DatabaseError)
        assert issubclass(errors.DomainError, ArrayError)
        assert issubclass(errors.QueryError, ArrayError)
        assert issubclass(errors.QuerySyntaxError, errors.QueryError)
        assert issubclass(errors.ExportError, HeavenError)
        assert issubclass(errors.CacheError, HeavenError)
        assert issubclass(errors.FramingError, HeavenError)

    def test_fault_error_family(self):
        assert issubclass(errors.FaultError, StorageError)
        assert issubclass(errors.MediaFaultError, errors.FaultError)
        assert issubclass(errors.RobotFaultError, errors.FaultError)
        assert issubclass(errors.DriveFaultError, errors.FaultError)
        assert issubclass(errors.HSMFaultError, errors.FaultError)
        assert issubclass(errors.RetryExhaustedError, StorageError)
        assert not issubclass(errors.RetryExhaustedError, errors.FaultError)
        assert errors.FaultError.transient is True

    def test_one_catch_covers_all_injected_faults(self):
        for cls in (errors.MediaFaultError, errors.RobotFaultError,
                    errors.DriveFaultError, errors.HSMFaultError):
            with pytest.raises(errors.FaultError):
                raise cls("injected")

    def test_one_base_catch_covers_a_layer(self):
        with pytest.raises(StorageError):
            raise errors.DriveBusyError("busy")
        with pytest.raises(ReproError):
            raise errors.TilingError("bad tiling")

    def test_no_error_shadows_builtins(self):
        import builtins

        for cls in all_error_classes():
            assert not hasattr(builtins, cls.__name__), cls

    def test_full_hierarchy_importable_from_top_level(self):
        """Every error class is re-exported from the ``repro`` package."""
        import repro

        for cls in all_error_classes():
            assert getattr(repro, cls.__name__) is cls, cls
            assert cls.__name__ in repro.__all__, cls
