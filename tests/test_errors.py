"""Tests for the exception hierarchy: every layer error is a ReproError."""

import inspect

import pytest

from repro import errors
from repro.errors import (
    ArrayError,
    DatabaseError,
    HeavenError,
    ReproError,
    StorageError,
)


def all_error_classes():
    return [
        obj
        for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception) and obj.__module__ == "repro.errors"
    ]


class TestHierarchy:
    def test_every_error_is_a_repro_error(self):
        for cls in all_error_classes():
            assert issubclass(cls, ReproError), cls

    def test_layer_bases(self):
        assert issubclass(errors.MediumFullError, StorageError)
        assert issubclass(errors.SegmentNotFoundError, StorageError)
        assert issubclass(errors.HSMError, StorageError)
        assert issubclass(errors.SchemaError, DatabaseError)
        assert issubclass(errors.TransactionError, DatabaseError)
        assert issubclass(errors.BlobNotFoundError, DatabaseError)
        assert issubclass(errors.DomainError, ArrayError)
        assert issubclass(errors.QueryError, ArrayError)
        assert issubclass(errors.QuerySyntaxError, errors.QueryError)
        assert issubclass(errors.ExportError, HeavenError)
        assert issubclass(errors.CacheError, HeavenError)
        assert issubclass(errors.FramingError, HeavenError)

    def test_one_base_catch_covers_a_layer(self):
        with pytest.raises(StorageError):
            raise errors.DriveBusyError("busy")
        with pytest.raises(ReproError):
            raise errors.TilingError("bad tiling")

    def test_no_error_shadows_builtins(self):
        import builtins

        for cls in all_error_classes():
            assert not hasattr(builtins, cls.__name__), cls
