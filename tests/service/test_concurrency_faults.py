"""Concurrency and fault tests for the service tier.

Every request through a faulty cluster must either complete
byte-identical to a single-node ``Heaven.read`` or fail with a typed
``ServiceError`` subclass — never hang (each async body runs under an
``asyncio.wait_for`` guard) and never leak byte attribution across
tenants (the per-tenant metric series, the registry usage and the
per-result reports must reconcile exactly).
"""

import asyncio
from typing import Dict, List

import numpy as np
import pytest

from repro.arrays import DOUBLE, MDD, HashedNoiseSource, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.errors import (
    DataNodeError,
    ServiceError,
    ShardUnavailableError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.service import ServiceCluster, ServiceFaultPlan, ServiceFaultSpec
from repro.tertiary import MB

SIDE = 64
TILE = 16
FULL = f"0:{SIDE - 1},0:{SIDE - 1}"

#: generous wall-clock ceiling for paths that must complete; a hang
#: fails the test instead of stalling the suite
NO_HANG_S = 30.0


def _make_config(**extra) -> HeavenConfig:
    # 8 KB super-tiles: several segments, so the ring splits the object
    return HeavenConfig(
        super_tile_bytes=8 * 1024,
        disk_cache_bytes=16 * MB,
        memory_cache_bytes=8 * MB,
        **extra,
    )


def _setup(heaven: Heaven) -> None:
    heaven.create_collection("c")
    mdd = MDD(
        "obj",
        MInterval.of((0, SIDE - 1), (0, SIDE - 1)),
        DOUBLE,
        tiling=RegularTiling((TILE, TILE)),
        source=HashedNoiseSource(17, -5.0, 5.0),
    )
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()


@pytest.fixture(scope="module")
def reference() -> Heaven:
    heaven = Heaven(_make_config())
    _setup(heaven)
    return heaven


def _gather_guarded(cluster: ServiceCluster, requests) -> List[object]:
    """Concurrent reads; exceptions returned in-place, never a hang."""

    async def body():
        return await asyncio.wait_for(
            asyncio.gather(
                *(
                    cluster.sn.read(token, "c", "obj", region, arrival_v=v)
                    for token, region, v in requests
                ),
                return_exceptions=True,
            ),
            timeout=NO_HANG_S,
        )

    return list(cluster.run(body))


REGIONS = [FULL, "0:31,0:31", "32:63,0:63", "0:63,16:47", "16:47,16:47"]


class TestConcurrentUnderTransportFaults:
    def test_identity_or_typed_failure(self, reference):
        plan = ServiceFaultPlan(
            seed=7,
            spec=ServiceFaultSpec(
                stall_rate=0.15, error_rate=0.15, stall_s=0.01
            ),
        )
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=4, objects=[("c", "obj")],
            fault_plan=plan, retries=2, timeout_s=5.0,
        )
        cluster.register_tenant("alice")
        cluster.register_tenant("bob")
        requests = [
            (f"token-{'alice' if i % 2 == 0 else 'bob'}", REGIONS[i % len(REGIONS)], 0.25 * i)
            for i in range(10)
        ]
        outcomes = _gather_guarded(cluster, requests)
        completed = 0
        for (_token, region, _v), outcome in zip(requests, outcomes):
            if isinstance(outcome, BaseException):
                assert isinstance(outcome, ServiceError), outcome
                continue
            completed += 1
            expected = reference.read("c", "obj", MInterval.parse(region))
            np.testing.assert_array_equal(outcome.cells, expected)
        # Retries absorb most transient faults: the bulk must complete.
        assert completed >= len(requests) // 2

    def test_no_cross_tenant_byte_attribution_leak(self, reference):
        plan = ServiceFaultPlan(
            seed=13, spec=ServiceFaultSpec(error_rate=0.25)
        )
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=4, objects=[("c", "obj")],
            fault_plan=plan, retries=1, timeout_s=5.0,
        )
        for name in ("alice", "bob", "carol"):
            cluster.register_tenant(name)
        tenants = ["alice", "bob", "carol"]
        requests = [
            (f"token-{tenants[i % 3]}", REGIONS[i % len(REGIONS)], 0.1 * i)
            for i in range(12)
        ]
        outcomes = _gather_guarded(cluster, requests)
        served: Dict[str, int] = {name: 0 for name in tenants}
        for (token, _region, _v), outcome in zip(requests, outcomes):
            if isinstance(outcome, BaseException):
                assert isinstance(outcome, ServiceError), outcome
                continue
            served[outcome.tenant] += outcome.bytes_useful
            assert token == f"token-{outcome.tenant}"
        bytes_metric = cluster.sn.metrics.get("repro_service_tenant_bytes_total")
        for name in tenants:
            # metric series == per-result sums == registry budget:
            # failed reads settle to zero, so nothing leaks anywhere.
            assert bytes_metric.value(tenant=name) == served[name]
            assert cluster.tenants.usage(name).bytes_charged == served[name]


class TestRetryAndTypedFailures:
    def test_drop_then_retry_succeeds(self, reference):
        plan = ServiceFaultPlan(seed=0)
        plan.fail_next("drop", node="dn0")
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")],
            fault_plan=plan, retries=1, timeout_s=0.1,
        )
        cluster.register_tenant("alice")
        result = cluster.read("token-alice", "c", "obj", FULL)
        assert result.retries >= 1
        expected = reference.read("c", "obj", MInterval.parse(FULL))
        np.testing.assert_array_equal(result.cells, expected)

    def test_drop_past_retry_budget_is_shard_unavailable(self):
        plan = ServiceFaultPlan(seed=0)
        plan.fail_next("drop", node="dn0", count=2)
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")],
            fault_plan=plan, retries=1, timeout_s=0.05,
        )
        cluster.register_tenant("alice")
        with pytest.raises(ShardUnavailableError):
            cluster.read("token-alice", "c", "obj", FULL)
        # The failed query's pre-charge was settled back to zero.
        assert cluster.tenants.usage("alice").bytes_charged == 0

    def test_transport_error_past_retry_budget_is_typed(self):
        plan = ServiceFaultPlan(seed=0)
        plan.fail_next("error", node="dn0", count=2)
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")],
            fault_plan=plan, retries=1, timeout_s=5.0,
        )
        cluster.register_tenant("alice")
        with pytest.raises(DataNodeError):
            cluster.read("token-alice", "c", "obj", FULL)

    def test_stall_within_timeout_is_absorbed(self, reference):
        plan = ServiceFaultPlan(
            seed=0, spec=ServiceFaultSpec(stall_s=0.01)
        )
        plan.fail_next("stall", node="dn0")
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")],
            fault_plan=plan, retries=0, timeout_s=5.0,
        )
        cluster.register_tenant("alice")
        result = cluster.read("token-alice", "c", "obj", FULL)
        assert result.retries == 0
        expected = reference.read("c", "obj", MInterval.parse(FULL))
        np.testing.assert_array_equal(result.cells, expected)


class TestDegradedPartialResults:
    def test_dark_shard_degrades_with_fill(self, reference):
        plan = ServiceFaultPlan(seed=0)
        plan.fail_next("drop", node="dn0", count=2)
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")],
            fault_plan=plan, retries=1, timeout_s=0.05,
            partial_results=True,
        )
        cluster.register_tenant("alice")
        result = cluster.read("token-alice", "c", "obj", FULL)
        assert result.degraded
        assert result.missing_tiles
        assert "dn0" not in result.shards
        expected = reference.read("c", "obj", MInterval.parse(FULL))
        mdd = reference.collection("c").get("obj")
        region = MInterval.parse(FULL)
        missing = set(result.missing_tiles)
        for tile_id, tile in mdd.tiles.items():
            window = tuple(
                slice(t_lo - r_lo, t_hi - r_lo + 1)
                for t_lo, t_hi, r_lo in zip(
                    tile.domain.origin, tile.domain.high, region.origin
                )
            )
            if tile_id in missing:
                assert np.all(result.cells[window] == 0.0)
            else:
                np.testing.assert_array_equal(
                    result.cells[window], expected[window]
                )
        # The tenant only paid for the bytes that actually arrived.
        assert result.bytes_useful < expected.nbytes
        assert (
            cluster.tenants.usage("alice").bytes_charged
            == result.bytes_useful
        )
        degraded = cluster.sn.metrics.get("repro_service_degraded_total")
        assert degraded.value(tenant="alice") == 1.0


class TestHardwareFaults:
    def test_offline_library_fails_typed_not_hung(self):
        """A mount-level hardware fault inside one DN's Heaven surfaces
        as a typed service error, not a hang or a wrong answer."""
        heavens = []
        for _ in range(2):
            heaven = Heaven(_make_config(fault_plan=FaultPlan(seed=1)))
            _setup(heaven)
            heavens.append(heaven)
        heavens[0].config.fault_plan.set_offline(True)
        cluster = ServiceCluster(
            heavens, objects=[("c", "obj")], retries=1, timeout_s=5.0
        )
        cluster.register_tenant("alice")
        with pytest.raises(DataNodeError):
            cluster.read("token-alice", "c", "obj", FULL)

    def test_offline_library_with_partial_results_degrades(self, reference):
        heavens = []
        for _ in range(2):
            heaven = Heaven(_make_config(fault_plan=FaultPlan(seed=1)))
            _setup(heaven)
            heavens.append(heaven)
        heavens[0].config.fault_plan.set_offline(True)
        cluster = ServiceCluster(
            heavens, objects=[("c", "obj")], retries=1, timeout_s=5.0,
            partial_results=True,
        )
        cluster.register_tenant("alice")
        result = cluster.read("token-alice", "c", "obj", FULL)
        assert result.degraded
        assert result.missing_tiles
        assert result.cells.shape == (SIDE, SIDE)

    def test_transient_mount_failure_served_by_storage_retry(self, reference):
        """One scheduled mount failure is absorbed below the service
        tier (the library's retry policy) — the read still completes."""
        heavens = []
        for _ in range(2):
            plan = FaultPlan(seed=1, spec=FaultSpec())
            heaven = Heaven(_make_config(fault_plan=plan))
            _setup(heaven)
            heavens.append(heaven)
        heavens[0].config.fault_plan.fail_next("mount")
        cluster = ServiceCluster(
            heavens, objects=[("c", "obj")], retries=1, timeout_s=10.0
        )
        cluster.register_tenant("alice")
        result = cluster.read("token-alice", "c", "obj", FULL)
        expected = reference.read("c", "obj", MInterval.parse(FULL))
        np.testing.assert_array_equal(result.cells, expected)
