"""Wire-format and serializable-unit tests (repro.core.units)."""

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.units import (
    SubReadRequest,
    SubReadResponse,
    SubReadStats,
    TilePayload,
    WireError,
    decode_frames,
    encode_frames,
)
from repro.errors import WireFormatError


class TestFraming:
    def test_round_trip_header_and_frames(self):
        header = {"kind": "x", "value": 7}
        payloads = [b"abc", b"", b"\x00\x01\x02\x03"]
        data = encode_frames(header, payloads)
        decoded, frames = decode_frames(data)
        assert decoded["kind"] == "x"
        assert decoded["value"] == 7
        assert [bytes(f) for f in frames] == payloads

    def test_decoded_frames_are_read_only_views(self):
        data = encode_frames({}, [b"abcd"])
        _header, frames = decode_frames(data)
        assert isinstance(frames[0], memoryview)
        assert frames[0].readonly

    def test_truncated_prefix_rejected(self):
        with pytest.raises(WireFormatError):
            decode_frames(b"\x00\x00")

    def test_truncated_header_rejected(self):
        data = encode_frames({"k": 1}, [])
        with pytest.raises(WireFormatError):
            decode_frames(data[: len(data) - 1])

    def test_truncated_frame_rejected(self):
        data = encode_frames({}, [b"abcdef"])
        with pytest.raises(WireFormatError):
            decode_frames(data[:-2])

    def test_trailing_bytes_rejected(self):
        data = encode_frames({}, [b"abc"])
        with pytest.raises(WireFormatError):
            decode_frames(data + b"!")

    def test_malformed_json_rejected(self):
        bad = b"{nope"
        data = len(bad).to_bytes(4, "big") + bad
        with pytest.raises(WireFormatError):
            decode_frames(data)

    def test_version_mismatch_rejected(self):
        head = json.dumps({"_wire": 999, "_frames": []}).encode()
        data = len(head).to_bytes(4, "big") + head
        with pytest.raises(WireFormatError):
            decode_frames(data)

    @given(
        st.lists(st.binary(min_size=0, max_size=64), max_size=5),
        st.dictionaries(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            st.integers(-1000, 1000),
            max_size=4,
        ),
    )
    @pytest.mark.property
    def test_round_trip_property(self, payloads, header):
        header.pop("_wire", None)
        header.pop("_frames", None)
        data = encode_frames(header, payloads)
        decoded, frames = decode_frames(data)
        assert [bytes(f) for f in frames] == payloads
        for key, value in header.items():
            assert decoded[key] == value


class TestSubReadRequest:
    def test_encode_decode_round_trip(self):
        request = SubReadRequest(
            request_id="q1/dn0",
            tenant="alice",
            collection="c",
            object_name="obj",
            region="0:9,3:7",
            tile_ids=(3, 1, 2),
            arrival_v=2.5,
        )
        back = SubReadRequest.decode(request.encode())
        assert back == request

    def test_region_parses(self):
        request = SubReadRequest(
            request_id="q",
            tenant="t",
            collection="c",
            object_name="o",
            region="0:9,3:7",
        )
        assert request.parsed_region().shape == (10, 5)

    def test_payload_frames_rejected(self):
        request = SubReadRequest(
            request_id="q", tenant="t", collection="c",
            object_name="o", region="0:1",
        )
        header, _frames = decode_frames(request.encode())
        with pytest.raises(WireFormatError):
            SubReadRequest.decode(encode_frames(header, [b"stray"]))


class TestSubReadResponse:
    def _response(self):
        cells = np.arange(12, dtype=np.float64).reshape(3, 4)
        tile = TilePayload(
            tile_id=5,
            domain="0:2,0:3",
            dtype="double",
            payload=memoryview(cells.tobytes()),
        )
        return SubReadResponse(
            request_id="q1/dn0",
            object_name="obj",
            node_id="dn0",
            tiles=[tile],
            region="0:2,0:3",
            dtype="double",
            stats=SubReadStats(bytes_useful=96, bytes_from_tape=96),
            completion_v=4.25,
        )

    def test_round_trip_tiles_byte_identical(self):
        response = self._response()
        back = SubReadResponse.decode(response.encode())
        assert back.request_id == response.request_id
        assert back.node_id == "dn0"
        assert back.completion_v == 4.25
        assert len(back.tiles) == 1
        np.testing.assert_array_equal(
            back.tiles[0].cells(), response.tiles[0].cells()
        )

    def test_tile_cells_view_is_zero_copy(self):
        response = SubReadResponse.decode(self._response().encode())
        cells = response.tiles[0].cells()
        assert cells.base is not None  # a view, not a copy
        assert not cells.flags.writeable

    def test_stats_round_trip(self):
        back = SubReadResponse.decode(self._response().encode())
        assert back.stats.bytes_useful == 96
        assert back.stats.bytes_from_tape == 96

    def test_error_response_round_trip(self):
        response = SubReadResponse(
            request_id="q",
            object_name="obj",
            node_id="dn1",
            error=WireError(type="DataNodeError", message="boom"),
        )
        back = SubReadResponse.decode(response.encode())
        assert not back.ok
        assert back.error.type == "DataNodeError"
        assert back.error.message == "boom"
        assert back.tiles == []

    def test_unknown_dtype_rejected_at_cells(self):
        tile = TilePayload(
            tile_id=0, domain="0:0", dtype="antimatter", payload=b"\x00" * 8
        )
        with pytest.raises(WireFormatError):
            tile.cells()
