"""SN reassembly byte-identity against single-node ``Heaven.read``."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrays import DOUBLE, MDD, HashedNoiseSource, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.errors import HeavenError, ShardUnavailableError
from repro.service import ServiceCluster, ShadowObject
from repro.tertiary import MB

SIDE = 96
TILE = 16


def _make_config() -> HeavenConfig:
    # 8 KB super-tiles (4 tiles each): ~9 segments, so a 4-node hash
    # ring reliably splits the object across several shards.
    return HeavenConfig(
        super_tile_bytes=8 * 1024,
        disk_cache_bytes=16 * MB,
        memory_cache_bytes=8 * MB,
    )


def _setup(heaven: Heaven) -> None:
    heaven.create_collection("c")
    mdd = MDD(
        "obj",
        MInterval.of((0, SIDE - 1), (0, SIDE - 1)),
        DOUBLE,
        tiling=RegularTiling((TILE, TILE)),
        source=HashedNoiseSource(11, -5.0, 5.0),
    )
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()


@pytest.fixture(scope="module")
def reference() -> Heaven:
    heaven = Heaven(_make_config())
    _setup(heaven)
    return heaven


@pytest.fixture(scope="module")
def cluster() -> ServiceCluster:
    built = ServiceCluster.build(
        _make_config, _setup, nodes=4, objects=[("c", "obj")]
    )
    built.register_tenant("alice")
    return built


windows = st.tuples(
    st.integers(0, SIDE - 1), st.integers(0, SIDE - 1),
    st.integers(0, SIDE - 1), st.integers(0, SIDE - 1),
)


class TestByteIdentity:
    def test_full_object_read(self, cluster, reference):
        region = f"0:{SIDE - 1},0:{SIDE - 1}"
        result = cluster.read("token-alice", "c", "obj", region)
        expected = reference.read("c", "obj", MInterval.parse(region))
        np.testing.assert_array_equal(result.cells, expected)
        assert result.bytes_useful > 0

    def test_multi_shard_read_reports_shards(self, cluster):
        region = f"0:{SIDE - 1},0:{SIDE - 1}"
        result = cluster.read("token-alice", "c", "obj", region)
        # 36 tiles over a 4-node ring: statistically certain to split
        assert len(set(result.shards)) > 1

    @pytest.mark.property
    @given(window=windows)
    @settings(max_examples=25, deadline=None)
    def test_random_subwindows(self, cluster, reference, window):
        lo0, hi0, lo1, hi1 = window
        lo0, hi0 = min(lo0, hi0), max(lo0, hi0)
        lo1, hi1 = min(lo1, hi1), max(lo1, hi1)
        region = f"{lo0}:{hi0},{lo1}:{hi1}"
        result = cluster.read("token-alice", "c", "obj", region)
        expected = reference.read("c", "obj", MInterval.parse(region))
        np.testing.assert_array_equal(result.cells, expected)


class TestServeSubReads:
    def test_tile_subset_serves_exact_tiles(self, reference):
        from repro.core.units import SubReadRequest

        mdd = reference.collection("c").get("obj")
        region = MInterval.parse("0:47,0:47")
        tile_ids = tuple(t.tile_id for t in mdd.tiles_for(region))
        response = reference.serve_sub_read(
            SubReadRequest(
                request_id="q", tenant="t", collection="c",
                object_name="obj", region=str(region), tile_ids=tile_ids,
            )
        )
        assert response.ok
        assert sorted(t.tile_id for t in response.tiles) == sorted(tile_ids)
        for tile in response.tiles:
            expected = mdd.materialize_tile(mdd.tiles[tile.tile_id])
            np.testing.assert_array_equal(tile.cells(), expected)

    def test_unknown_tile_id_rejected(self, reference):
        from repro.core.units import SubReadRequest

        with pytest.raises(HeavenError):
            reference.serve_sub_read(
                SubReadRequest(
                    request_id="q", tenant="t", collection="c",
                    object_name="obj", region="0:1,0:1", tile_ids=(9999,),
                )
            )


class TestShadowObject:
    def _descriptor(self, reference):
        return reference.describe_object("c", "obj")

    def test_shadow_matches_geometry(self, reference):
        shadow = ShadowObject(self._descriptor(reference))
        mdd = reference.collection("c").get("obj")
        assert str(shadow.domain) == str(mdd.domain)
        assert len(shadow.mdd.tiles) == len(mdd.tiles)
        for tile_id, tile in mdd.tiles.items():
            assert str(shadow.mdd.tiles[tile_id].domain) == str(tile.domain)

    def test_missing_tile_raises_typed(self, reference):
        shadow = ShadowObject(self._descriptor(reference))
        with pytest.raises(ShardUnavailableError):
            shadow.assemble(MInterval.parse("0:31,0:31"), payloads={})

    def test_missing_fill_degrades_instead(self, reference):
        shadow = ShadowObject(self._descriptor(reference))
        cells = shadow.assemble(
            MInterval.parse("0:31,0:31"), payloads={}, missing_fill=-3.0
        )
        assert cells.shape == (32, 32)
        assert np.all(cells == -3.0)

    def test_estimated_read_bytes_clips_to_domain(self, reference):
        shadow = ShadowObject(self._descriptor(reference))
        inside = shadow.estimated_read_bytes(MInterval.parse("0:9,0:9"))
        assert inside == 10 * 10 * 8
        past = shadow.estimated_read_bytes(
            MInterval.parse(f"0:{SIDE + 50},0:{SIDE + 50}")
        )
        assert past == SIDE * SIDE * 8


class TestRunUnits:
    def test_per_unit_byte_attribution_sums_exactly(self):
        from repro.core.admission import AdmissionController
        from repro.core.units import SubReadRequest

        heaven = Heaven(_make_config())
        _setup(heaven)
        mdd = heaven.collection("c").get("obj")
        regions = ["0:31,0:31", "32:63,0:95", "64:95,64:95"]
        units = [
            SubReadRequest(
                request_id=f"q{i}", tenant="t", collection="c",
                object_name="obj", region=region,
                tile_ids=tuple(
                    t.tile_id for t in mdd.tiles_for(MInterval.parse(region))
                ),
            )
            for i, region in enumerate(regions)
        ]
        responses, report = AdmissionController(heaven).run_units(units)
        assert len(responses) == 3
        assert all(r.ok for r in responses)
        total_tape = sum(r.stats.bytes_from_tape for r in responses)
        assert total_tape + report.unattributed_tape_bytes == pytest.approx(
            report.bytes_from_tape
        )
