"""Shard-routing property tests for the consistent-hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServiceError
from repro.service import HashRing

KEYS = [f"c/obj/st{i}" for i in range(200)]


class TestBasics:
    def test_single_node_owns_everything(self):
        ring = HashRing(["dn0"])
        assert all(ring.node_for(key) == "dn0" for key in KEYS)

    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ServiceError):
            HashRing().node_for("k")

    def test_duplicate_node_rejected(self):
        ring = HashRing(["dn0"])
        with pytest.raises(ServiceError):
            ring.add_node("dn0")

    def test_membership_and_len(self):
        ring = HashRing(["a", "b"])
        assert "a" in ring and "c" not in ring
        assert len(ring) == 2
        ring.remove_node("a")
        assert "a" not in ring and len(ring) == 1

    def test_deterministic_assignment(self):
        first = HashRing(["dn0", "dn1", "dn2"]).assignment(KEYS)
        second = HashRing(["dn0", "dn1", "dn2"]).assignment(KEYS)
        assert first == second

    def test_every_key_maps_to_exactly_one_registered_node(self):
        ring = HashRing(["dn0", "dn1", "dn2", "dn3"])
        for key in KEYS:
            assert ring.node_for(key) in ("dn0", "dn1", "dn2", "dn3")


node_lists = st.lists(
    st.sampled_from([f"dn{i}" for i in range(8)]),
    min_size=1,
    max_size=8,
    unique=True,
)


@pytest.mark.property
class TestConsistencyProperties:
    @given(nodes=node_lists)
    @settings(max_examples=30)
    def test_total_single_valued_routing(self, nodes):
        """Every tile key routes to exactly one registered node."""
        ring = HashRing(nodes)
        assignment = ring.assignment(KEYS)
        assert set(assignment) == set(KEYS)
        assert set(assignment.values()) <= set(nodes)

    @given(nodes=node_lists)
    @settings(max_examples=30)
    def test_adding_a_node_only_moves_keys_to_it(self, nodes):
        """Rebalancing moves keys only onto the new node (~K/N of them)."""
        ring = HashRing(nodes)
        before = ring.assignment(KEYS)
        ring.add_node("newbie")
        after = ring.assignment(KEYS)
        moved = [key for key in KEYS if before[key] != after[key]]
        assert all(after[key] == "newbie" for key in moved)
        # expected share is K/(N+1); allow generous slack for hash variance
        expected = len(KEYS) / (len(nodes) + 1)
        assert len(moved) <= 3.5 * expected

    @given(nodes=node_lists)
    @settings(max_examples=30)
    def test_removing_a_node_only_moves_its_keys(self, nodes):
        ring = HashRing(nodes + ["leaver"])
        before = ring.assignment(KEYS)
        ring.remove_node("leaver")
        after = ring.assignment(KEYS)
        for key in KEYS:
            if before[key] != "leaver":
                assert after[key] == before[key]
            else:
                assert after[key] != "leaver"
