"""Tenant auth and quota tests: 401/429 semantics and exact settlement."""

import pytest

from repro.arrays import DOUBLE, MDD, HashedNoiseSource, MInterval, RegularTiling
from repro.core import Heaven, HeavenConfig
from repro.errors import AuthError, QuotaExceededError, ServiceError
from repro.service import ServiceCluster, TenantRegistry
from repro.tertiary import MB


class TestRegistry:
    def test_register_and_authenticate(self):
        registry = TenantRegistry()
        tenant = registry.register("alice")
        assert tenant.token == "token-alice"
        assert registry.authenticate("token-alice").name == "alice"

    def test_unknown_token_is_401(self):
        registry = TenantRegistry()
        with pytest.raises(AuthError) as excinfo:
            registry.authenticate("nope")
        assert excinfo.value.status == 401

    def test_disabled_tenant_is_401(self):
        registry = TenantRegistry()
        registry.register("alice")
        registry.disable("alice")
        with pytest.raises(AuthError):
            registry.authenticate("token-alice")

    def test_duplicate_name_rejected(self):
        registry = TenantRegistry()
        registry.register("alice")
        with pytest.raises(ServiceError):
            registry.register("alice")

    def test_byte_quota_precharge_is_429(self):
        registry = TenantRegistry()
        registry.register("bob", max_bytes=100)
        registry.charge("bob", 60)
        with pytest.raises(QuotaExceededError) as excinfo:
            registry.charge("bob", 50)
        assert excinfo.value.status == 429
        # The rejected request consumed no budget.
        assert registry.usage("bob").bytes_charged == 60
        assert registry.usage("bob").rejected == 1

    def test_request_quota(self):
        registry = TenantRegistry()
        registry.register("bob", max_requests=2)
        registry.charge("bob", 1)
        registry.charge("bob", 1)
        with pytest.raises(QuotaExceededError):
            registry.charge("bob", 1)
        assert registry.usage("bob").requests == 2

    def test_settle_adjusts_to_actual_bytes(self):
        registry = TenantRegistry()
        registry.register("bob", max_bytes=1000)
        registry.charge("bob", 800)
        registry.settle("bob", 800, 300)
        assert registry.usage("bob").bytes_charged == 300
        # The freed estimate headroom is spendable again.
        registry.charge("bob", 600)

    def test_refund_rolls_back_request(self):
        registry = TenantRegistry()
        registry.register("bob", max_requests=1, max_bytes=100)
        registry.charge("bob", 50)
        registry.refund("bob", 50)
        assert registry.usage("bob").requests == 0
        assert registry.usage("bob").bytes_charged == 0
        registry.charge("bob", 50)


def _make_config() -> HeavenConfig:
    return HeavenConfig(
        super_tile_bytes=8 * 1024,
        disk_cache_bytes=16 * MB,
        memory_cache_bytes=8 * MB,
    )


def _setup(heaven: Heaven) -> None:
    heaven.create_collection("c")
    mdd = MDD(
        "obj",
        MInterval.of((0, 63), (0, 63)),
        DOUBLE,
        tiling=RegularTiling((16, 16)),
        source=HashedNoiseSource(3),
    )
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()


class TestServiceQuotaEnforcement:
    def test_unknown_token_rejected_before_any_dispatch(self):
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")]
        )
        with pytest.raises(AuthError):
            cluster.read("token-ghost", "c", "obj", "0:15,0:15")
        assert all(
            node.requests_served == 0 for node in cluster.nodes.values()
        )

    def test_over_quota_read_rejected_429_and_consumes_nothing(self):
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")]
        )
        # Quota covers one 16x16 read (2048 B) but not a second.
        cluster.register_tenant("bob", max_bytes=3000)
        first = cluster.read("token-bob", "c", "obj", "0:15,0:15")
        assert first.bytes_useful == 2048
        with pytest.raises(QuotaExceededError):
            cluster.read("token-bob", "c", "obj", "16:31,0:15")
        usage = cluster.tenants.usage("bob")
        assert usage.bytes_charged == 2048
        assert usage.rejected == 1
        # The rejection never reached a data node: only the first
        # read's sub-requests (one per contributing shard) were served.
        served = sum(node.requests_served for node in cluster.nodes.values())
        assert served == len(first.shards)

    def test_settlement_charges_served_bytes_exactly(self):
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")]
        )
        cluster.register_tenant("alice")
        # The region clips to one 16x16 tile: the estimate (pre-charge)
        # is the clipped region's cells, the settlement the served tiles.
        result = cluster.read("token-alice", "c", "obj", "0:7,0:7")
        assert result.bytes_useful == 2048  # one whole tile served
        assert cluster.tenants.usage("alice").bytes_charged == 2048

    def test_rejection_metric_counts_per_tenant(self):
        cluster = ServiceCluster.build(
            _make_config, _setup, nodes=2, objects=[("c", "obj")]
        )
        cluster.register_tenant("bob", max_bytes=1)
        with pytest.raises(QuotaExceededError):
            cluster.read("token-bob", "c", "obj", "0:15,0:15")
        rejected = cluster.sn.metrics.get("repro_service_rejected_total")
        assert rejected.value(tenant="bob", reason="429") == 1.0
