"""Tests for device profiles: the paper's headline ratios must hold."""

import pytest

from repro.tertiary import (
    AIT_2,
    DISK_ARRAY,
    DLT_7000,
    DSL_8MBIT,
    GB,
    LTO_1,
    MB,
    MO_5_2,
    TAPE_PROFILES,
    environment_table,
    scaled_profile,
)


class TestPaperRanges:
    """Kapitel 1.1/2.2 quantitative claims, encoded as invariants."""

    @pytest.mark.parametrize("profile", [DLT_7000, LTO_1, AIT_2])
    def test_exchange_time_in_paper_range(self, profile):
        assert 12.0 <= profile.exchange_time_s <= 40.0

    @pytest.mark.parametrize("profile", [DLT_7000, LTO_1, AIT_2])
    def test_mean_access_in_paper_range(self, profile):
        assert 27.0 <= profile.avg_seek_time_s <= 95.0

    @pytest.mark.parametrize("profile", [DLT_7000, LTO_1, AIT_2])
    def test_random_access_ratio_1000_to_10000x(self, profile):
        ratio = profile.avg_seek_time_s / DISK_ARRAY.avg_access_time_s
        assert 1_000 <= ratio <= 20_000

    @pytest.mark.parametrize("profile", [DLT_7000, LTO_1])
    def test_transfer_rate_about_half_of_disk(self, profile):
        ratio = DISK_ARRAY.transfer_rate_bps / profile.transfer_rate_bps
        assert 1.5 <= ratio <= 3.0


class TestSeekModel:
    def test_half_tape_seek_equals_avg_seek(self):
        half = DLT_7000.media_capacity_bytes // 2
        assert DLT_7000.seek_time(half) == pytest.approx(DLT_7000.avg_seek_time_s)

    def test_seek_is_locate_plus_linear_wind(self):
        quarter = DLT_7000.media_capacity_bytes // 4
        wind_half = (DLT_7000.avg_seek_time_s - DLT_7000.locate_overhead_s) / 2.0
        assert DLT_7000.seek_time(quarter) == pytest.approx(
            DLT_7000.locate_overhead_s + wind_half
        )

    def test_zero_distance_free(self):
        assert DLT_7000.seek_time(0) == 0.0

    def test_negative_distance_treated_as_magnitude(self):
        assert DLT_7000.seek_time(-1000) == DLT_7000.seek_time(1000)

    def test_optical_seek_constant(self):
        assert MO_5_2.seek_time(1) == MO_5_2.seek_time(MO_5_2.media_capacity_bytes // 2)
        assert MO_5_2.seek_time(0) == 0.0

    def test_transfer_time(self):
        assert DLT_7000.transfer_time(15 * MB) == pytest.approx(1.0)


class TestScaledProfile:
    def test_capacity_changes_wind_rate_preserved(self):
        small = scaled_profile(DLT_7000, 1 * GB)
        assert small.media_capacity_bytes == 1 * GB
        assert small.wind_rate_bps == pytest.approx(DLT_7000.wind_rate_bps)

    def test_mechanics_unchanged(self):
        small = scaled_profile(DLT_7000, 1 * GB)
        assert small.exchange_time_s == DLT_7000.exchange_time_s
        assert small.transfer_rate_bps == DLT_7000.transfer_rate_bps


class TestNetworkProfile:
    def test_paper_example_200gb_about_one_hour(self):
        """Kapitel 1.1: 200 GB over 8 Mbit/s takes about an hour... scaled:
        the paper's arithmetic gives 200e9*8/8e6 s = 2.3 days; its '1 hour'
        figure refers to 200 GBit. We assert the model matches arithmetic."""
        seconds = DSL_8MBIT.transfer_time(200 * 10**9)
        assert seconds == pytest.approx(200 * 10**9 * 8 / 8e6, rel=1e-3)

    def test_ten_to_one_ratio_full_vs_subset(self):
        full = DSL_8MBIT.transfer_time(2 * 10**12)
        subset = DSL_8MBIT.transfer_time(200 * 10**9)
        assert full / subset == pytest.approx(10.0, rel=0.01)


class TestEnvironmentTable:
    def test_contains_all_profiles_plus_disk(self):
        rows = environment_table()
        devices = {row.device for row in rows}
        assert set(TAPE_PROFILES) <= devices
        assert DISK_ARRAY.name in devices

    def test_disk_row_is_reference(self):
        rows = environment_table()
        disk_row = [r for r in rows if r.device == DISK_ARRAY.name][0]
        assert disk_row.access_vs_disk == "1x"
