"""Tests for the robot and the automated tape library."""

import pytest

from repro.errors import MediumFullError, MediumNotFoundError, SegmentNotFoundError
from repro.tertiary import DLT_7000, MB, SimClock, TapeLibrary, scaled_profile

PROFILE = scaled_profile(DLT_7000, 50 * MB)


@pytest.fixture
def library():
    return TapeLibrary(PROFILE, num_drives=2)


class TestMediaManagement:
    def test_new_medium_auto_id(self, library):
        a = library.new_medium()
        b = library.new_medium()
        assert a.medium_id != b.medium_id
        assert len(library.media()) == 2

    def test_duplicate_id_rejected(self, library):
        library.new_medium("x")
        with pytest.raises(ValueError):
            library.new_medium("x")

    def test_unknown_medium_raises(self, library):
        with pytest.raises(MediumNotFoundError):
            library.medium("ghost")

    def test_allocate_creates_when_needed(self, library):
        medium = library.allocate_medium(10 * MB)
        assert medium.fits(10 * MB)

    def test_allocate_prefers_partially_filled(self, library):
        library.write_segment("a", 10 * MB)
        first = library.media()[0]
        medium = library.allocate_medium(10 * MB)
        assert medium is first

    def test_allocate_rejects_oversized_segment(self, library):
        with pytest.raises(MediumFullError):
            library.allocate_medium(PROFILE.media_capacity_bytes + 1)

    def test_allocation_spills_to_new_medium(self, library):
        library.write_segment("a", 40 * MB)
        library.write_segment("b", 40 * MB)  # does not fit on first medium
        assert len(library.media()) == 2


class TestMounting:
    def test_mount_uses_free_drive(self, library):
        m0 = library.new_medium()
        m1 = library.new_medium()
        d0 = library.mount(m0.medium_id)
        d1 = library.mount(m1.medium_id)
        assert d0 is not d1
        assert library.robot.stats.exchanges == 2

    def test_mount_already_mounted_is_free(self, library):
        m0 = library.new_medium()
        library.mount(m0.medium_id)
        before = library.clock.now
        library.mount(m0.medium_id)
        assert library.clock.now == before
        assert library.robot.stats.exchanges == 1

    def test_lru_drive_recycled_when_all_busy(self, library):
        media = [library.new_medium() for _ in range(3)]
        library.mount(media[0].medium_id)
        library.mount(media[1].medium_id)
        library.mount(media[2].medium_id)  # evicts medium 0 (LRU)
        assert library.mounted_drive(media[0].medium_id) is None
        assert library.mounted_drive(media[2].medium_id) is not None

    def test_unmount_all(self, library):
        library.mount(library.new_medium().medium_id)
        library.unmount_all()
        assert all(not d.loaded for d in library.drives)

    def test_requires_at_least_one_drive(self):
        with pytest.raises(ValueError):
            TapeLibrary(PROFILE, num_drives=0)


class TestSegmentIO:
    def test_write_read_roundtrip(self, library):
        payload = b"x" * 1024
        medium_id, segment = library.write_segment("seg", 1024, payload=payload)
        assert segment.length == 1024
        assert library.read_segment("seg") == payload

    def test_directory_locates_segment(self, library):
        medium_id, _ = library.write_segment("seg", 10)
        assert library.locate("seg") == medium_id
        assert library.has_segment("seg")

    def test_duplicate_segment_name_rejected(self, library):
        library.write_segment("seg", 10)
        with pytest.raises(ValueError):
            library.write_segment("seg", 10)

    def test_delete_segment(self, library):
        library.write_segment("seg", 10)
        library.delete_segment("seg")
        assert not library.has_segment("seg")
        with pytest.raises(SegmentNotFoundError):
            library.locate("seg")

    def test_explicit_medium_target(self, library):
        target = library.new_medium("tgt")
        medium_id, _ = library.write_segment("seg", 10, medium_id="tgt")
        assert medium_id == "tgt"
        assert target.has_segment("seg")

    def test_read_extent_charges_transfer(self, library):
        library.write_segment("seg", 10 * MB)
        before = library.stats().bytes_read
        library.read_extent(library.locate("seg"), 0, 4 * MB)
        assert library.stats().bytes_read - before == 4 * MB


class TestStats:
    def test_stats_track_exchanges_and_bytes(self, library):
        library.write_segment("a", MB, payload=None)
        library.read_segment("a")
        stats = library.stats()
        assert stats.exchanges >= 1
        assert stats.bytes_written == MB
        assert stats.bytes_read == MB
        assert stats.total_device_time_s > 0

    def test_media_stats(self, library):
        library.write_segment("a", MB)
        stats = library.media_stats()
        assert len(stats) == 1
        assert stats[0].used_bytes == MB
