"""Tests for media: allocation map, append-only semantics, payloads."""

import pytest

from repro.errors import MediumFullError, SegmentNotFoundError
from repro.tertiary import DLT_7000, MB, Medium, MediumStats, scaled_profile

SMALL = scaled_profile(DLT_7000, 10 * MB)


@pytest.fixture
def medium() -> Medium:
    return Medium("t0", SMALL)


class TestAppend:
    def test_appends_are_sequential(self, medium):
        a = medium.append("a", 100)
        b = medium.append("b", 200)
        assert a.offset == 0
        assert b.offset == 100
        assert medium.write_position == 300

    def test_payload_kept_when_retained(self, medium):
        medium.append("a", 5, payload=b"hello")
        assert medium.payload("a") == b"hello"

    def test_payload_dropped_when_not_retained(self):
        medium = Medium("t", SMALL, retain_payload=False)
        medium.append("a", 5, payload=b"hello")
        assert medium.payload("a") is None

    def test_payload_length_must_match(self, medium):
        with pytest.raises(ValueError):
            medium.append("a", 10, payload=b"short")

    def test_duplicate_name_rejected(self, medium):
        medium.append("a", 10)
        with pytest.raises(ValueError):
            medium.append("a", 10)

    def test_overflow_raises_medium_full(self, medium):
        with pytest.raises(MediumFullError):
            medium.append("big", SMALL.media_capacity_bytes + 1)

    def test_exact_fill_allowed(self, medium):
        medium.append("exact", medium.capacity)
        assert medium.free_bytes == 0


class TestSegments:
    def test_lookup_unknown_raises(self, medium):
        with pytest.raises(SegmentNotFoundError):
            medium.segment("nope")

    def test_segments_in_physical_order(self, medium):
        medium.append("z", 10)
        medium.append("a", 20)
        names = [s.name for s in medium.segments()]
        assert names == ["z", "a"]

    def test_segment_end(self, medium):
        seg = medium.append("a", 10)
        assert seg.end == 10

    def test_delete_frees_name_not_space(self, medium):
        medium.append("a", 100)
        medium.delete("a")
        assert not medium.has_segment("a")
        assert medium.write_position == 100  # tape space not reclaimed
        medium.append("a", 50)  # name reusable
        assert medium.segment("a").offset == 100

    def test_iteration_and_len(self, medium):
        medium.append("a", 1)
        medium.append("b", 2)
        assert len(medium) == 2
        assert [s.length for s in medium] == [1, 2]


class TestStats:
    def test_fill_ratio(self, medium):
        medium.append("a", medium.capacity // 2)
        stats = MediumStats.of(medium)
        assert stats.fill_ratio == pytest.approx(0.5)
        assert stats.segments == 1
