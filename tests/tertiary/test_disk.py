"""Tests for the disk device cost model."""

import pytest

from repro.errors import StorageError
from repro.tertiary import DISK_ARRAY, DiskDevice, MB, SimClock


@pytest.fixture
def disk():
    return DiskDevice("d", DISK_ARRAY, SimClock())


class TestDiskIO:
    def test_read_charges_access_plus_transfer(self, disk):
        disk.read(30 * MB)
        expected = DISK_ARRAY.avg_access_time_s + 1.0  # 30 MB at 30 MB/s
        assert disk.clock.now == pytest.approx(expected)

    def test_write_symmetric_with_read(self, disk):
        cost_r = disk.read(MB)
        cost_w = disk.write(MB)
        assert cost_r == pytest.approx(cost_w)

    def test_stats(self, disk):
        disk.read(100)
        disk.write(200)
        assert disk.stats.reads == 1
        assert disk.stats.writes == 1
        assert disk.stats.bytes_read == 100
        assert disk.stats.bytes_written == 200


class TestCapacity:
    def test_reserve_release(self, disk):
        disk.reserve(10 * MB)
        assert disk.used_bytes == 10 * MB
        disk.release(10 * MB)
        assert disk.used_bytes == 0

    def test_over_reserve_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.reserve(disk.capacity_bytes + 1)

    def test_over_release_rejected(self, disk):
        with pytest.raises(StorageError):
            disk.release(1)
