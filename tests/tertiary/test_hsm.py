"""Tests for the file-level HSM (whole-file granularity baseline)."""

import pytest

from repro.errors import HSMError
from repro.tertiary import DLT_7000, HSMSystem, MB, TapeLibrary, scaled_profile

PROFILE = scaled_profile(DLT_7000, 100 * MB)


@pytest.fixture
def hsm():
    return HSMSystem(TapeLibrary(PROFILE), staging_capacity_bytes=30 * MB)


class TestArchive:
    def test_archive_registers_file(self, hsm):
        entry = hsm.archive_file("f", 5 * MB)
        assert entry.size == 5 * MB
        assert "f" in hsm.files()

    def test_duplicate_archive_rejected(self, hsm):
        hsm.archive_file("f", MB)
        with pytest.raises(HSMError):
            hsm.archive_file("f", MB)

    def test_payload_size_mismatch_rejected(self, hsm):
        with pytest.raises(HSMError):
            hsm.archive_file("f", 10, payload=b"xx")

    def test_delete_file(self, hsm):
        hsm.archive_file("f", MB)
        hsm.stage_file("f")
        hsm.delete_file("f")
        assert "f" not in hsm.files()
        assert not hsm.is_staged("f")


class TestStaging:
    def test_whole_file_staged_even_for_tiny_read(self, hsm):
        hsm.archive_file("f", 20 * MB)
        hsm.read_file("f", offset=0, length=1024)
        # The paper's point: 1 KB requested, 20 MB moved from tape.
        assert hsm.stats.bytes_staged_from_tape == 20 * MB
        assert hsm.stats.bytes_served == 1024

    def test_second_read_hits_staging_area(self, hsm):
        hsm.archive_file("f", 10 * MB)
        hsm.read_file("f", 0, 100)
        tape_bytes = hsm.stats.bytes_staged_from_tape
        hsm.read_file("f", 5 * MB, 100)
        assert hsm.stats.bytes_staged_from_tape == tape_bytes  # no new tape I/O
        assert hsm.stats.stage_hits == 1

    def test_stage_hit_much_cheaper_than_miss(self, hsm):
        hsm.archive_file("f", 10 * MB)
        t0 = hsm.clock.now
        hsm.stage_file("f")
        miss_cost = hsm.clock.now - t0
        t1 = hsm.clock.now
        hsm.stage_file("f")
        hit_cost = hsm.clock.now - t1
        assert miss_cost > 100 * max(hit_cost, 1e-9)

    def test_read_outside_file_rejected(self, hsm):
        hsm.archive_file("f", MB)
        with pytest.raises(HSMError):
            hsm.read_file("f", offset=MB - 10, length=100)

    def test_unknown_file_rejected(self, hsm):
        with pytest.raises(HSMError):
            hsm.stage_file("ghost")

    def test_payload_roundtrip(self, hsm):
        payload = bytes(range(256)) * 4
        hsm.archive_file("f", len(payload), payload=payload)
        got = hsm.read_file("f", 16, 32)
        assert got == payload[16:48]


class TestStagingEviction:
    def test_lru_eviction_when_capacity_exceeded(self, hsm):
        hsm.archive_file("a", 15 * MB)
        hsm.archive_file("b", 15 * MB)
        hsm.archive_file("c", 15 * MB)
        hsm.stage_file("a")
        hsm.stage_file("b")
        hsm.stage_file("c")  # 45 MB > 30 MB capacity: evicts 'a'
        assert not hsm.is_staged("a")
        assert hsm.is_staged("b") and hsm.is_staged("c")
        assert hsm.stats.evictions == 1

    def test_access_refreshes_lru_position(self, hsm):
        hsm.archive_file("a", 15 * MB)
        hsm.archive_file("b", 15 * MB)
        hsm.archive_file("c", 15 * MB)
        hsm.stage_file("a")
        hsm.stage_file("b")
        hsm.stage_file("a")  # refresh a; b becomes LRU
        hsm.stage_file("c")
        assert hsm.is_staged("a")
        assert not hsm.is_staged("b")

    def test_file_larger_than_staging_rejected(self, hsm):
        hsm.archive_file("huge", 40 * MB)
        with pytest.raises(HSMError):
            hsm.stage_file("huge")

    def test_purge_releases_space(self, hsm):
        hsm.archive_file("a", 10 * MB)
        hsm.stage_file("a")
        assert hsm.purge("a")
        assert hsm.staging_used == 0
        assert not hsm.purge("a")  # second purge is a no-op

    def test_hit_ratio(self, hsm):
        hsm.archive_file("a", MB)
        hsm.stage_file("a")
        hsm.stage_file("a")
        hsm.stage_file("a")
        assert hsm.stats.hit_ratio == pytest.approx(2 / 3)
