"""Tests for optical (MO) media behaviour through the library stack."""

import pytest

from repro.tertiary import MB, MO_5_2, SimClock, TapeLibrary, scaled_profile

OPTICAL = scaled_profile(MO_5_2, 100 * MB)


@pytest.fixture
def library():
    return TapeLibrary(OPTICAL, num_drives=1)


class TestOpticalSemantics:
    def test_constant_time_seeks(self, library):
        library.write_segment("a", 10 * MB)
        library.write_segment("b", 10 * MB)
        clock = library.clock
        drive = library.mount(library.locate("a"))
        before = clock.now
        drive.seek(0)
        short_seek = clock.now - before
        before = clock.now
        drive.seek(90 * MB)
        long_seek = clock.now - before
        assert short_seek == pytest.approx(long_seek)
        assert long_seek == pytest.approx(OPTICAL.avg_seek_time_s)

    def test_no_rewind_on_eject(self, library):
        library.write_segment("a", 20 * MB)
        drive = library.mounted_drive(library.locate("a"))
        assert drive is not None
        position = drive.head_position
        assert position > 0
        before = library.clock.now
        library.robot.dismount(drive)
        # Only the robot stow is charged; no rewind time.
        stow = OPTICAL.exchange_time_s * 0.5
        assert library.clock.now - before == pytest.approx(stow)

    def test_no_settle_penalty_on_writes(self, library):
        before = library.clock.now
        library.write_segment("a", OPTICAL.transfer_rate_bps)  # 1 s of data
        elapsed = library.clock.now - before
        mount = OPTICAL.exchange_time_s + OPTICAL.load_time_s
        assert elapsed == pytest.approx(mount + 1.0)

    def test_many_small_segments_cheap_on_optical(self):
        optical = TapeLibrary(OPTICAL)
        for i in range(20):
            optical.write_segment(f"s{i}", 64 * 1024)
        from repro.tertiary import DLT_7000, scaled_profile as scale

        tape = TapeLibrary(scale(DLT_7000, 100 * MB))
        for i in range(20):
            tape.write_segment(f"s{i}", 64 * 1024)
        # Same data, but tape pays settle per segment; optical does not.
        optical_io = optical.clock.now - (
            OPTICAL.exchange_time_s + OPTICAL.load_time_s
        )
        tape_profile = tape.profile
        tape_io = tape.clock.now - (
            tape_profile.exchange_time_s + tape_profile.load_time_s
        )
        assert optical_io < tape_io
