"""Tests for the drive cost model: loads, seeks, transfers, settle penalty."""

import pytest

from repro.errors import StorageError
from repro.tertiary import DLT_7000, Drive, MB, Medium, SimClock, scaled_profile

PROFILE = scaled_profile(DLT_7000, 100 * MB)


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def drive(clock):
    return Drive("d0", PROFILE, clock)


@pytest.fixture
def medium():
    return Medium("t0", PROFILE)


class TestLoadUnload:
    def test_load_charges_load_time(self, drive, medium, clock):
        drive.load(medium)
        assert clock.now == pytest.approx(PROFILE.load_time_s)
        assert drive.loaded
        assert medium.mount_count == 1

    def test_double_load_rejected(self, drive, medium):
        drive.load(medium)
        with pytest.raises(StorageError):
            drive.load(Medium("t1", PROFILE))

    def test_unload_rewinds_tape(self, drive, medium, clock):
        drive.load(medium)
        drive.seek(PROFILE.media_capacity_bytes // 2)
        before = clock.now
        drive.unload()
        # Rewind from the middle costs the mean access time again.
        assert clock.now - before == pytest.approx(PROFILE.avg_seek_time_s)
        assert not drive.loaded

    def test_unload_from_position_zero_is_free(self, drive, medium, clock):
        drive.load(medium)
        before = clock.now
        drive.unload()
        assert clock.now == before

    def test_unload_empty_drive_rejected(self, drive):
        with pytest.raises(StorageError):
            drive.unload()


class TestSeek:
    def test_seek_charges_linear_time(self, drive, medium, clock):
        drive.load(medium)
        before = clock.now
        drive.seek(PROFILE.media_capacity_bytes // 2)
        assert clock.now - before == pytest.approx(PROFILE.avg_seek_time_s)
        assert drive.head_position == PROFILE.media_capacity_bytes // 2

    def test_zero_distance_seek_free(self, drive, medium, clock):
        drive.load(medium)
        before = clock.now
        drive.seek(0)
        assert clock.now == before
        assert drive.stats.seeks == 0

    def test_seek_outside_capacity_rejected(self, drive, medium):
        drive.load(medium)
        with pytest.raises(StorageError):
            drive.seek(PROFILE.media_capacity_bytes + 1)

    def test_seek_without_medium_rejected(self, drive):
        with pytest.raises(StorageError):
            drive.seek(10)

    def test_backward_seek_costs_same_as_forward(self, drive, medium, clock):
        drive.load(medium)
        drive.seek(10 * MB)
        forward = clock.now
        drive.seek(5 * MB)
        assert clock.now - forward == pytest.approx(PROFILE.seek_time(5 * MB))


class TestReadWrite:
    def test_append_then_read_roundtrip(self, drive, medium):
        drive.load(medium)
        drive.append_segment("a", 4, payload=b"data")
        drive.seek(0)
        assert drive.read_segment("a") == b"data"

    def test_append_moves_head_to_end(self, drive, medium):
        drive.load(medium)
        drive.append_segment("a", 1000)
        assert drive.head_position == 1000

    def test_append_charges_settle_penalty(self, drive, medium, clock):
        drive.load(medium)
        before = clock.now
        drive.append_segment("a", PROFILE.transfer_rate_bps)  # 1 second of data
        elapsed = clock.now - before
        assert elapsed == pytest.approx(1.0 + PROFILE.stop_start_penalty_s)

    def test_many_small_appends_cost_more_than_one_big(self):
        clock_a = SimClock()
        drive_a = Drive("a", PROFILE, clock_a)
        drive_a.load(Medium("ta", PROFILE))
        for i in range(10):
            drive_a.append_segment(f"s{i}", MB)
        clock_b = SimClock()
        drive_b = Drive("b", PROFILE, clock_b)
        drive_b.load(Medium("tb", PROFILE))
        drive_b.append_segment("big", 10 * MB)
        assert clock_a.now > clock_b.now

    def test_read_extent_charges_seek_plus_transfer(self, drive, medium, clock):
        drive.load(medium)
        drive.append_segment("a", 10 * MB)
        drive.seek(0)
        before = clock.now
        drive.read_extent(5 * MB, 2 * MB)
        expected = PROFILE.seek_time(5 * MB) + PROFILE.transfer_time(2 * MB)
        assert clock.now - before == pytest.approx(expected)

    def test_stats_accumulate(self, drive, medium):
        drive.load(medium)
        drive.append_segment("a", MB)
        drive.seek(0)
        drive.read_segment("a")
        assert drive.stats.bytes_written == MB
        assert drive.stats.bytes_read == MB
        assert drive.stats.loads == 1
        assert drive.stats.busy_time_s > 0
