"""Tests for the virtual clock and event log."""

import pytest

from repro.tertiary import SimClock, Stopwatch


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == pytest.approx(4.0)

    def test_negative_advance_rejected(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_charge_records_event(self):
        clock = SimClock()
        event = clock.charge(3.0, "seek", "drive-0", detail="0->100", nbytes=0)
        assert clock.now == pytest.approx(3.0)
        assert event.time == 0.0
        assert event.duration == 3.0
        assert len(clock.log) == 1

    def test_charge_event_start_time_precedes_advance(self):
        clock = SimClock()
        clock.advance(10.0)
        event = clock.charge(5.0, "read", "d", nbytes=100)
        assert event.time == pytest.approx(10.0)
        assert clock.now == pytest.approx(15.0)

    def test_listeners_called_with_old_and_new(self):
        clock = SimClock()
        calls = []
        clock.on_advance(lambda old, new: calls.append((old, new)))
        clock.advance(2.0)
        clock.advance(3.0)
        assert calls == [(0.0, 2.0), (2.0, 5.0)]

    def test_reset_clears_time_and_log(self):
        clock = SimClock()
        clock.charge(1.0, "seek", "d")
        clock.reset()
        assert clock.now == 0.0
        assert len(clock.log) == 0


class TestEventLog:
    def test_count_and_time_in(self):
        clock = SimClock()
        clock.charge(1.0, "seek", "d")
        clock.charge(2.0, "seek", "d")
        clock.charge(5.0, "read", "d", nbytes=10)
        assert clock.log.count("seek") == 2
        assert clock.log.time_in("seek") == pytest.approx(3.0)
        assert clock.log.time_in("read") == pytest.approx(5.0)

    def test_bytes_in(self):
        clock = SimClock()
        clock.charge(1.0, "read", "d", nbytes=100)
        clock.charge(1.0, "read", "d", nbytes=200)
        clock.charge(1.0, "write", "d", nbytes=50)
        assert clock.log.bytes_in("read") == 300
        assert clock.log.bytes_in("write") == 50

    def test_breakdown_sums_to_total_time(self):
        clock = SimClock()
        clock.charge(1.0, "seek", "d")
        clock.charge(2.0, "read", "d")
        clock.charge(3.0, "exchange", "r")
        breakdown = clock.log.breakdown()
        assert sum(breakdown.values()) == pytest.approx(clock.now)

    def test_events_filtered_by_kind(self):
        clock = SimClock()
        clock.charge(1.0, "seek", "d")
        clock.charge(2.0, "read", "d")
        assert [e.kind for e in clock.log.events("read")] == ["read"]
        assert len(clock.log.events()) == 2


class TestStopwatch:
    def test_elapsed_tracks_clock(self):
        clock = SimClock()
        clock.advance(5.0)
        watch = Stopwatch(clock)
        clock.advance(7.0)
        assert watch.elapsed == pytest.approx(7.0)

    def test_restart(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(3.0)
        watch.restart()
        clock.advance(2.0)
        assert watch.elapsed == pytest.approx(2.0)
