"""Tests for the wall-clock benchmark suite (``python -m repro bench``)."""

import json

import pytest

from repro.bench.suite import (
    SCHEMA_VERSION,
    SUITE,
    environment_fingerprint,
    percentile,
    result_filename,
    run_benchmark,
    run_suite,
    sample_stats,
    suite_names,
)


class TestStatistics:
    def test_percentile_interpolates(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 4.0
        assert percentile(samples, 50) == pytest.approx(2.5)

    def test_percentile_single_sample(self):
        assert percentile([7.0], 95) == 7.0

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_sample_stats_fields(self):
        stats = sample_stats([3.0, 1.0, 2.0, 4.0])
        assert stats["median_s"] == pytest.approx(2.5)
        assert stats["min_s"] == 1.0
        assert stats["max_s"] == 4.0
        assert stats["iqr_s"] == pytest.approx(
            percentile([1.0, 2.0, 3.0, 4.0], 75)
            - percentile([1.0, 2.0, 3.0, 4.0], 25)
        )
        assert stats["mean_s"] == pytest.approx(2.5)


class TestEnvironmentFingerprint:
    def test_fingerprint_has_required_fields(self):
        env = environment_fingerprint()
        for key in ("python", "implementation", "platform", "machine",
                    "cpus", "numpy", "calibration_s"):
            assert key in env, key
        assert env["calibration_s"] > 0


class TestSuiteDefinition:
    def test_curated_benchmarks_present(self):
        assert suite_names() == [
            "tile_decode",
            "scatter_assembly",
            "read_many_thrash",
            "parallel_dispatch",
            "multiquery_openloop",
            "service_scaling",
        ]

    def test_run_benchmark_validates_arguments(self):
        bench = SUITE[0]
        with pytest.raises(ValueError):
            run_benchmark(bench, repetitions=0)
        with pytest.raises(ValueError):
            run_benchmark(bench, warmup=-1)
        with pytest.raises(ValueError):
            run_benchmark(bench, scale="galactic")

    def test_run_suite_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            run_suite(["nonsense"], out_dir=None)


class TestSuiteExecution:
    @pytest.fixture(scope="class")
    def results(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("bench")
        return out, run_suite(
            repetitions=2, warmup=0, scale="smoke", out_dir=str(out)
        )

    def test_every_benchmark_ran(self, results):
        _out, res = results
        assert [r.name for r in res] == suite_names()
        for result in res:
            assert len(result.samples_s) == 2
            assert all(s > 0 for s in result.samples_s)
            assert result.bytes_processed > 0

    def test_result_files_written_with_schema(self, results):
        out, res = results
        for result in res:
            path = out / result_filename(result.name)
            assert path.is_file()
            doc = json.loads(path.read_text())
            assert doc["schema"] == SCHEMA_VERSION
            assert doc["name"] == result.name
            assert doc["unit"] == "seconds"
            assert doc["repetitions"] == 2
            assert len(doc["samples_s"]) == 2
            for key in ("median_s", "p95_s", "iqr_s", "min_s", "max_s",
                        "mean_s"):
                assert key in doc["stats"], key
            assert doc["environment"]["calibration_s"] > 0
            assert doc["throughput_mb_s"] > 0

    def test_environment_shared_across_suite(self, results):
        _out, res = results
        fingerprints = {json.dumps(r.environment, sort_keys=True) for r in res}
        assert len(fingerprints) == 1

    def test_subset_selection(self, tmp_path):
        res = run_suite(
            ["tile_decode"],
            repetitions=1,
            warmup=0,
            scale="smoke",
            out_dir=str(tmp_path),
        )
        assert [r.name for r in res] == ["tile_decode"]
        assert (tmp_path / "BENCH_tile_decode.json").is_file()
        assert not (tmp_path / "BENCH_scatter_assembly.json").exists()

    def test_out_dir_none_skips_writing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_suite(["parallel_dispatch"], repetitions=1, warmup=0,
                  scale="smoke", out_dir=None)
        assert not list(tmp_path.glob("BENCH_*.json"))
