"""Tests for scripts/bench_gate.py — the benchmark regression gate.

The acceptance contract: comparing a result set against itself passes, and
a synthetic 2x slowdown fails, with the calibration-normalised scoring
cancelling out machine-speed differences.
"""

import importlib.util
import io
import json
import pathlib
import sys

import pytest

SCRIPTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "scripts"


def load_gate():
    spec = importlib.util.spec_from_file_location(
        "bench_gate", SCRIPTS_DIR / "bench_gate.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


gate = load_gate()


def make_result(name="tile_decode", median=0.1, minimum=0.09,
                calibration=0.02):
    return {
        "schema": 1,
        "name": name,
        "unit": "seconds",
        "stats": {
            "median_s": median,
            "p95_s": median * 1.2,
            "iqr_s": median * 0.1,
            "min_s": minimum,
            "max_s": median * 1.3,
            "mean_s": median,
        },
        "environment": {"calibration_s": calibration},
    }


def write_results(directory, results):
    directory.mkdir(parents=True, exist_ok=True)
    for doc in results:
        path = directory / f"BENCH_{doc['name']}.json"
        path.write_text(json.dumps(doc))


class TestCompare:
    def test_identical_results_ratio_one(self):
        doc = make_result()
        comparison = gate.compare(doc, doc)
        assert comparison.median_ratio == pytest.approx(1.0)
        assert comparison.min_ratio == pytest.approx(1.0)
        assert comparison.normalized
        assert not comparison.regressed(1.6)

    def test_synthetic_2x_slowdown_regresses(self):
        baseline = make_result(median=0.1, minimum=0.09)
        slow = make_result(median=0.2, minimum=0.18)
        comparison = gate.compare(baseline, slow)
        assert comparison.median_ratio == pytest.approx(2.0)
        assert comparison.regressed(1.6)

    def test_calibration_normalisation_cancels_machine_speed(self):
        # Current machine is 2x slower overall: raw times AND the
        # calibration workload double -> normalised ratio stays 1.0.
        baseline = make_result(median=0.1, minimum=0.09, calibration=0.02)
        slower_host = make_result(median=0.2, minimum=0.18, calibration=0.04)
        comparison = gate.compare(baseline, slower_host)
        assert comparison.median_ratio == pytest.approx(1.0)
        assert not comparison.regressed(1.6)

    def test_missing_calibration_falls_back_to_raw(self):
        baseline = make_result()
        del baseline["environment"]["calibration_s"]
        comparison = gate.compare(baseline, make_result())
        assert not comparison.normalized

    def test_median_spike_alone_is_noise_not_regression(self):
        # Median doubled but min is stable: transient load, not a slowdown.
        baseline = make_result(median=0.1, minimum=0.09)
        noisy = make_result(median=0.2, minimum=0.09)
        comparison = gate.compare(baseline, noisy)
        assert comparison.median_ratio == pytest.approx(2.0)
        assert not comparison.regressed(1.6)

    def test_malformed_stats_rejected(self):
        broken = make_result()
        del broken["stats"]["median_s"]
        with pytest.raises(gate.GateError):
            gate.compare(make_result(), broken)


class TestRunGate:
    def test_self_comparison_passes(self, tmp_path):
        write_results(tmp_path, [make_result("a"), make_result("b")])
        out = io.StringIO()
        assert gate.run_gate(tmp_path, tmp_path, out=out) == 0
        assert "2 benchmark(s) within" in out.getvalue()

    def test_regression_fails_and_is_named(self, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        write_results(base, [make_result("a"), make_result("b")])
        write_results(
            cur,
            [make_result("a"), make_result("b", median=0.2, minimum=0.18)],
        )
        out = io.StringIO()
        assert gate.run_gate(base, cur, out=out) == 1
        text = out.getvalue()
        assert "FAIL" in text and "b:" in text
        assert "ok" in text  # a still passes

    def test_missing_current_file_fails(self, tmp_path):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        write_results(base, [make_result("a")])
        cur.mkdir()
        out = io.StringIO()
        assert gate.run_gate(base, cur, out=out) == 1
        assert "missing benchmark result" in out.getvalue()

    def test_no_baselines_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        out = io.StringIO()
        assert gate.run_gate(empty, empty, out=out) == 1

    def test_main_threshold_validation(self, tmp_path):
        write_results(tmp_path, [make_result("a")])
        with pytest.raises(SystemExit):
            gate.main(
                ["--current", str(tmp_path), "--threshold", "0.5"]
            )

    def test_main_end_to_end(self, tmp_path, capsys):
        write_results(tmp_path, [make_result("a")])
        code = gate.main(
            ["--baseline", str(tmp_path), "--current", str(tmp_path)]
        )
        capsys.readouterr()
        assert code == 0


class TestSpeedupGate:
    """Speedup mode: current results must beat pre-optimisation references."""

    def test_enough_wins_passes(self, tmp_path):
        ref = tmp_path / "ref"
        cur = tmp_path / "cur"
        write_results(
            ref,
            [
                make_result("a", median=0.2, minimum=0.18),
                make_result("b", median=0.2, minimum=0.18),
                make_result("c", median=0.2, minimum=0.18),
            ],
        )
        write_results(
            cur,
            [
                make_result("a", median=0.1, minimum=0.09),   # 2.0x
                make_result("b", median=0.14, minimum=0.13),  # ~1.43x
                make_result("c", median=0.19, minimum=0.18),  # ~1.05x
            ],
        )
        out = io.StringIO()
        assert gate.run_speedup_gate(ref, cur, 1.3, 2, out=out) == 0
        assert "speedup holds (2/3" in out.getvalue()

    def test_too_few_wins_fails(self, tmp_path):
        ref = tmp_path / "ref"
        cur = tmp_path / "cur"
        write_results(ref, [make_result("a", median=0.2, minimum=0.18),
                            make_result("b", median=0.2, minimum=0.18)])
        write_results(cur, [make_result("a", median=0.1, minimum=0.09),
                            make_result("b", median=0.19, minimum=0.18)])
        out = io.StringIO()
        assert gate.run_speedup_gate(ref, cur, 1.3, 2, out=out) == 1
        assert "only 1/2" in out.getvalue()

    def test_calibration_normalises_speedup(self, tmp_path):
        # Same raw times on a 2x slower host = a genuine 2x speedup.
        ref = tmp_path / "ref"
        cur = tmp_path / "cur"
        write_results(ref, [make_result("a", median=0.1, minimum=0.09,
                                        calibration=0.02)])
        write_results(cur, [make_result("a", median=0.1, minimum=0.09,
                                        calibration=0.04)])
        out = io.StringIO()
        assert gate.run_speedup_gate(ref, cur, 1.3, 1, out=out) == 0
        assert "x 2.00" in out.getvalue()

    def test_missing_current_file_fails(self, tmp_path):
        ref = tmp_path / "ref"
        cur = tmp_path / "cur"
        write_results(ref, [make_result("a")])
        cur.mkdir()
        out = io.StringIO()
        assert gate.run_speedup_gate(ref, cur, 1.3, 1, out=out) == 1

    def test_main_speedup_mode(self, tmp_path, capsys):
        ref = tmp_path / "ref"
        cur = tmp_path / "cur"
        write_results(ref, [make_result("a", median=0.2, minimum=0.18)])
        write_results(cur, [make_result("a", median=0.1, minimum=0.09)])
        code = gate.main(
            ["--current", str(cur), "--reference", str(ref),
             "--min-speedup", "1.3", "--min-wins", "1"]
        )
        capsys.readouterr()
        assert code == 0

    def test_main_rejects_bad_min_speedup(self, tmp_path):
        write_results(tmp_path, [make_result("a")])
        with pytest.raises(SystemExit):
            gate.main(
                ["--current", str(tmp_path), "--reference", str(tmp_path),
                 "--min-speedup", "0.9"]
            )
