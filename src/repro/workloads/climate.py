"""Climate-model workload (DKRZ / MPI-Met style, Abbildung 1.2 right).

Generates the dissertation's running example: temperature fields over
longitude x latitude x height x time with physically plausible structure —
latitudinal gradient (warm equator, cold poles), lapse rate with height,
seasonal oscillation in time, plus deterministic weather noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arrays.celltype import DOUBLE, FLOAT, CellType
from ..arrays.cellsource import CellSource, FunctionSource, HashedNoiseSource
from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.tiling import RegularTiling, TilingScheme


@dataclass(frozen=True)
class ClimateGrid:
    """Geometry of one climate-model output object.

    Attributes:
        longitudes: grid points around the globe (axis 0).
        latitudes: grid points pole to pole (axis 1).
        heights: vertical levels (axis 2).
        time_steps: simulated steps (axis 3); 0 drops the time axis.
    """

    longitudes: int = 360
    latitudes: int = 180
    heights: int = 32
    time_steps: int = 0

    @property
    def dimension(self) -> int:
        return 3 if self.time_steps == 0 else 4

    def domain(self) -> MInterval:
        shape = [self.longitudes, self.latitudes, self.heights]
        if self.time_steps:
            shape.append(self.time_steps)
        return MInterval.from_shape(shape)


class TemperatureSource(CellSource):
    """Deterministic temperature field in degrees Celsius."""

    def __init__(self, grid: ClimateGrid, seed: int = 0, noise_scale: float = 2.0) -> None:
        self.grid = grid
        self.noise = HashedNoiseSource(seed, -noise_scale, noise_scale)

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        coords = np.meshgrid(
            *(np.arange(a.lo, a.hi + 1, dtype=np.float64) for a in domain.axes),
            indexing="ij",
        )
        latitude_fraction = coords[1] / max(1, self.grid.latitudes - 1)  # 0..1
        height = coords[2]
        base = 30.0 * np.cos((latitude_fraction - 0.5) * math.pi)  # equator warm
        lapse = -6.5 * (height / max(1, self.grid.heights)) * 8.0  # ~ -6.5 K/km
        seasonal = 0.0
        if self.grid.time_steps and domain.dimension >= 4:
            seasonal = 10.0 * np.sin(2.0 * math.pi * coords[3] / 12.0) * (
                latitude_fraction - 0.5
            ) * 2.0
        noise = self.noise.region(domain, DOUBLE)
        return (base + lapse + seasonal + noise).astype(cell_type.dtype)


def climate_object(
    name: str,
    grid: Optional[ClimateGrid] = None,
    seed: int = 0,
    cell_type: CellType = DOUBLE,
    tiling: Optional[TilingScheme] = None,
) -> MDD:
    """An MDD holding one climate-model output field."""
    grid = grid if grid is not None else ClimateGrid()
    domain = grid.domain()
    if tiling is None:
        tile_shape = [min(60, grid.longitudes), min(60, grid.latitudes), min(8, grid.heights)]
        if grid.time_steps:
            tile_shape.append(min(12, grid.time_steps))
        tiling = RegularTiling(tuple(tile_shape))
    return MDD(
        name,
        domain,
        cell_type,
        tiling=tiling,
        source=TemperatureSource(grid, seed=seed),
    )


def monthly_series(
    prefix: str,
    months: int,
    grid: Optional[ClimateGrid] = None,
    seed: int = 0,
) -> list:
    """One 3-D object per month (the paper's right-hand cube of Abb. 1.1).

    Cross-file time-series queries (mean over months at one height) then
    need a slice of *every* object — the access type that kills file-level
    archives.
    """
    grid = grid if grid is not None else ClimateGrid()
    return [
        climate_object(f"{prefix}-{month:02d}", grid, seed=seed + month)
        for month in range(months)
    ]
