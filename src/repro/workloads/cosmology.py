"""Cosmology-simulation workload (Cineca style).

Density fields of structure-formation runs: 3-D cubes whose mass clusters
into filaments and halos.  Modelled as multiplicative (log-normal-ish)
noise so the field has the heavy spatial skew that makes subsetting
worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arrays.celltype import DOUBLE, FLOAT, CellType
from ..arrays.cellsource import CellSource, HashedNoiseSource
from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.tiling import RegularTiling, TilingScheme


@dataclass(frozen=True)
class SimulationBox:
    """Geometry of one snapshot: a cube of *cells_per_axis**3 density cells."""

    cells_per_axis: int = 256
    snapshots: int = 0

    def domain(self) -> MInterval:
        shape = [self.cells_per_axis] * 3
        if self.snapshots:
            shape.append(self.snapshots)
        return MInterval.from_shape(shape)


class DensitySource(CellSource):
    """Deterministic clustered density field (dimensionless overdensity)."""

    def __init__(self, seed: int = 0) -> None:
        self.noise_a = HashedNoiseSource(seed, 0.0, 1.0)
        self.noise_b = HashedNoiseSource(seed + 104729, 0.0, 1.0)

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        a = self.noise_a.region(domain, DOUBLE)
        b = self.noise_b.region(domain, DOUBLE)
        # Product of two fields skews mass into rare dense cells.
        density = np.exp(2.5 * (a * b) - 0.5)
        return density.astype(cell_type.dtype)


def cosmology_object(
    name: str,
    box: Optional[SimulationBox] = None,
    seed: int = 0,
    cell_type: CellType = FLOAT,
    tiling: Optional[TilingScheme] = None,
) -> MDD:
    """An MDD holding one density snapshot."""
    box = box if box is not None else SimulationBox()
    domain = box.domain()
    if tiling is None:
        edge = min(64, box.cells_per_axis)
        tile_shape = [edge, edge, edge]
        if box.snapshots:
            tile_shape.append(1)
        tiling = RegularTiling(tuple(tile_shape))
    return MDD(name, domain, cell_type, tiling=tiling, source=DensitySource(seed))
