"""Synthetic workloads mirroring the ESTEDI partners' data and access types."""

from .access import (
    QueryEvent,
    ZipfQueryStream,
    cross_series_regions,
    slice_region,
    subcube,
)
from .cfd import ChannelFlowSource, FlowGrid, cfd_object, flow_cell_type
from .climate import ClimateGrid, TemperatureSource, climate_object, monthly_series
from .cosmology import DensitySource, SimulationBox, cosmology_object
from .genetics import (
    AlignmentGrid,
    SimilaritySource,
    alignment_object,
    diagonal_band_frame,
)
from .satellite import SceneGrid, VegetationIndexSource, satellite_object

__all__ = [
    "AlignmentGrid",
    "ChannelFlowSource",
    "ClimateGrid",
    "FlowGrid",
    "cfd_object",
    "flow_cell_type",
    "DensitySource",
    "QueryEvent",
    "SceneGrid",
    "SimulationBox",
    "TemperatureSource",
    "VegetationIndexSource",
    "ZipfQueryStream",
    "SimilaritySource",
    "alignment_object",
    "climate_object",
    "diagonal_band_frame",
    "cosmology_object",
    "cross_series_regions",
    "monthly_series",
    "satellite_object",
    "slice_region",
    "subcube",
]
