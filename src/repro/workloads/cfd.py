"""Computational-fluid-dynamics workload (Numeca / University of Surrey
style): 3-D velocity+pressure fields with struct cell types.

Exercises the code paths scalar workloads miss: struct cells archive and
retrieve byte-identically through super-tiles, caches and compression, but
are excluded from scalar-only optimisations (precomputed aggregates,
pyramids) — exactly the trade the visualisation partners lived with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arrays.celltype import CellType, lookup, struct_type
from ..arrays.cellsource import CellSource, HashedNoiseSource
from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.tiling import RegularTiling, TilingScheme
from ..errors import CellTypeError


def flow_cell_type() -> CellType:
    """The ``flow_t`` struct: velocities (u, v, w) plus pressure p."""
    try:
        return lookup("flow_t")
    except CellTypeError:
        return struct_type(
            "flow_t",
            [("u", "float"), ("v", "float"), ("w", "float"), ("p", "float")],
        )


@dataclass(frozen=True)
class FlowGrid:
    """Geometry of one CFD snapshot."""

    nx: int = 128
    ny: int = 64
    nz: int = 64

    def domain(self) -> MInterval:
        return MInterval.from_shape([self.nx, self.ny, self.nz])


class ChannelFlowSource(CellSource):
    """Deterministic channel flow with a parabolic profile plus turbulence.

    Streamwise velocity u follows a parabolic profile across y (no-slip
    walls), v/w carry deterministic turbulent fluctuations, and pressure
    falls linearly downstream.
    """

    def __init__(self, grid: FlowGrid, seed: int = 0, turbulence: float = 0.3) -> None:
        self.grid = grid
        self.noise_v = HashedNoiseSource(seed + 1, -turbulence, turbulence)
        self.noise_w = HashedNoiseSource(seed + 2, -turbulence, turbulence)

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        from ..arrays.celltype import DOUBLE

        coords = np.meshgrid(
            *(np.arange(a.lo, a.hi + 1, dtype=np.float64) for a in domain.axes),
            indexing="ij",
        )
        x, y = coords[0], coords[1]
        wall = max(1, self.grid.ny - 1)
        profile = 4.0 * (y / wall) * (1.0 - y / wall)  # 0 at walls, 1 centre
        out = np.zeros(domain.shape, dtype=cell_type.dtype)
        out["u"] = (2.0 * profile).astype(cell_type.dtype["u"])
        out["v"] = self.noise_v.region(domain, DOUBLE).astype(cell_type.dtype["v"])
        out["w"] = self.noise_w.region(domain, DOUBLE).astype(cell_type.dtype["w"])
        out["p"] = (101.3 - 0.05 * x).astype(cell_type.dtype["p"])
        return out


def cfd_object(
    name: str,
    grid: Optional[FlowGrid] = None,
    seed: int = 0,
    tiling: Optional[TilingScheme] = None,
) -> MDD:
    """An MDD holding one channel-flow snapshot (struct cells)."""
    grid = grid if grid is not None else FlowGrid()
    cell_type = flow_cell_type()
    domain = grid.domain()
    if tiling is None:
        tiling = RegularTiling(
            (min(32, grid.nx), min(32, grid.ny), min(16, grid.nz))
        )
    return MDD(
        name, domain, cell_type, tiling=tiling, source=ChannelFlowSource(grid, seed)
    )
