"""Satellite-imagery workload (DLR / DFD EOWEB style, Abbildung 1.2 left).

Large 2-D mosaics (optionally with a time axis of acquisition passes) with
RGB or single-band cells.  The characteristic access is a small spatial
window ("the customer buys one scene") out of a continent-sized mosaic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arrays.celltype import CHAR, USHORT, CellType, RGB
from ..arrays.cellsource import CellSource, HashedNoiseSource
from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.tiling import RegularTiling, TilingScheme


@dataclass(frozen=True)
class SceneGrid:
    """Geometry of one mosaic: width x height pixels (x passes)."""

    width: int = 4096
    height: int = 4096
    passes: int = 0

    def domain(self) -> MInterval:
        shape = [self.width, self.height]
        if self.passes:
            shape.append(self.passes)
        return MInterval.from_shape(shape)


class VegetationIndexSource(CellSource):
    """Deterministic NDVI-like single-band field (0..200 in CHAR range).

    Smooth large-scale structure (hash noise at block granularity already
    provides spatial patches) with a coastline gradient.
    """

    def __init__(self, seed: int = 0) -> None:
        self.noise = HashedNoiseSource(seed, 0.0, 1.0)

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        from ..arrays.celltype import DOUBLE

        coords = np.meshgrid(
            *(np.arange(a.lo, a.hi + 1, dtype=np.float64) for a in domain.axes),
            indexing="ij",
        )
        gradient = (np.sin(coords[0] / 512.0) + np.cos(coords[1] / 384.0)) * 0.25 + 0.5
        noise = self.noise.region(domain, DOUBLE)
        value = np.clip((0.6 * gradient + 0.4 * noise) * 200.0, 0, 200)
        if cell_type.dtype.fields is not None:
            struct = np.zeros(domain.shape, dtype=cell_type.dtype)
            names = cell_type.dtype.names or ()
            for position, field_name in enumerate(names):
                struct[field_name] = np.clip(
                    value * (0.5 + 0.25 * position), 0, 255
                ).astype(cell_type.dtype[field_name])
            return struct
        return value.astype(cell_type.dtype)


def satellite_object(
    name: str,
    grid: Optional[SceneGrid] = None,
    seed: int = 0,
    cell_type: CellType = CHAR,
    tiling: Optional[TilingScheme] = None,
) -> MDD:
    """An MDD holding one mosaic (vegetation index by default)."""
    grid = grid if grid is not None else SceneGrid()
    domain = grid.domain()
    if tiling is None:
        tile_shape = [min(512, grid.width), min(512, grid.height)]
        if grid.passes:
            tile_shape.append(1)
        tiling = RegularTiling(tuple(tile_shape))
    return MDD(
        name,
        domain,
        cell_type,
        tiling=tiling,
        source=VegetationIndexSource(seed),
    )
