"""Access-pattern generators: the paper's canonical query types (Abb. 1.1).

Three access shapes drive every retrieval experiment:

* **subcube** — a box of a target selectivity (the left cube of Abb. 1.1:
  "temperatures between two latitudes, longitudes and heights");
* **slice** — one axis fixed or cut thin, the others spanned fully (the
  middle cube: "the complete cross-section at 48.13 degrees north");
* **cross-object series** — the same thin region on every object of a
  monthly series (the right cube: "mean over Jan-Jun 2003 at 800 m").

Plus a Zipf-popularity stream over objects/regions for the cache
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ..arrays.minterval import MInterval, SInterval
from ..errors import HeavenError


def subcube(
    domain: MInterval,
    selectivity: float,
    rng: np.random.Generator,
) -> MInterval:
    """A random box covering ~*selectivity* of the domain's cells.

    The per-axis fraction is ``selectivity ** (1/d)``, positioned uniformly
    at random; extents are at least one cell, so tiny selectivities on
    small domains may overshoot slightly.
    """
    if not 0.0 < selectivity <= 1.0:
        raise HeavenError(f"selectivity must be in (0, 1]: {selectivity}")
    fraction = selectivity ** (1.0 / domain.dimension)
    axes: List[SInterval] = []
    for axis in domain.axes:
        extent = max(1, int(round(axis.extent * fraction)))
        extent = min(extent, axis.extent)
        start = axis.lo + int(rng.integers(0, axis.extent - extent + 1))
        axes.append(SInterval(start, start + extent - 1))
    return MInterval(axes)


def slice_region(
    domain: MInterval,
    axis: int,
    position: Optional[int] = None,
    thickness: int = 1,
    rng: Optional[np.random.Generator] = None,
) -> MInterval:
    """Span every axis fully except *axis*, cut to *thickness* cells."""
    if not 0 <= axis < domain.dimension:
        raise HeavenError(f"slice axis {axis} out of range")
    target = domain[axis]
    thickness = min(thickness, target.extent)
    if position is None:
        if rng is None:
            position = target.lo + (target.extent - thickness) // 2
        else:
            position = target.lo + int(rng.integers(0, target.extent - thickness + 1))
    if not (target.lo <= position and position + thickness - 1 <= target.hi):
        raise HeavenError(f"slice at {position} (+{thickness}) outside axis {target}")
    axes = [
        SInterval(position, position + thickness - 1) if i == axis else a
        for i, a in enumerate(domain.axes)
    ]
    return MInterval(axes)


def cross_series_regions(
    domains: Sequence[MInterval],
    axis: int,
    position: int,
    thickness: int = 1,
) -> List[MInterval]:
    """The same thin slice on each object of a series (Abb. 1.1 right)."""
    return [
        slice_region(domain, axis, position=position, thickness=thickness)
        for domain in domains
    ]


@dataclass(frozen=True)
class QueryEvent:
    """One query of a stream: which object, which region."""

    object_index: int
    region: MInterval


class ZipfQueryStream:
    """Popularity-skewed query stream for the caching experiments.

    Objects are drawn with Zipf(s) popularity; regions are drawn from a
    small pool of *hot* regions per object (reused with probability
    ``locality``) or fresh subcubes otherwise — giving the temporal
    locality real analysis sessions exhibit.
    """

    def __init__(
        self,
        domains: Sequence[MInterval],
        selectivity: float = 0.02,
        zipf_s: float = 1.2,
        locality: float = 0.7,
        hot_regions_per_object: int = 3,
        seed: int = 0,
    ) -> None:
        if not domains:
            raise HeavenError("a query stream needs at least one object domain")
        self.domains = list(domains)
        self.selectivity = selectivity
        self.locality = locality
        self.rng = np.random.default_rng(seed)
        ranks = np.arange(1, len(domains) + 1, dtype=np.float64)
        weights = ranks ** (-zipf_s)
        self._probabilities = weights / weights.sum()
        self._hot: List[List[MInterval]] = [
            [
                subcube(domain, selectivity, self.rng)
                for _ in range(hot_regions_per_object)
            ]
            for domain in self.domains
        ]

    def __iter__(self) -> Iterator[QueryEvent]:
        while True:
            yield self.next_event()

    def next_event(self) -> QueryEvent:
        index = int(self.rng.choice(len(self.domains), p=self._probabilities))
        if self.rng.random() < self.locality:
            pool = self._hot[index]
            region = pool[int(self.rng.integers(0, len(pool)))]
        else:
            region = subcube(self.domains[index], self.selectivity, self.rng)
        return QueryEvent(object_index=index, region=region)

    def take(self, count: int) -> List[QueryEvent]:
        return [self.next_event() for _ in range(count)]
