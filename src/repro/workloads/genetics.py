"""Genetics workload (IHPC&DB St. Petersburg style).

Pairwise sequence-similarity matrices: 2-D score fields whose mass
concentrates in a band around the diagonal (homologous regions align
near-collinearly).  The canonical access is exactly that band — a query
no hypercube can express without dragging the whole matrix along, which
makes this the show-case for Object Framing's half-space frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..arrays.celltype import CellType, FLOAT
from ..arrays.cellsource import CellSource, HashedNoiseSource
from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.tiling import RegularTiling, TilingScheme
from ..core.framing import HalfSpaceFrame, Frame


@dataclass(frozen=True)
class AlignmentGrid:
    """Geometry of one similarity matrix: |seq A| x |seq B| scores."""

    length_a: int = 4096
    length_b: int = 4096

    def domain(self) -> MInterval:
        return MInterval.from_shape([self.length_a, self.length_b])


class SimilaritySource(CellSource):
    """Deterministic similarity scores with diagonal-band structure.

    Scores decay exponentially with distance from the (scaled) diagonal,
    with deterministic noise and periodic repeat-region ridges.
    """

    def __init__(self, grid: AlignmentGrid, seed: int = 0, band_width: float = 0.05) -> None:
        self.grid = grid
        self.band = max(1.0, band_width * max(grid.length_a, grid.length_b))
        self.noise = HashedNoiseSource(seed, 0.0, 0.2)

    def region(self, domain: MInterval, cell_type: CellType) -> np.ndarray:
        from ..arrays.celltype import DOUBLE

        coords = np.meshgrid(
            *(np.arange(a.lo, a.hi + 1, dtype=np.float64) for a in domain.axes),
            indexing="ij",
        )
        i, j = coords[0], coords[1]
        # Distance from the scaled diagonal j = i * len_b/len_a.
        slope = self.grid.length_b / max(1, self.grid.length_a)
        distance = np.abs(j - i * slope)
        score = np.exp(-distance / self.band)
        ridges = 0.15 * (np.sin(i / 97.0) * np.sin(j / 89.0)) ** 2
        noise = self.noise.region(domain, DOUBLE)
        return np.clip(score + ridges + noise, 0.0, 1.0).astype(cell_type.dtype)


def alignment_object(
    name: str,
    grid: Optional[AlignmentGrid] = None,
    seed: int = 0,
    cell_type: CellType = FLOAT,
    tiling: Optional[TilingScheme] = None,
) -> MDD:
    """An MDD holding one similarity matrix."""
    grid = grid if grid is not None else AlignmentGrid()
    domain = grid.domain()
    if tiling is None:
        tiling = RegularTiling(
            (min(256, grid.length_a), min(256, grid.length_b))
        )
    return MDD(
        name, domain, cell_type, tiling=tiling, source=SimilaritySource(grid, seed)
    )


def diagonal_band_frame(grid: AlignmentGrid, half_width: int) -> Frame:
    """The band |j - i·slope| <= half_width as an Object-Framing frame.

    Implemented as two half-spaces:
    ``j - slope·i <= w`` and ``slope·i - j <= w``.
    """
    slope = grid.length_b / max(1, grid.length_a)
    return HalfSpaceFrame(
        grid.domain(),
        [
            ([-slope, 1.0], float(half_width)),
            ([slope, -1.0], float(half_width)),
        ],
    )
