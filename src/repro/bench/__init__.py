"""Benchmark harness utilities and the wall-clock suite.

:mod:`repro.bench.suite` holds the curated wall-clock benchmarks behind
``python -m repro bench``; its symbols are imported lazily here because
``repro.obs.exporters`` pulls in this package for chart rendering and the
suite's benchmarks build on :mod:`repro.core`.
"""

from .chart import bar_chart, series_chart, sparkline
from .runner import ResultTable, geometric_mean, speedup

__all__ = [
    "BenchDef",
    "BenchResult",
    "ResultTable",
    "SUITE",
    "bar_chart",
    "environment_fingerprint",
    "geometric_mean",
    "run_benchmark",
    "run_suite",
    "series_chart",
    "sparkline",
    "speedup",
    "suite_names",
]

_SUITE_EXPORTS = {
    "BenchDef",
    "BenchResult",
    "SUITE",
    "environment_fingerprint",
    "run_benchmark",
    "run_suite",
    "suite_names",
}


def __getattr__(name):
    if name in _SUITE_EXPORTS:
        from . import suite

        return getattr(suite, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
