"""Benchmark harness utilities."""

from .chart import bar_chart, series_chart, sparkline
from .runner import ResultTable, geometric_mean, speedup

__all__ = [
    "ResultTable",
    "bar_chart",
    "geometric_mean",
    "series_chart",
    "sparkline",
    "speedup",
]
