"""Experiment harness: tables, series and ASCII rendering.

Every benchmark builds a :class:`ResultTable` and prints it the way the
dissertation's evaluation chapter presents its measurements, so the shape of
each result (who wins, by what factor, where the crossover sits) is visible
directly in the pytest-benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence


@dataclass
class ResultTable:
    """A titled table of experiment rows."""

    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def column(self, name: str) -> List[Any]:
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def render(self) -> str:
        """ASCII-render the table with aligned columns."""
        cells = [self.columns] + [
            [_format(value) for value in row] for row in self.rows
        ]
        widths = [
            max(len(row[i]) for row in cells) for i in range(len(self.columns))
        ]
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.render())


def _format(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def speedup(baseline: float, improved: float) -> float:
    """Baseline-over-improved ratio (>1 means the improvement wins)."""
    if improved <= 0:
        return float("inf")
    return baseline / improved


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
