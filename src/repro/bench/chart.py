"""ASCII series charts for benchmark output.

The dissertation presents its sweeps as figures; these helpers render the
same series as terminal bar charts so the *shape* (U-curves, crossovers,
saturation) is visible directly in the pytest summary without plotting
dependencies.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

BAR = "#"


def bar_chart(
    title: str,
    labels: Sequence[object],
    values: Sequence[float],
    width: int = 48,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one row per (label, value)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return title
    peak = max(values)
    label_texts = [str(label) for label in labels]
    label_width = max(len(t) for t in label_texts)
    lines = [title, "-" * len(title)]
    for text, value in zip(label_texts, values):
        length = 0 if peak <= 0 else int(round(width * value / peak))
        bar = BAR * max(length, 1 if value > 0 else 0)
        lines.append(f"{text.rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def series_chart(
    title: str,
    series: Sequence[Tuple[str, Sequence[float]]],
    labels: Sequence[object],
    width: int = 48,
    unit: str = "",
) -> str:
    """Several named series over shared x labels, as grouped bars."""
    lines = [title, "-" * len(title)]
    peak = max(
        (value for _name, values in series for value in values), default=0.0
    )
    label_texts = [str(label) for label in labels]
    label_width = max(len(t) for t in label_texts) if label_texts else 0
    name_width = max(len(name) for name, _values in series)
    for position, label in enumerate(label_texts):
        for name, values in series:
            value = values[position]
            length = 0 if peak <= 0 else int(round(width * value / peak))
            bar = BAR * max(length, 1 if value > 0 else 0)
            lines.append(
                f"{label.rjust(label_width)} {name.ljust(name_width)} | "
                f"{bar} {value:g}{unit}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def sparkline(values: Sequence[float]) -> str:
    """One-line trend glyph string (8 levels)."""
    glyphs = " .:-=+*#"
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return glyphs[4] * len(values)
    out = []
    for value in values:
        level = int((value - low) / (high - low) * (len(glyphs) - 1))
        out.append(glyphs[level])
    return "".join(out)
