"""Curated wall-clock benchmark suite (``python -m repro bench``).

Virtual-time costs are exact by construction; this suite measures what the
*host* pays for the Python layers around them.  Four benchmarks cover the
hot paths the profiler names:

* ``tile_decode`` — zlib decompression + ndarray materialisation of staged
  tile payloads (the decode phase);
* ``scatter_assembly`` — scattering memory-resident tiles into a result
  region via :meth:`MDD.read` (the assemble phase);
* ``read_many_thrash`` — an end-to-end ``read_many`` batch whose staged
  bytes exceed the disk cache: wave admission, pinning, decode and
  assembly under cache pressure (the macro path);
* ``parallel_dispatch`` — :func:`plan_parallel`'s dispatch-loop replay for
  a many-media batch at four drives (the scheduling layer, pure Python).

Protocol: per repetition a fresh, untimed ``setup`` builds the workload and
the timed thunk runs once — warmup repetitions are discarded, the rest feed
median/p95/IQR statistics.  Every result carries an **environment
fingerprint** including a fixed calibration workload's wall time, so
``scripts/bench_gate.py`` can compare machine-normalised scores instead of
raw seconds.  Results land in ``BENCH_<name>.json`` files whose committed
copies at the repo root are the regression baseline.

Benchmark factories import the core layers lazily: ``repro.obs.exporters``
imports this package for chart rendering, so module-level imports of
``repro.core`` here would be circular.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: result-file schema version (bump on breaking layout changes)
SCHEMA_VERSION = 1

#: benchmark sizes: "full" for real measurements, "smoke" for fast tests
SCALES = ("full", "smoke")

#: a prepared repetition: (timed thunk, parameter dict, bytes processed)
Prepared = Tuple[Callable[[], Any], Dict[str, Any], int]


@dataclass(frozen=True)
class BenchDef:
    """One suite benchmark: a name plus a per-repetition setup factory."""

    name: str
    title: str
    factory: Callable[[str], Prepared]


# -- statistics ----------------------------------------------------------------


def percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (q in 0..100) of a non-empty list."""
    if not samples:
        raise ValueError("percentile of empty sample list")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction


def sample_stats(samples: Sequence[float]) -> Dict[str, float]:
    """median/p95/IQR/min/max/mean summary of the timed repetitions."""
    return {
        "median_s": percentile(samples, 50.0),
        "p95_s": percentile(samples, 95.0),
        "iqr_s": percentile(samples, 75.0) - percentile(samples, 25.0),
        "min_s": min(samples),
        "max_s": max(samples),
        "mean_s": statistics.fmean(samples),
    }


# -- environment fingerprint ---------------------------------------------------


def _calibration_workload() -> float:
    """Fixed reference computation mixing numpy kernels and interpreter work.

    Its wall time fingerprints how fast this host runs the same blend of
    work the suite measures, letting the gate compare *normalised* scores
    across machines instead of raw seconds.
    """
    array = np.arange(262_144, dtype=np.float64)
    for _ in range(24):
        array = np.sqrt(array * 1.000001 + 1.0)
    checksum = 0
    for value in range(120_000):
        checksum += value * value
    return float(array[0]) + float(checksum)


def measure_calibration(repeats: int = 5) -> float:
    """Median wall seconds of the calibration workload."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        _calibration_workload()
        times.append(time.perf_counter() - start)
    return percentile(times, 50.0)


def environment_fingerprint() -> Dict[str, Any]:
    """Host facts a benchmark result is only comparable within."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "numpy": np.__version__,
        "calibration_s": measure_calibration(),
    }


# -- benchmark definitions -----------------------------------------------------


def _bench_tile_decode(scale: str) -> Prepared:
    """Decode N zlib-compressed tile payloads into ndarray cells.

    Runs the production zero-copy decode recipe — ``decompress_view``
    per tile plus a read-only ``frombuffer`` view, exactly what
    :meth:`Heaven._decode_tile` does for a compressed tile.  The payload
    mix is half low-entropy tiles (DEFLATE works, the inflate cost is
    real) and half float noise whose mantissa entropy DEFLATE barely
    dents (ratio ~0.97): those take the codec's stored-frame fallback
    and decode as pure views, the tile class where zero-copy matters
    most.
    """
    from ..core.compression import ZlibCodec

    tiles = 96 if scale == "full" else 4
    side = 32  # 32**3 doubles = 256 KiB per tile
    codec = ZlibCodec()
    rng = np.random.default_rng(7)
    shape = (side, side, side)
    raw_size = int(np.prod(shape)) * 8
    stored: List[bytes] = []
    for index in range(tiles):
        if index % 2 == 0:
            # Quantised field: compresses well, exercises inflate.
            cells = rng.integers(0, 16, shape).astype(np.float64)
        else:
            # Spatially coherent float noise: incompressible, exercises
            # the stored-frame zero-copy path.
            cells = np.cumsum(rng.standard_normal(shape), axis=0)
        stored.append(codec.compress(cells.tobytes()))

    def thunk() -> int:
        total = 0
        for payload in stored:
            view = codec.decompress_view(payload, raw_size)
            cells = np.frombuffer(view, dtype=np.float64).reshape(shape)
            total += cells.nbytes
        return total

    params = {
        "tiles": tiles,
        "tile_bytes": raw_size,
        "codec": "zlib",
        "incompressible_tiles": tiles // 2,
    }
    return thunk, params, tiles * raw_size


def _bench_scatter_assembly(scale: str) -> Prepared:
    """Assemble a large region from memory-resident tiles via MDD.read."""
    from ..arrays import DOUBLE, MDD, MInterval, RegularTiling

    side = 160 if scale == "full" else 48
    tile_side = 32 if scale == "full" else 16
    mdd = MDD(
        "bench",
        MInterval.from_shape((side, side, side // 2)),
        DOUBLE,
        tiling=RegularTiling((tile_side, tile_side, tile_side)),
    )
    rng = np.random.default_rng(11)
    for tile in mdd.tiles.values():
        tile.set_payload(
            rng.standard_normal(tile.domain.shape).astype(np.float64)
        )
    region = MInterval.of(
        (1, side - 2), (1, side - 2), (0, side // 2 - 1)
    )

    def thunk() -> np.ndarray:
        return mdd.read(region)

    bytes_processed = int(np.prod(region.shape)) * 8
    params = {
        "domain": str(mdd.domain),
        "region": str(region),
        "tiles": mdd.tile_count(),
    }
    return thunk, params, bytes_processed


def _bench_read_many_thrash(scale: str) -> Prepared:
    """End-to-end read_many batch under cache pressure (fresh env per rep)."""
    from ..arrays import DOUBLE, MDD, MInterval, RegularTiling, ZeroSource
    from ..core import Heaven, HeavenConfig
    from ..tertiary import MB

    object_mb = 32 if scale == "full" else 4
    cache_mb = 8 if scale == "full" else 2
    heaven = Heaven(
        HeavenConfig(
            super_tile_bytes=4 * MB,
            disk_cache_bytes=cache_mb * MB,
            memory_cache_bytes=128 * MB,
            retain_payload=False,
        )
    )
    heaven.create_collection("c")
    cells = object_mb * MB // DOUBLE.size_bytes
    side = max(8, int(round(cells ** (1.0 / 3))))
    tile_side = max(4, min(side, int(round((512 * 1024 // 8) ** (1.0 / 3)))))
    mdd = MDD(
        "obj",
        MInterval.from_shape((side,) * 3),
        DOUBLE,
        tiling=RegularTiling((tile_side,) * 3),
        source=ZeroSource(),
    )
    heaven.insert("c", mdd)
    heaven.archive("c", "obj")
    heaven.library.unmount_all()
    axes = list(mdd.domain.axes)
    first = axes[0]
    slabs = first.split_regular(max(1, first.extent // 4))
    batch = [
        ("c", "obj", MInterval.of((slab.lo, slab.hi), *axes[1:]))
        for slab in slabs
    ]

    def thunk() -> int:
        outputs, _report = heaven.read_many(batch)
        return sum(int(out.nbytes) for out in outputs)

    params = {
        "object_mb": object_mb,
        "cache_mb": cache_mb,
        "batch": len(batch),
    }
    return thunk, params, object_mb * MB


def _bench_parallel_dispatch(scale: str) -> Prepared:
    """plan_parallel's pure-Python dispatch replay over a many-media batch."""
    from ..core.scheduler import TapeRequest, plan_parallel
    from ..tertiary import MB, TAPE_PROFILES, TapeLibrary, scaled_profile

    media = 24 if scale == "full" else 4
    per_medium = 8 if scale == "full" else 2
    rounds = 6 if scale == "full" else 1
    profile = scaled_profile(TAPE_PROFILES["DLT-7000"], 256 * MB)
    library = TapeLibrary(profile, num_drives=4, retain_payload=False)
    requests: List[TapeRequest] = []
    for m in range(media):
        medium = library.new_medium(f"bench-{m:03d}")
        for s in range(per_medium):
            name = f"seg-{m:03d}-{s:02d}"
            library.write_segment(name, 2 * MB, medium_id=medium.medium_id)
            _medium_id, segment = library.segment(name)
            requests.append(
                TapeRequest(
                    key=name,
                    medium_id=medium.medium_id,
                    offset=segment.offset,
                    length=segment.length,
                )
            )
    library.unmount_all()

    def thunk() -> float:
        makespan = 0.0
        for _ in range(rounds):
            plan = plan_parallel(requests, library, 4)
            makespan += plan.makespan_seconds
        return makespan

    params = {
        "media": media,
        "requests": len(requests),
        "drives": 4,
        "rounds": rounds,
    }
    return thunk, params, len(requests) * 2 * MB * rounds


def _bench_multiquery_openloop(scale: str) -> Prepared:
    """Open-loop concurrent queries through the admission layer.

    Sweeps the offered load (Poisson arrival rate, seeded) and records the
    virtual-latency distribution — p50/p95/p99 sojourn per load point —
    in ``params``; the timed thunk replays the middle load point end to
    end, so the wall sample tracks admission + fused staging + assembly.
    """
    import random as _random

    from ..arrays import DOUBLE, MDD, MInterval, RegularTiling, ZeroSource
    from ..core import Heaven, HeavenConfig
    from ..core.admission import AdmissionController, QuerySpec
    from ..tertiary import MB

    object_mb = 16 if scale == "full" else 4
    queries = 12 if scale == "full" else 6
    loads = (0.05, 0.2, 0.8)  # offered load in queries per virtual second

    def build():
        heaven = Heaven(
            HeavenConfig(
                super_tile_bytes=2 * MB,
                disk_cache_bytes=8 * MB,
                memory_cache_bytes=64 * MB,
                retain_payload=False,
            )
        )
        heaven.create_collection("c")
        cells = object_mb * MB // DOUBLE.size_bytes
        side = max(8, int(round(cells ** (1.0 / 3))))
        mdd = MDD(
            "obj",
            MInterval.from_shape((side,) * 3),
            DOUBLE,
            tiling=RegularTiling((max(4, side // 4),) * 3),
            source=ZeroSource(),
        )
        heaven.insert("c", mdd)
        heaven.archive("c", "obj")
        heaven.library.unmount_all()
        return heaven, mdd

    def run_load(load: float):
        heaven, mdd = build()
        rng = _random.Random(97)
        axes = list(mdd.domain.axes)
        first = axes[0]
        arrival = heaven.clock.now
        specs = []
        for index in range(queries):
            arrival += rng.expovariate(load)
            span = max(1, first.extent // 4)
            lo = rng.randrange(first.lo, max(first.lo + 1, first.hi - span))
            hi = min(first.hi, lo + span - 1)
            region = MInterval.of(
                (lo, hi), *((a.lo, a.hi) for a in axes[1:])
            )
            specs.append(
                QuerySpec(
                    collection="c",
                    object_name="obj",
                    region=region,
                    arrival_s=arrival,
                    name=f"q{index}",
                )
            )
        outputs, report = AdmissionController(heaven).run(specs)
        useful = sum(int(out.nbytes) for out in outputs)
        return report, useful

    latency_by_load = {}
    useful_bytes = 0
    for load in loads:
        report, useful_bytes = run_load(load)
        latencies = sorted(report.latencies_s)
        latency_by_load[f"{load:g}qps"] = {
            "offered_qps": load,
            "p50_s": round(percentile(latencies, 50.0), 3),
            "p95_s": round(percentile(latencies, 95.0), 3),
            "p99_s": round(percentile(latencies, 99.0), 3),
            "sweeps": report.sweeps,
            "fusion_saved_mb": round(report.fusion_saved_bytes / MB, 2),
        }

    def thunk() -> float:
        report, _useful = run_load(loads[1])
        return report.makespan_s

    params = {
        "object_mb": object_mb,
        "queries": queries,
        "latency_by_load": latency_by_load,
    }
    return thunk, params, useful_bytes


def _bench_service_scaling(scale: str) -> Prepared:
    """Open-loop service reads at growing data-node counts.

    Builds an SN/DN cluster per node count (1, 2, 4 — each data node a
    fresh HEAVEN owning a hash-ring shard of the super-tile space) and
    serves the same seeded open-loop request stream through the service
    node.  ``params`` records virtual q/s, p95 sojourn and makespan per
    node count plus ``speedup_4v1`` — the virtual-throughput ratio the
    CI service gate asserts (>= 1.4x at 4 nodes).  The timed thunk
    replays the 4-node run, so the wall sample tracks dispatch + fused
    staging + wire framing + reassembly.
    """
    import random as _random

    from ..arrays import DOUBLE, MDD, MInterval, RegularTiling, ZeroSource
    from ..core import Heaven, HeavenConfig
    from ..service import ServiceCluster
    from ..tertiary import MB

    object_mb = 16 if scale == "full" else 4
    requests = 12 if scale == "full" else 6
    node_counts = (1, 2, 4)

    def make_config() -> HeavenConfig:
        # 16 super-tile segments spread over 8 small media: a node only
        # mounts the media its shard's segments live on, so the mount
        # bill — the dominant cost — shrinks with the node count.
        from ..tertiary import TAPE_PROFILES, scaled_profile

        return HeavenConfig(
            tape_profile=scaled_profile(
                TAPE_PROFILES["DLT-7000"], object_mb * MB // 8
            ),
            super_tile_bytes=object_mb * MB // 16,
            disk_cache_bytes=64 * MB,
            retain_payload=False,
        )

    cells = object_mb * MB // DOUBLE.size_bytes
    side = max(8, int(round(cells ** (1.0 / 3))))
    tile_side = max(4, side // 8)

    def setup(heaven: Heaven) -> None:
        heaven.create_collection("c")
        mdd = MDD(
            "obj",
            MInterval.from_shape((side,) * 3),
            DOUBLE,
            tiling=RegularTiling((tile_side,) * 3),
            source=ZeroSource(),
        )
        heaven.insert("c", mdd)
        heaven.archive("c", "obj")
        heaven.library.unmount_all()

    def request_plan():
        rng = _random.Random(23)
        probe = Heaven(make_config())
        setup(probe)
        domain = probe.collection("c").get("obj").domain
        axes = list(domain.axes)
        first = axes[0]
        plan = []
        arrival = 0.0
        for index in range(requests):
            # Saturating offered load: arrivals an order of magnitude
            # faster than the single-node service rate, so the makespan
            # is work-dominated and the node count is what moves it.
            arrival += rng.expovariate(4.0)
            span = max(1, first.extent // 4)
            lo = rng.randrange(first.lo, max(first.lo + 1, first.hi - span))
            hi = min(first.hi, lo + span - 1)
            region = MInterval.of((lo, hi), *((a.lo, a.hi) for a in axes[1:]))
            plan.append((str(region), arrival))
        return plan

    plan = request_plan()

    def run_nodes(nodes: int):
        cluster = ServiceCluster.build(
            make_config, setup, nodes=nodes, objects=[("c", "obj")]
        )
        cluster.register_tenant("bench")
        results = cluster.read_many(
            [("token-bench", "c", "obj", region, arrival)
             for region, arrival in plan]
        )
        makespan = max(r.completion_v for r in results)
        latencies = sorted(r.latency_v for r in results)
        useful = sum(r.bytes_useful for r in results)
        qps = len(results) / makespan if makespan > 0 else 0.0
        return qps, percentile(latencies, 95.0), makespan, useful

    scaling: Dict[str, Any] = {}
    qps_by_nodes: Dict[int, float] = {}
    useful_bytes = 0
    for nodes in node_counts:
        qps, p95_s, makespan, useful_bytes = run_nodes(nodes)
        qps_by_nodes[nodes] = qps
        scaling[f"n{nodes}"] = {
            "nodes": nodes,
            "virtual_qps": round(qps, 4),
            "p95_virtual_s": round(p95_s, 3),
            "makespan_virtual_s": round(makespan, 3),
        }

    def thunk() -> float:
        _qps, _p95, makespan, _useful = run_nodes(node_counts[-1])
        return makespan

    params = {
        "object_mb": object_mb,
        "requests": requests,
        "node_counts": list(node_counts),
        "scaling": scaling,
        "speedup_4v1": round(qps_by_nodes[4] / qps_by_nodes[1], 3)
        if qps_by_nodes.get(1) else 0.0,
    }
    return thunk, params, useful_bytes


#: the curated suite, in execution order
SUITE: Tuple[BenchDef, ...] = (
    BenchDef(
        "tile_decode",
        "zlib tile decode into ndarray cells",
        _bench_tile_decode,
    ),
    BenchDef(
        "scatter_assembly",
        "tile scatter-assembly into a result region",
        _bench_scatter_assembly,
    ),
    BenchDef(
        "read_many_thrash",
        "read_many batch under disk-cache pressure",
        _bench_read_many_thrash,
    ),
    BenchDef(
        "parallel_dispatch",
        "parallel staging plan over a many-media batch",
        _bench_parallel_dispatch,
    ),
    BenchDef(
        "multiquery_openloop",
        "open-loop concurrent queries through the admission layer",
        _bench_multiquery_openloop,
    ),
    BenchDef(
        "service_scaling",
        "open-loop service reads vs data-node count (SN/DN tier)",
        _bench_service_scaling,
    ),
)


def suite_names() -> List[str]:
    return [bench.name for bench in SUITE]


# -- execution -----------------------------------------------------------------


@dataclass
class BenchResult:
    """Timed repetitions and derived statistics of one benchmark."""

    name: str
    title: str
    scale: str
    warmup: int
    samples_s: List[float]
    params: Dict[str, Any]
    bytes_processed: int
    environment: Dict[str, Any] = field(default_factory=dict)

    @property
    def stats(self) -> Dict[str, float]:
        return sample_stats(self.samples_s)

    @property
    def throughput_mb_s(self) -> Optional[float]:
        median = self.stats["median_s"]
        if self.bytes_processed <= 0 or median <= 0:
            return None
        return self.bytes_processed / median / (1024.0 * 1024.0)

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "schema": SCHEMA_VERSION,
            "name": self.name,
            "title": self.title,
            "unit": "seconds",
            "scale": self.scale,
            "warmup": self.warmup,
            "repetitions": len(self.samples_s),
            "samples_s": [round(s, 9) for s in self.samples_s],
            "stats": {k: round(v, 9) for k, v in self.stats.items()},
            "params": self.params,
            "environment": self.environment,
        }
        if self.bytes_processed > 0:
            record["bytes_processed"] = self.bytes_processed
            throughput = self.throughput_mb_s
            if throughput is not None:
                record["throughput_mb_s"] = round(throughput, 3)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"


def result_filename(name: str) -> str:
    return f"BENCH_{name}.json"


def run_benchmark(
    bench: BenchDef,
    repetitions: int = 5,
    warmup: int = 1,
    scale: str = "full",
    environment: Optional[Dict[str, Any]] = None,
) -> BenchResult:
    """Run one benchmark: per-repetition setup (untimed), timed thunk."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r}; known: {SCALES}")
    samples: List[float] = []
    params: Dict[str, Any] = {}
    bytes_processed = 0
    for iteration in range(warmup + repetitions):
        thunk, params, bytes_processed = bench.factory(scale)
        start = time.perf_counter()
        thunk()
        elapsed = time.perf_counter() - start
        if iteration >= warmup:
            samples.append(elapsed)
    return BenchResult(
        name=bench.name,
        title=bench.title,
        scale=scale,
        warmup=warmup,
        samples_s=samples,
        params=params,
        bytes_processed=bytes_processed,
        environment=(
            environment if environment is not None else environment_fingerprint()
        ),
    )


def run_suite(
    names: Optional[Sequence[str]] = None,
    repetitions: int = 5,
    warmup: int = 1,
    scale: str = "full",
    out_dir: Optional[str] = ".",
    progress: Optional[Callable[[str], None]] = None,
) -> List[BenchResult]:
    """Run (a subset of) the suite and write ``BENCH_<name>.json`` files.

    Returns the results in suite order.  ``out_dir=None`` skips writing.
    """
    selected = list(SUITE)
    if names:
        unknown = sorted(set(names) - set(suite_names()))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown}; known: {suite_names()}"
            )
        selected = [bench for bench in SUITE if bench.name in set(names)]
    environment = environment_fingerprint()
    results: List[BenchResult] = []
    for bench in selected:
        if progress is not None:
            progress(f"running {bench.name} ({repetitions} reps, {scale}) ...")
        result = run_benchmark(
            bench,
            repetitions=repetitions,
            warmup=warmup,
            scale=scale,
            environment=environment,
        )
        results.append(result)
        if out_dir is not None:
            path = Path(out_dir) / result_filename(bench.name)
            path.write_text(result.to_json(), encoding="utf-8")
            if progress is not None:
                progress(f"wrote {path}")
    return results
