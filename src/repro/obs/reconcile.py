"""Report ↔ metrics ↔ event-log reconciliation helpers.

Three accounting systems describe every hierarchical read:

* the per-operation :class:`~repro.core.heaven.RetrievalReport`,
* the lifetime ``repro_*`` instruments in the metrics registry,
* the raw event log of the simulation clock.

Each is derived differently (span windows, collected device stats,
appended events), so agreement between them is a strong conservation
invariant: accounting drift in any one layer breaks the reconciliation.
The simulation harness (:mod:`repro.simtest`) checks it after every read;
``tests/obs/test_report_reconciliation.py`` pins the field-by-field
mapping so a new report field cannot ship without a metric.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.heaven import RetrievalReport
    from .metrics import MetricsRegistry

#: report field -> (metric series, labelled) for every numeric field of
#: RetrievalReport.  A labelled metric's deltas are summed over all its
#: label sets (e.g. faults per site).
REPORT_FIELD_METRICS: Dict[str, Tuple[str, bool]] = {
    "tiles_needed": ("repro_read_tiles_needed_total", False),
    "super_tiles_staged": ("repro_segments_staged_total", False),
    "bytes_from_tape": ("repro_tape_bytes_read_total", False),
    "bytes_useful": ("repro_read_bytes_useful_total", False),
    "exchanges": ("repro_tape_exchanges_total", False),
    "virtual_seconds": ("repro_virtual_seconds", False),
    "faults": ("repro_faults_injected_total", True),
    "backoffs": ("repro_retries_total", False),
    "degraded": ("repro_degraded_reads_total", False),
    "restages": ("repro_restages_total", False),
    "pins": ("repro_cache_pins_total", False),
    "pin_evictions_blocked": ("repro_cache_pin_evictions_blocked_total", False),
    "waves": ("repro_staging_waves_total", False),
}

#: float tolerance for virtual-second comparisons (spans accumulate
#: device durations in floating point)
TIME_TOLERANCE_S = 1e-6


def metrics_snapshot(registry: "MetricsRegistry") -> Dict[str, float]:
    """Collect the registry and flatten every mapped series to one number.

    Labelled series are summed across their label sets, so a snapshot
    delta of ``repro_faults_injected_total`` is the total faults injected
    regardless of site.
    """
    raw = registry.snapshot()
    out: Dict[str, float] = {}
    for series, _labelled in REPORT_FIELD_METRICS.values():
        out[series] = sum(raw.get(series, {}).values())
    return out


def metrics_delta(
    before: Dict[str, float], after: Dict[str, float]
) -> Dict[str, float]:
    """Per-series difference of two :func:`metrics_snapshot` results."""
    return {series: after.get(series, 0.0) - before.get(series, 0.0) for series in after}


def reconcile_report(
    report: "RetrievalReport",
    delta: Dict[str, float],
    *,
    skip: Tuple[str, ...] = (),
) -> List[str]:
    """Compare one read's report against the metric deltas it caused.

    Returns a list of human-readable mismatch descriptions (empty =
    reconciled).  ``skip`` names report fields to leave unchecked — the
    caller knows when a field legitimately diverges (``exchanges`` under
    mount faults: the robot's exchange is charged but the aborted drive
    load never appears in the span window the report counts).
    """
    problems: List[str] = []
    for field, (series, _labelled) in REPORT_FIELD_METRICS.items():
        if field in skip:
            continue
        reported = float(getattr(report, field))
        observed = delta.get(series, 0.0)
        tolerance = TIME_TOLERANCE_S if field == "virtual_seconds" else 0.0
        if abs(reported - observed) > tolerance:
            problems.append(
                f"report.{field}={reported:g} but {series} moved by "
                f"{observed:g}"
            )
    return problems


def event_window_bytes(
    log, start_cursor: int, kind: str = "read", device_prefix: str = "drive"
) -> int:
    """Bytes moved by *kind* events on matching devices since *start_cursor*.

    Cursors are absolute append positions (see
    :meth:`repro.tertiary.clock.EventLog.cursor`), so the tally stays
    correct under bounded (truncating) logs as long as the window's
    events are still retained.
    """
    total = 0
    for event in log.window(start_cursor):
        if event.kind == kind and event.device.startswith(device_prefix):
            total += event.bytes
    return total


def reconcile_shared_tape_bytes(
    reports,
    log,
    start_cursor: int,
    *,
    unattributed: int = 0,
) -> Optional[str]:
    """Check a *set* of per-query reports against one shared byte window.

    The admission layer splits fused sweep bytes across queries
    (:func:`~repro.core.scheduler.split_shared_bytes`) and keeps an
    explicit unattributed remainder (prefetch, fault re-reads).  The sum
    of every query's ``bytes_from_tape`` plus that remainder must equal
    the drive-read bytes of the whole run's event window **exactly** — a
    mismatch means shared bytes were double-counted or dropped.

    Returns a mismatch description or ``None``.
    """
    observed = event_window_bytes(log, start_cursor)
    attributed = sum(r.bytes_from_tape for r in reports) + unattributed
    if attributed != observed:
        per_query = ", ".join(
            f"{r.object_name}={r.bytes_from_tape}" for r in reports
        )
        return (
            f"per-query tape bytes sum to {attributed} "
            f"({per_query}; unattributed={unattributed}) but the event log "
            f"recorded {observed} drive read bytes in the window"
        )
    return None


def reconcile_tape_bytes(
    report: "RetrievalReport", log, start_cursor: int
) -> Optional[str]:
    """Check ``bytes_from_tape`` against the event log's read-byte tally.

    Returns a mismatch description or ``None``.  The report takes the max
    of the span tally and the staged-byte floor, so both derive from the
    same events — any difference means a read was charged outside the
    operation's span window.
    """
    observed = event_window_bytes(log, start_cursor)
    if report.bytes_from_tape != observed:
        return (
            f"report.bytes_from_tape={report.bytes_from_tape} but the event "
            f"log recorded {observed} drive read bytes in the window"
        )
    return None
