"""Span-based tracer carrying host wall-clock *and* simulated virtual time.

A :class:`Span` measures one operation twice:

* **wall time** via :func:`time.perf_counter` — what the host paid;
* **virtual time** via the shared :class:`~repro.tertiary.clock.SimClock` —
  what the simulated hardware paid.

Virtual-time attribution is exact and needs no per-event bookkeeping: every
charged virtual second is an :class:`~repro.tertiary.clock.Event` in the
clock's log, and a span simply remembers the absolute log cursors at enter
and exit.  The event log therefore *is* the sink feeding the tracer — leaf
"spans" (mount/seek/transfer/…) are synthesised from the events inside a
span's window, and a span's :meth:`Span.self_aggregate` subtracts the
windows of its children.

The tracer is **zero-cost when disabled**: ``span()`` hands out a shared
no-op span and records nothing.  Cost-accounting call sites that must work
even with tracing off (e.g. :class:`~repro.core.heaven.RetrievalReport`)
pass ``always=True`` to get a real, *unretained* span that still measures
its clock window.
"""

from __future__ import annotations

import itertools
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from ..tertiary.clock import Event, EventLog, KindTotals, SimClock


class Span:
    """One traced operation: a named window of wall and virtual time."""

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "attributes",
        "wall_start",
        "wall_end",
        "virtual_start",
        "virtual_end",
        "log_start",
        "log_end",
        "children",
        "_log",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int] = None,
        attributes: Optional[Dict[str, Any]] = None,
        log: Optional[EventLog] = None,
        virtual_start: float = 0.0,
        log_start: int = 0,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attributes: Dict[str, Any] = attributes if attributes is not None else {}
        self.wall_start = time.perf_counter()
        self.wall_end: Optional[float] = None
        self.virtual_start = virtual_start
        self.virtual_end: Optional[float] = None
        self.log_start = log_start
        self.log_end: Optional[int] = None
        self.children: List["Span"] = []
        self._log = log

    # -- lifecycle -----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return True

    @property
    def finished(self) -> bool:
        return self.wall_end is not None

    def finish(self, virtual_now: float, log_cursor: int) -> None:
        if self.finished:
            return
        self.wall_end = time.perf_counter()
        self.virtual_end = virtual_now
        self.log_end = log_cursor

    def set(self, **attributes: Any) -> None:
        """Attach (or overwrite) span attributes."""
        self.attributes.update(attributes)

    # -- measurements --------------------------------------------------------

    @property
    def wall_elapsed(self) -> float:
        end = self.wall_end if self.wall_end is not None else time.perf_counter()
        return end - self.wall_start

    @property
    def virtual_elapsed(self) -> float:
        if self.virtual_end is None:
            return 0.0
        return self.virtual_end - self.virtual_start

    def events(self) -> List[Event]:
        """Simulator events charged inside this span's window."""
        if self._log is None:
            return []
        return self._log.window(self.log_start, self.log_end)

    def aggregate(self) -> Dict[str, KindTotals]:
        """Per-kind totals over every event in the window (children too)."""
        if self._log is None:
            return {}
        return self._log.aggregate(self.log_start, self.log_end)

    def self_aggregate(self) -> Dict[str, KindTotals]:
        """Per-kind totals of events *not* covered by any child span."""
        if self._log is None:
            return {}
        out: Dict[str, KindTotals] = {}
        for start, end in self._self_windows():
            for kind, totals in self._log.aggregate(start, end).items():
                mine = out.get(kind)
                if mine is None:
                    mine = out[kind] = KindTotals()
                mine.count += totals.count
                mine.seconds += totals.seconds
                mine.bytes += totals.bytes
        return out

    def _self_windows(self) -> Iterator[tuple]:
        """Cursor ranges belonging to this span but to none of its children."""
        position = self.log_start
        for child in sorted(self.children, key=lambda s: s.log_start):
            if child.log_start > position:
                yield (position, child.log_start)
            if child.log_end is not None:
                position = max(position, child.log_end)
        end = self.log_end if self.log_end is not None else (
            self._log.cursor() if self._log is not None else position
        )
        if end > position:
            yield (position, end)

    def count(self, kind: str) -> int:
        totals = self.aggregate().get(kind)
        return totals.count if totals is not None else 0

    def time_in(self, kind: str) -> float:
        totals = self.aggregate().get(kind)
        return totals.seconds if totals is not None else 0.0

    def bytes_in(self, kind: str) -> int:
        totals = self.aggregate().get(kind)
        return totals.bytes if totals is not None else 0

    # -- traversal / export ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (one node; children listed by id)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "attributes": dict(self.attributes),
            "virtual_start_s": round(self.virtual_start, 9),
            "virtual_elapsed_s": round(self.virtual_elapsed, 9),
            "wall_elapsed_ms": round(self.wall_elapsed * 1000.0, 3),
            "breakdown": {
                kind: {
                    "count": totals.count,
                    "seconds": round(totals.seconds, 9),
                    "bytes": totals.bytes,
                }
                for kind, totals in sorted(self.self_aggregate().items())
            },
            "children": [child.span_id for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, virtual={self.virtual_elapsed:.3f}s, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared do-nothing span handed out by a disabled tracer."""

    __slots__ = ()

    enabled = False
    finished = True
    name = "noop"
    span_id = 0
    parent_id = None
    attributes: Dict[str, Any] = {}
    children: List[Span] = []
    wall_elapsed = 0.0
    virtual_elapsed = 0.0

    def set(self, **attributes: Any) -> None:
        pass

    def events(self) -> List[Event]:
        return []

    def aggregate(self) -> Dict[str, KindTotals]:
        return {}

    def self_aggregate(self) -> Dict[str, KindTotals]:
        return {}

    def count(self, kind: str) -> int:
        return 0

    def time_in(self, kind: str) -> float:
        return 0.0

    def bytes_in(self, kind: str) -> int:
        return 0

    def walk(self) -> Iterator[Span]:
        return iter(())


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Context-propagating tracer over one simulated clock.

    Spans opened while another span is active become its children, so one
    query naturally yields the tree ``query → heaven.stage → cache.lookup /
    scheduler.plan / library.stage`` without any explicit plumbing.

    Finished *root* spans are retained (up to ``max_finished``, with a drop
    counter) only while :attr:`enabled` — a disabled tracer allocates
    nothing per operation except for ``always=True`` measurement spans,
    which are returned to the caller and never retained.
    """

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        enabled: bool = False,
        max_finished: int = 1024,
    ) -> None:
        if max_finished < 1:
            raise ValueError("max_finished must be >= 1")
        self.clock = clock
        self.enabled = enabled
        self.max_finished = max_finished
        self.roots: List[Span] = []
        self.dropped_roots = 0
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    def bind_clock(self, clock: SimClock) -> None:
        """Attach (or swap) the virtual clock feeding span windows."""
        self.clock = clock

    @property
    def current(self) -> Optional[Span]:
        """Innermost active span, if tracing is enabled and one is open."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, always: bool = False, **attributes: Any):
        """Open a span around a ``with`` block.

        Args:
            name: span name (dotted, e.g. ``"heaven.read"``).
            always: hand out a real measuring span even when the tracer is
                disabled (standalone — not retained, no children tracked).
            attributes: static key/value annotations.
        """
        if not self.enabled and not always:
            yield NOOP_SPAN
            return
        span = self._start(name, attributes)
        try:
            yield span
        finally:
            self._finish(span)

    def clear(self) -> None:
        """Drop retained roots and the drop counter (active spans stay)."""
        self.roots.clear()
        self.dropped_roots = 0

    # -- internals -----------------------------------------------------------

    def _start(self, name: str, attributes: Dict[str, Any]) -> Span:
        parent = self._stack[-1] if (self.enabled and self._stack) else None
        span = Span(
            name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes,
            log=self.clock.log if self.clock is not None else None,
            virtual_start=self.clock.now if self.clock is not None else 0.0,
            log_start=self.clock.log.cursor() if self.clock is not None else 0,
        )
        if self.enabled:
            if parent is not None:
                parent.children.append(span)
            self._stack.append(span)
        return span

    def _finish(self, span: Span) -> None:
        span.finish(
            virtual_now=self.clock.now if self.clock is not None else 0.0,
            log_cursor=self.clock.log.cursor() if self.clock is not None else 0,
        )
        if self.enabled and self._stack and self._stack[-1] is span:
            self._stack.pop()
            if span.parent_id is None:
                if len(self.roots) >= self.max_finished:
                    self.roots.pop(0)
                    self.dropped_roots += 1
                self.roots.append(span)


#: module-level disabled tracer for components constructed without one
null_tracer = Tracer(enabled=False)
