"""Metrics registry: counters, gauges and fixed-bucket histograms.

Instruments are named like Prometheus series (``repro_tape_exchanges_total``)
and support an optional label dimension per observation (``tier="disk"``).
Two update styles coexist:

* **direct** — hot paths call ``counter.inc()`` / ``histogram.observe()``;
* **collected** — a *collector* callback registered on the registry reads
  the live counters the storage layers already keep (cache stats, library
  stats, WAL records) and ``set()``s instrument values right before a
  snapshot or export.  This keeps the simulator's hot paths free of any
  observability cost: the work happens at scrape time, not at charge time.
"""

from __future__ import annotations

import bisect
import math
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import ReproError


class MetricsError(ReproError):
    """Raised on duplicate registrations or malformed instruments."""


LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Instrument:
    """Common naming/metadata of one metric family."""

    kind = "untyped"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        if not name or not name.replace("_", "").replace(":", "").isalnum():
            raise MetricsError(f"invalid metric name {name!r}")
        self.name = name
        self.description = description
        self.unit = unit

    def samples(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        """Yield ``(series_name, labels, value)`` triples."""
        raise NotImplementedError


class Counter(Instrument):
    """Monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        super().__init__(name, description, unit)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise MetricsError(f"counter {self.name}: negative increment {amount}")
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, value: float, **labels: str) -> None:
        """Collector-style absolute update (must not go backwards)."""
        key = _label_key(labels)
        if value < self._values.get(key, 0.0):
            raise MetricsError(
                f"counter {self.name}{dict(labels)} cannot decrease to {value}"
            )
        self._values[key] = float(value)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        for key in sorted(self._values):
            yield self.name, dict(key), self._values[key]


class Gauge(Instrument):
    """Point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, description: str = "", unit: str = "") -> None:
        super().__init__(name, description, unit)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        for key in sorted(self._values):
            yield self.name, dict(key), self._values[key]


#: default boundaries for virtual-time histograms (seconds) — spans mount
#: latencies (tens of seconds) down to disk hits (milliseconds)
TIME_BUCKETS_S: Tuple[float, ...] = (
    0.001, 0.01, 0.1, 0.5, 1.0, 5.0, 15.0, 60.0, 300.0, 1800.0,
)

#: default boundaries for payload-size histograms (bytes)
BYTE_BUCKETS: Tuple[float, ...] = (
    4096.0, 65536.0, 1048576.0, 16777216.0, 134217728.0, 1073741824.0,
)

#: default boundaries for host wall-clock histograms (seconds) — Python-layer
#: latencies run from microseconds (cache probes) to seconds (thrash batches)
WALL_TIME_BUCKETS_S: Tuple[float, ...] = (
    0.00001, 0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0,
)


class Histogram(Instrument):
    """Fixed-boundary histogram with cumulative bucket counts.

    ``boundaries`` are upper bounds (``le``); an implicit ``+Inf`` bucket
    catches the rest.  Exposed Prometheus-style: per-bucket cumulative
    counts plus ``_sum`` and ``_count`` series.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        boundaries: Sequence[float] = TIME_BUCKETS_S,
    ) -> None:
        super().__init__(name, description, unit)
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or any(not math.isfinite(b) for b in bounds):
            raise MetricsError(
                f"histogram {name}: boundaries must be finite and strictly "
                f"increasing, got {bounds}"
            )
        self.boundaries = bounds
        #: per-bucket observation counts; index len(boundaries) is +Inf
        self.bucket_counts: List[int] = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.boundaries, float(value))
        self.bucket_counts[index] += 1
        self.sum += float(value)
        self.count += 1

    def bucket_for(self, value: float) -> float:
        """Upper bound of the bucket *value* falls into (inf for overflow)."""
        index = bisect.bisect_left(self.boundaries, float(value))
        return self.boundaries[index] if index < len(self.boundaries) else math.inf

    def samples(self) -> Iterator[Tuple[str, Dict[str, str], float]]:
        cumulative = 0
        for boundary, bucket in zip(self.boundaries, self.bucket_counts):
            cumulative += bucket
            yield f"{self.name}_bucket", {"le": f"{boundary:g}"}, float(cumulative)
        cumulative += self.bucket_counts[-1]
        yield f"{self.name}_bucket", {"le": "+Inf"}, float(cumulative)
        yield f"{self.name}_sum", {}, self.sum
        yield f"{self.name}_count", {}, float(self.count)


Collector = Callable[[], None]


class MetricsRegistry:
    """Named instruments plus collect-time callbacks."""

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._collectors: List[Collector] = []

    # -- registration --------------------------------------------------------

    def counter(self, name: str, description: str = "", unit: str = "") -> Counter:
        return self._register(Counter(name, description, unit))

    def gauge(self, name: str, description: str = "", unit: str = "") -> Gauge:
        return self._register(Gauge(name, description, unit))

    def histogram(
        self,
        name: str,
        description: str = "",
        unit: str = "",
        boundaries: Sequence[float] = TIME_BUCKETS_S,
    ) -> Histogram:
        return self._register(Histogram(name, description, unit, boundaries))

    def _register(self, instrument: Instrument) -> Instrument:
        if instrument.name in self._instruments:
            raise MetricsError(f"metric {instrument.name!r} already registered")
        self._instruments[instrument.name] = instrument
        return instrument

    def register_collector(self, collector: Collector) -> None:
        """Add a callback run before every :meth:`collect`/snapshot."""
        self._collectors.append(collector)

    # -- access --------------------------------------------------------------

    def get(self, name: str) -> Instrument:
        try:
            return self._instruments[name]
        except KeyError:
            raise MetricsError(f"unknown metric {name!r}") from None

    def instruments(self) -> List[Instrument]:
        return [self._instruments[name] for name in sorted(self._instruments)]

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def collect(self) -> List[Instrument]:
        """Run collectors, then return instruments in name order."""
        for collector in self._collectors:
            collector()
        return self.instruments()

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``{series: {rendered_labels: value}}`` after running collectors."""
        out: Dict[str, Dict[str, float]] = {}
        for instrument in self.collect():
            for series, labels, value in instrument.samples():
                rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                out.setdefault(series, {})[rendered] = value
        return out
