"""Wall-clock statistical profiler for the Python layers.

The span tracer makes *virtual* time exactly attributable; this module does
the same for *host* time.  A :class:`WallProfiler` samples the interpreter
stack while a workload runs and aggregates the samples three ways:

* **pipeline phases** — each sample is attributed to one of the phases the
  tracer already names (``stage`` / ``coalesce`` / ``decode`` / ``assemble``
  / ``cache`` / ``metadata``), via the innermost active span at sample time
  plus a frame-name override for the decode kernels that run inside wider
  spans;
* **hot functions** — per-function self and cumulative weight, for the
  "where does the host time actually go" question;
* **call stacks** — a weighted stack trie the exporters render as a
  wall-time flamegraph.

Two capture modes share one output format:

* ``signal`` — a real statistical profiler: ``signal.setitimer`` interrupts
  the main thread every few milliseconds and the handler records the
  interrupted stack.  Overhead is proportional to the sampling rate, not to
  the workload's call rate, so it stays far below the tracing-overhead gate.
* ``deterministic`` — a ``sys.setprofile`` hook that ticks once per call
  event and records every *N*-th tick, weighting samples in ticks instead
  of seconds.  The resulting profile is a pure function of the executed
  code, so tests can assert byte-identical profiles across runs.

The module also computes the **divergence metric**: host microseconds spent
per simulated virtual second, per span kind — the number that makes Python
overhead visible next to modelled device time (a phase whose µs/vs grows is
software getting slower against unchanged hardware).
"""

from __future__ import annotations

import signal
import sys
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .trace import Span, Tracer

#: the pipeline phases host time is attributed to (matching the span names
#: the tracer emits along the read path)
PHASES: Tuple[str, ...] = (
    "stage", "coalesce", "decode", "assemble", "cache", "metadata", "other",
)

#: span name -> phase; the *innermost* active span at sample time decides
SPAN_PHASES: Dict[str, str] = {
    "heaven.stage": "stage",
    "library.stage": "stage",
    "heaven.archive": "stage",
    "export.coupled": "stage",
    "export.tct": "stage",
    "scheduler.plan": "coalesce",
    "heaven.drain": "decode",
    "heaven.assemble": "assemble",
    "cache.lookup": "cache",
    "heaven.read": "metadata",
    "heaven.read_many": "metadata",
    "heaven.read_frame": "metadata",
    "query": "metadata",
    "query.statement": "metadata",
}

#: function name -> phase override, matched innermost-first against the
#: sampled stack.  The decode kernels run *inside* stage/assemble spans, so
#: span attribution alone would hide them.
FRAME_PHASES: Dict[str, str] = {
    "_decode_tile": "decode",
    "decompress": "decode",
    "_materialize_from_run": "decode",
    "materialize_tile": "decode",
}


def phase_of_span(name: str) -> str:
    """Pipeline phase a span name belongs to (``other`` if unknown)."""
    return SPAN_PHASES.get(name, "other")


#: one resolved stack frame: (function, file, first line)
FrameKey = Tuple[str, str, int]


@dataclass
class FunctionStat:
    """Aggregated weight of one function across all samples."""

    name: str
    file: str
    line: int
    self_weight: float = 0.0
    cum_weight: float = 0.0

    @property
    def label(self) -> str:
        return f"{self.name} ({self.file}:{self.line})"


class Profile:
    """Aggregated samples of one profiling session.

    ``unit`` is ``"seconds"`` (signal mode, weights are sampling intervals)
    or ``"ticks"`` (deterministic mode, weights are call-event counts).
    Stacks are stored root-first.
    """

    def __init__(self, unit: str, mode: str, interval_s: float = 0.0) -> None:
        self.unit = unit
        self.mode = mode
        self.interval_s = interval_s
        self.samples = 0
        self.stack_weights: Dict[Tuple[FrameKey, ...], float] = {}
        self.phase_weights: Dict[str, float] = {}

    @property
    def total_weight(self) -> float:
        return sum(self.stack_weights.values())

    def record(
        self, stack: Tuple[FrameKey, ...], phase: str, weight: float
    ) -> None:
        self.samples += 1
        self.stack_weights[stack] = self.stack_weights.get(stack, 0.0) + weight
        self.phase_weights[phase] = self.phase_weights.get(phase, 0.0) + weight

    # -- aggregation ---------------------------------------------------------

    def by_phase(self) -> Dict[str, float]:
        """Weight per pipeline phase, every known phase present."""
        return {
            phase: self.phase_weights.get(phase, 0.0) for phase in PHASES
        }

    def hot_functions(self, top: int = 10) -> List[FunctionStat]:
        """Functions ranked by self weight (leaf frame of each sample)."""
        stats: Dict[FrameKey, FunctionStat] = {}
        for stack, weight in self.stack_weights.items():
            if not stack:
                continue
            seen: set = set()
            for frame in stack:
                if frame in seen:
                    continue  # recursion: count cumulative once per stack
                seen.add(frame)
                stat = stats.get(frame)
                if stat is None:
                    stat = stats[frame] = FunctionStat(*frame)
                stat.cum_weight += weight
            leaf = stack[-1]
            stats[leaf].self_weight += weight
        ranked = sorted(
            stats.values(),
            key=lambda s: (-s.self_weight, -s.cum_weight, s.name, s.file),
        )
        return ranked[:top]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe summary (phases + top functions, not raw stacks)."""
        return {
            "unit": self.unit,
            "mode": self.mode,
            "samples": self.samples,
            "total_weight": self.total_weight,
            "phases": {
                phase: weight
                for phase, weight in sorted(self.by_phase().items())
            },
            "hot_functions": [
                {
                    "name": stat.name,
                    "file": stat.file,
                    "line": stat.line,
                    "self": stat.self_weight,
                    "cum": stat.cum_weight,
                }
                for stat in self.hot_functions()
            ],
        }


def _supports_signal_mode() -> bool:
    """Signal sampling needs setitimer and the main thread."""
    return (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )


class ProfilerError(RuntimeError):
    """Raised on invalid profiler configuration or nested sessions."""


class WallProfiler:
    """Low-overhead statistical profiler with a deterministic fallback.

    Use as a context manager::

        profiler = WallProfiler(tracer=heaven.tracer)
        with profiler:
            workload()
        profile = profiler.profile

    Args:
        tracer: span tracer whose innermost active span names the pipeline
            phase of each sample (optional; samples fall back to frame-name
            attribution and ``other``).
        mode: ``"signal"``, ``"deterministic"`` or ``"auto"`` (signal when
            available, else deterministic).
        interval_s: sampling interval of signal mode.
        tick_every: deterministic mode records every N-th call event.
        max_depth: stack frames kept per sample (innermost wins truncation).
    """

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        mode: str = "auto",
        interval_s: float = 0.005,
        tick_every: int = 64,
        max_depth: int = 64,
    ) -> None:
        if mode not in ("auto", "signal", "deterministic"):
            raise ProfilerError(f"unknown profiler mode {mode!r}")
        if interval_s <= 0:
            raise ProfilerError("interval_s must be positive")
        if tick_every < 1:
            raise ProfilerError("tick_every must be >= 1")
        self.tracer = tracer
        self.requested_mode = mode
        self.interval_s = interval_s
        self.tick_every = tick_every
        self.max_depth = max_depth
        self.profile: Optional[Profile] = None
        self._active = False
        self._mode = ""
        self._ticks = 0
        self._previous_handler: Any = None
        self._previous_profile_hook: Any = None

    # -- lifecycle -----------------------------------------------------------

    @property
    def mode(self) -> str:
        """The capture mode actually used (resolved from ``auto``)."""
        if self._mode:
            return self._mode
        if self.requested_mode == "auto":
            return "signal" if _supports_signal_mode() else "deterministic"
        return self.requested_mode

    def start(self) -> None:
        if self._active:
            raise ProfilerError("profiler already running")
        mode = self.mode
        if mode == "signal" and not _supports_signal_mode():
            raise ProfilerError(
                "signal mode needs setitimer and the main thread"
            )
        self._mode = mode
        unit = "seconds" if mode == "signal" else "ticks"
        self.profile = Profile(
            unit, mode, self.interval_s if mode == "signal" else 0.0
        )
        self._ticks = 0
        self._active = True
        if mode == "signal":
            self._previous_handler = signal.signal(
                signal.SIGALRM, self._on_signal
            )
            signal.setitimer(signal.ITIMER_REAL, self.interval_s, self.interval_s)
        else:
            self._previous_profile_hook = sys.getprofile()
            sys.setprofile(self._on_profile_event)

    def stop(self) -> Profile:
        if not self._active:
            raise ProfilerError("profiler not running")
        if self._mode == "signal":
            signal.setitimer(signal.ITIMER_REAL, 0.0, 0.0)
            signal.signal(signal.SIGALRM, self._previous_handler)
            self._previous_handler = None
        else:
            sys.setprofile(self._previous_profile_hook)
            self._previous_profile_hook = None
        self._active = False
        self._mode = ""
        assert self.profile is not None
        return self.profile

    def __enter__(self) -> "WallProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- capture -------------------------------------------------------------

    def _on_signal(self, _signum: int, frame: Any) -> None:
        try:
            self._record(frame, self.interval_s)
        except Exception:  # pragma: no cover - a handler must never raise
            pass

    def _on_profile_event(self, frame: Any, event: str, _arg: Any) -> None:
        if event not in ("call", "c_call"):
            return
        self._ticks += 1
        if self._ticks % self.tick_every:
            return
        self._record(frame, 1.0)

    def _record(self, frame: Any, weight: float) -> None:
        stack: List[FrameKey] = []
        phase: Optional[str] = None
        depth = 0
        while frame is not None and depth < self.max_depth:
            code = frame.f_code
            if phase is None:
                # Innermost frame-name override wins (decode kernels).
                phase = FRAME_PHASES.get(code.co_name)
            stack.append((code.co_name, code.co_filename, code.co_firstlineno))
            frame = frame.f_back
            depth += 1
        if phase is None and self.tracer is not None:
            current = self.tracer.current
            if current is not None:
                phase = phase_of_span(current.name)
        stack.reverse()  # root-first
        assert self.profile is not None
        self.profile.record(tuple(stack), phase or "other", weight)


def profile_call(
    thunk: Callable[[], Any],
    tracer: Optional[Tracer] = None,
    mode: str = "auto",
    **kwargs: Any,
) -> Tuple[Any, Profile]:
    """Run *thunk* under a fresh :class:`WallProfiler`; returns (result, profile)."""
    profiler = WallProfiler(tracer=tracer, mode=mode, **kwargs)
    with profiler:
        result = thunk()
    assert profiler.profile is not None
    return result, profiler.profile


# -- divergence: host time vs virtual time ------------------------------------


@dataclass
class Divergence:
    """Host-vs-virtual cost of all spans of one kind."""

    kind: str
    spans: int = 0
    wall_seconds: float = 0.0
    virtual_seconds: float = 0.0
    #: phase the kind belongs to, for grouping next to profiler output
    phase: str = ""

    @property
    def host_us_per_virtual_second(self) -> Optional[float]:
        """Host µs paid per simulated second; None when no virtual time
        elapsed inside this kind (pure-software spans)."""
        if self.virtual_seconds <= 0:
            return None
        return self.wall_seconds * 1e6 / self.virtual_seconds


def divergence_by_kind(roots: Sequence[Span]) -> Dict[str, Divergence]:
    """Per-span-kind host/virtual totals over a span forest.

    Sums include descendants of each span (a kind's wall time is what the
    host paid while that operation ran), so comparing kinds at different
    depths double-counts by design — the metric is per kind, not a
    partition of total wall time.
    """
    out: Dict[str, Divergence] = {}
    for root in roots:
        for span in root.walk():
            entry = out.get(span.name)
            if entry is None:
                entry = out[span.name] = Divergence(
                    kind=span.name, phase=phase_of_span(span.name)
                )
            entry.spans += 1
            entry.wall_seconds += span.wall_elapsed
            entry.virtual_seconds += span.virtual_elapsed
    return out


def render_divergence(roots: Sequence[Span]) -> str:
    """Table of host-µs-per-virtual-second per span kind (sorted by kind)."""
    from ..bench import ResultTable

    table = ResultTable(
        "Host time vs virtual time by span kind",
        ["span kind", "phase", "spans", "wall [ms]", "virtual [s]",
         "host µs / virtual s"],
    )
    divergence = divergence_by_kind(roots)
    for kind in sorted(divergence):
        entry = divergence[kind]
        ratio = entry.host_us_per_virtual_second
        table.add(
            entry.kind,
            entry.phase,
            entry.spans,
            entry.wall_seconds * 1000.0,
            entry.virtual_seconds,
            "n/a (no virtual time)" if ratio is None else f"{ratio:.1f}",
        )
    return table.render()
