"""The :class:`Observability` facade: one tracer + one metrics registry.

A :class:`~repro.core.heaven.Heaven` instance owns one of these.  Disabled
(the default) it is inert: the tracer hands out no-op spans, no instruments
are installed, nothing is retained — simulated cost numbers and benchmark
output are bit-for-bit identical with or without it.  Enabled (constructor
knob ``Heaven(observability=True)``, a pre-built instance, or the
``REPRO_TRACE=1`` environment variable) it records span trees and installs
the instrument catalog.
"""

from __future__ import annotations

import os
from typing import Optional

from ..tertiary.clock import SimClock
from .metrics import MetricsRegistry
from .trace import Tracer

#: environment variable that switches tracing on for any new Heaven
TRACE_ENV_VAR = "REPRO_TRACE"


def trace_enabled_by_env() -> bool:
    """True when ``REPRO_TRACE`` is set to a non-empty, non-"0" value."""
    return os.environ.get(TRACE_ENV_VAR, "").strip() not in ("", "0", "false")


class Observability:
    """Bundle of tracer and metrics registry sharing one virtual clock."""

    def __init__(
        self,
        enabled: bool = False,
        clock: Optional[SimClock] = None,
        max_finished_spans: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.enabled = enabled
        self.tracer = Tracer(
            clock=clock, enabled=enabled, max_finished=max_finished_spans
        )
        self.metrics = registry if registry is not None else MetricsRegistry()

    @classmethod
    def from_env(cls, clock: Optional[SimClock] = None) -> "Observability":
        """Observability whose enablement follows ``REPRO_TRACE``."""
        return cls(enabled=trace_enabled_by_env(), clock=clock)

    def bind_clock(self, clock: SimClock) -> None:
        """Attach the simulated clock spans should measure against."""
        self.tracer.bind_clock(clock)

    def enable(self) -> None:
        self.enabled = True
        self.tracer.enabled = True

    def disable(self) -> None:
        self.enabled = False
        self.tracer.enabled = False
