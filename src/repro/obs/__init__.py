"""Unified observability layer for the storage hierarchy.

Three pieces, designed to cost nothing when switched off:

* :mod:`repro.obs.trace` — a span tracer carrying both host wall-clock and
  simulated virtual time, with context propagation; the simulator's
  :class:`~repro.tertiary.clock.EventLog` is its sink, so every charged
  virtual second is attributable to exactly one span window.
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket histograms
  behind a named registry, mostly fed at collect time from the statistics
  the devices already keep (:mod:`repro.obs.instruments` is the catalog).
* :mod:`repro.obs.exporters` — JSONL trace dump, Prometheus-style text
  exposition, and ASCII span-tree/flamegraph rendering.

Enable per instance (``Heaven(observability=True)``) or globally via the
``REPRO_TRACE=1`` environment variable; explore interactively with
``python -m repro trace`` and ``python -m repro stats``.
"""

from .exporters import (
    KIND_PHASES,
    leaf_totals,
    phase_of,
    prometheus_text,
    render_flamegraph,
    render_hot_functions,
    render_leaf_table,
    render_phase_breakdown,
    render_profile_flamegraph,
    render_span_tree,
    spans_to_jsonl,
)
from .instruments import HeavenInstruments
from .metrics import (
    BYTE_BUCKETS,
    TIME_BUCKETS_S,
    WALL_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    MetricsError,
    MetricsRegistry,
)
from .observability import Observability, TRACE_ENV_VAR, trace_enabled_by_env
from .profiler import (
    FRAME_PHASES,
    PHASES,
    SPAN_PHASES,
    Divergence,
    Profile,
    ProfilerError,
    WallProfiler,
    divergence_by_kind,
    phase_of_span,
    profile_call,
    render_divergence,
)
from .reconcile import (
    REPORT_FIELD_METRICS,
    TIME_TOLERANCE_S,
    event_window_bytes,
    metrics_delta,
    metrics_snapshot,
    reconcile_report,
    reconcile_shared_tape_bytes,
    reconcile_tape_bytes,
)
from .trace import NOOP_SPAN, Span, Tracer, null_tracer

__all__ = [
    "BYTE_BUCKETS",
    "Counter",
    "Divergence",
    "FRAME_PHASES",
    "Gauge",
    "HeavenInstruments",
    "Histogram",
    "Instrument",
    "KIND_PHASES",
    "MetricsError",
    "MetricsRegistry",
    "NOOP_SPAN",
    "Observability",
    "PHASES",
    "Profile",
    "ProfilerError",
    "REPORT_FIELD_METRICS",
    "SPAN_PHASES",
    "Span",
    "TIME_TOLERANCE_S",
    "TIME_BUCKETS_S",
    "TRACE_ENV_VAR",
    "Tracer",
    "WALL_TIME_BUCKETS_S",
    "WallProfiler",
    "divergence_by_kind",
    "event_window_bytes",
    "leaf_totals",
    "metrics_delta",
    "metrics_snapshot",
    "null_tracer",
    "phase_of",
    "phase_of_span",
    "profile_call",
    "reconcile_report",
    "reconcile_shared_tape_bytes",
    "reconcile_tape_bytes",
    "prometheus_text",
    "render_divergence",
    "render_flamegraph",
    "render_hot_functions",
    "render_leaf_table",
    "render_phase_breakdown",
    "render_profile_flamegraph",
    "render_span_tree",
    "spans_to_jsonl",
    "trace_enabled_by_env",
]
