"""Named instrument catalog for the storage hierarchy.

One place defines every metric the layers expose, so dashboards, tests and
docs agree on names.  Most instruments are *collected*: a callback reads
the counters the devices already maintain (drive/robot stats, cache stats,
WAL records) at snapshot time, keeping the simulated hot paths untouched.
Per-query histograms are the exception — HEAVEN observes them directly
when observability is enabled.

Catalog (all names prefixed ``repro_``):

=============================== ======= ====================================
name                            kind    meaning
=============================== ======= ====================================
virtual_seconds                 gauge   SimClock.now
eventlog_events_total           counter events ever appended to the clock log
eventlog_dropped_total          counter events discarded by bounded mode
tape_exchanges_total            counter robot media exchanges (mounts)
tape_seeks_total                counter drive positioning operations
tape_bytes_read_total           counter bytes streamed off media
tape_bytes_written_total        counter bytes streamed onto media
tape_time_seconds_total         counter seconds per phase {phase=exchange|seek|transfer}
tape_bytes_staged_total         counter bytes landed in the disk cache from tape
drive_busy_seconds              gauge   per-drive device time {drive} (load+seek+transfer)
robot_wait_seconds              gauge   seconds drives waited for the shared arm
parallel_speedup                gauge   executed speedup of parallel staging (device work / makespan)
cache_lookups_total             counter cache probes {tier=memory|disk}
cache_hits_total                counter cache hits {tier}
cache_evictions_total           counter cache evictions {tier}
cache_used_bytes                gauge   bytes resident {tier}
cache_pins_total                counter disk-cache pin references taken
cache_pinned_bytes              gauge   disk-cache bytes currently pinned
cache_pin_evictions_blocked_total counter victim nominations skipped (pinned)
restages_total                  counter per-tile restage fallbacks (thrash)
staging_waves_total             counter capacity-sized staging admission waves
segments_staged_total           counter super-tile segment runs staged from tape
read_tiles_needed_total         counter tiles demanded by reported reads
read_bytes_useful_total         counter bytes returned to read callers
assembly_bytes_copied_total     counter redundant bytes copied on the decode/assembly path (0 = zero-copy)
wal_records_total               counter WAL appends
wal_syncs_total                 counter WAL commit/checkpoint syncs
txns_total                      counter transactions {outcome=committed|rolled_back}
queries_total                   counter RasQL statements executed {kind=select|mutation}
tiles_materialised_total        counter decoded tile payloads cached in memory
super_tiles_built_total         counter super-tiles created by archive()
objects_archived                gauge   objects currently on tertiary storage
faults_injected_total           counter injected hardware faults {site=mount|robot|media|stall|hsm}
fault_penalty_seconds_total     counter virtual seconds charged by injected faults
retries_total                   counter recovery retries (library + HSM staging)
retries_exhausted_total         counter operations that spent the whole retry budget
drive_failovers_total           counter mounts re-targeted to another drive after a fault
backoff_seconds_total           counter virtual seconds spent in retry backoff
degraded_reads_total            counter offline reads served entirely from caches
admission_sweeps_total          counter fused cross-query sweeps dispatched
admission_fusion_saved_bytes_total counter tape bytes cross-query fusion avoided
admission_fusion_saved_exchanges_total counter media exchanges fusion avoided
admission_holdback_seconds_total counter virtual seconds in hold-back windows
admission_queue_depth           gauge   pending staging demands at dispatch time
admission_wait_virtual_seconds  histo   per-demand virtual wait (enqueue->satisfied)
read_virtual_seconds            histo   per-read virtual latency
read_tape_bytes                 histo   per-read bytes staged from tape
read_wall_seconds               histo   per-read host wall latency
assemble_wall_seconds           histo   per-assembly host wall latency
stage_wall_seconds              histo   per-staging-batch host wall latency
span_host_us_per_virtual_second gauge   host µs per virtual second {kind}
metrics_registered              gauge   instruments in this registry
=============================== ======= ====================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .metrics import (
    BYTE_BUCKETS,
    WALL_TIME_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profiler import divergence_by_kind

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..core.heaven import Heaven


class HeavenInstruments:
    """Instrument set bound to one :class:`~repro.core.heaven.Heaven`.

    Construction registers every catalog instrument on *registry* and a
    collector that refreshes the collected ones from live layer stats.
    """

    def __init__(self, registry: MetricsRegistry, heaven: "Heaven") -> None:
        self.registry = registry
        self._heaven = heaven

        self.virtual_seconds: Gauge = registry.gauge(
            "repro_virtual_seconds", "current simulated time", "s"
        )
        self.eventlog_events: Counter = registry.counter(
            "repro_eventlog_events_total", "events appended to the clock log"
        )
        self.eventlog_dropped: Counter = registry.counter(
            "repro_eventlog_dropped_total",
            "events discarded by the bounded event log",
        )
        self.tape_exchanges: Counter = registry.counter(
            "repro_tape_exchanges_total", "robot media exchanges"
        )
        self.tape_seeks: Counter = registry.counter(
            "repro_tape_seeks_total", "drive positioning operations"
        )
        self.tape_bytes_read: Counter = registry.counter(
            "repro_tape_bytes_read_total", "bytes streamed off media", "B"
        )
        self.tape_bytes_written: Counter = registry.counter(
            "repro_tape_bytes_written_total", "bytes streamed onto media", "B"
        )
        self.tape_time: Counter = registry.counter(
            "repro_tape_time_seconds_total",
            "virtual seconds per tertiary cost phase",
            "s",
        )
        self.tape_bytes_staged: Counter = registry.counter(
            "repro_tape_bytes_staged_total",
            "bytes landed in the disk cache from tape",
            "B",
        )
        self.drive_busy_seconds: Gauge = registry.gauge(
            "repro_drive_busy_seconds",
            "per-drive device time (load + seek + transfer)",
            "s",
        )
        self.robot_wait_seconds: Gauge = registry.gauge(
            "repro_robot_wait_seconds",
            "seconds drives waited for the shared robot arm",
            "s",
        )
        self.parallel_speedup: Gauge = registry.gauge(
            "repro_parallel_speedup",
            "executed speedup of parallel staging (device work over makespan)",
        )
        self.cache_lookups: Counter = registry.counter(
            "repro_cache_lookups_total", "cache probes by tier"
        )
        self.cache_hits: Counter = registry.counter(
            "repro_cache_hits_total", "cache hits by tier"
        )
        self.cache_evictions: Counter = registry.counter(
            "repro_cache_evictions_total", "cache evictions by tier"
        )
        self.cache_used: Gauge = registry.gauge(
            "repro_cache_used_bytes", "bytes resident by tier", "B"
        )
        self.cache_pins: Counter = registry.counter(
            "repro_cache_pins_total",
            "disk-cache pin references taken by the staging pipeline",
        )
        self.cache_pinned_bytes: Gauge = registry.gauge(
            "repro_cache_pinned_bytes",
            "disk-cache bytes currently pinned (unevictable)",
            "B",
        )
        self.cache_pin_evictions_blocked: Counter = registry.counter(
            "repro_cache_pin_evictions_blocked_total",
            "eviction nominations skipped because the candidate was pinned",
        )
        self.restages: Counter = registry.counter(
            "repro_restages_total",
            "per-tile restage fallbacks after batch staging (thrash)",
        )
        self.staging_waves: Counter = registry.counter(
            "repro_staging_waves_total",
            "capacity-sized admission waves dispatched by batch staging",
        )
        self.segments_staged: Counter = registry.counter(
            "repro_segments_staged_total",
            "super-tile segment runs streamed from tape by batch staging",
        )
        self.read_tiles_needed: Counter = registry.counter(
            "repro_read_tiles_needed_total",
            "tiles demanded by reported reads",
        )
        self.read_bytes_useful: Counter = registry.counter(
            "repro_read_bytes_useful_total",
            "bytes returned to callers by reported reads",
            "B",
        )
        self.assembly_bytes_copied: Counter = registry.counter(
            "repro_assembly_bytes_copied_total",
            "redundant bytes copied on the decode/assembly path "
            "(the zero-copy pipeline keeps this at 0)",
            "B",
        )
        self.wal_records: Counter = registry.counter(
            "repro_wal_records_total", "write-ahead-log appends"
        )
        self.wal_syncs: Counter = registry.counter(
            "repro_wal_syncs_total", "WAL commit/checkpoint syncs"
        )
        self.txns: Counter = registry.counter(
            "repro_txns_total", "transactions by outcome"
        )
        self.queries: Counter = registry.counter(
            "repro_queries_total", "RasQL statements executed"
        )
        self.tiles_materialised: Counter = registry.counter(
            "repro_tiles_materialised_total",
            "decoded tile payloads cached in memory",
        )
        self.super_tiles_built: Counter = registry.counter(
            "repro_super_tiles_built_total", "super-tiles created by archive()"
        )
        self.objects_archived: Gauge = registry.gauge(
            "repro_objects_archived", "objects currently on tertiary storage"
        )
        self.faults_injected: Counter = registry.counter(
            "repro_faults_injected_total", "injected hardware faults by site"
        )
        self.fault_penalty_seconds: Counter = registry.counter(
            "repro_fault_penalty_seconds_total",
            "virtual seconds charged by injected faults",
            "s",
        )
        self.retries: Counter = registry.counter(
            "repro_retries_total", "fault-recovery retries"
        )
        self.retries_exhausted: Counter = registry.counter(
            "repro_retries_exhausted_total",
            "operations that spent the whole retry budget",
        )
        self.drive_failovers: Counter = registry.counter(
            "repro_drive_failovers_total",
            "mounts re-targeted to another drive after a fault",
        )
        self.backoff_seconds: Counter = registry.counter(
            "repro_backoff_seconds_total",
            "virtual seconds spent in retry backoff",
            "s",
        )
        self.degraded_reads: Counter = registry.counter(
            "repro_degraded_reads_total",
            "offline reads served entirely from caches",
        )
        self.admission_sweeps: Counter = registry.counter(
            "repro_admission_sweeps_total",
            "fused cross-query sweeps dispatched by the admission layer",
        )
        self.admission_fusion_saved_bytes: Counter = registry.counter(
            "repro_admission_fusion_saved_bytes_total",
            "tape bytes cross-query fusion avoided",
            "B",
        )
        self.admission_fusion_saved_exchanges: Counter = registry.counter(
            "repro_admission_fusion_saved_exchanges_total",
            "media exchanges cross-query fusion avoided",
        )
        self.admission_holdback_seconds: Counter = registry.counter(
            "repro_admission_holdback_seconds_total",
            "virtual seconds spent in anticipatory hold-back windows",
            "s",
        )
        self.admission_queue_depth: Gauge = registry.gauge(
            "repro_admission_queue_depth",
            "pending staging demands at the last dispatch decision",
        )
        self.admission_wait_virtual_seconds: Histogram = registry.histogram(
            "repro_admission_wait_virtual_seconds",
            "per-demand virtual wait from enqueue to satisfaction",
            "s",
        )
        self.read_virtual_seconds: Histogram = registry.histogram(
            "repro_read_virtual_seconds", "per-read virtual latency", "s"
        )
        self.read_tape_bytes: Histogram = registry.histogram(
            "repro_read_tape_bytes",
            "per-read bytes staged from tape",
            "B",
            boundaries=BYTE_BUCKETS,
        )
        self.read_wall_seconds: Histogram = registry.histogram(
            "repro_read_wall_seconds",
            "per-read host wall-clock latency",
            "s",
            boundaries=WALL_TIME_BUCKETS_S,
        )
        self.assemble_wall_seconds: Histogram = registry.histogram(
            "repro_assemble_wall_seconds",
            "per-assembly host wall-clock latency",
            "s",
            boundaries=WALL_TIME_BUCKETS_S,
        )
        self.stage_wall_seconds: Histogram = registry.histogram(
            "repro_stage_wall_seconds",
            "per-staging-batch host wall-clock latency",
            "s",
            boundaries=WALL_TIME_BUCKETS_S,
        )
        self.span_host_us_per_virtual_second: Gauge = registry.gauge(
            "repro_span_host_us_per_virtual_second",
            "host microseconds spent per simulated virtual second, by span kind",
        )
        self.metrics_registered: Gauge = registry.gauge(
            "repro_metrics_registered",
            "instruments registered on this metrics registry",
        )

        registry.register_collector(self.collect)

    def collect(self) -> None:
        """Refresh collected instruments from live layer statistics."""
        heaven = self._heaven
        log = heaven.clock.log
        self.virtual_seconds.set(heaven.clock.now)
        self.eventlog_events.set(log.total_appended)
        self.eventlog_dropped.set(log.dropped)

        library = heaven.library.stats()
        self.tape_exchanges.set(library.exchanges)
        self.tape_seeks.set(library.seeks)
        self.tape_bytes_read.set(library.bytes_read)
        self.tape_bytes_written.set(library.bytes_written)
        self.tape_time.set(library.time_exchanging_s, phase="exchange")
        self.tape_time.set(library.time_seeking_s, phase="seek")
        self.tape_time.set(library.time_transferring_s, phase="transfer")
        for drive in heaven.library.drives:
            self.drive_busy_seconds.set(
                drive.stats.busy_time_s, drive=drive.drive_id
            )
        self.robot_wait_seconds.set(library.time_robot_wait_s)
        self.parallel_speedup.set(
            heaven.parallel_device_seconds / heaven.parallel_makespan_seconds
            if heaven.parallel_makespan_seconds > 0
            else 1.0
        )

        disk = heaven.disk_cache.stats
        memory = heaven.memory_cache.stats
        self.tape_bytes_staged.set(disk.bytes_inserted)
        self.cache_lookups.set(disk.lookups, tier="disk")
        self.cache_lookups.set(memory.lookups, tier="memory")
        self.cache_hits.set(disk.hits, tier="disk")
        self.cache_hits.set(memory.hits, tier="memory")
        self.cache_evictions.set(disk.evictions, tier="disk")
        self.cache_evictions.set(memory.evictions, tier="memory")
        self.cache_used.set(heaven.disk_cache.used_bytes, tier="disk")
        self.cache_used.set(heaven.memory_cache.used_bytes, tier="memory")
        self.cache_pins.set(disk.pins)
        self.cache_pinned_bytes.set(heaven.disk_cache.pinned_bytes)
        self.cache_pin_evictions_blocked.set(disk.pin_evictions_blocked)
        self.restages.set(heaven.restages)
        self.staging_waves.set(heaven.staging_waves_admitted)
        self.segments_staged.set(heaven.segments_staged)
        self.read_tiles_needed.set(heaven.read_tiles_needed)
        self.read_bytes_useful.set(heaven.read_bytes_useful)
        self.assembly_bytes_copied.set(heaven.assembly_bytes_copied)
        self.tiles_materialised.set(memory.insertions)
        self.admission_sweeps.set(heaven.admission_sweeps)
        self.admission_fusion_saved_bytes.set(
            heaven.admission_fusion_saved_bytes
        )
        self.admission_fusion_saved_exchanges.set(
            heaven.admission_fusion_saved_exchanges
        )
        self.admission_holdback_seconds.set(heaven.admission_holdback_seconds)

        wal = heaven.db.wal
        self.wal_records.set(wal.appends)
        self.wal_syncs.set(wal.syncs)
        self.txns.set(heaven.db.txns_committed, outcome="committed")
        self.txns.set(heaven.db.txns_rolled_back, outcome="rolled_back")

        executor = heaven.executor
        self.queries.set(executor.queries_run, kind="select")
        self.queries.set(executor.statements_run, kind="mutation")

        self.super_tiles_built.set(heaven.super_tiles_built)
        self.objects_archived.set(len(heaven._archived))

        faults = heaven.library.faults.stats
        for site, injected in faults.injected.items():
            self.faults_injected.set(injected, site=site)
        self.fault_penalty_seconds.set(faults.penalty_seconds)
        recovery = heaven.library.recovery
        self.retries.set(recovery.retries)
        self.retries_exhausted.set(recovery.exhausted)
        self.drive_failovers.set(recovery.failovers)
        self.backoff_seconds.set(recovery.backoff_seconds)
        self.degraded_reads.set(heaven.degraded_reads_served)

        # Host-vs-virtual divergence over the retained span forest: kinds
        # that never accumulated virtual time (pure-software spans) are
        # skipped — their ratio is undefined, not zero.
        for kind, entry in sorted(
            divergence_by_kind(heaven.tracer.roots).items()
        ):
            ratio = entry.host_us_per_virtual_second
            if ratio is not None:
                self.span_host_us_per_virtual_second.set(ratio, kind=kind)
        self.metrics_registered.set(len(self.registry))

    def observe_read(
        self,
        virtual_seconds: float,
        tape_bytes: int,
        wall_seconds: Optional[float] = None,
    ) -> None:
        """Record one hierarchical read in the per-query histograms."""
        self.read_virtual_seconds.observe(virtual_seconds)
        self.read_tape_bytes.observe(float(tape_bytes))
        if wall_seconds is not None:
            self.read_wall_seconds.observe(wall_seconds)

    def observe_admission_wait(self, wait_seconds: float) -> None:
        """Record one staging demand's enqueue-to-satisfaction wait."""
        self.admission_wait_virtual_seconds.observe(wait_seconds)

    def observe_admission_queue_depth(self, depth: int) -> None:
        """Record the shared staging queue depth at a dispatch decision."""
        self.admission_queue_depth.set(float(depth))

    def observe_assemble_wall(self, wall_seconds: float) -> None:
        """Record one region/batch assembly's host wall latency."""
        self.assemble_wall_seconds.observe(wall_seconds)

    def observe_stage_wall(self, wall_seconds: float) -> None:
        """Record one staging batch's host wall latency."""
        self.stage_wall_seconds.observe(wall_seconds)
