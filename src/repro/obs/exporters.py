"""Exporters: JSONL trace dumps, Prometheus text, ASCII flamegraphs.

All output is deterministic for a given span tree / registry state (keys
sorted, floats formatted with fixed precision) so tests can assert on it
and diffs between runs stay readable.  Wall-clock fields are the only
nondeterministic values; the JSONL exporter can omit them for stable
golden files.
"""

from __future__ import annotations

import json
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..bench.chart import BAR, bar_chart
from ..tertiary.clock import KindTotals
from .metrics import MetricsRegistry
from .trace import Span

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from .profiler import Profile

#: display grouping of raw event kinds into the paper's cost phases
KIND_PHASES: Dict[str, str] = {
    "exchange": "mount",
    "load": "mount",
    "seek": "seek",
    "rewind": "seek",
    "settle": "seek",
    "read": "transfer",
    "write": "transfer",
    "disk-read": "disk",
    "disk-write": "disk",
    "pipeline-stall": "stall",
}


def phase_of(kind: str) -> str:
    """Cost phase a raw event kind belongs to (``other`` if unknown)."""
    return KIND_PHASES.get(kind, "other")


# -- trace: JSONL -------------------------------------------------------------


def spans_to_jsonl(
    roots: Sequence[Span], include_wall: bool = True
) -> str:
    """One JSON object per span (depth-first), newline separated."""
    lines: List[str] = []
    for root in roots:
        for span in root.walk():
            record = span.to_dict()
            if not include_wall:
                record.pop("wall_elapsed_ms", None)
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines)


# -- metrics: Prometheus text exposition ---------------------------------------


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Text exposition format: ``# HELP`` / ``# TYPE`` / samples."""
    lines: List[str] = []
    for instrument in registry.collect():
        if instrument.description:
            lines.append(f"# HELP {instrument.name} {instrument.description}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for series, labels, value in instrument.samples():
            lines.append(f"{series}{_render_labels(labels)} {_render_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- trace: ASCII span tree and virtual-time flamegraph -------------------------


def _phase_totals(aggregate: Dict[str, KindTotals]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for kind, totals in aggregate.items():
        phase = phase_of(kind)
        out[phase] = out.get(phase, 0.0) + totals.seconds
    return out


def render_span_tree(
    roots: Sequence[Span], include_wall: bool = True
) -> str:
    """Indented tree: one line per span with virtual (and wall) elapsed.

    Each line also shows the span's *self* cost phases — virtual seconds of
    the simulator events it charged directly, excluding child spans.
    """
    lines: List[str] = []
    for root in roots:
        _render_span(root, 0, lines, include_wall)
    return "\n".join(lines)


def _render_span(
    span: Span, depth: int, lines: List[str], include_wall: bool
) -> None:
    indent = "  " * depth
    parts = [f"{indent}{span.name}", f"virtual={span.virtual_elapsed:.3f}s"]
    if include_wall:
        parts.append(f"wall={span.wall_elapsed * 1000.0:.1f}ms")
    phases = _phase_totals(span.self_aggregate())
    self_text = " ".join(
        f"{phase}={seconds:.3f}s"
        for phase, seconds in sorted(phases.items())
        if seconds > 0
    )
    if self_text:
        parts.append(f"[{self_text}]")
    if span.attributes:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        parts.append(f"({attrs})")
    lines.append("  ".join(parts))
    for child in span.children:
        _render_span(child, depth + 1, lines, include_wall)


def render_flamegraph(
    roots: Sequence[Span], width: int = 48, clock: str = "virtual"
) -> str:
    """Sideways ASCII flamegraph scaled by one of the two span clocks.

    Every span gets one row; bar length is proportional to its elapsed
    time relative to the widest root, indentation mirrors depth.  With
    ``clock="virtual"`` (default) bars scale by simulated time; with
    ``clock="wall"`` by host wall time — the same tree, re-weighted, so
    modelled device cost and Python cost can be compared side by side.
    """
    if clock not in ("virtual", "wall"):
        raise ValueError(f"unknown flamegraph clock {clock!r}")
    rows: List[Tuple[int, Span]] = []

    def visit(span: Span, depth: int) -> None:
        rows.append((depth, span))
        for child in span.children:
            visit(child, depth + 1)

    def elapsed(span: Span) -> float:
        return span.virtual_elapsed if clock == "virtual" else span.wall_elapsed

    def fmt(seconds: float) -> str:
        if clock == "virtual":
            return f"{seconds:.3f}s"
        return f"{seconds * 1000.0:.2f}ms"

    for root in roots:
        visit(root, 0)
    if not rows:
        return "(no spans recorded)"
    peak = max(elapsed(span) for _depth, span in rows)
    name_width = max(len("  " * d + s.name) for d, s in rows)
    lines = []
    for depth, span in rows:
        label = ("  " * depth + span.name).ljust(name_width)
        length = 0 if peak <= 0 else int(round(width * elapsed(span) / peak))
        bar = BAR * max(length, 1 if elapsed(span) > 0 else 0)
        lines.append(f"{label} | {bar} {fmt(elapsed(span))}")
    return "\n".join(lines)


# -- profiler: wall-time stack flamegraph and hot-function tables ---------------


def _weight_format(profile: "Profile") -> "Callable[[float], str]":
    if profile.unit == "seconds":
        return lambda w: f"{w * 1000.0:.1f}ms"
    return lambda w: f"{w:.0f} ticks"


def render_profile_flamegraph(
    profile: "Profile", width: int = 48, max_rows: int = 40
) -> str:
    """ASCII flamegraph of a profiler session's weighted stack trie.

    Rows are stack-trie nodes (function names, root-first indentation),
    bars proportional to cumulative sample weight; sub-trees below
    ``max_rows`` are elided heaviest-first so the output stays scannable.
    """
    if not profile.stack_weights:
        return "(no profile samples recorded)"

    class _Node:
        __slots__ = ("name", "weight", "children")

        def __init__(self, name: str) -> None:
            self.name = name
            self.weight = 0.0
            self.children: Dict[str, "_Node"] = {}

    root = _Node("all")
    for stack, weight in profile.stack_weights.items():
        root.weight += weight
        node = root
        for frame_name, _file, _line in stack:
            child = node.children.get(frame_name)
            if child is None:
                child = node.children[frame_name] = _Node(frame_name)
            child.weight += weight
            node = child

    rows: List[Tuple[int, _Node]] = []

    def visit(node: _Node, depth: int) -> None:
        rows.append((depth, node))
        for child in sorted(
            node.children.values(), key=lambda n: (-n.weight, n.name)
        ):
            visit(child, depth + 1)

    visit(root, 0)
    rows = rows[:max_rows]
    fmt = _weight_format(profile)
    peak = root.weight
    name_width = max(len("  " * d + n.name) for d, n in rows)
    lines = []
    for depth, node in rows:
        label = ("  " * depth + node.name).ljust(name_width)
        length = 0 if peak <= 0 else int(round(width * node.weight / peak))
        bar = BAR * max(length, 1 if node.weight > 0 else 0)
        lines.append(f"{label} | {bar} {fmt(node.weight)}")
    if len(profile.stack_weights) and len(rows) == max_rows:
        lines.append(f"(truncated to the {max_rows} heaviest rows)")
    return "\n".join(lines)


def render_hot_functions(profile: "Profile", top: int = 10) -> str:
    """Bar chart of the profiler's top-N functions by self weight."""
    ranked = profile.hot_functions(top)
    if not ranked:
        return "(no profile samples recorded)"
    unit = "ms" if profile.unit == "seconds" else "ticks"
    scale = 1000.0 if profile.unit == "seconds" else 1.0
    labels = [stat.label for stat in ranked]
    values = [round(stat.self_weight * scale, 3) for stat in ranked]
    return bar_chart(
        f"top {len(ranked)} functions by self {profile.unit}",
        labels,
        values,
        unit=unit,
    )


def render_phase_breakdown(profile: "Profile") -> str:
    """Bar chart of host time per pipeline phase."""
    phases = profile.by_phase()
    total = sum(phases.values())
    if total <= 0:
        return "(no profile samples recorded)"
    unit = "ms" if profile.unit == "seconds" else "ticks"
    scale = 1000.0 if profile.unit == "seconds" else 1.0
    ranked = sorted(phases.items(), key=lambda item: (-item[1], item[0]))
    labels = [phase for phase, _weight in ranked]
    values = [round(weight * scale, 3) for _phase, weight in ranked]
    return bar_chart(
        f"host {profile.unit} by pipeline phase", labels, values, unit=unit
    )


def leaf_totals(roots: Sequence[Span]) -> Dict[str, KindTotals]:
    """Per-kind totals of every simulator event inside the given roots.

    Because all virtual time is charged through the clock's event log, the
    summed seconds equal the virtual time that elapsed inside the roots —
    the invariant ``python -m repro trace`` prints and CI asserts.
    """
    out: Dict[str, KindTotals] = {}
    for root in roots:
        for kind, totals in root.aggregate().items():
            mine = out.get(kind)
            if mine is None:
                mine = out[kind] = KindTotals()
            mine.count += totals.count
            mine.seconds += totals.seconds
            mine.bytes += totals.bytes
    return out


def render_leaf_table(roots: Sequence[Span], width: int = 48) -> str:
    """Bar chart of virtual seconds per leaf event kind (sorted, descending)."""
    totals = leaf_totals(roots)
    if not totals:
        return "(no simulator events recorded)"
    ranked = sorted(totals.items(), key=lambda item: -item[1].seconds)
    labels = [f"{kind} ({phase_of(kind)})" for kind, _t in ranked]
    values = [round(t.seconds, 3) for _k, t in ranked]
    return bar_chart(
        "virtual time by leaf event kind", labels, values, width=width, unit="s"
    )
