"""Exporters: JSONL trace dumps, Prometheus text, ASCII flamegraphs.

All output is deterministic for a given span tree / registry state (keys
sorted, floats formatted with fixed precision) so tests can assert on it
and diffs between runs stay readable.  Wall-clock fields are the only
nondeterministic values; the JSONL exporter can omit them for stable
golden files.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..bench.chart import BAR, bar_chart
from ..tertiary.clock import KindTotals
from .metrics import MetricsRegistry
from .trace import Span

#: display grouping of raw event kinds into the paper's cost phases
KIND_PHASES: Dict[str, str] = {
    "exchange": "mount",
    "load": "mount",
    "seek": "seek",
    "rewind": "seek",
    "settle": "seek",
    "read": "transfer",
    "write": "transfer",
    "disk-read": "disk",
    "disk-write": "disk",
    "pipeline-stall": "stall",
}


def phase_of(kind: str) -> str:
    """Cost phase a raw event kind belongs to (``other`` if unknown)."""
    return KIND_PHASES.get(kind, "other")


# -- trace: JSONL -------------------------------------------------------------


def spans_to_jsonl(
    roots: Sequence[Span], include_wall: bool = True
) -> str:
    """One JSON object per span (depth-first), newline separated."""
    lines: List[str] = []
    for root in roots:
        for span in root.walk():
            record = span.to_dict()
            if not include_wall:
                record.pop("wall_elapsed_ms", None)
            lines.append(json.dumps(record, sort_keys=True))
    return "\n".join(lines)


# -- metrics: Prometheus text exposition ---------------------------------------


def _render_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Text exposition format: ``# HELP`` / ``# TYPE`` / samples."""
    lines: List[str] = []
    for instrument in registry.collect():
        if instrument.description:
            lines.append(f"# HELP {instrument.name} {instrument.description}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        for series, labels, value in instrument.samples():
            lines.append(f"{series}{_render_labels(labels)} {_render_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- trace: ASCII span tree and virtual-time flamegraph -------------------------


def _phase_totals(aggregate: Dict[str, KindTotals]) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for kind, totals in aggregate.items():
        phase = phase_of(kind)
        out[phase] = out.get(phase, 0.0) + totals.seconds
    return out


def render_span_tree(
    roots: Sequence[Span], include_wall: bool = True
) -> str:
    """Indented tree: one line per span with virtual (and wall) elapsed.

    Each line also shows the span's *self* cost phases — virtual seconds of
    the simulator events it charged directly, excluding child spans.
    """
    lines: List[str] = []
    for root in roots:
        _render_span(root, 0, lines, include_wall)
    return "\n".join(lines)


def _render_span(
    span: Span, depth: int, lines: List[str], include_wall: bool
) -> None:
    indent = "  " * depth
    parts = [f"{indent}{span.name}", f"virtual={span.virtual_elapsed:.3f}s"]
    if include_wall:
        parts.append(f"wall={span.wall_elapsed * 1000.0:.1f}ms")
    phases = _phase_totals(span.self_aggregate())
    self_text = " ".join(
        f"{phase}={seconds:.3f}s"
        for phase, seconds in sorted(phases.items())
        if seconds > 0
    )
    if self_text:
        parts.append(f"[{self_text}]")
    if span.attributes:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        parts.append(f"({attrs})")
    lines.append("  ".join(parts))
    for child in span.children:
        _render_span(child, depth + 1, lines, include_wall)


def render_flamegraph(
    roots: Sequence[Span], width: int = 48
) -> str:
    """Sideways ASCII flamegraph scaled by virtual time.

    Every span gets one row; bar length is proportional to its virtual
    elapsed time relative to the widest root, indentation mirrors depth.
    """
    rows: List[Tuple[int, Span]] = []

    def visit(span: Span, depth: int) -> None:
        rows.append((depth, span))
        for child in span.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    if not rows:
        return "(no spans recorded)"
    peak = max(span.virtual_elapsed for _depth, span in rows)
    name_width = max(len("  " * d + s.name) for d, s in rows)
    lines = []
    for depth, span in rows:
        label = ("  " * depth + span.name).ljust(name_width)
        length = 0 if peak <= 0 else int(round(width * span.virtual_elapsed / peak))
        bar = BAR * max(length, 1 if span.virtual_elapsed > 0 else 0)
        lines.append(f"{label} | {bar} {span.virtual_elapsed:.3f}s")
    return "\n".join(lines)


def leaf_totals(roots: Sequence[Span]) -> Dict[str, KindTotals]:
    """Per-kind totals of every simulator event inside the given roots.

    Because all virtual time is charged through the clock's event log, the
    summed seconds equal the virtual time that elapsed inside the roots —
    the invariant ``python -m repro trace`` prints and CI asserts.
    """
    out: Dict[str, KindTotals] = {}
    for root in roots:
        for kind, totals in root.aggregate().items():
            mine = out.get(kind)
            if mine is None:
                mine = out[kind] = KindTotals()
            mine.count += totals.count
            mine.seconds += totals.seconds
            mine.bytes += totals.bytes
    return out


def render_leaf_table(roots: Sequence[Span], width: int = 48) -> str:
    """Bar chart of virtual seconds per leaf event kind (sorted, descending)."""
    totals = leaf_totals(roots)
    if not totals:
        return "(no simulator events recorded)"
    ranked = sorted(totals.items(), key=lambda item: -item[1].seconds)
    labels = [f"{kind} ({phase_of(kind)})" for kind, _t in ranked]
    values = [round(t.seconds, 3) for _k, t in ranked]
    return bar_chart(
        "virtual time by leaf event kind", labels, values, width=width, unit="s"
    )
