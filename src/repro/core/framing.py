"""Object framing: non-hypercube range queries (Kapitel 3.7).

Classic array DBMSs restrict range queries to one multidimensional box.
HEAVEN's *Object Framing* lets users describe complex frames — unions of
boxes, arbitrary cell masks, half-space-bounded polytopes — and evaluates
them against the tile index, fetching only tiles that truly intersect the
frame.  Against the bounding-box alternative this cuts tiles fetched and
bytes moved (experiment E11).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.operations import MArray
from ..arrays.tile import Tile
from ..errors import FramingError


class Frame:
    """A region of interest that need not be a single box."""

    def bounding_box(self) -> MInterval:
        """Smallest box containing the frame."""
        raise NotImplementedError

    def mask(self, region: MInterval) -> np.ndarray:
        """Boolean array over *region*: True where the cell is in the frame."""
        raise NotImplementedError

    def intersects(self, box: MInterval) -> bool:
        """Whether any cell of *box* lies inside the frame.

        The default implementation materialises the mask of the overlap;
        subclasses override with cheaper geometry when they can.
        """
        overlap = self.bounding_box().intersection(box)
        if overlap is None:
            return False
        return bool(self.mask(overlap).any())

    @property
    def dimension(self) -> int:
        return self.bounding_box().dimension


@dataclass(frozen=True)
class BoxFrame(Frame):
    """A plain box — framing degenerates to classic trimming."""

    box: MInterval

    def bounding_box(self) -> MInterval:
        return self.box

    def mask(self, region: MInterval) -> np.ndarray:
        out = np.zeros(region.shape, dtype=bool)
        overlap = self.box.intersection(region)
        if overlap is not None:
            out[overlap.to_slices(region)] = True
        return out

    def intersects(self, box: MInterval) -> bool:
        return self.box.intersects(box)


class MultiBoxFrame(Frame):
    """Union of boxes — e.g. an L-shaped coastline query."""

    def __init__(self, boxes: Sequence[MInterval]) -> None:
        if not boxes:
            raise FramingError("a multi-box frame needs at least one box")
        dimension = boxes[0].dimension
        if any(b.dimension != dimension for b in boxes):
            raise FramingError("all frame boxes must share dimensionality")
        self.boxes = list(boxes)

    def bounding_box(self) -> MInterval:
        hull = self.boxes[0]
        for box in self.boxes[1:]:
            hull = hull.hull(box)
        return hull

    def mask(self, region: MInterval) -> np.ndarray:
        out = np.zeros(region.shape, dtype=bool)
        for box in self.boxes:
            overlap = box.intersection(region)
            if overlap is not None:
                out[overlap.to_slices(region)] = True
        return out

    def intersects(self, box: MInterval) -> bool:
        return any(b.intersects(box) for b in self.boxes)

    @classmethod
    def parse(cls, spec: str) -> "MultiBoxFrame":
        """Parse ``"0:9,0:9; 10:19,0:4"`` — the query-language frame syntax."""
        boxes = []
        for part in spec.split(";"):
            part = part.strip()
            if part:
                boxes.append(MInterval.parse(part))
        if not boxes:
            raise FramingError(f"no boxes in frame spec {spec!r}")
        return cls(boxes)


class MaskFrame(Frame):
    """Arbitrary per-cell membership given as a boolean array over a box."""

    def __init__(self, domain: MInterval, cells: np.ndarray) -> None:
        if tuple(cells.shape) != domain.shape:
            raise FramingError(
                f"mask shape {tuple(cells.shape)} != domain shape {domain.shape}"
            )
        self.domain = domain
        self.cells = cells.astype(bool)

    def bounding_box(self) -> MInterval:
        return self.domain

    def mask(self, region: MInterval) -> np.ndarray:
        out = np.zeros(region.shape, dtype=bool)
        overlap = self.domain.intersection(region)
        if overlap is not None:
            out[overlap.to_slices(region)] = self.cells[
                overlap.to_slices(self.domain)
            ]
        return out


class HalfSpaceFrame(Frame):
    """Convex polytope: cells x with ``a . x <= c`` for every half-space.

    Useful for diagonal frames (e.g. a wavefront in a simulation cube) that
    a box approximates terribly.
    """

    def __init__(
        self,
        bounding: MInterval,
        half_spaces: Sequence[Tuple[Sequence[float], float]],
    ) -> None:
        if not half_spaces:
            raise FramingError("a half-space frame needs at least one constraint")
        for coefficients, _limit in half_spaces:
            if len(coefficients) != bounding.dimension:
                raise FramingError("half-space coefficient dimensionality mismatch")
        self.bounding = bounding
        self.half_spaces = [
            (np.asarray(c, dtype=np.float64), float(limit))
            for c, limit in half_spaces
        ]

    def bounding_box(self) -> MInterval:
        return self.bounding

    def mask(self, region: MInterval) -> np.ndarray:
        coords = np.meshgrid(
            *(np.arange(a.lo, a.hi + 1, dtype=np.float64) for a in region.axes),
            indexing="ij",
        )
        out = np.ones(region.shape, dtype=bool)
        inside_box = self.bounding.intersection(region)
        if inside_box is None:
            return np.zeros(region.shape, dtype=bool)
        for coefficients, limit in self.half_spaces:
            value = np.zeros(region.shape, dtype=np.float64)
            for axis, coefficient in enumerate(coefficients):
                if coefficient:
                    value += coefficient * coords[axis]
            out &= value <= limit
        box_mask = np.zeros(region.shape, dtype=bool)
        box_mask[inside_box.to_slices(region)] = True
        return out & box_mask


def tiles_in_frame(mdd: MDD, frame: Frame) -> List[Tile]:
    """Tiles of *mdd* that truly intersect the frame (not just its hull)."""
    candidates = mdd.tiles_for(frame.bounding_box().intersection(mdd.domain) or mdd.domain)
    return [tile for tile in candidates if frame.intersects(tile.domain)]


def read_frame(
    mdd: MDD,
    frame: Frame,
    fill: float = 0.0,
) -> Tuple[MArray, np.ndarray]:
    """Fetch exactly the framed cells of *mdd*.

    Returns the hull-shaped array (cells outside the frame set to *fill*)
    plus the boolean membership mask, so callers can aggregate precisely
    over the frame.  Only tiles intersecting the frame are read, and only
    their overlap with the frame's bounding box is copied.
    """
    hull = frame.bounding_box().intersection(mdd.domain)
    if hull is None:
        raise FramingError("frame lies entirely outside the object domain")
    cells = np.full(hull.shape, fill, dtype=mdd.cell_type.dtype)
    for tile in tiles_in_frame(mdd, frame):
        overlap = tile.domain.intersection(hull)
        if overlap is None:
            continue
        data = mdd.read(overlap)
        cells[overlap.to_slices(hull)] = data
    membership = frame.mask(hull)
    # Cells inside the hull but outside the frame are reset to fill.
    cells = np.where(membership, cells, np.asarray(fill, dtype=cells.dtype))
    return MArray(hull, cells), membership
