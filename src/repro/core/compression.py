"""Per-tile compression of archived data.

Tape drives of the paper's era compressed in hardware; HEAVEN benefits from
it doubly because *transfer time*, not capacity, is the scarce resource:
a tile stored at ratio r streams in r times the time.  Compression is
applied **per tile**, so the byte extents inside a super-tile segment stay
addressable and partial runs keep working.

Codecs implement both paths the simulator needs:

* real bytes (``retain_payload=True``): actual zlib compression, preserving
  end-to-end fidelity through compress/decompress round-trips;
* size-only mode: a deterministic ratio estimate, so huge virtual
  experiments still account transfer times correctly.

(De)compression CPU time is not charged: the modelled drives compress in
hardware at line speed, as DLT/LTO drives do.
"""

from __future__ import annotations

import zlib
from typing import Optional

from ..errors import HeavenError


class Codec:
    """Compression codec interface."""

    name = "abstract"
    #: fallback compressed/uncompressed ratio for size-only accounting
    estimated_ratio = 1.0

    def compress(self, raw: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, stored: bytes, expected_size: int) -> bytes:
        raise NotImplementedError

    def stored_size(self, logical_size: int, raw: Optional[bytes]) -> int:
        """Bytes a tile occupies on tape: real when *raw* given, estimated
        otherwise (never zero)."""
        if raw is not None:
            return max(1, len(self.compress(raw)))
        return max(1, int(logical_size * self.estimated_ratio))


class NoneCodec(Codec):
    """Identity codec (the default)."""

    name = "none"
    estimated_ratio = 1.0

    def compress(self, raw: bytes) -> bytes:
        return raw

    def decompress(self, stored: bytes, expected_size: int) -> bytes:
        if len(stored) != expected_size:
            raise HeavenError(
                f"stored size {len(stored)} != expected {expected_size} "
                "for uncompressed data"
            )
        return stored


class ZlibCodec(Codec):
    """DEFLATE compression (stand-in for the drives' hardware codecs).

    The 0.6 ratio estimate matches typical scientific float rasters with
    spatial coherence; real payloads use the actual compressed size.
    """

    name = "zlib"
    estimated_ratio = 0.6

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise HeavenError(f"zlib level must be 1..9, got {level}")
        self.level = level

    def compress(self, raw: bytes) -> bytes:
        return zlib.compress(raw, self.level)

    def decompress(self, stored: bytes, expected_size: int) -> bytes:
        raw = zlib.decompress(stored)
        if len(raw) != expected_size:
            raise HeavenError(
                f"decompressed to {len(raw)} B, expected {expected_size} B"
            )
        return raw


_CODECS = {
    "none": NoneCodec,
    "zlib": ZlibCodec,
}


def make_codec(name: str) -> Codec:
    """Instantiate a codec by configuration name."""
    try:
        return _CODECS[name.lower()]()
    except KeyError:
        raise HeavenError(
            f"unknown compression codec {name!r}; known: {sorted(_CODECS)}"
        ) from None


def codec_names() -> list:
    return sorted(_CODECS)
