"""Per-tile compression of archived data.

Tape drives of the paper's era compressed in hardware; HEAVEN benefits from
it doubly because *transfer time*, not capacity, is the scarce resource:
a tile stored at ratio r streams in r times the time.  Compression is
applied **per tile**, so the byte extents inside a super-tile segment stay
addressable and partial runs keep working.

Codecs implement both paths the simulator needs:

* real bytes (``retain_payload=True``): actual zlib compression, preserving
  end-to-end fidelity through compress/decompress round-trips;
* size-only mode: a deterministic ratio estimate, so huge virtual
  experiments still account transfer times correctly.

(De)compression CPU time is not charged: the modelled drives compress in
hardware at line speed, as DLT/LTO drives do.
"""

from __future__ import annotations

import zlib
from typing import Optional, Union

from ..errors import HeavenError

#: anything the zero-copy read path may hand a codec: staged segment bytes
#: or a ``memoryview`` slice of them (no intermediate ``bytes`` copies).
Buffer = Union[bytes, bytearray, memoryview]


class Codec:
    """Compression codec interface.

    Besides the classic ``compress``/``decompress`` pair, codecs expose the
    two zero-copy entry points the staged-run read path is built on:

    * :meth:`decompress_view` — a **read-only view** of the raw cells,
      avoiding any materialisation the codec does not strictly require
      (the identity codec returns a view of the stored buffer itself);
    * :meth:`decompress_into` — decompression into a caller-owned buffer,
      so a whole super-tile run can be decoded into one reusable
      allocation instead of one fresh ``bytes`` per tile.
    """

    name = "abstract"
    #: fallback compressed/uncompressed ratio for size-only accounting
    estimated_ratio = 1.0
    #: True when routing a wave's decodes through a shared caller-owned
    #: buffer (:meth:`decompress_into` + the read path's wave arena) beats
    #: :meth:`decompress_view`.  Only codecs whose decompressor writes
    #: *natively* into the output buffer qualify; Python's ``zlib`` cannot
    #: (it always materialises an intermediate ``bytes``, so buffer reuse
    #: just adds the copy back — measured slower than the view path), and
    #: the identity codec's view is already zero-copy.
    wants_decode_arena = False

    def compress(self, raw: bytes) -> bytes:
        raise NotImplementedError

    def decompress(self, stored: bytes, expected_size: int) -> bytes:
        raise NotImplementedError

    def decompress_view(self, stored: Buffer, expected_size: int) -> memoryview:
        """Read-only view of the raw bytes behind *stored*.

        The default materialises via :meth:`decompress`; codecs that can
        serve the raw cells without copying override this (see
        :class:`NoneCodec`).  The returned view is always read-only, so
        ``np.frombuffer`` over it yields a non-writable array.
        """
        raw = self.decompress(bytes(stored), expected_size)
        return memoryview(raw).toreadonly()

    def decompress_into(self, stored: Buffer, out: memoryview) -> int:
        """Decompress *stored* into the writable buffer *out*.

        Returns the number of raw bytes written.  Raises
        :class:`~repro.errors.HeavenError` when *out* is too small.  The
        default routes through :meth:`decompress`; codecs with streaming
        decompressors override this to skip the intermediate allocation.
        """
        raw = self.decompress(bytes(stored), len(out))
        if len(raw) > len(out):  # pragma: no cover - decompress validates
            raise HeavenError(
                f"decompressed {len(raw)} B exceed output buffer of "
                f"{len(out)} B"
            )
        out[: len(raw)] = raw
        return len(raw)

    def stored_size(self, logical_size: int, raw: Optional[bytes]) -> int:
        """Bytes a tile occupies on tape: real when *raw* given, estimated
        otherwise (never zero)."""
        if raw is not None:
            return max(1, len(self.compress(raw)))
        return max(1, int(logical_size * self.estimated_ratio))


class NoneCodec(Codec):
    """Identity codec (the default)."""

    name = "none"
    estimated_ratio = 1.0

    def compress(self, raw: bytes) -> bytes:
        return raw

    def decompress(self, stored: bytes, expected_size: int) -> bytes:
        if len(stored) != expected_size:
            raise HeavenError(
                f"stored size {len(stored)} != expected {expected_size} "
                "for uncompressed data"
            )
        return stored

    def decompress_view(self, stored: Buffer, expected_size: int) -> memoryview:
        # Identity codec: the stored bytes ARE the raw cells — serve a
        # read-only view straight over the staged segment, zero copies.
        if len(stored) != expected_size:
            raise HeavenError(
                f"stored size {len(stored)} != expected {expected_size} "
                "for uncompressed data"
            )
        return memoryview(stored).toreadonly()

    def decompress_into(self, stored: Buffer, out: memoryview) -> int:
        if len(stored) != len(out):
            raise HeavenError(
                f"stored size {len(stored)} != output buffer {len(out)} "
                "for uncompressed data"
            )
        out[:] = stored
        return len(stored)


#: ZlibCodec frame markers — the first stored byte.
_Z_STORED = 0
_Z_DEFLATE = 1


class ZlibCodec(Codec):
    """DEFLATE compression (stand-in for the drives' hardware codecs).

    Stored bytes are framed with a one-byte marker: ``\\x01`` + DEFLATE
    stream, or ``\\x00`` + the raw cells verbatim.  When DEFLATE saves
    less than 1/16 of the tile, the tile is **stored** instead — the same
    fallback the zstd and LZ4 frame formats make: paying a full inflate
    on every read to save a few percent of tape transfer is a bad trade.
    Stored tiles also keep the zero-copy read path intact:
    :meth:`decompress_view` serves them as read-only views straight over
    the staged frame, no inflate, no copy.

    The 0.6 ratio estimate matches typical scientific float rasters with
    spatial coherence; real payloads use the actual compressed size.
    """

    name = "zlib"
    estimated_ratio = 0.6

    def __init__(self, level: int = 6) -> None:
        if not 1 <= level <= 9:
            raise HeavenError(f"zlib level must be 1..9, got {level}")
        self.level = level

    @staticmethod
    def _frame(stored: Buffer) -> "tuple[int, memoryview]":
        view = memoryview(stored).cast("B")
        if len(view) == 0 or view[0] not in (_Z_STORED, _Z_DEFLATE):
            marker = view[0] if len(view) else None
            raise HeavenError(f"corrupt zlib frame: bad marker {marker!r}")
        return view[0], view[1:]

    def compress(self, raw: bytes) -> bytes:
        packed = zlib.compress(raw, self.level)
        if len(packed) >= len(raw) - (len(raw) >> 4):
            return b"\x00" + raw
        return b"\x01" + packed

    def decompress(self, stored: bytes, expected_size: int) -> bytes:
        marker, body = self._frame(stored)
        if marker == _Z_STORED:
            if len(body) != expected_size:
                raise HeavenError(
                    f"stored frame holds {len(body)} B, "
                    f"expected {expected_size} B"
                )
            return bytes(body)
        # bufsize hint sizes the output buffer once instead of growing it
        # geometrically — measurably faster on multi-hundred-KiB tiles.
        raw = zlib.decompress(body, bufsize=max(expected_size, 16))
        if len(raw) != expected_size:
            raise HeavenError(
                f"decompressed to {len(raw)} B, expected {expected_size} B"
            )
        return raw

    def decompress_view(self, stored: Buffer, expected_size: int) -> memoryview:
        marker, body = self._frame(stored)
        if marker == _Z_STORED:
            if len(body) != expected_size:
                raise HeavenError(
                    f"stored frame holds {len(body)} B, "
                    f"expected {expected_size} B"
                )
            return body.toreadonly()
        raw = zlib.decompress(body, bufsize=max(expected_size, 16))
        if len(raw) != expected_size:
            raise HeavenError(
                f"decompressed to {len(raw)} B, expected {expected_size} B"
            )
        return memoryview(raw).toreadonly()

    def decompress_into(self, stored: Buffer, out: memoryview) -> int:
        marker, body = self._frame(stored)
        if marker == _Z_STORED:
            if len(body) != len(out):
                raise HeavenError(
                    f"stored frame holds {len(body)} B, output buffer is "
                    f"{len(out)} B"
                )
            out[:] = body
            return len(body)
        d = zlib.decompressobj()
        raw = d.decompress(bytes(body), len(out))
        if d.unconsumed_tail or (not d.eof and d.decompress(b"", 1)):
            raise HeavenError(
                f"decompressed data exceeds output buffer of {len(out)} B"
            )
        if len(raw) != len(out):
            raise HeavenError(
                f"decompressed to {len(raw)} B, expected {len(out)} B"
            )
        out[:] = raw
        return len(raw)


_CODECS = {
    "none": NoneCodec,
    "zlib": ZlibCodec,
}


def make_codec(name: str) -> Codec:
    """Instantiate a codec by configuration name."""
    try:
        return _CODECS[name.lower()]()
    except KeyError:
        raise HeavenError(
            f"unknown compression codec {name!r}; known: {sorted(_CODECS)}"
        ) from None


def codec_names() -> list:
    return sorted(_CODECS)
