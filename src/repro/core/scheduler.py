"""Query scheduling over tertiary storage (Kapitel 3.4.3).

Tape requests of one or many queries are reordered before execution:

1. **media grouping** — all requests on one medium run together, so each
   medium is exchanged at most once per batch;
2. **elevator sweep** — within a medium, requests run in ascending offset
   order, so the head winds forward monotonically instead of bouncing.

The FIFO scheduler executes requests in arrival order — the baseline the
scheduling experiment (E9) compares against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, List, Optional, Sequence

from ..errors import HeavenError
from ..obs.trace import null_tracer
from ..tertiary.clock import Stopwatch
from ..tertiary.library import TapeLibrary


@dataclass(frozen=True)
class TapeRequest:
    """One pending tertiary-storage read.

    Attributes:
        key: segment (super-tile) name to stage.
        medium_id: medium holding the segment.
        offset: absolute byte position of the requested run on the medium.
        length: bytes to stream.
        query_id: originating query (for multi-query batches).
    """

    key: str
    medium_id: str
    offset: int
    length: int
    query_id: int = 0


@dataclass
class ScheduleReport:
    """Cost summary of one executed batch."""

    requests: int = 0
    exchanges: int = 0
    seeks: int = 0
    seek_distance_bytes: int = 0
    bytes_read: int = 0
    virtual_seconds: float = 0.0
    order: List[str] = field(default_factory=list)


class Scheduler:
    """Base class: turns a request batch into an execution order."""

    name = "abstract"

    def order(
        self, requests: Sequence[TapeRequest], library: TapeLibrary
    ) -> List[TapeRequest]:
        raise NotImplementedError


class FIFOScheduler(Scheduler):
    """Arrival-order execution (no optimisation)."""

    name = "fifo"

    def order(
        self, requests: Sequence[TapeRequest], library: TapeLibrary
    ) -> List[TapeRequest]:
        return list(requests)


class ElevatorScheduler(Scheduler):
    """HEAVEN's scheduler: group by medium, sweep by offset.

    Media order: a currently mounted medium first (no exchange to start),
    then descending request count so densest media amortise their exchange
    best when a batch is cut short.
    """

    name = "elevator"

    def order(
        self, requests: Sequence[TapeRequest], library: TapeLibrary
    ) -> List[TapeRequest]:
        by_medium: Dict[str, List[TapeRequest]] = {}
        for request in requests:
            by_medium.setdefault(request.medium_id, []).append(request)
        mounted = {
            drive.medium.medium_id
            for drive in library.drives
            if drive.medium is not None
        }

        def medium_rank(medium_id: str) -> tuple:
            return (
                0 if medium_id in mounted else 1,
                -len(by_medium[medium_id]),
                medium_id,
            )

        ordered: List[TapeRequest] = []
        for medium_id in sorted(by_medium, key=medium_rank):
            ordered.extend(sorted(by_medium[medium_id], key=lambda r: r.offset))
        return ordered


@dataclass
class DrivePlan:
    """One drive's share of a parallel batch."""

    drive_index: int
    media: List[str] = field(default_factory=list)
    requests: List[TapeRequest] = field(default_factory=list)
    busy_seconds: float = 0.0


@dataclass
class ParallelPlan:
    """Makespan analysis of a batch spread over several drives.

    Media are indivisible (a medium can only be in one drive), so the plan
    assigns whole media to drives by longest-processing-time-first and
    executes each drive's share as an elevator sweep.  ``makespan`` is the
    longest drive timeline — the wall-clock of the parallel batch.
    """

    drives: List[DrivePlan]
    serial_seconds: float
    makespan_seconds: float

    @property
    def speedup(self) -> float:
        if self.makespan_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.makespan_seconds


_NO_MOUNTED: FrozenSet[str] = frozenset()


def _medium_cost(
    requests: Sequence[TapeRequest],
    library: TapeLibrary,
    mounted: AbstractSet[str] = _NO_MOUNTED,
) -> float:
    """Estimated seconds to serve one medium's requests with one sweep.

    Media in *mounted* are already sitting in a drive, so they are not
    charged an exchange — mirroring :meth:`ElevatorScheduler.order`, which
    serves mounted media first precisely to skip that exchange.
    """
    profile = library.profile
    ordered = sorted(requests, key=lambda r: r.offset)
    seconds = 0.0
    if not ordered or ordered[0].medium_id not in mounted:
        seconds += profile.full_exchange_time()
    position = 0
    for request in ordered:
        seconds += profile.seek_time(abs(request.offset - position))
        seconds += profile.transfer_time(request.length)
        position = request.offset + request.length
    return seconds


def plan_parallel(
    requests: Sequence[TapeRequest],
    library: TapeLibrary,
    num_drives: int,
) -> ParallelPlan:
    """Partition a batch across *num_drives* drives and compute the makespan.

    This is an analysis (inter-query parallelism, Kapitel 3.7.3): the
    shared virtual clock stays serial, but the plan reports what D
    independent drive timelines would achieve on the same batch.
    """
    if num_drives < 1:
        raise HeavenError("need at least one drive")
    by_medium: Dict[str, List[TapeRequest]] = {}
    for request in requests:
        by_medium.setdefault(request.medium_id, []).append(request)
    mounted = {
        drive.medium.medium_id
        for drive in library.drives
        if drive.medium is not None
    }
    costs = {
        medium_id: _medium_cost(medium_requests, library, mounted=mounted)
        for medium_id, medium_requests in by_medium.items()
    }
    serial = sum(costs.values())
    drives = [DrivePlan(drive_index=i) for i in range(num_drives)]
    # Longest-processing-time-first assignment of whole media.
    for medium_id in sorted(costs, key=lambda m: -costs[m]):
        target = min(drives, key=lambda d: d.busy_seconds)
        target.media.append(medium_id)
        target.requests.extend(
            sorted(by_medium[medium_id], key=lambda r: r.offset)
        )
        target.busy_seconds += costs[medium_id]
    makespan = max((d.busy_seconds for d in drives), default=0.0)
    return ParallelPlan(
        drives=drives, serial_seconds=serial, makespan_seconds=makespan
    )


def execute_batch(
    requests: Sequence[TapeRequest],
    library: TapeLibrary,
    scheduler: Optional[Scheduler] = None,
    tracer=None,
) -> ScheduleReport:
    """Run a request batch against the library; returns its cost report.

    The actual staging side effects (cache insertion) are the caller's job;
    this function performs the raw mounts/seeks/streams so schedulers can be
    compared in isolation.
    """
    scheduler = scheduler if scheduler is not None else ElevatorScheduler()
    tracer = tracer if tracer is not None else null_tracer
    with tracer.span("scheduler.plan", scheduler=scheduler.name):
        ordered = scheduler.order(requests, library)
    if len(ordered) != len(requests):
        raise HeavenError(
            f"scheduler {scheduler.name!r} dropped requests "
            f"({len(ordered)} of {len(requests)})"
        )
    clock = library.clock
    watch = Stopwatch(clock)
    stats_before = library.stats()
    with tracer.span("library.stage", requests=len(ordered)):
        for request in ordered:
            library.read_extent(request.medium_id, request.offset, request.length)
    stats_after = library.stats()
    return ScheduleReport(
        requests=len(ordered),
        exchanges=stats_after.exchanges - stats_before.exchanges,
        seeks=stats_after.seeks - stats_before.seeks,
        seek_distance_bytes=(
            stats_after.seek_distance_bytes - stats_before.seek_distance_bytes
        ),
        bytes_read=stats_after.bytes_read - stats_before.bytes_read,
        virtual_seconds=watch.elapsed,
        order=[r.key for r in ordered],
    )
