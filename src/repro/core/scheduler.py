"""Query scheduling over tertiary storage (Kapitel 3.4.3 / 3.7.3).

Tape requests of one or many queries are reordered before execution:

1. **media grouping** — all requests on one medium run together, so each
   medium is exchanged at most once per batch;
2. **elevator sweep** — within a medium, requests run in ascending offset
   order, so the head winds forward monotonically instead of bouncing;
3. **run coalescing** — forward-adjacent or overlapping extents merge into
   one seek+stream, so a sweep over back-to-back segments never leaves
   streaming mode.

The FIFO scheduler executes requests in arrival order — the baseline the
scheduling experiment (E9) compares against.

Multi-drive batches run through the :class:`ParallelExecutor`: whole-media
elevator sweeps are dispatched onto per-drive :class:`~repro.tertiary.clock.
Timeline`\\ s (longest-processing-time-first, with idle drives stealing the
next-heaviest medium), the robot arm serialises one exchange at a time, and
the global clock advances once, to the max of the device timelines — the
batch makespan.  :func:`plan_parallel` runs the *same* dispatch loop over
the same cost model without touching devices, so its estimate and the
executed makespan agree by construction (validated per medium after every
parallel batch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    AbstractSet,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..errors import HeavenError
from ..obs.trace import null_tracer
from ..tertiary.clock import Stopwatch, Timeline
from ..tertiary.drive import Drive
from ..tertiary.library import TapeLibrary
from ..tertiary.profiles import TapeProfile


@dataclass(frozen=True)
class TapeRequest:
    """One pending tertiary-storage read.

    Attributes:
        key: segment (super-tile) name to stage.
        medium_id: medium holding the segment.
        offset: absolute byte position of the requested run on the medium.
        length: bytes to stream.
        query_id: originating query (for multi-query batches).
    """

    key: str
    medium_id: str
    offset: int
    length: int
    query_id: int = 0
    #: every query sharing this fused request (cross-query sweeps); empty
    #: means the request belongs to ``query_id`` alone
    query_ids: Tuple[int, ...] = ()

    @property
    def sharing_queries(self) -> Tuple[int, ...]:
        """Sorted, deduplicated queries this request's bytes belong to."""
        if self.query_ids:
            return tuple(sorted(set(self.query_ids)))
        return (self.query_id,)


def split_shared_bytes(length: int, query_ids: Sequence[int]) -> Dict[int, int]:
    """Split *length* bytes exactly across *query_ids* without double counting.

    Deterministic: queries are sorted, each receives ``length // n`` and the
    first ``length % n`` (in id order) one byte more, so the shares always
    sum to *length* — the invariant the shared-stage reconciliation tests
    pin down.
    """
    ids = sorted(set(query_ids))
    if not ids:
        return {}
    base, extra = divmod(length, len(ids))
    return {qid: base + (1 if index < extra else 0) for index, qid in enumerate(ids)}


def attribute_request_bytes(
    requests: Sequence[TapeRequest],
) -> Dict[int, int]:
    """Per-query byte shares of a (possibly cross-query fused) batch."""
    totals: Dict[int, int] = {}
    for request in requests:
        for qid, share in split_shared_bytes(
            request.length, request.sharing_queries
        ).items():
            totals[qid] = totals.get(qid, 0) + share
    return totals


@dataclass
class ScheduleReport:
    """Cost summary of one executed batch.

    ``virtual_seconds`` is measured with a :class:`Stopwatch` on the global
    clock — under parallel execution that is the batch *makespan*, not the
    work done.  ``serial_device_seconds`` sums every charged device second
    in the batch's event-log window (excluding time spent waiting for the
    robot arm, which does not exist in a serial execution), so scheduler
    comparisons like E9 keep ranking on total work.
    """

    requests: int = 0
    exchanges: int = 0
    seeks: int = 0
    seek_distance_bytes: int = 0
    bytes_read: int = 0
    virtual_seconds: float = 0.0
    serial_device_seconds: float = 0.0
    order: List[str] = field(default_factory=list)


@dataclass(frozen=True)
class CoalescedRun:
    """One physical seek+stream covering one or more adjacent requests."""

    medium_id: str
    offset: int
    length: int
    requests: Tuple[TapeRequest, ...]

    @property
    def end(self) -> int:
        return self.offset + self.length


def coalesce_requests(ordered: Sequence[TapeRequest]) -> List[CoalescedRun]:
    """Merge forward-adjacent/overlapping extents into single streamed runs.

    Only *consecutive* requests on the same medium whose extent starts
    inside or immediately after the accumulated run are merged: an
    ascending elevator sweep over back-to-back segments coalesces into one
    seek+stream, while a FIFO order that happens to visit adjacent blocks
    backwards keeps paying every seek (the baseline stays honest — it
    would need the scheduler's sort to benefit).
    """
    runs: List[CoalescedRun] = []
    for request in ordered:
        last = runs[-1] if runs else None
        if (
            last is not None
            and request.medium_id == last.medium_id
            and last.offset <= request.offset <= last.end
        ):
            runs[-1] = CoalescedRun(
                medium_id=last.medium_id,
                offset=last.offset,
                length=max(last.end, request.offset + request.length) - last.offset,
                requests=last.requests + (request,),
            )
        else:
            runs.append(
                CoalescedRun(
                    medium_id=request.medium_id,
                    offset=request.offset,
                    length=request.length,
                    requests=(request,),
                )
            )
    return runs


class Scheduler:
    """Base class: turns a request batch into an execution order."""

    name = "abstract"

    def order(
        self, requests: Sequence[TapeRequest], library: TapeLibrary
    ) -> List[TapeRequest]:
        raise NotImplementedError


class FIFOScheduler(Scheduler):
    """Arrival-order execution (no optimisation)."""

    name = "fifo"

    def order(
        self, requests: Sequence[TapeRequest], library: TapeLibrary
    ) -> List[TapeRequest]:
        return list(requests)


class ElevatorScheduler(Scheduler):
    """HEAVEN's scheduler: group by medium, sweep by offset.

    Media order: a currently mounted medium first (no exchange to start),
    then descending request count so densest media amortise their exchange
    best when a batch is cut short.
    """

    name = "elevator"

    def order(
        self, requests: Sequence[TapeRequest], library: TapeLibrary
    ) -> List[TapeRequest]:
        by_medium: Dict[str, List[TapeRequest]] = {}
        for request in requests:
            by_medium.setdefault(request.medium_id, []).append(request)
        mounted = {
            drive.medium.medium_id
            for drive in library.drives
            if drive.medium is not None
        }

        def medium_rank(medium_id: str) -> tuple:
            return (
                0 if medium_id in mounted else 1,
                -len(by_medium[medium_id]),
                medium_id,
            )

        ordered: List[TapeRequest] = []
        for medium_id in sorted(by_medium, key=medium_rank):
            ordered.extend(sorted(by_medium[medium_id], key=lambda r: r.offset))
        return ordered


@dataclass
class DrivePlan:
    """One drive's share of a parallel batch."""

    drive_index: int
    media: List[str] = field(default_factory=list)
    requests: List[TapeRequest] = field(default_factory=list)
    busy_seconds: float = 0.0
    wait_seconds: float = 0.0


@dataclass
class ParallelPlan:
    """Makespan analysis of a batch spread over several drives.

    Media are indivisible (a medium can only be in one drive), so the plan
    assigns whole media to drives by longest-processing-time-first and
    executes each drive's share as an elevator sweep.  ``makespan`` is the
    longest drive timeline — the wall-clock of the parallel batch.

    The plan is produced by running the :class:`ParallelExecutor`'s own
    dispatch loop over the profile's cost model (exchange, load, seeks
    including the rewind before every stow, transfers, robot-arm
    serialisation) without touching any device, so on a fault-free run the
    executed makespan matches the plan exactly.
    """

    drives: List[DrivePlan]
    serial_seconds: float
    makespan_seconds: float
    #: planned service seconds per medium (exchange+load+sweep; no waits)
    medium_seconds: Dict[str, float] = field(default_factory=dict)
    #: planned total seconds drives spend waiting on the robot arm
    robot_wait_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        if self.makespan_seconds <= 0:
            return 1.0
        return self.serial_seconds / self.makespan_seconds


_NO_MOUNTED: FrozenSet[str] = frozenset()


def _medium_cost(
    requests: Sequence[TapeRequest],
    library: TapeLibrary,
    mounted: AbstractSet[str] = _NO_MOUNTED,
    head: int = 0,
) -> float:
    """Estimated seconds to serve one medium's requests with one sweep.

    Media in *mounted* are already sitting in a drive (head at *head*), so
    they are not charged an exchange — mirroring the executor, which serves
    mounted media first on their holding drive precisely to skip that
    exchange.  Runs are coalesced exactly as execution coalesces them.
    """
    profile = library.profile
    ordered = sorted(requests, key=lambda r: (r.offset, r.key))
    runs = coalesce_requests(ordered)
    seconds = 0.0
    position = head
    if not ordered or ordered[0].medium_id not in mounted:
        seconds += profile.full_exchange_time()
        position = 0
    sweep, _end = _sweep_seconds(profile, runs, position)
    return seconds + sweep


# -- shared cost/dispatch core (planner and executor run the same loop) ------


@dataclass(frozen=True)
class _MediumJob:
    """One medium's share of a batch: its coalesced elevator sweep."""

    medium_id: str
    runs: Tuple[CoalescedRun, ...]
    requests: Tuple[TapeRequest, ...]  # elevator (ascending-offset) order


def _sweep_seconds(
    profile: TapeProfile, runs: Sequence[CoalescedRun], head: int
) -> Tuple[float, int]:
    """Seconds for a coalesced sweep starting at *head*; returns end head."""
    seconds = 0.0
    for run in runs:
        seconds += profile.seek_time(abs(run.offset - head))
        seconds += profile.transfer_time(run.length)
        head = run.end
    return seconds, head


def _mount_seconds(
    profile: TapeProfile, loaded: Optional[str], head: int
) -> float:
    """Seconds to swap a drive onto a new medium from state (loaded, head).

    Mirrors :meth:`Robot.mount` + :meth:`Drive.load`: rewind the old medium
    if the technology demands it, stow it (half an exchange for the return
    trip), fetch the new one (a full exchange) and thread it.
    """
    seconds = 0.0
    if loaded is not None:
        if profile.rewind_before_unload and head > 0:
            seconds += profile.seek_time(head)
        seconds += profile.exchange_time_s * 0.5
    seconds += profile.exchange_time_s
    seconds += profile.load_time_s
    return seconds


def _select_drives(
    library: TapeLibrary, num_drives: int, media_ids: AbstractSet[str]
) -> List[Drive]:
    """The drives a batch runs on: holders of requested media first.

    A medium that already sits in a drive must be served by that drive
    (media are indivisible), so holders join the set first and the rest
    fills up in drive order.
    """
    chosen: List[Drive] = [
        d
        for d in library.drives
        if d.medium is not None and d.medium.medium_id in media_ids
    ][:num_drives]
    for drive in library.drives:
        if len(chosen) >= num_drives:
            break
        if drive not in chosen:
            chosen.append(drive)
    return chosen


def _prepare_batch(
    requests: Sequence[TapeRequest],
    library: TapeLibrary,
    num_drives: int,
) -> Tuple[List[Drive], List[List[str]], List[str], Dict[str, _MediumJob]]:
    """Split a batch into per-medium jobs and seed the dispatch queues.

    Returns ``(drives, preassigned, remaining, jobs)``: the participating
    drives (physical ones; the planner pads with hypothetical empty drives
    beyond that), per-drive queues of media already mounted in them, and
    the shared queue of remaining media in descending-cost (LPT) order —
    the queue idle drives steal from.
    """
    by_medium: Dict[str, List[TapeRequest]] = {}
    for request in requests:
        by_medium.setdefault(request.medium_id, []).append(request)
    jobs: Dict[str, _MediumJob] = {}
    for medium_id, medium_requests in by_medium.items():
        ordered = sorted(medium_requests, key=lambda r: (r.offset, r.key))
        jobs[medium_id] = _MediumJob(
            medium_id=medium_id,
            runs=tuple(coalesce_requests(ordered)),
            requests=tuple(ordered),
        )
    drives = _select_drives(library, num_drives, set(by_medium))
    preassigned: List[List[str]] = [[] for _ in range(num_drives)]
    taken = set()
    for i, drive in enumerate(drives):
        if drive.medium is not None and drive.medium.medium_id in jobs:
            preassigned[i].append(drive.medium.medium_id)
            taken.add(drive.medium.medium_id)
    profile = library.profile
    cold = {
        medium_id: profile.full_exchange_time()
        + _sweep_seconds(profile, job.runs, 0)[0]
        for medium_id, job in jobs.items()
        if medium_id not in taken
    }
    remaining = sorted(cold, key=lambda m: (-cold[m], m))
    return drives, preassigned, remaining, jobs


def _next_dispatch(
    nows: Sequence[float],
    preassigned: List[List[str]],
    remaining: List[str],
) -> Optional[Tuple[int, str]]:
    """Pick the next (drive index, medium) to serve, or None when drained.

    The drive whose timeline is furthest behind goes next (ties broken by
    index), which keeps robot-arm reservations in chronological order —
    the property that makes ``free_at`` bookkeeping a correct
    discrete-event treatment of the shared arm.  A drive serves media
    already mounted in it first, then steals from the shared LPT queue.
    """
    candidates = [
        i for i in range(len(nows)) if preassigned[i] or remaining
    ]
    if not candidates:
        return None
    i = min(candidates, key=lambda i: (nows[i], i))
    medium_id = preassigned[i].pop(0) if preassigned[i] else remaining.pop(0)
    return i, medium_id


@dataclass
class _SimDrive:
    """Planner-side mirror of one drive's state and timeline."""

    loaded: Optional[str]
    head: int
    now: float
    busy: float = 0.0
    wait: float = 0.0
    media: List[str] = field(default_factory=list)


def _simulate_dispatch(
    profile: TapeProfile,
    states: List[_SimDrive],
    preassigned: List[List[str]],
    remaining: List[str],
    jobs: Dict[str, _MediumJob],
    robot_free: float,
    start: float,
) -> Tuple[float, Dict[str, float]]:
    """Run the dispatch loop over the cost model (no devices touched).

    Mutates *states*; returns ``(makespan, service seconds per medium)``.
    """
    pre = [list(queue) for queue in preassigned]
    rem = list(remaining)
    medium_seconds: Dict[str, float] = {}
    while True:
        pick = _next_dispatch([s.now for s in states], pre, rem)
        if pick is None:
            break
        index, medium_id = pick
        state = states[index]
        job = jobs[medium_id]
        service = 0.0
        if state.loaded != medium_id:
            arm_at = max(state.now, robot_free)
            state.wait += arm_at - state.now
            mount = _mount_seconds(profile, state.loaded, state.head)
            # The arm is released once the cartridge is in the drive's
            # mouth; the drive threads (loads) it on its own time.
            robot_free = arm_at + mount - profile.load_time_s
            state.now = arm_at + mount
            service += mount
            head = 0
        else:
            head = state.head
        sweep, head = _sweep_seconds(profile, job.runs, head)
        state.now += sweep
        service += sweep
        state.busy += service
        state.head = head
        state.loaded = medium_id
        state.media.append(medium_id)
        medium_seconds[medium_id] = service
    makespan = max((s.now for s in states), default=start) - start
    return makespan, medium_seconds


def plan_parallel(
    requests: Sequence[TapeRequest],
    library: TapeLibrary,
    num_drives: int,
) -> ParallelPlan:
    """Partition a batch across *num_drives* drives and compute the makespan.

    The plan runs the executor's own dispatch loop over the profile's cost
    model: whole media assigned longest-first, idle drives stealing from
    the shared queue, one robot-arm exchange at a time.  ``num_drives`` may
    exceed the library's physical drives — extra drives are simulated as
    empty stations (a what-if analysis); the :class:`ParallelExecutor`
    itself is capped by the hardware.  ``serial_seconds`` is the same
    simulation on a single drive.
    """
    if num_drives < 1:
        raise HeavenError("need at least one drive")
    profile = library.profile
    start = library.clock.now
    # A reset clock can leave the arm horizon in the "future"; physically
    # the arm is idle before the batch starts.
    robot_free = min(library.robot.free_at, start)

    def states_for(drives: List[Drive], count: int) -> List[_SimDrive]:
        states = [
            _SimDrive(
                loaded=d.medium.medium_id if d.medium is not None else None,
                head=d.head_position,
                now=start,
            )
            for d in drives
        ]
        while len(states) < count:  # hypothetical empty stations
            states.append(_SimDrive(loaded=None, head=0, now=start))
        return states

    drives, preassigned, remaining, jobs = _prepare_batch(
        requests, library, num_drives
    )
    states = states_for(drives, num_drives)
    makespan, medium_seconds = _simulate_dispatch(
        profile, states, preassigned, remaining, jobs, robot_free, start
    )

    serial_drives, serial_pre, serial_rem, _ = _prepare_batch(
        requests, library, 1
    )
    serial_states = states_for(serial_drives, 1)
    serial, _serial_media = _simulate_dispatch(
        profile, serial_states, serial_pre, serial_rem, jobs, robot_free, start
    )

    plans = []
    for index, state in enumerate(states):
        plans.append(
            DrivePlan(
                drive_index=index,
                media=list(state.media),
                requests=[
                    r for medium in state.media for r in jobs[medium].requests
                ],
                busy_seconds=state.busy,
                wait_seconds=state.wait,
            )
        )
    return ParallelPlan(
        drives=plans,
        serial_seconds=serial,
        makespan_seconds=makespan,
        medium_seconds=medium_seconds,
        robot_wait_seconds=sum(s.wait for s in states),
    )


#: per-medium estimator tolerance: executed service may deviate this much
ESTIMATE_TOLERANCE = 0.10

#: event kinds that mark a window as fault-afflicted (estimates don't apply)
_FAULT_KINDS = frozenset({"fault", "backoff"})


def _window_device_seconds(events, devices: AbstractSet[str]) -> float:
    """Charged service seconds of *devices* in an event window (no waits)."""
    return sum(
        e.duration
        for e in events
        if e.device in devices and e.kind != "robot-wait"
    )


def _check_estimate(
    medium_id: str,
    planned: float,
    events,
    devices: AbstractSet[str],
    tolerance: float,
) -> Optional[float]:
    """Relative drift of executed vs planned service for one medium.

    Returns None when no meaningful comparison exists (zero-cost plan or a
    fault/backoff inside the window — recovery time is rightly absent from
    the estimate).  Raises :class:`HeavenError` beyond *tolerance*: a bad
    estimate silently skews every plan-driven decision, so drifting is a
    bug, not a warning.
    """
    if planned <= 0 or any(e.kind in _FAULT_KINDS for e in events):
        return None
    actual = _window_device_seconds(events, devices)
    drift = abs(actual - planned) / planned
    if drift > tolerance:
        raise HeavenError(
            f"medium cost estimate drifted {drift:.1%} on {medium_id}: "
            f"planned {planned:.3f}s, executed {actual:.3f}s"
        )
    return drift


def execute_batch(
    requests: Sequence[TapeRequest],
    library: TapeLibrary,
    scheduler: Optional[Scheduler] = None,
    tracer=None,
    validate_estimates: bool = False,
) -> ScheduleReport:
    """Run a request batch against the library; returns its cost report.

    The actual staging side effects (cache insertion) are the caller's job;
    this function performs the raw mounts/seeks/streams so schedulers can be
    compared in isolation.  Consecutive requests whose extents touch are
    coalesced into one seek+stream (the report still counts the original
    requests).

    With ``validate_estimates`` every contiguous same-medium block is
    pre-costed with :func:`_medium_cost`'s machinery and checked against
    the event-log-derived actual after it ran; drift beyond
    :data:`ESTIMATE_TOLERANCE` raises.  Only meaningful for orders that
    visit each medium once (e.g. the elevator's).
    """
    scheduler = scheduler if scheduler is not None else ElevatorScheduler()
    tracer = tracer if tracer is not None else null_tracer
    with tracer.span("scheduler.plan", scheduler=scheduler.name):
        ordered = scheduler.order(requests, library)
    if len(ordered) != len(requests):
        raise HeavenError(
            f"scheduler {scheduler.name!r} dropped requests "
            f"({len(ordered)} of {len(requests)})"
        )
    clock = library.clock
    profile = library.profile
    watch = Stopwatch(clock)
    stats_before = library.stats()
    log_start = clock.log.cursor()
    runs = coalesce_requests(ordered)
    with tracer.span("library.stage", requests=len(ordered)):
        for run in runs:
            if validate_estimates:
                holder = library.mounted_drive(run.medium_id)
                if holder is not None:
                    planned = _sweep_seconds(
                        profile, [run], holder.head_position
                    )[0]
                else:
                    target = library._pick_drive(set())
                    planned = (
                        _mount_seconds(
                            profile,
                            target.medium.medium_id if target.medium else None,
                            target.head_position,
                        )
                        + _sweep_seconds(profile, [run], 0)[0]
                    )
                block_start = clock.log.cursor()
                library.read_extent(run.medium_id, run.offset, run.length)
                _check_estimate(
                    run.medium_id,
                    planned,
                    clock.log.window(block_start, clock.log.cursor()),
                    {d.drive_id for d in library.drives}
                    | {library.robot.robot_id},
                    ESTIMATE_TOLERANCE,
                )
            else:
                library.read_extent(run.medium_id, run.offset, run.length)
    stats_after = library.stats()
    return ScheduleReport(
        requests=len(ordered),
        exchanges=stats_after.exchanges - stats_before.exchanges,
        seeks=stats_after.seeks - stats_before.seeks,
        seek_distance_bytes=(
            stats_after.seek_distance_bytes - stats_before.seek_distance_bytes
        ),
        bytes_read=stats_after.bytes_read - stats_before.bytes_read,
        virtual_seconds=watch.elapsed,
        serial_device_seconds=sum(
            e.duration
            for e in clock.log.window(log_start, clock.log.cursor())
            if e.kind != "robot-wait"
        ),
        order=[r.key for r in ordered],
    )


# -- parallel execution (Kapitel 3.7.3) --------------------------------------


@dataclass
class DriveShare:
    """Executed share of one drive in a parallel batch."""

    drive_id: str
    media: List[str] = field(default_factory=list)
    requests: int = 0
    busy_seconds: float = 0.0
    wait_seconds: float = 0.0


@dataclass
class ParallelReport(ScheduleReport):
    """Cost report of one executed multi-drive batch.

    Extends :class:`ScheduleReport`: ``virtual_seconds`` is the batch
    makespan (the global clock advances by exactly that much),
    ``serial_device_seconds`` the total device work, and their ratio the
    *executed* speedup — measured from the event log, not estimated.
    """

    media: int = 0
    drives: List[DriveShare] = field(default_factory=list)
    robot_wait_seconds: float = 0.0
    assembly_seconds: float = 0.0
    planned_makespan_seconds: float = 0.0
    estimate_drift: float = 0.0

    @property
    def makespan_seconds(self) -> float:
        return self.virtual_seconds

    @property
    def speedup(self) -> float:
        """Executed speedup: total device work over wall-clock makespan."""
        if self.virtual_seconds <= 0:
            return 1.0
        return self.serial_device_seconds / self.virtual_seconds


class ParallelExecutor:
    """Discrete-event execution of a batch across several real drives.

    Each participating drive gets its own :class:`Timeline`; whole-media
    elevator sweeps are dispatched longest-first with idle drives stealing
    from the shared queue, and the robot arm serialises exchanges across
    timelines via its ``free_at`` horizon.  After the last sweep the global
    clock advances once, to the max of the timelines — so to the rest of
    the system the batch took its makespan, while the event log carries
    true per-device start times throughout.

    ``on_staged(request)`` pipelines stage with assembly: it runs on a
    separate assembly timeline seeded at each run's completion instant, so
    decoding/landing staged segments overlaps the drive streaming the next
    run (the overlap E4 shows dominating TCT export, now on the read path).

    Every medium's executed service time is validated against the plan's
    estimate (fault windows excluded); drift beyond *tolerance* raises.
    """

    def __init__(
        self,
        library: TapeLibrary,
        num_drives: Optional[int] = None,
        tracer=None,
        validate_estimates: bool = True,
        tolerance: float = ESTIMATE_TOLERANCE,
    ) -> None:
        available = len(library.drives)
        wanted = num_drives if num_drives is not None else available
        if wanted < 1:
            raise HeavenError("need at least one drive")
        self.library = library
        self.num_drives = min(wanted, available)
        self.tracer = tracer if tracer is not None else null_tracer
        self.validate_estimates = validate_estimates
        self.tolerance = tolerance

    def execute(
        self,
        requests: Sequence[TapeRequest],
        on_staged: Optional[Callable[[TapeRequest], None]] = None,
    ) -> ParallelReport:
        """Serve *requests* across the drives; returns the executed report."""
        if not requests:
            return ParallelReport()
        clock = self.library.clock
        if clock.active_timeline is not None:
            raise HeavenError("parallel batches cannot nest inside a timeline")
        # The global clock is monotone, so at batch start the arm cannot be
        # busy in the future; a stale horizon (clock reset since the last
        # exchange) would otherwise charge phantom waits on the timelines.
        robot = self.library.robot
        if robot.free_at > clock.now:
            robot.free_at = clock.now
        plan = plan_parallel(requests, self.library, self.num_drives)
        drives, preassigned, remaining, jobs = _prepare_batch(
            requests, self.library, self.num_drives
        )
        start = clock.now
        timelines = [drive.timeline_at(start) for drive in drives]
        assembly = Timeline.at("assembly", start)
        stats_before = self.library.stats()
        log_start = clock.log.cursor()
        order: List[str] = []
        shares = {
            drive.drive_id: DriveShare(drive_id=drive.drive_id)
            for drive in drives
        }
        drift = 0.0
        with self.tracer.span(
            "scheduler.parallel",
            drives=len(drives),
            media=len(jobs),
            requests=len(requests),
        ):
            try:
                while True:
                    pick = _next_dispatch(
                        [t.now for t in timelines], preassigned, remaining
                    )
                    if pick is None:
                        break
                    index, medium_id = pick
                    medium_drift = self._serve_medium(
                        drives[index],
                        timelines[index],
                        jobs[medium_id],
                        plan.medium_seconds.get(medium_id, 0.0),
                        assembly,
                        on_staged,
                        order,
                        shares[drives[index].drive_id],
                    )
                    if medium_drift is not None:
                        drift = max(drift, medium_drift)
            finally:
                # The batch is over when the slowest timeline finishes —
                # including the assembly tail still landing staged data.
                clock.sync_to(timelines + [assembly])
        stats_after = self.library.stats()
        for timeline, drive in zip(timelines, drives):
            share = shares[drive.drive_id]
            share.busy_seconds = timeline.busy_seconds
            share.wait_seconds = timeline.wait_seconds
        window = clock.log.window(log_start, clock.log.cursor())
        return ParallelReport(
            requests=len(requests),
            exchanges=stats_after.exchanges - stats_before.exchanges,
            seeks=stats_after.seeks - stats_before.seeks,
            seek_distance_bytes=(
                stats_after.seek_distance_bytes
                - stats_before.seek_distance_bytes
            ),
            bytes_read=stats_after.bytes_read - stats_before.bytes_read,
            virtual_seconds=clock.now - start,
            serial_device_seconds=sum(
                e.duration for e in window if e.kind != "robot-wait"
            ),
            order=order,
            media=len(jobs),
            drives=[shares[d.drive_id] for d in drives],
            robot_wait_seconds=(
                stats_after.time_robot_wait_s - stats_before.time_robot_wait_s
            ),
            assembly_seconds=assembly.elapsed,
            planned_makespan_seconds=plan.makespan_seconds,
            estimate_drift=drift,
        )

    def _serve_medium(
        self,
        drive: Drive,
        timeline: Timeline,
        job: _MediumJob,
        planned: float,
        assembly: Timeline,
        on_staged: Optional[Callable[[TapeRequest], None]],
        order: List[str],
        share: DriveShare,
    ) -> Optional[float]:
        """Mount and sweep one whole medium on *drive*'s timeline."""
        clock = self.library.clock
        with clock.timeline(timeline):
            window_start = clock.log.cursor()
            self.library.mount_on(job.medium_id, drive)
            for run in job.runs:
                self.library.read_extent_on(drive, run.offset, run.length)
                order.extend(r.key for r in run.requests)
                if on_staged is not None:
                    # Assembly picks the run up the instant the drive is
                    # done streaming it (or as soon as it drains earlier
                    # runs) and proceeds while the drive seeks on.
                    if assembly.now < timeline.now:
                        assembly.now = timeline.now
                    with clock.timeline(assembly):
                        for request in run.requests:
                            on_staged(request)
            window_end = clock.log.cursor()
        share.media.append(job.medium_id)
        share.requests += len(job.requests)
        if not self.validate_estimates:
            return None
        return _check_estimate(
            job.medium_id,
            planned,
            clock.log.window(window_start, window_end),
            {drive.drive_id, self.library.robot.robot_id},
            self.tolerance,
        )
