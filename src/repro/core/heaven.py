"""The HEAVEN façade: one object fusing the array DBMS with tertiary storage.

This is the system of the dissertation's title.  It owns the base DBMS, the
array storage manager, the tape library, the caches, the scheduler, access
statistics and the precomputed-results catalog, and exposes the user-facing
operations:

* ``create_collection`` / ``insert`` — classic DBMS ingestion (disk),
* ``archive`` — migrate an object to tape as clustered super-tiles
  (STAR/eSTAR + intra/inter clustering + decoupled TCT export),
* ``read`` / ``read_frame`` / ``query`` — transparent retrieval across the
  whole hierarchy (memory cache → disk cache → scheduled tape access),
* ``delete`` / ``update`` / ``reimport`` — the archive lifecycle
  (Kapitel 3.5).

Queries never mention storage: an archived object answers exactly like a
disk-resident one, only the simulated clock knows the difference.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arrays.mdd import MDD, Collection
from ..arrays.minterval import MInterval
from ..arrays.operations import MArray
from ..arrays.query.executor import MDDRef, MutationHooks, QueryExecutor, QueryResult
from ..arrays.storage import ArrayStorage
from ..arrays.tile import Tile
from ..dbms.engine import Database
from ..errors import CacheError, CachePinnedError, HeavenError
from ..obs.instruments import HeavenInstruments
from ..obs.observability import Observability
from ..obs.trace import Span
from ..tertiary.clock import SimClock
from ..tertiary.disk import DiskDevice
from ..tertiary.library import TapeLibrary
from .cache import DiskCache, MemoryTileCache, make_policy
from .clustering import ClusteredPlacement, Placement, PlacementPolicy, ScatterPlacement
from .compression import Codec, make_codec
from .config import HeavenConfig
from .estar import AccessStatistics, estar_partition, intra_cluster_order
from .export import ExportReport, TCTExporter
from .framing import Frame, MultiBoxFrame, read_frame as _read_frame, tiles_in_frame
from .precomputed import PrecomputedCatalog
from .pyramid import PyramidCatalog
from .scheduler import (
    ElevatorScheduler,
    FIFOScheduler,
    ParallelExecutor,
    Scheduler,
    TapeRequest,
)
from .super_tile import SuperTile, star_partition, tiles_to_super_tiles
from .units import ObjectDescriptor, SubReadRequest, SubReadResponse, SubReadStats, TilePayload


@dataclass
class ArchivedObject:
    """Bookkeeping of one object migrated to tertiary storage."""

    mdd: MDD
    collection: str
    super_tiles: List[SuperTile]
    tile_to_st: Dict[int, SuperTile]
    disk_copy: bool = True
    #: per-tile on-tape sizes when compression is active (None = logical)
    stored_sizes: Optional[Dict[int, int]] = None
    #: byte run of each staged segment currently in the disk cache
    staged_runs: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    #: monotonic update counter feeding re-exported segment names (``.vN``)
    version: int = 0

    def super_tile_of(self, tile_id: int) -> SuperTile:
        try:
            return self.tile_to_st[tile_id]
        except KeyError:
            raise HeavenError(
                f"tile {tile_id} of {self.mdd.name!r} has no super-tile"
            ) from None


@dataclass
class RetrievalReport:
    """Cost summary of one hierarchical read."""

    object_name: str
    region: str
    tiles_needed: int = 0
    super_tiles_staged: int = 0
    bytes_from_tape: int = 0
    bytes_useful: int = 0
    exchanges: int = 0
    virtual_seconds: float = 0.0
    #: injected hardware faults hit while serving this read
    faults: int = 0
    #: backoff delays charged by the recovery layer during this read
    backoffs: int = 0
    #: read of a tape-resident object served entirely from the cache
    #: hierarchy while the library was offline (graceful degradation)
    degraded: bool = False
    #: per-tile restage fallbacks that fired mid-assemble (0 = healthy:
    #: the batch-staged segments survived until their tiles were read)
    restages: int = 0
    #: pin references taken while this operation ran — the staging
    #: ticket's pins plus any re-pins the assembly path took on already
    #: cached segments, so the count reconciles with the cache-pin metric
    pins: int = 0
    #: eviction nominations skipped over pinned entries while this ran
    pin_evictions_blocked: int = 0
    #: capacity-sized admission waves the staging batch was split into
    waves: int = 0

    @property
    def useless_ratio(self) -> float:
        if self.bytes_from_tape == 0:
            return 0.0
        return 1.0 - self.bytes_useful / self.bytes_from_tape


#: trailing version suffix of re-exported segment names (``…/st3.v7``)
_VERSION_RE = re.compile(r"\.v\d+$")


@dataclass
class StagingTicket:
    """Pins held on behalf of one staging batch until assembly finished.

    :meth:`Heaven._stage_many` pins every segment a batch needs — cache
    hits at planning time, fresh insertions at staging time — and hands
    the pins back in a ticket.  The caller releases the ticket once the
    tiles were assembled; until then no insertion (even of the same
    batch) can evict those bytes.  ``release`` is idempotent.
    """

    cache: Optional[DiskCache] = None
    #: super-tile runs streamed from tape for this batch
    staged: int = 0
    #: bytes those runs moved off tape
    bytes_from_tape: int = 0
    #: pin references taken over the batch's lifetime (incl. released waves)
    pins: int = 0
    #: capacity-sized admission waves the batch was split into
    waves: int = 0
    #: segment keys still holding a pin reference
    pinned: List[str] = field(default_factory=list)

    def release(self) -> None:
        """Drop every pin still held by this ticket."""
        if self.cache is None:
            self.pinned.clear()
            return
        held, self.pinned = self.pinned, []
        for key in held:
            try:
                self.cache.unpin(key)
            except CacheError:
                # The entry was invalidated (update/delete) while in
                # flight; its pin references died with it.
                pass


class _DecodeArena:
    """One wave-scoped decompression buffer shared by that wave's tiles.

    Compressed tiles must materialise their raw cells somewhere; instead
    of one fresh ``bytes`` per tile, a wave allocates ONE buffer sized to
    its decoded total and each tile carves a disjoint slice to decompress
    into.  Cached tile arrays become read-only views of those slices.

    Aliasing safety: an arena is **never reused** across waves — carving
    is monotonic within one wave and the arena is dropped when the wave
    ends, so a view handed to the memory tile cache can never be
    overwritten by a later decode.  (The underlying ``bytearray`` stays
    alive exactly as long as some view references it.)
    """

    __slots__ = ("_buf", "_offset")

    def __init__(self, nbytes: int) -> None:
        self._buf = bytearray(nbytes)
        self._offset = 0

    def carve(self, nbytes: int) -> Optional[memoryview]:
        """Claim the next *nbytes* slice; ``None`` when exhausted."""
        end = self._offset + nbytes
        if end > len(self._buf):
            return None
        view = memoryview(self._buf)[self._offset : end]
        self._offset = end
        return view


@dataclass
class _SegmentNeed:
    """Merged staging demand on one tape segment across a whole batch."""

    super_tile: SuperTile
    entry: ArchivedObject
    mdd: MDD
    #: every tile of the batch that needs this segment (deduplicated)
    tile_ids: List[int] = field(default_factory=list)
    #: byte run to stage (or the covering cached run, for hits)
    run: Tuple[int, int] = (0, 0)
    #: opportunistic sequential prefetch: never pinned, droppable
    prefetch: bool = False


class Heaven:
    """Hierarchical storage and archive environment for array DBMSs."""

    def __init__(
        self,
        config: Optional[HeavenConfig] = None,
        observability: Union[None, bool, Observability] = None,
    ) -> None:
        self.config = config if config is not None else HeavenConfig()
        self.clock = SimClock(max_events=self.config.event_log_max_events)
        # Observability knob: None follows REPRO_TRACE, a bool switches it
        # explicitly, a prebuilt Observability is adopted (rebound to this
        # instance's clock).  Disabled, every span below is a shared no-op.
        if observability is None:
            self.obs = Observability.from_env(self.clock)
        elif isinstance(observability, Observability):
            self.obs = observability
            self.obs.bind_clock(self.clock)
        else:
            self.obs = Observability(enabled=bool(observability), clock=self.clock)
        self.tracer = self.obs.tracer
        self.db = Database(
            self.clock,
            self.config.disk_profile,
            retain_payload=self.config.retain_payload,
        )
        self.storage = ArrayStorage(self.db)
        self.library = TapeLibrary(
            self.config.tape_profile,
            num_drives=self.config.num_drives,
            clock=self.clock,
            retain_payload=self.config.retain_payload,
            faults=self.config.fault_plan,
            retry=self.config.retry_policy,
        )
        self.disk_cache = DiskCache(
            self.config.disk_cache_bytes,
            make_policy(self.config.disk_cache_policy),
            self.config.disk_profile,
            self.clock,
            on_evict=self._on_cache_evict,
        )
        self.memory_cache = MemoryTileCache(self.config.memory_cache_bytes)
        #: extra staging disk of the HSM when attached through one
        #: (Kapitel 3.1.1); None in direct drive attachment (3.1.2).
        self.hsm_staging = (
            DiskDevice("hsm-staging", self.config.disk_profile, self.clock)
            if self.config.attachment == "hsm"
            else None
        )
        self.scheduler: Scheduler = (
            ElevatorScheduler() if self.config.scheduling else FIFOScheduler()
        )
        self.codec: Codec = make_codec(self.config.compression)
        self.precomputed = PrecomputedCatalog()
        self.pyramids = PyramidCatalog()
        self.access_stats: Dict[str, AccessStatistics] = {}
        self._archived: Dict[str, ArchivedObject] = {}
        #: lifetime count of super-tiles created by :meth:`archive`
        self.super_tiles_built = 0
        self.executor = QueryExecutor(
            self.storage.collection,
            condenser_hook=(
                self._condenser_hook if self.config.precompute_aggregates else None
            ),
            scale_hook=(
                self._scale_hook if self.config.pyramid_factors else None
            ),
            mutations=MutationHooks(
                create_collection=self.create_collection,
                drop_collection=self._drop_collection_everywhere,
                delete_object=self.delete,
            ),
            tracer=self.tracer,
        )
        self.executor.register_extension("frame", self._frame_extension)
        self.exporter = TCTExporter(
            self.storage, self.library, tracer=self.tracer, wal=self.db.wal
        )
        #: reads of tape-resident objects served from the caches while the
        #: library was offline (graceful degradation)
        self.degraded_reads_served = 0
        #: lifetime count of per-tile restage fallbacks (thrash indicator;
        #: stays 0 while the pinned staging pipeline is healthy)
        self.restages = 0
        #: staging waves dispatched through the parallel executor
        self.parallel_batches = 0
        #: accumulated makespans of those waves (wall-clock on the sim clock)
        self.parallel_makespan_seconds = 0.0
        #: accumulated device work of those waves (sum over drives + robot);
        #: device work over makespan is the lifetime executed speedup
        self.parallel_device_seconds = 0.0
        #: capacity-sized admission waves ever dispatched by batch staging
        self.staging_waves_admitted = 0
        #: super-tile segment runs ever streamed from tape by batch staging
        self.segments_staged = 0
        #: fused cross-query sweeps dispatched by the admission layer
        self.admission_sweeps = 0
        #: tape bytes cross-query fusion avoided (per fused segment: the sum
        #: of every query's demanded run minus the bytes actually staged)
        self.admission_fusion_saved_bytes = 0
        #: media exchanges fusion avoided (demanding queries minus one per
        #: fused sweep — each would have mounted the medium on its own)
        self.admission_fusion_saved_exchanges = 0
        #: virtual seconds spent inside anticipatory hold-back windows
        self.admission_holdback_seconds = 0.0
        #: tiles demanded by reported reads (read / read_many), lifetime
        self.read_tiles_needed = 0
        #: bytes returned to callers by reported reads, lifetime
        self.read_bytes_useful = 0
        #: redundant bytes copied on the decode/assembly path, lifetime.
        #: The zero-copy pipeline keeps this at 0: decoded tiles are
        #: read-only views over cache-owned buffers and assembly scatters
        #: straight into the result array.  Any increment marks a
        #: defensive-copy fallback that re-appeared.
        self.assembly_bytes_copied = 0
        #: active wave-scoped decompression arena (see :class:`_DecodeArena`);
        #: ``None`` outside wave drains, where decode allocates per tile.
        self._decode_arena: Optional[_DecodeArena] = None
        #: ticket of the read whose assembly is currently running.  Pins
        #: taken on that read's behalf by OTHER tickets — the
        #: ``prepare_read`` hook's nested ticket, the resolver's restage
        #: fallbacks — are added onto it, so reports attribute exactly
        #: the pins a query owns.  Nested reads swap in their own ticket
        #: for their assembly window, so nothing is double-counted (the
        #: old ``stats.pins`` delta charged a read for every pin any
        #: query took between its two samples).
        self._active_ticket: Optional[StagingTicket] = None
        #: instrument catalog; installed only when observability is on, so a
        #: disabled instance allocates nothing per operation.
        self.instruments: Optional[HeavenInstruments] = (
            HeavenInstruments(self.obs.metrics, self) if self.obs.enabled else None
        )

    # ------------------------------------------------------------------ DDL/DML

    def create_collection(self, name: str) -> Collection:
        """Create a named collection in the array DBMS."""
        return self.storage.create_collection(name)

    def collection(self, name: str) -> Collection:
        return self.storage.collection(name)

    def insert(self, collection_name: str, mdd: MDD) -> int:
        """Persist an MDD on secondary storage (tiles as BLOBs); returns oid."""
        return self.storage.insert_object(collection_name, mdd)

    def is_archived(self, object_name: str) -> bool:
        return object_name in self._archived

    def archived(self, object_name: str) -> ArchivedObject:
        try:
            return self._archived[object_name]
        except KeyError:
            raise HeavenError(f"object {object_name!r} is not archived") from None

    # ------------------------------------------------------------------ archive

    def archive(
        self,
        collection_name: str,
        object_name: str,
        placement: Optional[PlacementPolicy] = None,
        keep_disk_copy: bool = False,
        super_tile_bytes: Optional[int] = None,
    ) -> ExportReport:
        """Migrate an object to tertiary storage.

        Pipeline: partition into super-tiles (eSTAR or STAR per config,
        fed by collected access statistics), order tiles inside each
        super-tile (intra clustering), plan media placement (inter
        clustering or the configured baseline), stream via the decoupled
        TCT exporter, register precomputed aggregates, and optionally
        release the disk copy.

        Args:
            placement: override the placement policy (default: clustered
                when ``config.inter_clustering``, scatter otherwise).
            keep_disk_copy: keep tile BLOBs on secondary storage (dual
                residence) instead of freeing them after export.
            super_tile_bytes: explicit super-tile size for this object.
        """
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        if mdd.oid is None:
            raise HeavenError(f"object {object_name!r} must be inserted before archive")
        if object_name in self._archived:
            raise HeavenError(f"object {object_name!r} is already archived")

        stats = self.access_stats.get(object_name)
        target = (
            super_tile_bytes
            if super_tile_bytes is not None
            else self.config.super_tile_bytes
        )
        if self.config.use_estar:
            super_tiles = estar_partition(
                mdd,
                self.config.tape_profile,
                stats=stats,
                target_bytes=target,
                min_bytes=self.config.min_super_tile_bytes,
                max_bytes=self.config.max_super_tile_bytes,
            )
        else:
            if target is None:
                raise HeavenError("plain STAR needs an explicit super_tile_bytes")
            super_tiles = star_partition(mdd, target)

        if self.config.intra_clustering:
            for super_tile in super_tiles:
                super_tile.tile_ids = intra_cluster_order(super_tile, mdd, stats)

        if placement is None:
            placement = (
                ClusteredPlacement()
                if self.config.inter_clustering
                else ScatterPlacement()
            )
        plan = placement.plan(super_tiles, self.library)

        if self.config.precompute_aggregates and mdd.cell_type.dtype.fields is None:
            self.precomputed.register_object(mdd)
        if self.config.pyramid_factors and mdd.cell_type.dtype.fields is None:
            # Materialise zoom levels while the tiles are still on disk.
            self.pyramids.build(mdd, self.config.pyramid_factors)

        stored_sizes: Optional[Dict[int, int]] = None
        if self.codec.name != "none":
            stored_sizes = self._stored_tile_sizes(mdd)
            for super_tile in super_tiles:
                super_tile.size_bytes = sum(
                    stored_sizes[t] for t in super_tile.tile_ids
                )
        try:
            with self.tracer.span(
                "heaven.archive", object=object_name, super_tiles=len(super_tiles)
            ):
                report = self.exporter.export(
                    mdd,
                    plan,
                    stored_sizes=stored_sizes,
                    codec=self.codec if self.codec.name != "none" else None,
                )
        except Exception:
            # A failed migration (e.g. out of media) must not leave orphan
            # segments: the object stays disk-resident and re-archivable.
            for super_tile in super_tiles:
                if super_tile.segment_name is not None:
                    if self.library.has_segment(super_tile.segment_name):
                        self.library.delete_segment(super_tile.segment_name)
                    super_tile.segment_name = None
                    super_tile.medium_id = None
            self.precomputed.drop_object(object_name)
            self.pyramids.drop_object(object_name)
            raise
        if self.hsm_staging is not None:
            # HSM attachment: every migrated file passes through the HSM's
            # staging area on its way to tape.
            for super_tile in super_tiles:
                self.hsm_staging.write(
                    super_tile.size_bytes, detail=f"hsm migrate st{super_tile.index}"
                )

        entry = ArchivedObject(
            mdd=mdd,
            collection=collection_name,
            super_tiles=super_tiles,
            tile_to_st=tiles_to_super_tiles(super_tiles),
            stored_sizes=stored_sizes,
        )
        self._archived[object_name] = entry
        self.super_tiles_built += len(super_tiles)
        mdd.resolver = self._resolve_tile
        # The hook returns the ticket's release: MDD.read drops the pins
        # only after it assembled the region's tiles.
        mdd.prepare_read = (
            lambda region, _mdd=mdd: self._prepare_for_assembly(_mdd, region)
        )
        mdd.drop_payloads()
        if not keep_disk_copy:
            self._release_disk_copy(entry)
        return report

    def _release_disk_copy(self, entry: ArchivedObject) -> None:
        """Free the secondary-storage tile BLOBs after successful export."""
        mdd = entry.mdd
        assert mdd.oid is not None
        for row in self.storage.tile_rows(mdd.oid):
            self.db.delete_blob(row["blob_oid"])
        # Keep the catalog rows: the object still exists logically; only the
        # payloads moved down the hierarchy.
        entry.disk_copy = False

    def _drop_collection_everywhere(self, name: str) -> None:
        """DDL hook: drop a collection, releasing archived objects too."""
        collection = self.storage.collection(name)
        for mdd in list(collection):
            self.delete(name, mdd.name)
        self.db.delete_rows("ras_collections", lambda r: r["name"] == name)
        self.storage._collections.pop(name, None)

    def _stored_tile_sizes(self, mdd: MDD) -> Dict[int, int]:
        """On-tape (compressed) size of every tile of *mdd*."""
        assert mdd.oid is not None
        sizes: Dict[int, int] = {}
        for tile_id, tile in mdd.tiles.items():
            raw = None
            if self.db.blobs.retain_payload:
                raw = self.db.blobs.peek(self.storage.blob_oid_of(mdd.oid, tile_id))
            sizes[tile_id] = self.codec.stored_size(tile.size_bytes, raw)
        return sizes

    # ------------------------------------------------------------------ retrieval

    def read(self, collection_name: str, object_name: str, region: MInterval) -> np.ndarray:
        """Read a region across the hierarchy; returns the assembled cells."""
        cells, _report = self.read_with_report(collection_name, object_name, region)
        return cells

    def _prepare_for_assembly(self, mdd: MDD, region: MInterval):
        """``MDD.prepare_read`` hook: stage *region*, return the release.

        The hook's ticket is created on behalf of whichever read is
        currently assembling, so its pins are attributed to that read's
        ticket (reports tally pin *events*, which outlive the release
        MDD.read performs after assembly).
        """
        ticket = self.prepare_region(mdd, region)
        owner = self._active_ticket
        if owner is not None and owner is not ticket:
            owner.pins += ticket.pins
        return ticket.release

    def read_with_report(
        self, collection_name: str, object_name: str, region: MInterval
    ) -> Tuple[np.ndarray, RetrievalReport]:
        """Like :meth:`read` but also returns the cost report."""
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        # Pin attribution: this read owns exactly its ticket's pins plus
        # the pins taken on its behalf mid-assembly (the prepare hook's
        # nested ticket, resolver restage-fallbacks) — those land on the
        # ticket via ``_active_ticket``.  (A raw ``stats.pins`` delta
        # would also count pins other queries take between the two
        # samples under the admission layer.)
        with self.tracer.span(
            "heaven.read", always=True, object=object_name, region=str(region)
        ) as span:
            self._record_access(mdd, region)
            ticket = self.prepare_region(mdd, region)
            outer, self._active_ticket = self._active_ticket, ticket
            try:
                with self.tracer.span(
                    "heaven.assemble", object=object_name
                ) as assemble_span:
                    cells = mdd.read(region)
                self._observe_assemble_wall(assemble_span)
            finally:
                self._active_ticket = outer
                ticket.release()
        report = self._report_from_span(
            span,
            object_name=object_name,
            region=str(region),
            tiles_needed=len(mdd.tiles_for(region)),
            ticket=ticket,
            bytes_useful=int(cells.nbytes),
            pins=ticket.pins,
        )
        self._note_degradation(report, [mdd])
        return cells, report

    def _report_from_span(
        self,
        span: Span,
        *,
        object_name: str,
        region: str,
        tiles_needed: int,
        ticket: StagingTicket,
        bytes_useful: int,
        pins: Optional[int] = None,
    ) -> RetrievalReport:
        """Derive a :class:`RetrievalReport` from a finished read span.

        Exchange, tape-byte and thrash accounting come straight off the
        span's event-log window: one "load" event per media mount, the
        byte sum of tape "read" events, one "restage"/"pin-blocked" marker
        per fallback.  The numbers therefore stay exact even when resolver
        fallbacks or recovery retries fire mid-assemble (the old
        staging-loop tallies silently missed those).  With a bounded event
        log the window may have been truncated, so the staged-byte tally
        serves as a floor.
        """
        report = RetrievalReport(
            object_name=object_name,
            region=region,
            tiles_needed=tiles_needed,
            super_tiles_staged=ticket.staged,
            bytes_from_tape=max(span.bytes_in("read"), ticket.bytes_from_tape),
            bytes_useful=bytes_useful,
            exchanges=span.count("load"),
            virtual_seconds=span.virtual_elapsed,
            faults=span.count("fault"),
            backoffs=span.count("backoff"),
            restages=span.count("restage"),
            pins=ticket.pins if pins is None else pins,
            pin_evictions_blocked=span.count("pin-blocked"),
            waves=ticket.waves,
        )
        self.read_tiles_needed += tiles_needed
        self.read_bytes_useful += bytes_useful
        if self.instruments is not None:
            self.instruments.observe_read(
                report.virtual_seconds,
                report.bytes_from_tape,
                wall_seconds=span.wall_elapsed,
            )
        return report

    def _observe_assemble_wall(self, span: Span) -> None:
        """Feed a finished assemble span's host latency to the histograms."""
        if self.instruments is not None and span.enabled:
            self.instruments.observe_assemble_wall(span.wall_elapsed)

    def _observe_stage_wall(self, span: Span) -> None:
        """Feed a finished stage span's host latency to the histograms."""
        if self.instruments is not None and span.enabled:
            self.instruments.observe_stage_wall(span.wall_elapsed)

    def _note_degradation(
        self, report: RetrievalReport, mdds: Sequence[MDD]
    ) -> None:
        """Flag a read served without tape while the library is offline.

        Graceful degradation: when the fault plan has taken the library
        offline, warm-cache reads of archived (tape-only) objects still
        succeed — they never reach the robot.  Those are counted so
        operators can see how long the caches carried the workload.
        """
        if not self.config.degraded_reads or report.bytes_from_tape:
            return
        if not self.library.faults.offline:
            return
        for mdd in mdds:
            entry = self._archived.get(mdd.name)
            if entry is not None and not entry.disk_copy:
                report.degraded = True
                self.degraded_reads_served += 1
                return

    def read_frame(
        self, collection_name: str, object_name: str, frame: Frame, fill: float = 0.0
    ) -> Tuple[MArray, np.ndarray]:
        """Framed read (Object Framing): fetch only tiles inside the frame."""
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        needed = tiles_in_frame(mdd, frame)
        with self.tracer.span(
            "heaven.read_frame", object=object_name, tiles=len(needed)
        ):
            ticket: Optional[StagingTicket] = None
            if needed:
                self._record_access(mdd, frame.bounding_box().intersection(mdd.domain) or mdd.domain)
                ticket = self._stage_tiles(mdd, [t.tile_id for t in needed])
            try:
                return _read_frame(mdd, frame, fill=fill)
            finally:
                if ticket is not None:
                    ticket.release()

    def query(self, text: str) -> List[QueryResult]:
        """Run a RasQL query transparently over the whole hierarchy."""
        return self.executor.execute(text)

    def read_many(
        self, requests: Sequence[Tuple[str, str, MInterval]]
    ) -> Tuple[List[np.ndarray], RetrievalReport]:
        """Answer several (collection, object, region) reads as ONE batch.

        Inter-query scheduling (Kapitel 3.4.3): the tape requests of every
        query are merged and ordered together, so each medium is exchanged
        at most once per batch even when the queries interleave objects.
        Returns the per-request cell arrays and one combined cost report.
        """
        resolved: List[Tuple[MDD, MInterval]] = []
        for collection_name, object_name, region in requests:
            mdd = self.storage.collection(collection_name).get(object_name)
            self._record_access(mdd, region)
            resolved.append((mdd, region))
        # Same owned-pin attribution as read_with_report: pins taken on
        # the batch's behalf mid-assembly land on the batch's ticket.
        with self.tracer.span(
            "heaven.read_many", always=True, batch=len(requests)
        ) as span:
            ticket = self._stage_many(
                [
                    (mdd, [t.tile_id for t in mdd.tiles_for(region)])
                    for mdd, region in resolved
                ]
            )
            outer, self._active_ticket = self._active_ticket, ticket
            try:
                with self.tracer.span(
                    "heaven.assemble", batch=len(requests)
                ) as assemble_span:
                    outputs = [mdd.read(region) for mdd, region in resolved]
                self._observe_assemble_wall(assemble_span)
            finally:
                self._active_ticket = outer
                ticket.release()
        report = self._report_from_span(
            span,
            object_name=",".join(sorted({m.name for m, _r in resolved})),
            region=f"batch of {len(requests)}",
            tiles_needed=sum(
                len(mdd.tiles_for(region)) for mdd, region in resolved
            ),
            ticket=ticket,
            bytes_useful=sum(int(cells.nbytes) for cells in outputs),
            pins=ticket.pins,
        )
        self._note_degradation(report, [mdd for mdd, _region in resolved])
        return outputs, report

    def read_concurrent(
        self,
        requests: Sequence[Tuple[str, str, MInterval]],
        **controller_kwargs,
    ):
        """Answer several reads as *concurrent queries* through admission.

        Unlike :meth:`read_many` (one caller, one batch, one combined
        report) this spins up one query task per request, runs them under
        the cooperative round-robin stepper of
        :class:`~repro.core.admission.AdmissionController`, and returns
        per-query cell arrays plus a
        :class:`~repro.core.admission.MultiQueryReport` with per-query
        cost reports and fusion accounting.  Keyword arguments are passed
        to the controller (``holdback_s``, ``aging_bound_s``,
        ``schedule_seed``, …).
        """
        from .admission import AdmissionController, QuerySpec

        controller = AdmissionController(self, **controller_kwargs)
        specs = [
            QuerySpec(collection=c, object_name=o, region=r)
            for c, o, r in requests
        ]
        return controller.run(specs)

    def prepare_region(self, mdd: MDD, region: MInterval) -> StagingTicket:
        """Batch-stage every super-tile the region needs.

        Returns the batch's :class:`StagingTicket`; the caller must
        :meth:`~StagingTicket.release` it after assembling the region.
        Objects not archived need no staging (their tiles live on disk)
        and get an empty ticket.
        """
        entry = self._archived.get(mdd.name)
        if entry is None:
            return StagingTicket(cache=self.disk_cache)
        needed_tiles = [t.tile_id for t in mdd.tiles_for(region)]
        return self._stage_tiles(mdd, needed_tiles)

    # ------------------------------------------------------------------ service units

    def describe_object(
        self, collection_name: str, object_name: str
    ) -> ObjectDescriptor:
        """Shardable metadata of one object for the SN/DN service tier.

        A service node routes tiles by :meth:`ObjectDescriptor.shard_key`:
        archived tiles hash by their super-tile segment name (so a whole
        super-tile lands on one data node and its tape run is never split),
        disk-resident tiles by a synthetic per-tile key.
        """
        mdd = self.storage.collection(collection_name).get(object_name)
        entry = self._archived.get(object_name)
        tile_segments: Dict[int, str] = {}
        if entry is not None:
            for tile_id, super_tile in entry.tile_to_st.items():
                if super_tile.segment_name is not None:
                    tile_segments[tile_id] = super_tile.segment_name
        return ObjectDescriptor(
            collection=collection_name,
            name=object_name,
            domain=str(mdd.domain),
            dtype=mdd.cell_type.name,
            tile_domains=tuple(
                str(mdd.tiles[tile_id].domain) for tile_id in sorted(mdd.tiles)
            ),
            tile_segments=tile_segments,
            archived=entry is not None,
        )

    def serve_sub_read(self, request: SubReadRequest) -> SubReadResponse:
        """Answer one serializable sub-read unit (see :mod:`.units`)."""
        return self.serve_sub_reads([request])[0]

    def serve_sub_reads(
        self, requests: Sequence[SubReadRequest]
    ) -> List[SubReadResponse]:
        """Answer a batch of sub-read units over ONE scheduled staging pass.

        This is the data-node entry of the service tier: the batch's tile
        demands are merged into a single :meth:`_stage_many` pass (fused
        sweeps, pinned segments, capacity waves), then each unit's tiles
        are materialised into zero-copy payload views.  The returned stats
        carry batch-wide staging totals on every member (``shared=True``
        for batches of more than one unit); exact per-unit attribution is
        the admission layer's job (:meth:`AdmissionController.run_units`).
        """
        resolved: List[Tuple[SubReadRequest, MDD, List[int]]] = []
        for request in requests:
            mdd = self.storage.collection(request.collection).get(
                request.object_name
            )
            region = request.parsed_region()
            self._record_access(mdd, region)
            if request.tile_ids is None:
                tile_ids = [t.tile_id for t in mdd.tiles_for(region)]
            else:
                for tile_id in request.tile_ids:
                    if tile_id not in mdd.tiles:
                        raise HeavenError(
                            f"object {request.object_name!r} has no tile "
                            f"{tile_id}"
                        )
                tile_ids = sorted(request.tile_ids)
            resolved.append((request, mdd, tile_ids))
        with self.tracer.span(
            "heaven.serve_units", always=True, batch=len(requests)
        ) as span:
            ticket = self._stage_many(
                [(mdd, tile_ids) for _req, mdd, tile_ids in resolved]
            )
            outer, self._active_ticket = self._active_ticket, ticket
            responses: List[SubReadResponse] = []
            try:
                with self.tracer.span(
                    "heaven.assemble", batch=len(requests)
                ) as assemble_span:
                    for request, mdd, tile_ids in resolved:
                        tiles = [
                            TilePayload.from_cells(
                                tile_id,
                                mdd.tiles[tile_id].domain,
                                mdd.cell_type,
                                mdd.materialize_tile(mdd.tiles[tile_id]),
                            )
                            for tile_id in tile_ids
                        ]
                        responses.append(
                            SubReadResponse(
                                request_id=request.request_id,
                                object_name=request.object_name,
                                region=request.region,
                                dtype=mdd.cell_type.name,
                                tiles=tiles,
                            )
                        )
                self._observe_assemble_wall(assemble_span)
            finally:
                self._active_ticket = outer
                ticket.release()
        stats = SubReadStats(
            bytes_from_tape=max(span.bytes_in("read"), ticket.bytes_from_tape),
            exchanges=span.count("load"),
            virtual_seconds=span.virtual_elapsed,
            faults=span.count("fault"),
            restages=span.count("restage"),
            super_tiles_staged=ticket.staged,
            shared=len(requests) > 1,
        )
        tiles_needed = 0
        bytes_useful = 0
        for response in responses:
            per_unit = SubReadStats(**{**stats.__dict__})
            per_unit.bytes_useful = sum(t.nbytes for t in response.tiles)
            response.stats = per_unit
            tiles_needed += len(response.tiles)
            bytes_useful += per_unit.bytes_useful
        self.read_tiles_needed += tiles_needed
        self.read_bytes_useful += bytes_useful
        if self.instruments is not None:
            self.instruments.observe_read(
                stats.virtual_seconds,
                stats.bytes_from_tape,
                wall_seconds=span.wall_elapsed,
            )
        return responses

    # ------------------------------------------------------------------ staging

    def _stage_tiles(self, mdd: MDD, tile_ids: Sequence[int]) -> StagingTicket:
        """Stage and pin the super-tiles backing *tile_ids*.

        The returned ticket must be released once the tiles were read.
        """
        return self._stage_many([(mdd, tile_ids)])

    def _stage_many(
        self, pairs: Sequence[Tuple[MDD, Sequence[int]]]
    ) -> StagingTicket:
        """Batch-stage tiles of several objects in one scheduled tape pass.

        This is the inter-query scheduling path (Kapitel 3.4.3): requests
        of all queries in the batch are merged and ordered together, so
        each medium is exchanged at most once per batch.  Three guarantees
        keep the batch from defeating itself:

        * required byte runs are **merged per segment across the whole
          batch** before any request is built, so two queries sharing a
          super-tile trigger exactly one tape run covering both;
        * every segment the batch relies on is **pinned** — cache hits at
          planning time, fresh stages at insertion time — until the caller
          releases the returned ticket, so a later insertion of the same
          batch can never evict bytes whose tiles are still unread;
        * batches larger than the disk cache are admitted in
          capacity-sized **waves** (stage → materialise into the memory
          tile cache → unpin) instead of thrashing through per-tile
          restages.
        """
        ticket = StagingTicket(cache=self.disk_cache)
        try:
            with self.tracer.span("heaven.stage") as stage_span:
                with self.tracer.span("cache.lookup"):
                    needs = self.collect_needs(pairs)
                    requests = self.plan_requests(needs, ticket)
                if requests:
                    self.execute_staging(requests, needs, ticket)
                stage_span.set(
                    super_tiles=ticket.staged,
                    bytes_from_tape=ticket.bytes_from_tape,
                    waves=ticket.waves,
                    pins=ticket.pins,
                )
            self._observe_stage_wall(stage_span)
        except BaseException:
            ticket.release()
            raise
        return ticket

    # The three resumable staging units below used to be one private
    # pipeline inside ``_stage_many``.  They are public so the admission
    # layer (:mod:`repro.core.admission`) can collect demands per query,
    # fuse them across queries, and only then plan + execute one shared
    # sweep — without duplicating the pin/wave machinery.

    def collect_needs(
        self, pairs: Sequence[Tuple[MDD, Sequence[int]]]
    ) -> Dict[str, _SegmentNeed]:
        """Merge the needed tiles of the whole batch per tape segment.

        Merging *before* planning (instead of first-request-wins) is what
        turns a shared super-tile into one covering run even when two
        batch queries need disjoint tiles of it.

        The memory tile cache short-circuits staging only at segment
        granularity: a segment is skipped when *every* needed tile is
        already decoded in memory.  A partially-cached segment keeps all
        its needed tiles in the merged run — the memory cache is volatile
        (an eviction mid-assemble would narrow-miss the staged run and
        defeat the pin guarantee), the pinned disk run is not.
        """
        needs: Dict[str, _SegmentNeed] = {}
        stageable: set = set()
        for mdd, tile_ids in pairs:
            entry = self._archived.get(mdd.name)
            if entry is None or entry.disk_copy:
                continue  # disk-resident (or dual-resident): nothing to stage
            for tile_id in tile_ids:
                super_tile = entry.super_tile_of(tile_id)
                assert super_tile.segment_name is not None
                key = super_tile.segment_name
                need = needs.get(key)
                if need is None:
                    need = needs[key] = _SegmentNeed(super_tile, entry, mdd)
                if tile_id not in need.tile_ids:
                    need.tile_ids.append(tile_id)
                    if self.memory_cache.get(mdd.name, tile_id) is None:
                        stageable.add(key)
        return {key: need for key, need in needs.items() if key in stageable}

    def plan_requests(
        self, needs: Dict[str, _SegmentNeed], ticket: StagingTicket
    ) -> List[TapeRequest]:
        """Turn merged needs into tape requests; pin covering cache hits."""
        requests: List[TapeRequest] = []
        for key, need in needs.items():
            entry = need.entry
            run = self._required_run(need.super_tile, need.tile_ids)
            if self.disk_cache.lookup(key):
                cached = entry.staged_runs.get(key)
                if cached is not None and self._covers(cached, run):
                    # Hit: pin it so later insertions of this very batch
                    # cannot evict it before its tiles are assembled.
                    self.disk_cache.pin(key)
                    ticket.pinned.append(key)
                    ticket.pins += 1
                    need.run = cached
                    continue
                # Cached run too small: restage the contiguous union of
                # cached and needed (never more than the segment).
                self.disk_cache.invalidate(key)
                entry.staged_runs.pop(key, None)
                if cached is not None:
                    start = min(cached[0], run[0])
                    end = max(cached[0] + cached[1], run[0] + run[1])
                    run = (start, end - start)
            medium_id, segment = self.library.segment(key)
            need.run = run
            requests.append(
                TapeRequest(
                    key=key,
                    medium_id=medium_id,
                    offset=segment.offset + run[0],
                    length=run[1],
                )
            )
        if self.config.prefetch == "sequential":
            self._add_prefetch(requests, needs)
        return requests

    def execute_staging(
        self,
        requests: Sequence[TapeRequest],
        needs: Dict[str, _SegmentNeed],
        ticket: StagingTicket,
    ) -> None:
        """Order planned *requests* and stream them in capacity-sized waves.

        The execution half of the staging pipeline: scheduler ordering
        (elevator sweeps per medium) followed by pinned wave admission.
        Callers that fused demands across queries pass the merged *needs*
        here unchanged; per-query attribution of the shared bytes happens
        on their side via
        :func:`~repro.core.scheduler.attribute_request_bytes`.
        """
        with self.tracer.span("scheduler.plan", requests=len(requests)):
            ordered = self.scheduler.order(list(requests), self.library)
        self._stage_in_waves(ordered, needs, ticket)

    def _stage_in_waves(
        self,
        ordered: Sequence[TapeRequest],
        needs: Dict[str, _SegmentNeed],
        ticket: StagingTicket,
    ) -> None:
        """Execute scheduler-ordered requests in capacity-sized waves.

        Waves cut the ordered request stream greedily at the cache's free
        budget (capacity minus currently pinned bytes), preserving the
        scheduler's order so the mount-once property of the batch
        survives.  Every non-final wave materialises its tiles into the
        memory tile cache and unpins before the next wave claims the
        space; the final wave's pins ride on the ticket until the caller
        assembled its tiles.
        """
        capacity = self.disk_cache.capacity_bytes
        index, total = 0, len(ordered)
        with self.tracer.span("library.stage", requests=total):
            while index < total:
                budget = max(0, capacity - self.disk_cache.pinned_bytes)
                wave: List[TapeRequest] = []
                wave_bytes = 0
                while index < total:
                    request = ordered[index]
                    if wave and wave_bytes + request.length > budget:
                        break
                    wave.append(request)
                    wave_bytes += request.length
                    index += 1
                ticket.waves += 1
                self.staging_waves_admitted += 1
                staged_keys = self._stage_wave(wave, needs, ticket)
                if index < total:
                    self._drain_wave(staged_keys, needs, ticket)
        ticket.staged = total
        self.segments_staged += total

    def _stage_wave(
        self,
        wave: Sequence[TapeRequest],
        needs: Dict[str, _SegmentNeed],
        ticket: StagingTicket,
    ) -> List[str]:
        """Stream one wave of requests from tape into the disk cache.

        With ``config.parallel_drives > 1`` (and a library that has the
        stations) the wave is dispatched through the
        :class:`~repro.core.scheduler.ParallelExecutor`: one virtual
        timeline per drive, whole-media sweeps, the robot arm serialised
        across timelines, and landing (:meth:`_land_staged`) pipelined on
        the assembly timeline while the drives stream on.  The serial
        path stays byte-for-byte what it always was.
        """
        staged_keys: List[str] = []
        if self.config.parallel_drives > 1 and len(self.library.drives) > 1:
            executor = ParallelExecutor(
                self.library,
                num_drives=self.config.parallel_drives,
                tracer=self.tracer,
            )
            report = executor.execute(
                wave,
                on_staged=lambda request: self._land_staged(
                    request, needs, ticket, staged_keys
                ),
            )
            self.parallel_batches += 1
            self.parallel_makespan_seconds += report.makespan_seconds
            self.parallel_device_seconds += report.serial_device_seconds
            return staged_keys
        for request in wave:
            self.library.read_extent(
                request.medium_id, request.offset, request.length
            )
            self._land_staged(request, needs, ticket, staged_keys)
        return staged_keys

    def _land_staged(
        self,
        request: TapeRequest,
        needs: Dict[str, _SegmentNeed],
        ticket: StagingTicket,
        staged_keys: List[str],
    ) -> None:
        """Land one streamed request in the cache hierarchy.

        The post-tape half of staging: the HSM double hop, the disk-cache
        insertion (pinned) and the bookkeeping.  Serial staging calls it
        right after ``read_extent``; the parallel executor calls it on the
        assembly timeline, so the disk/HSM charges below overlap the
        drive streaming its next run.
        """
        need = needs[request.key]
        run_start, run_length = need.run
        if self.hsm_staging is not None:
            # Double hop: the HSM lands the file in its own staging
            # area before HEAVEN can copy it into the cache hierarchy.
            self.hsm_staging.write(
                run_length, detail=f"hsm stage {request.key}"
            )
            self.hsm_staging.read(
                run_length, detail=f"hsm serve {request.key}"
            )
        payload = self._segment_payload(request.key, run_start, run_length)
        refetch = self._refetch_cost(run_length)
        ticket.bytes_from_tape += request.length
        if need.prefetch:
            # Prefetch is opportunistic: never pinned, and simply
            # dropped when the cache cannot take it (pinned residue
            # or a run larger than the whole cache).
            try:
                self.disk_cache.insert(
                    request.key, run_length, refetch, payload=payload
                )
            except CacheError:
                return
            need.entry.staged_runs[request.key] = need.run
            return
        try:
            self.disk_cache.insert(
                request.key, run_length, refetch, payload=payload, pin=True
            )
        except CacheError:
            # The cache cannot take this run — every byte is pinned by
            # in-flight batches, or the run alone exceeds the whole
            # capacity.  It is already streamed, so decode its tiles
            # straight into the memory cache instead of dropping the
            # bytes.
            self._materialize_from_run(need, payload)
            return
        ticket.pinned.append(request.key)
        ticket.pins += 1
        need.entry.staged_runs[request.key] = need.run
        staged_keys.append(request.key)

    def _materialize_from_run(
        self, need: _SegmentNeed, payload: Optional[Union[bytes, memoryview]]
    ) -> None:
        """Decode a streamed run's tiles directly into the memory cache.

        Degraded path for a fully-pinned disk cache: the tape bytes were
        paid for, so the tiles are salvaged even though the segment cannot
        be cached on disk.
        """
        run_start, _run_length = need.run
        arena = self._arena_for([need])
        self._decode_arena, outer_arena = arena, self._decode_arena
        try:
            for tile_id in need.tile_ids:
                tile = need.mdd.tiles[tile_id]
                offset, length = need.super_tile.tile_extents[tile_id]
                raw = None
                if payload is not None:
                    raw = payload[
                        offset - run_start : offset - run_start + length
                    ]
                cells = self._decode_tile(need.entry, need.mdd, tile, raw)
                self._cache_tile(need.mdd, tile, cells)
        finally:
            self._decode_arena = outer_arena

    def _drain_wave(
        self,
        staged_keys: Sequence[str],
        needs: Dict[str, _SegmentNeed],
        ticket: StagingTicket,
    ) -> None:
        """Materialise a finished wave's tiles, then release its pins.

        With a codec that decodes natively into caller buffers, the
        whole wave decompresses into one wave-scoped arena
        (:class:`_DecodeArena`) instead of a fresh allocation per tile;
        the arena dies with the wave, so the cached views can never alias
        a reused buffer.  The shipped codecs skip the arena (see
        :meth:`_arena_for`) and serve read-only views instead.
        """
        with self.tracer.span("heaven.drain", segments=len(staged_keys)):
            arena = self._arena_for([needs[key] for key in staged_keys])
            self._decode_arena, outer_arena = arena, self._decode_arena
            try:
                for key in staged_keys:
                    need = needs[key]
                    for tile_id in need.tile_ids:
                        self._resolve_tile(need.mdd, need.mdd.tiles[tile_id])
                    try:
                        self.disk_cache.unpin(key)
                    except CacheError:
                        pass  # invalidated while draining (shouldn't happen)
                    if key in ticket.pinned:
                        ticket.pinned.remove(key)
            finally:
                self._decode_arena = outer_arena

    def _arena_for(
        self, needs: Sequence[_SegmentNeed]
    ) -> Optional["_DecodeArena"]:
        """Size one decode arena for the compressed tiles of *needs*.

        ``None`` unless the codec decodes natively into caller buffers
        (``wants_decode_arena``) and something in the wave actually
        decompresses.  For the shipped codecs the view path wins
        everywhere: uncompressed payloads (and zlib stored frames) decode
        as views straight over the cached segment, and Python's zlib
        cannot inflate into an existing buffer — routing it through an
        arena was measured *slower* than ``decompress_view``.
        """
        if not self.codec.wants_decode_arena:
            return None
        total = 0
        for need in needs:
            if need.entry.stored_sizes is None:
                continue
            for tile_id in need.tile_ids:
                if not self.memory_cache.peek(need.mdd.name, tile_id):
                    total += need.mdd.tiles[tile_id].size_bytes
        return _DecodeArena(total) if total > 0 else None

    def _required_run(
        self, super_tile: SuperTile, needed: Sequence[int]
    ) -> Tuple[int, int]:
        if self.hsm_staging is not None:
            # HSM attachment: the file is the smallest unit of access.
            return (0, super_tile.size_bytes)
        if self.config.partial_super_tile_reads and needed:
            return super_tile.run_covering(list(needed))
        return (0, super_tile.size_bytes)

    @staticmethod
    def _covers(cached: Tuple[int, int], run: Tuple[int, int]) -> bool:
        return cached[0] <= run[0] and run[0] + run[1] <= cached[0] + cached[1]

    def _add_prefetch(
        self,
        requests: List[TapeRequest],
        needs: Dict[str, _SegmentNeed],
    ) -> None:
        """Sequential prefetch: also stage the next super-tile(s) in cluster
        order when they live on a medium the batch already mounts."""
        media_in_batch = {r.medium_id for r in requests}
        extra: List[TapeRequest] = []
        for request in list(requests):
            need = needs[request.key]
            entry = need.entry
            for step in range(1, self.config.prefetch_depth + 1):
                next_index = need.super_tile.index + step
                if next_index >= len(entry.super_tiles):
                    break
                neighbour = entry.super_tiles[next_index]
                key = neighbour.segment_name
                if key is None or key in needs:
                    continue
                if neighbour.medium_id not in media_in_batch:
                    continue
                if key in self.disk_cache:
                    continue
                medium_id, segment = self.library.segment(key)
                extra.append(
                    TapeRequest(
                        key=key,
                        medium_id=medium_id,
                        offset=segment.offset,
                        length=neighbour.size_bytes,
                    )
                )
                needs[key] = _SegmentNeed(
                    neighbour,
                    entry,
                    need.mdd,
                    run=(0, neighbour.size_bytes),
                    prefetch=True,
                )
        requests.extend(extra)

    def _segment_payload(
        self, key: str, run_start: int, run_length: int
    ) -> Optional[memoryview]:
        """Read-only view of a segment run's bytes (zero-copy).

        The library keeps segment payloads as immutable ``bytes``; a
        sliced view of them is what lands in the disk cache, so staging a
        run never duplicates the streamed bytes in host memory.
        """
        medium_id = self.library.locate(key)
        payload = self.library.medium(medium_id).payload(key)
        if payload is None:
            return None
        return memoryview(payload)[run_start : run_start + run_length].toreadonly()

    def _refetch_cost(self, nbytes: int) -> float:
        """Estimated tape cost to re-stage *nbytes* (feeds the GDS policy)."""
        profile = self.config.tape_profile
        return (
            profile.full_exchange_time()
            + profile.avg_seek_time_s / 2.0
            + profile.transfer_time(nbytes)
        )

    def _on_cache_evict(self, key: str) -> None:
        for entry in self._archived.values():
            entry.staged_runs.pop(key, None)

    # ------------------------------------------------------------------ resolver

    def _resolve_tile(self, mdd: MDD, tile: Tile) -> np.ndarray:
        """Tile resolver installed on archived objects.

        Memory cache → (disk copy, when dual-resident) → disk cache →
        (stage from tape, then disk cache).
        """
        cached = self.memory_cache.get(mdd.name, tile.tile_id)
        if cached is not None:
            return cached
        entry = self._archived.get(mdd.name)
        if entry is None:
            raise HeavenError(f"resolver called for unarchived object {mdd.name!r}")
        if entry.disk_copy:
            # Dual residence (keep_disk_copy=True): the faster copy wins.
            assert mdd.oid is not None
            raw = self.db.blobs.get(self.storage.blob_oid_of(mdd.oid, tile.tile_id))
            if raw is not None:
                # Zero-copy: ``bytes`` BLOBs are immutable, so the
                # frombuffer view is read-only by construction.
                cells = np.frombuffer(raw, dtype=mdd.cell_type.dtype).reshape(
                    tile.domain.shape
                )
            elif mdd.source is not None:
                cells = mdd.source.region(tile.domain, mdd.cell_type)
            else:
                raise HeavenError(
                    f"tile {tile.tile_id} of {mdd.name!r}: disk copy holds no "
                    "payload and no source exists"
                )
            return self._cache_tile(mdd, tile, cells)
        super_tile = entry.super_tile_of(tile.tile_id)
        key = super_tile.segment_name
        assert key is not None
        run = entry.staged_runs.get(key)
        tile_offset, tile_length = super_tile.tile_extents[tile.tile_id]
        in_cache = key in self.disk_cache and run is not None and self._covers(
            run, (tile_offset, tile_length)
        )
        ticket: Optional[StagingTicket] = None
        if not in_cache:
            # Fallback: the segment is gone (or its run too narrow) even
            # though batch staging ran — the thrash class the pinned
            # pipeline exists to prevent.  Count it and leave a marker
            # event so span windows and CI can see it.
            self.restages += 1
            self.clock.charge(
                0.0, "restage", "heaven-cache",
                detail=f"{key}:{tile.tile_id}",
            )
            # Pins this fallback takes belong to the read being assembled;
            # the stats delta is exact because nothing else can run inside
            # this synchronous call.
            repin_base = self.disk_cache.stats.pins
            try:
                ticket = self._stage_tiles(mdd, [tile.tile_id])
            except CachePinnedError:
                ticket = None
            else:
                run = entry.staged_runs.get(key)
                if run is None or not self._covers(
                    run, (tile_offset, tile_length)
                ):
                    # Either the staging wave degraded (cache fully pinned,
                    # tile materialised straight into the memory cache) or
                    # the re-staged run landed narrower/shifted — e.g. an
                    # interleaved batch re-planned the segment around its
                    # own tiles.  Reading through a non-covering run would
                    # compute a negative in-run offset (CacheError) or,
                    # worse, silently decode the wrong bytes.
                    ticket.release()
                    ticket = None
            finally:
                owner = self._active_ticket
                if owner is not None:
                    owner.pins += self.disk_cache.stats.pins - repin_base
            if ticket is None:
                cached = self.memory_cache.get(mdd.name, tile.tile_id)
                if cached is not None:
                    return cached
                # Last resort: stream just this tile's extent off tape,
                # bypassing the disk cache entirely.
                medium_id, _segment = self.library.segment(key)
                self.library.read_extent(
                    medium_id, _segment.offset + tile_offset, tile_length
                )
                raw = self._segment_payload(key, tile_offset, tile_length)
                cells = self._decode_tile(entry, mdd, tile, raw)
                return self._cache_tile(mdd, tile, cells)
        try:
            assert run is not None
            raw = self.disk_cache.read(key, tile_offset - run[0], tile_length)
            cells = self._decode_tile(entry, mdd, tile, raw)
        finally:
            if ticket is not None:
                ticket.release()
        return self._cache_tile(mdd, tile, cells)

    def _cache_tile(
        self, mdd: MDD, tile: Tile, cells: np.ndarray
    ) -> np.ndarray:
        """Freeze *cells* into the memory tile cache; return the frozen array.

        The cache owns freezing (see :meth:`MemoryTileCache.put`); when it
        had to snapshot a writable view to freeze safely, the snapshot —
        not the caller's writable alias — is what resolver callers must
        see, and the copied bytes are charged to the zero-copy counter.
        """
        stored = self.memory_cache.put(mdd.name, tile.tile_id, cells)
        if stored is not cells:
            self.assembly_bytes_copied += int(stored.nbytes)
        return stored

    def _decode_tile(
        self,
        entry: ArchivedObject,
        mdd: MDD,
        tile: Tile,
        raw: Optional[Union[bytes, memoryview]],
    ) -> np.ndarray:
        """Decode one tile's staged bytes (or regenerate from its source).

        Zero-copy: the returned array is a **read-only view** — over the
        cache-owned segment bytes for uncompressed payloads, over the
        codec's freshly-decompressed buffer (or the active wave arena)
        otherwise.  No defensive copy: the buffers underneath are either
        immutable (``bytes``/read-only ``memoryview``) or exclusively
        owned by this decode.
        """
        if raw is not None:
            if entry.stored_sizes is not None:
                arena = self._decode_arena
                out = (
                    arena.carve(tile.size_bytes) if arena is not None else None
                )
                if out is not None:
                    self.codec.decompress_into(raw, out)
                    view: Union[bytes, memoryview] = out.toreadonly()
                else:
                    view = self.codec.decompress_view(raw, tile.size_bytes)
            elif isinstance(raw, memoryview):
                view = raw.toreadonly()
            else:
                view = raw  # bytes: immutable already
            return np.frombuffer(view, dtype=mdd.cell_type.dtype).reshape(
                tile.domain.shape
            )
        if mdd.source is not None:
            return mdd.source.region(tile.domain, mdd.cell_type)
        raise HeavenError(
            f"tile {tile.tile_id} of {mdd.name!r}: payload not retained and "
            "no source to regenerate from"
        )

    # ------------------------------------------------------------------ lifecycle

    def delete(self, collection_name: str, object_name: str) -> None:
        """Delete an object everywhere: caches, tape segments, catalogs."""
        entry = self._archived.pop(object_name, None)
        if entry is not None:
            for super_tile in entry.super_tiles:
                if super_tile.segment_name is not None:
                    if super_tile.segment_name in self.disk_cache:
                        self.disk_cache.invalidate(super_tile.segment_name)
                    self.library.delete_segment(super_tile.segment_name)
            self.memory_cache.invalidate_object(object_name)
            self.precomputed.drop_object(object_name)
            self.pyramids.drop_object(object_name)
            entry.mdd.resolver = None
            entry.mdd.prepare_read = None
        self.storage.delete_object(collection_name, object_name)

    def update(
        self,
        collection_name: str,
        object_name: str,
        region: MInterval,
        cells: np.ndarray,
    ) -> int:
        """Update a region of an archived object; returns re-exported count.

        Affected super-tiles are staged, patched in memory, re-exported as
        fresh segments (tape is append-only; old segments become dead
        space), and all cache levels plus the aggregate catalog refresh.
        """
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        entry = self._archived.get(object_name)
        if entry is None:
            mdd.write(region, cells)
            # Persist the change: a later archive assembles segments from
            # the tile BLOBs, not the in-memory payloads, so an update
            # left only in memory would be silently lost at export time.
            self._refresh_disk_blobs(
                mdd, [t.tile_id for t in mdd.tiles_for(region)]
            )
            return 0
        affected = {t.tile_id for t in mdd.tiles_for(region)}
        affected_sts = {entry.super_tile_of(t).index for t in affected}
        # Stage and materialise every tile of the affected super-tiles.
        tiles_to_load = [
            tile_id
            for st_index in affected_sts
            for tile_id in entry.super_tiles[st_index].tile_ids
        ]
        ticket = self._stage_tiles(mdd, tiles_to_load)
        try:
            for tile_id in tiles_to_load:
                tile = mdd.tiles[tile_id]
                # The resolver's arrays are frozen; set_payload snapshots
                # non-writable input itself, so no defensive copy here.
                tile.set_payload(self._resolve_tile(mdd, tile))
        finally:
            ticket.release()
        mdd.write(region, cells)
        # Re-export affected super-tiles as fresh segments.
        compressing = entry.stored_sizes is not None
        entry.version += 1
        for st_index in sorted(affected_sts):
            super_tile = entry.super_tiles[st_index]
            old_key = super_tile.segment_name
            assert old_key is not None
            if old_key in self.disk_cache:
                self.disk_cache.invalidate(old_key)
            entry.staged_runs.pop(old_key, None)
            self.library.delete_segment(old_key)
            parts: List[bytes] = []
            sizes: Dict[int, int] = {}
            for tile_id in super_tile.tile_ids:
                tile = mdd.tiles[tile_id]
                raw = None
                if self.config.retain_payload:
                    raw = np.ascontiguousarray(
                        tile.payload, dtype=mdd.cell_type.dtype
                    ).tobytes()
                if compressing:
                    if raw is not None:
                        raw = self.codec.compress(raw)
                        sizes[tile_id] = len(raw)
                    else:
                        sizes[tile_id] = self.codec.stored_size(
                            tile.size_bytes, None
                        )
                    assert entry.stored_sizes is not None
                    entry.stored_sizes[tile_id] = sizes[tile_id]
                else:
                    sizes[tile_id] = tile.size_bytes
                if raw is not None:
                    parts.append(raw)
            super_tile.size_bytes = sum(sizes.values())
            super_tile.assign_extents(sizes)
            payload = b"".join(parts) if parts else None
            # Version the name off the object's monotonic update counter:
            # stable length, collision-free even with zero elapsed
            # virtual time between exports.
            new_key = f"{_VERSION_RE.sub('', old_key)}.v{entry.version}"
            medium_id, _segment = self.library.write_segment(
                new_key, super_tile.size_bytes, payload=payload
            )
            super_tile.segment_name = new_key
            super_tile.medium_id = medium_id
        if entry.disk_copy:
            # Dual residence: refresh the disk copy's tile BLOBs too.
            self._refresh_disk_blobs(mdd, tiles_to_load)
        # Pyramid levels over the old cells are stale now.
        self.pyramids.invalidate(object_name)
        # Refresh caches and aggregates.
        for tile_id in tiles_to_load:
            self.memory_cache.put(
                mdd.name, tile_id, mdd.tiles[tile_id].payload
            )
            if self.config.precompute_aggregates and mdd.cell_type.dtype.fields is None:
                self.precomputed.refresh_tile(mdd, tile_id)
        for tile_id in tiles_to_load:
            mdd.tiles[tile_id].drop_payload()
        return len(affected_sts)

    def _refresh_disk_blobs(self, mdd: MDD, tile_ids: Sequence[int]) -> None:
        """Rewrite the tile BLOBs of *tile_ids* from their current payloads."""
        assert mdd.oid is not None
        for tile_id in tile_ids:
            tile = mdd.tiles[tile_id]
            blob_payload = None
            if self.db.blobs.retain_payload:
                blob_payload = np.ascontiguousarray(
                    tile.payload, dtype=mdd.cell_type.dtype
                ).tobytes()
            new_blob = self.db.put_blob(blob_payload, size=tile.size_bytes)
            row = self.db.table("ras_tiles").find_pk(f"{mdd.oid}:{tile_id}")
            assert row is not None
            old_blob = row[1]["blob_oid"]
            self.db.update("ras_tiles", row[0], {"blob_oid": new_blob})
            if old_blob in self.db.blobs:
                self.db.delete_blob(old_blob)

    def reimport(self, collection_name: str, object_name: str) -> int:
        """Bring an archived object fully back to secondary storage.

        Stages every super-tile (scheduled), rewrites the tile BLOBs,
        releases the tape segments, and detaches the object from the tape
        hierarchy — so it can later be re-archived (possibly with fresher
        access statistics).  Returns the number of tiles re-imported.
        """
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        entry = self._archived.get(object_name)
        if entry is None:
            raise HeavenError(f"object {object_name!r} is not archived")
        all_tiles = sorted(mdd.tiles)
        ticket = self._stage_tiles(mdd, all_tiles)
        assert mdd.oid is not None
        try:
            for tile_id in all_tiles:
                tile = mdd.tiles[tile_id]
                cells = self._resolve_tile(mdd, tile)
                payload = None
                if self.db.blobs.retain_payload:
                    payload = np.ascontiguousarray(
                        cells, dtype=mdd.cell_type.dtype
                    ).tobytes()
                new_blob = self.db.put_blob(payload, size=tile.size_bytes)
                row = self.db.table("ras_tiles").find_pk(f"{mdd.oid}:{tile_id}")
                assert row is not None
                self.db.update("ras_tiles", row[0], {"blob_oid": new_blob})
        finally:
            ticket.release()
        for super_tile in entry.super_tiles:
            if super_tile.segment_name is not None:
                if super_tile.segment_name in self.disk_cache:
                    self.disk_cache.invalidate(super_tile.segment_name)
                self.library.delete_segment(super_tile.segment_name)
                super_tile.segment_name = None
                super_tile.medium_id = None
        del self._archived[object_name]
        mdd.resolver = self.storage._make_resolver(mdd.oid)
        mdd.prepare_read = None
        self.memory_cache.invalidate_object(object_name)
        return len(all_tiles)

    # ------------------------------------------------------------------ hooks

    def _scale_hook(self, ref: MDDRef, factors):
        """Query-executor hook: answer scale() from a pyramid level.

        The level is disk-resident (materialised at archive time); serving
        it charges one disk read of the answer's bytes.
        """
        if not self.is_archived(ref.mdd.name):
            return None
        answer = self.pyramids.try_answer(ref, factors)
        if answer is not None:
            self.db.blobs.disk.read(
                int(answer.cells.nbytes), detail=f"pyramid {ref.mdd.name}"
            )
        return answer

    def _condenser_hook(self, name: str, ref: MDDRef):
        """Query-executor hook: try the precomputed catalog first."""
        if not self.is_archived(ref.mdd.name):
            return None
        return self.precomputed.try_answer(
            name,
            ref,
            prepare=lambda mdd, tile_ids: self._stage_tiles(mdd, tile_ids).release,
        )

    def _frame_extension(self, _executor: QueryExecutor, args: List) -> MArray:
        """``frame(obj, "lo:hi,lo:hi; lo:hi,lo:hi")`` query function."""
        if len(args) != 2 or not isinstance(args[0], MDDRef) or not isinstance(args[1], str):
            raise HeavenError('frame() expects (object, "box; box; ...")')
        ref: MDDRef = args[0]
        frame = MultiBoxFrame.parse(args[1])
        entry = self._archived.get(ref.mdd.name)
        ticket: Optional[StagingTicket] = None
        if entry is not None:
            needed = tiles_in_frame(ref.mdd, frame)
            ticket = self._stage_tiles(ref.mdd, [t.tile_id for t in needed])
        try:
            framed, _mask = _read_frame(ref.mdd, frame)
        finally:
            if ticket is not None:
                ticket.release()
        return framed

    # ------------------------------------------------------------------ statistics

    STATS_TABLE = "heaven_access_stats"

    def persist_access_statistics(self) -> int:
        """Write the collected access statistics into the DBMS catalog.

        eSTAR's adaptivity then survives sessions: a fresh HEAVEN instance
        over the same base DBMS restores the profile and clusters new
        archives accordingly.  Returns the number of objects persisted.
        """
        from ..dbms import Column, ColumnType

        if self.STATS_TABLE not in self.db.tables():
            self.db.create_table(
                self.STATS_TABLE,
                [
                    Column("object_name", ColumnType.TEXT, nullable=False),
                    Column("queries", ColumnType.INTEGER, nullable=False),
                    Column("bytes_sum", ColumnType.REAL, nullable=False),
                    Column("fractions", ColumnType.TEXT, nullable=False),
                ],
                primary_key="object_name",
            )
        self.db.delete_rows(self.STATS_TABLE, lambda _row: True)
        for object_name, stats in self.access_stats.items():
            self.db.insert(
                self.STATS_TABLE,
                {
                    "object_name": object_name,
                    "queries": stats.queries,
                    "bytes_sum": stats.bytes_sum,
                    "fractions": ",".join(str(f) for f in stats.fraction_sums),
                },
            )
        return len(self.access_stats)

    def restore_access_statistics(self) -> int:
        """Load persisted access statistics from the DBMS catalog."""
        if self.STATS_TABLE not in self.db.tables():
            return 0
        restored = 0
        for row in self.db.select(self.STATS_TABLE):
            fractions = [float(f) for f in row["fractions"].split(",") if f]
            stats = AccessStatistics(
                dimension=len(fractions),
                queries=row["queries"],
                fraction_sums=fractions,
                bytes_sum=row["bytes_sum"],
            )
            self.access_stats[row["object_name"]] = stats
            restored += 1
        return restored

    def _record_access(self, mdd: MDD, region: MInterval) -> None:
        stats = self.access_stats.get(mdd.name)
        if stats is None:
            stats = AccessStatistics(dimension=mdd.dimension)
            self.access_stats[mdd.name] = stats
        stats.record(region, mdd.domain, mdd.cell_type.size_bytes)

    # ------------------------------------------------------------------ reporting

    def assert_quiescent(self) -> None:
        """Raise :class:`HeavenError` unless the instance is at rest.

        Quiescence means no operation is in flight: every staging pin has
        been released (a leaked pin would silently shrink the evictable
        cache forever), no parallel-staging timeline is still active on
        the clock, and neither cache tier holds more bytes than its
        capacity.  The simulation harness checks this between operations;
        it is also a useful sanity probe after any synchronous API call.
        """
        pinned = self.disk_cache.pinned_keys()
        if pinned:
            raise HeavenError(
                f"not quiescent: {len(pinned)} disk-cache key(s) still "
                f"pinned: {pinned[:5]}"
            )
        if self.clock.active_timeline is not None:
            raise HeavenError(
                "not quiescent: a parallel-staging timeline is still "
                "active on the clock"
            )
        if self.disk_cache.used_bytes > self.disk_cache.capacity_bytes:
            raise HeavenError(
                f"not quiescent: disk cache holds {self.disk_cache.used_bytes} "
                f"bytes > capacity {self.disk_cache.capacity_bytes}"
            )
        if self.memory_cache.used_bytes > self.memory_cache.capacity_bytes:
            raise HeavenError(
                f"not quiescent: memory cache holds "
                f"{self.memory_cache.used_bytes} bytes > capacity "
                f"{self.memory_cache.capacity_bytes}"
            )

    def snapshot(self) -> Dict[str, object]:
        """One-stop status snapshot for reports and examples."""
        library = self.library.stats()
        return {
            "virtual_seconds": self.clock.now,
            "archived_objects": sorted(self._archived),
            "library": library,
            "disk_cache": self.disk_cache.stats,
            "memory_cache": self.memory_cache.stats,
            "precomputed": self.precomputed.stats,
            "time_breakdown": self.clock.log.breakdown(),
        }
