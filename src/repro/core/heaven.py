"""The HEAVEN façade: one object fusing the array DBMS with tertiary storage.

This is the system of the dissertation's title.  It owns the base DBMS, the
array storage manager, the tape library, the caches, the scheduler, access
statistics and the precomputed-results catalog, and exposes the user-facing
operations:

* ``create_collection`` / ``insert`` — classic DBMS ingestion (disk),
* ``archive`` — migrate an object to tape as clustered super-tiles
  (STAR/eSTAR + intra/inter clustering + decoupled TCT export),
* ``read`` / ``read_frame`` / ``query`` — transparent retrieval across the
  whole hierarchy (memory cache → disk cache → scheduled tape access),
* ``delete`` / ``update`` / ``reimport`` — the archive lifecycle
  (Kapitel 3.5).

Queries never mention storage: an archived object answers exactly like a
disk-resident one, only the simulated clock knows the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arrays.mdd import MDD, Collection
from ..arrays.minterval import MInterval
from ..arrays.operations import MArray
from ..arrays.query.executor import MDDRef, MutationHooks, QueryExecutor, QueryResult
from ..arrays.storage import ArrayStorage
from ..arrays.tile import Tile
from ..dbms.engine import Database
from ..errors import HeavenError
from ..obs.instruments import HeavenInstruments
from ..obs.observability import Observability
from ..obs.trace import Span
from ..tertiary.clock import SimClock
from ..tertiary.disk import DiskDevice
from ..tertiary.library import TapeLibrary
from .cache import DiskCache, MemoryTileCache, make_policy
from .clustering import ClusteredPlacement, Placement, PlacementPolicy, ScatterPlacement
from .compression import Codec, make_codec
from .config import HeavenConfig
from .estar import AccessStatistics, estar_partition, intra_cluster_order
from .export import ExportReport, TCTExporter
from .framing import Frame, MultiBoxFrame, read_frame as _read_frame, tiles_in_frame
from .precomputed import PrecomputedCatalog
from .pyramid import PyramidCatalog
from .scheduler import ElevatorScheduler, FIFOScheduler, Scheduler, TapeRequest
from .super_tile import SuperTile, star_partition, tiles_to_super_tiles


@dataclass
class ArchivedObject:
    """Bookkeeping of one object migrated to tertiary storage."""

    mdd: MDD
    collection: str
    super_tiles: List[SuperTile]
    tile_to_st: Dict[int, SuperTile]
    disk_copy: bool = True
    #: per-tile on-tape sizes when compression is active (None = logical)
    stored_sizes: Optional[Dict[int, int]] = None
    #: byte run of each staged segment currently in the disk cache
    staged_runs: Dict[str, Tuple[int, int]] = field(default_factory=dict)

    def super_tile_of(self, tile_id: int) -> SuperTile:
        try:
            return self.tile_to_st[tile_id]
        except KeyError:
            raise HeavenError(
                f"tile {tile_id} of {self.mdd.name!r} has no super-tile"
            ) from None


@dataclass
class RetrievalReport:
    """Cost summary of one hierarchical read."""

    object_name: str
    region: str
    tiles_needed: int = 0
    super_tiles_staged: int = 0
    bytes_from_tape: int = 0
    bytes_useful: int = 0
    exchanges: int = 0
    virtual_seconds: float = 0.0
    #: injected hardware faults hit while serving this read
    faults: int = 0
    #: backoff delays charged by the recovery layer during this read
    backoffs: int = 0
    #: read of a tape-resident object served entirely from the cache
    #: hierarchy while the library was offline (graceful degradation)
    degraded: bool = False

    @property
    def useless_ratio(self) -> float:
        if self.bytes_from_tape == 0:
            return 0.0
        return 1.0 - self.bytes_useful / self.bytes_from_tape


class Heaven:
    """Hierarchical storage and archive environment for array DBMSs."""

    def __init__(
        self,
        config: Optional[HeavenConfig] = None,
        observability: Union[None, bool, Observability] = None,
    ) -> None:
        self.config = config if config is not None else HeavenConfig()
        self.clock = SimClock(max_events=self.config.event_log_max_events)
        # Observability knob: None follows REPRO_TRACE, a bool switches it
        # explicitly, a prebuilt Observability is adopted (rebound to this
        # instance's clock).  Disabled, every span below is a shared no-op.
        if observability is None:
            self.obs = Observability.from_env(self.clock)
        elif isinstance(observability, Observability):
            self.obs = observability
            self.obs.bind_clock(self.clock)
        else:
            self.obs = Observability(enabled=bool(observability), clock=self.clock)
        self.tracer = self.obs.tracer
        self.db = Database(
            self.clock,
            self.config.disk_profile,
            retain_payload=self.config.retain_payload,
        )
        self.storage = ArrayStorage(self.db)
        self.library = TapeLibrary(
            self.config.tape_profile,
            num_drives=self.config.num_drives,
            clock=self.clock,
            retain_payload=self.config.retain_payload,
            faults=self.config.fault_plan,
            retry=self.config.retry_policy,
        )
        self.disk_cache = DiskCache(
            self.config.disk_cache_bytes,
            make_policy(self.config.disk_cache_policy),
            self.config.disk_profile,
            self.clock,
            on_evict=self._on_cache_evict,
        )
        self.memory_cache = MemoryTileCache(self.config.memory_cache_bytes)
        #: extra staging disk of the HSM when attached through one
        #: (Kapitel 3.1.1); None in direct drive attachment (3.1.2).
        self.hsm_staging = (
            DiskDevice("hsm-staging", self.config.disk_profile, self.clock)
            if self.config.attachment == "hsm"
            else None
        )
        self.scheduler: Scheduler = (
            ElevatorScheduler() if self.config.scheduling else FIFOScheduler()
        )
        self.codec: Codec = make_codec(self.config.compression)
        self.precomputed = PrecomputedCatalog()
        self.pyramids = PyramidCatalog()
        self.access_stats: Dict[str, AccessStatistics] = {}
        self._archived: Dict[str, ArchivedObject] = {}
        #: lifetime count of super-tiles created by :meth:`archive`
        self.super_tiles_built = 0
        self.executor = QueryExecutor(
            self.storage.collection,
            condenser_hook=(
                self._condenser_hook if self.config.precompute_aggregates else None
            ),
            scale_hook=(
                self._scale_hook if self.config.pyramid_factors else None
            ),
            mutations=MutationHooks(
                create_collection=self.create_collection,
                drop_collection=self._drop_collection_everywhere,
                delete_object=self.delete,
            ),
            tracer=self.tracer,
        )
        self.executor.register_extension("frame", self._frame_extension)
        self.exporter = TCTExporter(
            self.storage, self.library, tracer=self.tracer, wal=self.db.wal
        )
        #: reads of tape-resident objects served from the caches while the
        #: library was offline (graceful degradation)
        self.degraded_reads_served = 0
        #: instrument catalog; installed only when observability is on, so a
        #: disabled instance allocates nothing per operation.
        self.instruments: Optional[HeavenInstruments] = (
            HeavenInstruments(self.obs.metrics, self) if self.obs.enabled else None
        )

    # ------------------------------------------------------------------ DDL/DML

    def create_collection(self, name: str) -> Collection:
        """Create a named collection in the array DBMS."""
        return self.storage.create_collection(name)

    def collection(self, name: str) -> Collection:
        return self.storage.collection(name)

    def insert(self, collection_name: str, mdd: MDD) -> int:
        """Persist an MDD on secondary storage (tiles as BLOBs); returns oid."""
        return self.storage.insert_object(collection_name, mdd)

    def is_archived(self, object_name: str) -> bool:
        return object_name in self._archived

    def archived(self, object_name: str) -> ArchivedObject:
        try:
            return self._archived[object_name]
        except KeyError:
            raise HeavenError(f"object {object_name!r} is not archived") from None

    # ------------------------------------------------------------------ archive

    def archive(
        self,
        collection_name: str,
        object_name: str,
        placement: Optional[PlacementPolicy] = None,
        keep_disk_copy: bool = False,
        super_tile_bytes: Optional[int] = None,
    ) -> ExportReport:
        """Migrate an object to tertiary storage.

        Pipeline: partition into super-tiles (eSTAR or STAR per config,
        fed by collected access statistics), order tiles inside each
        super-tile (intra clustering), plan media placement (inter
        clustering or the configured baseline), stream via the decoupled
        TCT exporter, register precomputed aggregates, and optionally
        release the disk copy.

        Args:
            placement: override the placement policy (default: clustered
                when ``config.inter_clustering``, scatter otherwise).
            keep_disk_copy: keep tile BLOBs on secondary storage (dual
                residence) instead of freeing them after export.
            super_tile_bytes: explicit super-tile size for this object.
        """
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        if mdd.oid is None:
            raise HeavenError(f"object {object_name!r} must be inserted before archive")
        if object_name in self._archived:
            raise HeavenError(f"object {object_name!r} is already archived")

        stats = self.access_stats.get(object_name)
        target = (
            super_tile_bytes
            if super_tile_bytes is not None
            else self.config.super_tile_bytes
        )
        if self.config.use_estar:
            super_tiles = estar_partition(
                mdd,
                self.config.tape_profile,
                stats=stats,
                target_bytes=target,
                min_bytes=self.config.min_super_tile_bytes,
                max_bytes=self.config.max_super_tile_bytes,
            )
        else:
            if target is None:
                raise HeavenError("plain STAR needs an explicit super_tile_bytes")
            super_tiles = star_partition(mdd, target)

        if self.config.intra_clustering:
            for super_tile in super_tiles:
                super_tile.tile_ids = intra_cluster_order(super_tile, mdd, stats)

        if placement is None:
            placement = (
                ClusteredPlacement()
                if self.config.inter_clustering
                else ScatterPlacement()
            )
        plan = placement.plan(super_tiles, self.library)

        if self.config.precompute_aggregates and mdd.cell_type.dtype.fields is None:
            self.precomputed.register_object(mdd)
        if self.config.pyramid_factors and mdd.cell_type.dtype.fields is None:
            # Materialise zoom levels while the tiles are still on disk.
            self.pyramids.build(mdd, self.config.pyramid_factors)

        stored_sizes: Optional[Dict[int, int]] = None
        if self.codec.name != "none":
            stored_sizes = self._stored_tile_sizes(mdd)
            for super_tile in super_tiles:
                super_tile.size_bytes = sum(
                    stored_sizes[t] for t in super_tile.tile_ids
                )
        try:
            with self.tracer.span(
                "heaven.archive", object=object_name, super_tiles=len(super_tiles)
            ):
                report = self.exporter.export(
                    mdd,
                    plan,
                    stored_sizes=stored_sizes,
                    codec=self.codec if self.codec.name != "none" else None,
                )
        except Exception:
            # A failed migration (e.g. out of media) must not leave orphan
            # segments: the object stays disk-resident and re-archivable.
            for super_tile in super_tiles:
                if super_tile.segment_name is not None:
                    if self.library.has_segment(super_tile.segment_name):
                        self.library.delete_segment(super_tile.segment_name)
                    super_tile.segment_name = None
                    super_tile.medium_id = None
            self.precomputed.drop_object(object_name)
            self.pyramids.drop_object(object_name)
            raise
        if self.hsm_staging is not None:
            # HSM attachment: every migrated file passes through the HSM's
            # staging area on its way to tape.
            for super_tile in super_tiles:
                self.hsm_staging.write(
                    super_tile.size_bytes, detail=f"hsm migrate st{super_tile.index}"
                )

        entry = ArchivedObject(
            mdd=mdd,
            collection=collection_name,
            super_tiles=super_tiles,
            tile_to_st=tiles_to_super_tiles(super_tiles),
            stored_sizes=stored_sizes,
        )
        self._archived[object_name] = entry
        self.super_tiles_built += len(super_tiles)
        mdd.resolver = self._resolve_tile
        mdd.prepare_read = lambda region, _mdd=mdd: self.prepare_region(_mdd, region)
        mdd.drop_payloads()
        if not keep_disk_copy:
            self._release_disk_copy(entry)
        return report

    def _release_disk_copy(self, entry: ArchivedObject) -> None:
        """Free the secondary-storage tile BLOBs after successful export."""
        mdd = entry.mdd
        assert mdd.oid is not None
        for row in self.storage.tile_rows(mdd.oid):
            self.db.delete_blob(row["blob_oid"])
        # Keep the catalog rows: the object still exists logically; only the
        # payloads moved down the hierarchy.
        entry.disk_copy = False

    def _drop_collection_everywhere(self, name: str) -> None:
        """DDL hook: drop a collection, releasing archived objects too."""
        collection = self.storage.collection(name)
        for mdd in list(collection):
            self.delete(name, mdd.name)
        self.db.delete_rows("ras_collections", lambda r: r["name"] == name)
        self.storage._collections.pop(name, None)

    def _stored_tile_sizes(self, mdd: MDD) -> Dict[int, int]:
        """On-tape (compressed) size of every tile of *mdd*."""
        assert mdd.oid is not None
        sizes: Dict[int, int] = {}
        for tile_id, tile in mdd.tiles.items():
            raw = None
            if self.db.blobs.retain_payload:
                raw = self.db.blobs.peek(self.storage.blob_oid_of(mdd.oid, tile_id))
            sizes[tile_id] = self.codec.stored_size(tile.size_bytes, raw)
        return sizes

    # ------------------------------------------------------------------ retrieval

    def read(self, collection_name: str, object_name: str, region: MInterval) -> np.ndarray:
        """Read a region across the hierarchy; returns the assembled cells."""
        cells, _report = self.read_with_report(collection_name, object_name, region)
        return cells

    def read_with_report(
        self, collection_name: str, object_name: str, region: MInterval
    ) -> Tuple[np.ndarray, RetrievalReport]:
        """Like :meth:`read` but also returns the cost report."""
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        with self.tracer.span(
            "heaven.read", always=True, object=object_name, region=str(region)
        ) as span:
            self._record_access(mdd, region)
            staged, from_tape = self.prepare_region(mdd, region)
            with self.tracer.span("heaven.assemble", object=object_name):
                cells = mdd.read(region)
        report = self._report_from_span(
            span,
            object_name=object_name,
            region=str(region),
            tiles_needed=len(mdd.tiles_for(region)),
            staged=staged,
            from_tape=from_tape,
            bytes_useful=int(cells.nbytes),
        )
        self._note_degradation(report, [mdd])
        return cells, report

    def _report_from_span(
        self,
        span: Span,
        *,
        object_name: str,
        region: str,
        tiles_needed: int,
        staged: int,
        from_tape: int,
        bytes_useful: int,
    ) -> RetrievalReport:
        """Derive a :class:`RetrievalReport` from a finished read span.

        Exchange and time accounting come straight off the span's event-log
        window (one "load" event per media mount), replacing the old
        before/after library-stats diffing.
        """
        report = RetrievalReport(
            object_name=object_name,
            region=region,
            tiles_needed=tiles_needed,
            super_tiles_staged=staged,
            bytes_from_tape=from_tape,
            bytes_useful=bytes_useful,
            exchanges=span.count("load"),
            virtual_seconds=span.virtual_elapsed,
            faults=span.count("fault"),
            backoffs=span.count("backoff"),
        )
        if self.instruments is not None:
            self.instruments.observe_read(
                report.virtual_seconds, report.bytes_from_tape
            )
        return report

    def _note_degradation(
        self, report: RetrievalReport, mdds: Sequence[MDD]
    ) -> None:
        """Flag a read served without tape while the library is offline.

        Graceful degradation: when the fault plan has taken the library
        offline, warm-cache reads of archived (tape-only) objects still
        succeed — they never reach the robot.  Those are counted so
        operators can see how long the caches carried the workload.
        """
        if not self.config.degraded_reads or report.bytes_from_tape:
            return
        if not self.library.faults.offline:
            return
        for mdd in mdds:
            entry = self._archived.get(mdd.name)
            if entry is not None and not entry.disk_copy:
                report.degraded = True
                self.degraded_reads_served += 1
                return

    def read_frame(
        self, collection_name: str, object_name: str, frame: Frame, fill: float = 0.0
    ) -> Tuple[MArray, np.ndarray]:
        """Framed read (Object Framing): fetch only tiles inside the frame."""
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        needed = tiles_in_frame(mdd, frame)
        with self.tracer.span(
            "heaven.read_frame", object=object_name, tiles=len(needed)
        ):
            if needed:
                self._record_access(mdd, frame.bounding_box().intersection(mdd.domain) or mdd.domain)
                self._stage_tiles(mdd, [t.tile_id for t in needed])
            return _read_frame(mdd, frame, fill=fill)

    def query(self, text: str) -> List[QueryResult]:
        """Run a RasQL query transparently over the whole hierarchy."""
        return self.executor.execute(text)

    def read_many(
        self, requests: Sequence[Tuple[str, str, MInterval]]
    ) -> Tuple[List[np.ndarray], RetrievalReport]:
        """Answer several (collection, object, region) reads as ONE batch.

        Inter-query scheduling (Kapitel 3.4.3): the tape requests of every
        query are merged and ordered together, so each medium is exchanged
        at most once per batch even when the queries interleave objects.
        Returns the per-request cell arrays and one combined cost report.
        """
        resolved: List[Tuple[MDD, MInterval]] = []
        for collection_name, object_name, region in requests:
            mdd = self.storage.collection(collection_name).get(object_name)
            self._record_access(mdd, region)
            resolved.append((mdd, region))
        with self.tracer.span(
            "heaven.read_many", always=True, batch=len(requests)
        ) as span:
            staged, from_tape = self._stage_many(
                [
                    (mdd, [t.tile_id for t in mdd.tiles_for(region)])
                    for mdd, region in resolved
                ]
            )
            with self.tracer.span("heaven.assemble", batch=len(requests)):
                outputs = [mdd.read(region) for mdd, region in resolved]
        report = self._report_from_span(
            span,
            object_name=",".join(sorted({m.name for m, _r in resolved})),
            region=f"batch of {len(requests)}",
            tiles_needed=sum(
                len(mdd.tiles_for(region)) for mdd, region in resolved
            ),
            staged=staged,
            from_tape=from_tape,
            bytes_useful=sum(int(cells.nbytes) for cells in outputs),
        )
        self._note_degradation(report, [mdd for mdd, _region in resolved])
        return outputs, report

    def prepare_region(self, mdd: MDD, region: MInterval) -> Tuple[int, int]:
        """Batch-stage every super-tile the region needs.

        Returns ``(super_tiles_staged, bytes_streamed_from_tape)``.  Objects
        not archived need no staging (their tiles live on disk).
        """
        entry = self._archived.get(mdd.name)
        if entry is None:
            return 0, 0
        needed_tiles = [t.tile_id for t in mdd.tiles_for(region)]
        return self._stage_tiles(mdd, needed_tiles)

    # ------------------------------------------------------------------ staging

    def _stage_tiles(self, mdd: MDD, tile_ids: Sequence[int]) -> Tuple[int, int]:
        """Ensure the super-tiles backing *tile_ids* are in the disk cache."""
        return self._stage_many([(mdd, tile_ids)])

    def _stage_many(
        self, pairs: Sequence[Tuple[MDD, Sequence[int]]]
    ) -> Tuple[int, int]:
        """Batch-stage tiles of several objects in one scheduled tape pass.

        This is the inter-query scheduling path: requests of all queries in
        the batch are merged, so each medium is exchanged at most once for
        the whole batch no matter how the queries interleave objects.
        """
        with self.tracer.span("heaven.stage") as stage_span:
            requests: List[TapeRequest] = []
            request_meta: Dict[str, Tuple[SuperTile, int, int, ArchivedObject]] = {}
            with self.tracer.span("cache.lookup"):
                for mdd, tile_ids in pairs:
                    entry = self._archived.get(mdd.name)
                    if entry is None or entry.disk_copy:
                        continue  # disk-resident (or dual-resident): nothing to stage
                    # Group needed tiles by super-tile, skip memory-cached tiles.
                    by_st: Dict[str, Tuple[SuperTile, List[int]]] = {}
                    for tile_id in tile_ids:
                        if self.memory_cache.get(mdd.name, tile_id) is not None:
                            continue
                        super_tile = entry.super_tile_of(tile_id)
                        assert super_tile.segment_name is not None
                        key = super_tile.segment_name
                        by_st.setdefault(key, (super_tile, []))[1].append(tile_id)

                    object_requests: List[TapeRequest] = []
                    for key, (super_tile, needed) in by_st.items():
                        if key in request_meta:
                            continue  # another request in this batch covers it fully
                        run = self._required_run(super_tile, needed)
                        if self.disk_cache.lookup(key):
                            cached = entry.staged_runs.get(key)
                            if cached is not None and self._covers(cached, run):
                                continue
                            # Cached run too small: restage the contiguous union of
                            # cached and needed (never more than the segment).
                            self.disk_cache.invalidate(key)
                            entry.staged_runs.pop(key, None)
                            if cached is not None:
                                start = min(cached[0], run[0])
                                end = max(cached[0] + cached[1], run[0] + run[1])
                                run = (start, end - start)
                        medium_id, segment = self.library.segment(key)
                        object_requests.append(
                            TapeRequest(
                                key=key,
                                medium_id=medium_id,
                                offset=segment.offset + run[0],
                                length=run[1],
                            )
                        )
                        request_meta[key] = (super_tile, run[0], run[1], entry)

                    if self.config.prefetch == "sequential":
                        self._add_prefetch(entry, object_requests, request_meta)
                    requests.extend(object_requests)

            if not requests:
                return 0, 0
            with self.tracer.span("scheduler.plan", requests=len(requests)):
                ordered = self.scheduler.order(requests, self.library)
            bytes_from_tape = 0
            with self.tracer.span("library.stage", requests=len(ordered)):
                for request in ordered:
                    self.library.read_extent(
                        request.medium_id, request.offset, request.length
                    )
                    super_tile, run_start, run_length, entry = request_meta[request.key]
                    if self.hsm_staging is not None:
                        # Double hop: the HSM lands the file in its own staging
                        # area before HEAVEN can copy it into the cache hierarchy.
                        self.hsm_staging.write(
                            run_length, detail=f"hsm stage {request.key}"
                        )
                        self.hsm_staging.read(
                            run_length, detail=f"hsm serve {request.key}"
                        )
                    payload = self._segment_payload(request.key, run_start, run_length)
                    refetch = self._refetch_cost(run_length)
                    self.disk_cache.insert(
                        request.key, run_length, refetch, payload=payload
                    )
                    entry.staged_runs[request.key] = (run_start, run_length)
                    bytes_from_tape += request.length
            stage_span.set(
                super_tiles=len(ordered), bytes_from_tape=bytes_from_tape
            )
            return len(ordered), bytes_from_tape

    def _required_run(
        self, super_tile: SuperTile, needed: Sequence[int]
    ) -> Tuple[int, int]:
        if self.hsm_staging is not None:
            # HSM attachment: the file is the smallest unit of access.
            return (0, super_tile.size_bytes)
        if self.config.partial_super_tile_reads and needed:
            return super_tile.run_covering(list(needed))
        return (0, super_tile.size_bytes)

    @staticmethod
    def _covers(cached: Tuple[int, int], run: Tuple[int, int]) -> bool:
        return cached[0] <= run[0] and run[0] + run[1] <= cached[0] + cached[1]

    def _add_prefetch(
        self,
        entry: ArchivedObject,
        requests: List[TapeRequest],
        request_meta: Dict[str, Tuple[SuperTile, int, int, "ArchivedObject"]],
    ) -> None:
        """Sequential prefetch: also stage the next super-tile(s) in cluster
        order when they live on a medium the batch already mounts."""
        media_in_batch = {r.medium_id for r in requests}
        extra: List[TapeRequest] = []
        for request in requests:
            super_tile, _start, _length, _entry = request_meta[request.key]
            for step in range(1, self.config.prefetch_depth + 1):
                next_index = super_tile.index + step
                if next_index >= len(entry.super_tiles):
                    break
                neighbour = entry.super_tiles[next_index]
                key = neighbour.segment_name
                if key is None or key in request_meta:
                    continue
                if neighbour.medium_id not in media_in_batch:
                    continue
                if key in self.disk_cache:
                    continue
                medium_id, segment = self.library.segment(key)
                extra.append(
                    TapeRequest(
                        key=key,
                        medium_id=medium_id,
                        offset=segment.offset,
                        length=neighbour.size_bytes,
                    )
                )
                request_meta[key] = (neighbour, 0, neighbour.size_bytes, entry)
        requests.extend(extra)

    def _segment_payload(
        self, key: str, run_start: int, run_length: int
    ) -> Optional[bytes]:
        medium_id = self.library.locate(key)
        payload = self.library.medium(medium_id).payload(key)
        if payload is None:
            return None
        return payload[run_start : run_start + run_length]

    def _refetch_cost(self, nbytes: int) -> float:
        """Estimated tape cost to re-stage *nbytes* (feeds the GDS policy)."""
        profile = self.config.tape_profile
        return (
            profile.full_exchange_time()
            + profile.avg_seek_time_s / 2.0
            + profile.transfer_time(nbytes)
        )

    def _on_cache_evict(self, key: str) -> None:
        for entry in self._archived.values():
            entry.staged_runs.pop(key, None)

    # ------------------------------------------------------------------ resolver

    def _resolve_tile(self, mdd: MDD, tile: Tile) -> np.ndarray:
        """Tile resolver installed on archived objects.

        Memory cache → (disk copy, when dual-resident) → disk cache →
        (stage from tape, then disk cache).
        """
        cached = self.memory_cache.get(mdd.name, tile.tile_id)
        if cached is not None:
            return cached
        entry = self._archived.get(mdd.name)
        if entry is None:
            raise HeavenError(f"resolver called for unarchived object {mdd.name!r}")
        if entry.disk_copy:
            # Dual residence (keep_disk_copy=True): the faster copy wins.
            assert mdd.oid is not None
            raw = self.db.blobs.get(self.storage.blob_oid_of(mdd.oid, tile.tile_id))
            if raw is not None:
                cells = np.frombuffer(raw, dtype=mdd.cell_type.dtype).reshape(
                    tile.domain.shape
                ).copy()
            elif mdd.source is not None:
                cells = mdd.source.region(tile.domain, mdd.cell_type)
            else:
                raise HeavenError(
                    f"tile {tile.tile_id} of {mdd.name!r}: disk copy holds no "
                    "payload and no source exists"
                )
            self.memory_cache.put(mdd.name, tile.tile_id, cells)
            return cells
        super_tile = entry.super_tile_of(tile.tile_id)
        key = super_tile.segment_name
        assert key is not None
        run = entry.staged_runs.get(key)
        tile_offset, tile_length = super_tile.tile_extents[tile.tile_id]
        in_cache = key in self.disk_cache and run is not None and self._covers(
            run, (tile_offset, tile_length)
        )
        if not in_cache:
            self._stage_tiles(mdd, [tile.tile_id])
            run = entry.staged_runs[key]
        assert run is not None
        raw = self.disk_cache.read(key, tile_offset - run[0], tile_length)
        if raw is not None:
            if entry.stored_sizes is not None:
                raw = self.codec.decompress(raw, tile.size_bytes)
            cells = np.frombuffer(raw, dtype=mdd.cell_type.dtype).reshape(
                tile.domain.shape
            ).copy()
        elif mdd.source is not None:
            cells = mdd.source.region(tile.domain, mdd.cell_type)
        else:
            raise HeavenError(
                f"tile {tile.tile_id} of {mdd.name!r}: payload not retained and "
                "no source to regenerate from"
            )
        self.memory_cache.put(mdd.name, tile.tile_id, cells)
        return cells

    # ------------------------------------------------------------------ lifecycle

    def delete(self, collection_name: str, object_name: str) -> None:
        """Delete an object everywhere: caches, tape segments, catalogs."""
        entry = self._archived.pop(object_name, None)
        if entry is not None:
            for super_tile in entry.super_tiles:
                if super_tile.segment_name is not None:
                    if super_tile.segment_name in self.disk_cache:
                        self.disk_cache.invalidate(super_tile.segment_name)
                    self.library.delete_segment(super_tile.segment_name)
            self.memory_cache.invalidate_object(object_name)
            self.precomputed.drop_object(object_name)
            self.pyramids.drop_object(object_name)
            entry.mdd.resolver = None
            entry.mdd.prepare_read = None
        self.storage.delete_object(collection_name, object_name)

    def update(
        self,
        collection_name: str,
        object_name: str,
        region: MInterval,
        cells: np.ndarray,
    ) -> int:
        """Update a region of an archived object; returns re-exported count.

        Affected super-tiles are staged, patched in memory, re-exported as
        fresh segments (tape is append-only; old segments become dead
        space), and all cache levels plus the aggregate catalog refresh.
        """
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        entry = self._archived.get(object_name)
        if entry is None:
            mdd.write(region, cells)
            return 0
        affected = {t.tile_id for t in mdd.tiles_for(region)}
        affected_sts = {entry.super_tile_of(t).index for t in affected}
        # Stage and materialise every tile of the affected super-tiles.
        tiles_to_load = [
            tile_id
            for st_index in affected_sts
            for tile_id in entry.super_tiles[st_index].tile_ids
        ]
        self._stage_tiles(mdd, tiles_to_load)
        for tile_id in tiles_to_load:
            tile = mdd.tiles[tile_id]
            tile.set_payload(self._resolve_tile(mdd, tile).copy())
        mdd.write(region, cells)
        # Re-export affected super-tiles as fresh segments.
        compressing = entry.stored_sizes is not None
        for st_index in sorted(affected_sts):
            super_tile = entry.super_tiles[st_index]
            old_key = super_tile.segment_name
            assert old_key is not None
            if old_key in self.disk_cache:
                self.disk_cache.invalidate(old_key)
            entry.staged_runs.pop(old_key, None)
            self.library.delete_segment(old_key)
            parts: List[bytes] = []
            sizes: Dict[int, int] = {}
            for tile_id in super_tile.tile_ids:
                tile = mdd.tiles[tile_id]
                raw = None
                if self.config.retain_payload:
                    raw = np.ascontiguousarray(
                        tile.payload, dtype=mdd.cell_type.dtype
                    ).tobytes()
                if compressing:
                    if raw is not None:
                        raw = self.codec.compress(raw)
                        sizes[tile_id] = len(raw)
                    else:
                        sizes[tile_id] = self.codec.stored_size(
                            tile.size_bytes, None
                        )
                    assert entry.stored_sizes is not None
                    entry.stored_sizes[tile_id] = sizes[tile_id]
                else:
                    sizes[tile_id] = tile.size_bytes
                if raw is not None:
                    parts.append(raw)
            super_tile.size_bytes = sum(sizes.values())
            super_tile.assign_extents(sizes)
            payload = b"".join(parts) if parts else None
            new_key = f"{old_key}.u{int(self.clock.now * 1000)}"
            medium_id, _segment = self.library.write_segment(
                new_key, super_tile.size_bytes, payload=payload
            )
            super_tile.segment_name = new_key
            super_tile.medium_id = medium_id
        if entry.disk_copy:
            # Dual residence: refresh the disk copy's tile BLOBs too.
            assert mdd.oid is not None
            for tile_id in tiles_to_load:
                tile = mdd.tiles[tile_id]
                blob_payload = None
                if self.db.blobs.retain_payload:
                    blob_payload = np.ascontiguousarray(
                        tile.payload, dtype=mdd.cell_type.dtype
                    ).tobytes()
                new_blob = self.db.put_blob(blob_payload, size=tile.size_bytes)
                row = self.db.table("ras_tiles").find_pk(f"{mdd.oid}:{tile_id}")
                assert row is not None
                old_blob = row[1]["blob_oid"]
                self.db.update("ras_tiles", row[0], {"blob_oid": new_blob})
                if old_blob in self.db.blobs:
                    self.db.delete_blob(old_blob)
        # Pyramid levels over the old cells are stale now.
        self.pyramids.invalidate(object_name)
        # Refresh caches and aggregates.
        for tile_id in tiles_to_load:
            self.memory_cache.put(
                mdd.name, tile_id, mdd.tiles[tile_id].payload
            )
            if self.config.precompute_aggregates and mdd.cell_type.dtype.fields is None:
                self.precomputed.refresh_tile(mdd, tile_id)
        for tile_id in tiles_to_load:
            mdd.tiles[tile_id].drop_payload()
        return len(affected_sts)

    def reimport(self, collection_name: str, object_name: str) -> int:
        """Bring an archived object fully back to secondary storage.

        Stages every super-tile (scheduled), rewrites the tile BLOBs,
        releases the tape segments, and detaches the object from the tape
        hierarchy — so it can later be re-archived (possibly with fresher
        access statistics).  Returns the number of tiles re-imported.
        """
        collection = self.storage.collection(collection_name)
        mdd = collection.get(object_name)
        entry = self._archived.get(object_name)
        if entry is None:
            raise HeavenError(f"object {object_name!r} is not archived")
        all_tiles = sorted(mdd.tiles)
        self._stage_tiles(mdd, all_tiles)
        assert mdd.oid is not None
        for tile_id in all_tiles:
            tile = mdd.tiles[tile_id]
            cells = self._resolve_tile(mdd, tile)
            payload = None
            if self.db.blobs.retain_payload:
                payload = np.ascontiguousarray(
                    cells, dtype=mdd.cell_type.dtype
                ).tobytes()
            new_blob = self.db.put_blob(payload, size=tile.size_bytes)
            row = self.db.table("ras_tiles").find_pk(f"{mdd.oid}:{tile_id}")
            assert row is not None
            self.db.update("ras_tiles", row[0], {"blob_oid": new_blob})
        for super_tile in entry.super_tiles:
            if super_tile.segment_name is not None:
                if super_tile.segment_name in self.disk_cache:
                    self.disk_cache.invalidate(super_tile.segment_name)
                self.library.delete_segment(super_tile.segment_name)
                super_tile.segment_name = None
                super_tile.medium_id = None
        del self._archived[object_name]
        mdd.resolver = self.storage._make_resolver(mdd.oid)
        mdd.prepare_read = None
        self.memory_cache.invalidate_object(object_name)
        return len(all_tiles)

    # ------------------------------------------------------------------ hooks

    def _scale_hook(self, ref: MDDRef, factors):
        """Query-executor hook: answer scale() from a pyramid level.

        The level is disk-resident (materialised at archive time); serving
        it charges one disk read of the answer's bytes.
        """
        if not self.is_archived(ref.mdd.name):
            return None
        answer = self.pyramids.try_answer(ref, factors)
        if answer is not None:
            self.db.blobs.disk.read(
                int(answer.cells.nbytes), detail=f"pyramid {ref.mdd.name}"
            )
        return answer

    def _condenser_hook(self, name: str, ref: MDDRef):
        """Query-executor hook: try the precomputed catalog first."""
        if not self.is_archived(ref.mdd.name):
            return None
        return self.precomputed.try_answer(
            name, ref, prepare=lambda mdd, tile_ids: self._stage_tiles(mdd, tile_ids)
        )

    def _frame_extension(self, _executor: QueryExecutor, args: List) -> MArray:
        """``frame(obj, "lo:hi,lo:hi; lo:hi,lo:hi")`` query function."""
        if len(args) != 2 or not isinstance(args[0], MDDRef) or not isinstance(args[1], str):
            raise HeavenError('frame() expects (object, "box; box; ...")')
        ref: MDDRef = args[0]
        frame = MultiBoxFrame.parse(args[1])
        entry = self._archived.get(ref.mdd.name)
        if entry is not None:
            needed = tiles_in_frame(ref.mdd, frame)
            self._stage_tiles(ref.mdd, [t.tile_id for t in needed])
        framed, _mask = _read_frame(ref.mdd, frame)
        return framed

    # ------------------------------------------------------------------ statistics

    STATS_TABLE = "heaven_access_stats"

    def persist_access_statistics(self) -> int:
        """Write the collected access statistics into the DBMS catalog.

        eSTAR's adaptivity then survives sessions: a fresh HEAVEN instance
        over the same base DBMS restores the profile and clusters new
        archives accordingly.  Returns the number of objects persisted.
        """
        from ..dbms import Column, ColumnType

        if self.STATS_TABLE not in self.db.tables():
            self.db.create_table(
                self.STATS_TABLE,
                [
                    Column("object_name", ColumnType.TEXT, nullable=False),
                    Column("queries", ColumnType.INTEGER, nullable=False),
                    Column("bytes_sum", ColumnType.REAL, nullable=False),
                    Column("fractions", ColumnType.TEXT, nullable=False),
                ],
                primary_key="object_name",
            )
        self.db.delete_rows(self.STATS_TABLE, lambda _row: True)
        for object_name, stats in self.access_stats.items():
            self.db.insert(
                self.STATS_TABLE,
                {
                    "object_name": object_name,
                    "queries": stats.queries,
                    "bytes_sum": stats.bytes_sum,
                    "fractions": ",".join(str(f) for f in stats.fraction_sums),
                },
            )
        return len(self.access_stats)

    def restore_access_statistics(self) -> int:
        """Load persisted access statistics from the DBMS catalog."""
        if self.STATS_TABLE not in self.db.tables():
            return 0
        restored = 0
        for row in self.db.select(self.STATS_TABLE):
            fractions = [float(f) for f in row["fractions"].split(",") if f]
            stats = AccessStatistics(
                dimension=len(fractions),
                queries=row["queries"],
                fraction_sums=fractions,
                bytes_sum=row["bytes_sum"],
            )
            self.access_stats[row["object_name"]] = stats
            restored += 1
        return restored

    def _record_access(self, mdd: MDD, region: MInterval) -> None:
        stats = self.access_stats.get(mdd.name)
        if stats is None:
            stats = AccessStatistics(dimension=mdd.dimension)
            self.access_stats[mdd.name] = stats
        stats.record(region, mdd.domain, mdd.cell_type.size_bytes)

    # ------------------------------------------------------------------ reporting

    def snapshot(self) -> Dict[str, object]:
        """One-stop status snapshot for reports and examples."""
        library = self.library.stats()
        return {
            "virtual_seconds": self.clock.now,
            "archived_objects": sorted(self._archived),
            "library": library,
            "disk_cache": self.disk_cache.stats,
            "memory_cache": self.memory_cache.stats,
            "precomputed": self.precomputed.stats,
            "time_breakdown": self.clock.log.breakdown(),
        }
