"""Materialised scaling pyramids (Kapitel 3.8's second family of
precomputed operation results).

Interactive visualisation asks for the same expensive operation over and
over: ``scale(object, f)`` at a handful of zoom factors.  HEAVEN
materialises those levels **at archive time**, while the object's tiles are
still on secondary storage, and keeps the (small) levels disk-resident.  A
later ``scale()`` call over an archived object is then answered from the
matching pyramid level without touching tape.

A level at factor ``f`` of a ``d``-dimensional object holds ``1/f**d`` of
the cells, so a full 2/4/8 pyramid of a 2-D mosaic costs under 10 % extra
space — the classic trade the paper advocates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval, SInterval
from ..arrays.operations import MArray, scale_down, trim
from ..arrays.query.executor import MDDRef
from ..errors import HeavenError


@dataclass
class PyramidLevel:
    """One materialised zoom level of an object."""

    factor: int
    #: scaled cells over the whole object, anchored at the scaled origin
    cells: np.ndarray
    domain: MInterval

    @property
    def size_bytes(self) -> int:
        return int(self.cells.nbytes)


@dataclass
class PyramidStats:
    """How often pyramid levels answered ``scale()`` calls."""

    lookups: int = 0
    answered: int = 0
    declined: int = 0


class PyramidCatalog:
    """Per-object materialised scale levels plus the lookup logic."""

    def __init__(self) -> None:
        self._levels: Dict[str, Dict[int, PyramidLevel]] = {}
        self.stats = PyramidStats()

    # -- construction --------------------------------------------------------

    def build(self, mdd: MDD, factors: Sequence[int]) -> List[PyramidLevel]:
        """Materialise the given isotropic zoom *factors* for *mdd*.

        Call while the object is still disk-resident (at archive time);
        each level is the block average of the previous one, so the whole
        pyramid costs one full read of the base object.
        """
        if mdd.cell_type.dtype.fields is not None:
            raise HeavenError("pyramids need scalar cell types")
        factors = sorted(set(int(f) for f in factors))
        if any(f < 2 for f in factors):
            raise HeavenError(f"zoom factors must be >= 2: {factors}")
        base = MArray(mdd.domain, mdd.read(mdd.domain))
        levels: Dict[int, PyramidLevel] = {}
        for factor in factors:
            scaled = scale_down(base, [factor] * mdd.dimension)
            levels[factor] = PyramidLevel(
                factor=factor, cells=scaled.cells, domain=scaled.domain
            )
        self._levels[mdd.name] = levels
        return [levels[f] for f in factors]

    def drop_object(self, object_name: str) -> None:
        self._levels.pop(object_name, None)

    def invalidate(self, object_name: str) -> None:
        """Remove levels after an update (rebuild on next archive)."""
        self.drop_object(object_name)

    def has_object(self, object_name: str) -> bool:
        return object_name in self._levels

    def levels_of(self, object_name: str) -> List[int]:
        return sorted(self._levels.get(object_name, {}))

    def total_bytes(self, object_name: str) -> int:
        return sum(
            level.size_bytes for level in self._levels.get(object_name, {}).values()
        )

    # -- answering -------------------------------------------------------------

    def try_answer(
        self, ref: MDDRef, factors: Sequence[int]
    ) -> Optional[MArray]:
        """Answer ``scale(ref, *factors)`` from a level, or None to decline.

        Requires an isotropic factor with a materialised level, a reference
        without sections, and a region aligned to the factor grid (the
        common pan-and-zoom case); everything else falls back to reading
        and scaling the base object.
        """
        self.stats.lookups += 1
        levels = self._levels.get(ref.mdd.name)
        factors = [int(f) for f in factors]
        isotropic = len(set(factors)) == 1 and len(factors) == ref.mdd.dimension
        if levels is None or not isotropic or factors[0] not in levels:
            self.stats.declined += 1
            return None
        if len(ref.visible_axes()) != ref.mdd.dimension:
            self.stats.declined += 1
            return None  # sectioned reference: dimensionality differs
        factor = factors[0]
        region = ref.full_region()
        if not all(
            axis.lo % factor == 0 and (axis.hi + 1) % factor == 0
            for axis in region.axes
        ):
            self.stats.declined += 1
            return None
        level = levels[factor]
        scaled_region = MInterval(
            SInterval(axis.lo // factor, (axis.hi + 1) // factor - 1)
            for axis in region.axes
        )
        if not level.domain.contains(scaled_region):
            self.stats.declined += 1
            return None
        answer = trim(MArray(level.domain, level.cells), scaled_region)
        self.stats.answered += 1
        return MArray(answer.domain, answer.cells.copy())
