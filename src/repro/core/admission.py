"""Admission and scheduling of concurrent queries over one HEAVEN instance.

The paper's inter-query scheduling (Kapitel 3.4.3) merges the tape
requests of one caller's batch.  This layer takes it to its production
limit: *independent* queries run as cooperative tasks, their staging
demands land in a shared per-medium queue, and the controller fuses
overlapping super-tile runs **across queries** into single elevator
sweeps.  Three policies shape the sweeps:

* **anticipatory hold-back** — a dispatch can wait a bounded virtual-time
  window (``admission_holdback_s``) so queries arriving inside the window
  are absorbed into the same mount instead of paying their own exchange;
* **weighted-fair picking** — the next medium served is the one whose
  neediest demanding query has received the least attributed service per
  unit weight, so a PB-scale scan cannot monopolise the robot;
* **aging escalation** — once the oldest pending demand has waited more
  than half the configured ``admission_aging_bound_s``, scheduling
  degenerates to strict oldest-first until the backlog drains, bounding
  every demand's wait.

Correctness is anchored on three invariants the test layer proves:

1. any admissible interleaving returns byte-identical cells to serial
   execution (the caches and leases make staging order invisible);
2. no demand waits longer than the aging bound in virtual time;
3. a fused sweep never stages a byte no query demanded (audited per
   segment in :class:`FusionAudit` entries).

Shared staged segments are pinned with **per-query leases**
(:meth:`~repro.core.cache.DiskCache.acquire_lease`): one lease per
demanding query, so one query's assembly releasing its references can
never unpin bytes another query still needs.  Shared tape bytes are split
across queries without double counting
(:func:`~repro.core.scheduler.split_shared_bytes`); the sum of the
per-query reports plus the explicit unattributed remainder equals the
event log's drive-read bytes exactly
(:func:`~repro.obs.reconcile.reconcile_shared_tape_bytes`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, Generator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..errors import CacheError, HeavenError
from .heaven import Heaven, RetrievalReport, StagingTicket, _SegmentNeed
from .scheduler import TapeRequest, attribute_request_bytes
from .units import SubReadRequest, SubReadResponse, SubReadStats, TilePayload, _as_payload

__all__ = [
    "QuerySpec",
    "FusionAudit",
    "MultiQueryReport",
    "AdmissionController",
]

#: event-log device name of the admission layer's own charges
ADMISSION_DEVICE = "admission"


@dataclass(frozen=True)
class QuerySpec:
    """One independent query submitted to the admission layer.

    Attributes:
        collection / object_name / region: the read itself.
        arrival_s: virtual time the query enters the system (open-loop
            arrivals; queries are admitted once the clock reaches it).
        weight: fair-share weight (``None`` uses the config default);
            higher weight means a larger share of sweep service.
        name: display label in reports (defaults to the object name).
        tile_ids: explicit tile subset instead of the region's full tile
            cover — the sharded form a data node serves.  The query then
            answers with per-tile cells (``tile_cells`` on the task)
            rather than one assembled region, since the region's other
            tiles belong to other shards.
    """

    collection: str
    object_name: str
    region: MInterval
    arrival_s: float = 0.0
    weight: Optional[float] = None
    name: str = ""
    tile_ids: Optional[Tuple[int, ...]] = None

    @property
    def label(self) -> str:
        return self.name or self.object_name


@dataclass(frozen=True)
class FusionAudit:
    """Provenance of one fused segment inside one sweep.

    The no-unrequested-bytes property is checked against these entries:
    the staged run must stay inside the union of the demanded run and any
    pre-existing cached run it had to absorb.
    """

    key: str
    medium_id: str
    #: union of the demanding queries' byte runs on this segment
    demanded_run: Tuple[int, int]
    #: byte run actually staged (or the covering cached run, for hits)
    staged_run: Tuple[int, int]
    #: queries whose demands this fused segment served
    queries: Tuple[int, ...]
    #: served from the disk cache without any tape request
    cache_hit: bool = False
    #: the staged run absorbed a pre-existing (too-small) cached run
    absorbed_cached: bool = False


@dataclass
class _Demand:
    """One query's pending staging demand on one tape segment."""

    key: str
    medium_id: str
    tile_ids: List[int]
    #: byte run this query alone would stage
    run: Tuple[int, int]
    enqueued_s: float = 0.0


@dataclass
class _QueryTask:
    """Controller-side state of one cooperative query task."""

    qid: int
    spec: QuerySpec
    weight: float
    gen: Optional[Generator[str, None, None]] = None
    admitted: bool = False
    done: bool = False
    mdd: Optional[MDD] = None
    tiles_needed: int = 0
    demands: Dict[str, _Demand] = field(default_factory=dict)
    pending: Set[str] = field(default_factory=set)
    #: segment keys this task holds disk-cache leases on
    leases: List[str] = field(default_factory=list)
    lease_count: int = 0
    #: attributed sweep service (virtual seconds, weighted-fair currency)
    service_s: float = 0.0
    #: exact share of fused sweep tape bytes (no double counting)
    tape_byte_share: int = 0
    #: sweeps this task's demands were part of
    sweeps: int = 0
    enqueued_s: float = 0.0
    finished_s: float = 0.0
    max_wait_s: float = 0.0
    cells: Optional[np.ndarray] = None
    #: per-tile cells of a tile-subset query (``spec.tile_ids`` set)
    tile_cells: Dict[int, np.ndarray] = field(default_factory=dict)
    report: Optional[RetrievalReport] = None

    @property
    def owner(self) -> str:
        return f"q{self.qid}"


@dataclass
class MultiQueryReport:
    """Cost summary of one concurrent multi-query run."""

    #: per-query cost reports, in submission order
    queries: List[RetrievalReport] = field(default_factory=list)
    #: per-query sojourn (arrival -> finish) in virtual seconds
    latencies_s: List[float] = field(default_factory=list)
    #: fused sweeps dispatched
    sweeps: int = 0
    #: distinct fused segments across all sweeps
    fused_segments: int = 0
    #: total media exchanges of the whole run
    exchanges: int = 0
    #: total drive-read bytes of the whole run (event-log exact)
    bytes_from_tape: int = 0
    #: sweep tape bytes not attributable to any query (prefetch,
    #: fault-recovery re-reads); keeps the per-query split reconcilable
    unattributed_tape_bytes: int = 0
    #: tape bytes fusion avoided vs. each query staging its own run
    fusion_saved_bytes: int = 0
    #: media exchanges fusion avoided (demanding queries - 1 per sweep)
    fusion_saved_exchanges: int = 0
    #: virtual seconds spent inside anticipatory hold-back windows
    holdback_seconds: float = 0.0
    #: queries absorbed into a sweep by a hold-back window
    holdback_absorbed: int = 0
    #: longest any staging demand waited (enqueue -> satisfied)
    max_wait_s: float = 0.0
    #: deepest shared staging queue observed at a dispatch decision
    max_queue_depth: int = 0
    #: whole-run virtual makespan
    makespan_s: float = 0.0
    #: per-segment fusion provenance, in sweep order
    audit: List[FusionAudit] = field(default_factory=list)
    #: absolute event-log cursor at run start (for reconciliation)
    log_cursor_start: int = 0

    @property
    def total_bytes_attributed(self) -> int:
        return (
            sum(r.bytes_from_tape for r in self.queries)
            + self.unattributed_tape_bytes
        )


class AdmissionController:
    """Cooperative round-robin stepper + fused-sweep scheduler.

    Queries run as generator tasks stepped in a seeded, fixed round-robin
    order; every step is deterministic under the SimClock, so a
    ``schedule_seed`` fully determines the interleaving (the property
    suite exploits this to enumerate interleavings).
    """

    def __init__(
        self,
        heaven: Heaven,
        *,
        holdback_s: Optional[float] = None,
        aging_bound_s: Optional[float] = None,
        default_weight: Optional[float] = None,
        schedule_seed: Optional[int] = None,
    ) -> None:
        self.heaven = heaven
        config = heaven.config
        self.holdback_s = (
            config.admission_holdback_s if holdback_s is None else holdback_s
        )
        self.aging_bound_s = (
            config.admission_aging_bound_s
            if aging_bound_s is None
            else aging_bound_s
        )
        self.default_weight = (
            config.admission_default_weight
            if default_weight is None
            else default_weight
        )
        if self.holdback_s < 0:
            raise HeavenError("holdback_s must be >= 0")
        if self.aging_bound_s is not None and self.aging_bound_s <= 0:
            raise HeavenError("aging_bound_s must be positive or None")
        self.schedule_seed = schedule_seed
        self._tasks: List[_QueryTask] = []
        self._order: List[_QueryTask] = []
        self._report = MultiQueryReport()

    # ------------------------------------------------------------------ run

    def run(
        self, specs: Sequence[QuerySpec]
    ) -> Tuple[List[np.ndarray], MultiQueryReport]:
        """Run *specs* to completion; per-query cells + combined report."""
        heaven = self.heaven
        clock = heaven.clock
        self._report = MultiQueryReport(log_cursor_start=clock.log.cursor())
        if not specs:
            return [], self._report
        self._tasks = [
            _QueryTask(
                qid=index + 1,
                spec=spec,
                weight=(
                    spec.weight if spec.weight is not None else self.default_weight
                ),
            )
            for index, spec in enumerate(specs)
        ]
        self._order = list(self._tasks)
        if self.schedule_seed is not None:
            random.Random(self.schedule_seed).shuffle(self._order)
        start_s = clock.now
        try:
            with heaven.tracer.span(
                "admission.run", always=True, queries=len(specs)
            ):
                self._loop()
        except BaseException:
            # A typed storage failure mid-run (offline library, retry
            # budget spent) must not leak per-query leases: quiescence is
            # part of the contract even on the error path.
            for task in self._tasks:
                self._release_leases(task)
            raise
        report = self._report
        report.makespan_s = clock.now - start_s
        window = clock.log.window(report.log_cursor_start)
        report.exchanges = sum(1 for e in window if e.kind == "load")
        report.bytes_from_tape = sum(
            e.bytes
            for e in window
            if e.kind == "read" and e.device.startswith("drive")
        )
        report.queries = [task.report for task in self._tasks]  # type: ignore[misc]
        report.latencies_s = [
            task.finished_s - task.spec.arrival_s for task in self._tasks
        ]
        report.max_wait_s = max(
            (task.max_wait_s for task in self._tasks), default=0.0
        )
        outputs = [task.cells for task in self._tasks]
        assert all(cells is not None for cells in outputs)
        return outputs, report  # type: ignore[return-value]

    def run_units(
        self, units: Sequence[SubReadRequest]
    ) -> Tuple[List[SubReadResponse], MultiQueryReport]:
        """Answer serializable sub-read units as concurrent queries.

        The data-node fusion path of the service tier: every unit becomes
        one admission query (tile-subset queries for the sharded form),
        their staging fuses into shared sweeps, and each response carries
        that unit's EXACT byte attribution (``tape_byte_share`` — no
        cross-tenant leakage) in its stats.  Units are admitted at the
        current clock, so per-unit ``virtual_seconds`` is pure service
        time; open-loop arrival accounting is the cluster's job.
        """
        if not units:
            return [], MultiQueryReport(
                log_cursor_start=self.heaven.clock.log.cursor()
            )
        now = self.heaven.clock.now
        specs = [
            QuerySpec(
                collection=unit.collection,
                object_name=unit.object_name,
                region=MInterval.parse(unit.region),
                arrival_s=now,
                name=unit.request_id,
                tile_ids=(
                    None
                    if unit.tile_ids is None
                    else tuple(sorted(unit.tile_ids))
                ),
            )
            for unit in units
        ]
        outputs, report = self.run(specs)
        responses: List[SubReadResponse] = []
        for unit, task, cells, query_report in zip(
            units, self._tasks, outputs, report.queries
        ):
            mdd = task.mdd
            assert mdd is not None
            tiles = [
                TilePayload.from_cells(
                    tile_id, mdd.tiles[tile_id].domain, mdd.cell_type, tile_cells
                )
                for tile_id, tile_cells in sorted(task.tile_cells.items())
            ]
            responses.append(
                SubReadResponse(
                    request_id=unit.request_id,
                    object_name=unit.object_name,
                    region=unit.region,
                    dtype=mdd.cell_type.name,
                    tiles=tiles,
                    region_cells=(
                        _as_payload(cells) if unit.tile_ids is None else None
                    ),
                    stats=SubReadStats(
                        bytes_useful=query_report.bytes_useful,
                        bytes_from_tape=query_report.bytes_from_tape,
                        exchanges=query_report.exchanges,
                        virtual_seconds=query_report.virtual_seconds,
                        faults=query_report.faults,
                        restages=query_report.restages,
                        super_tiles_staged=query_report.super_tiles_staged,
                        shared=False,
                    ),
                )
            )
        return responses, report

    def _loop(self) -> None:
        clock = self.heaven.clock
        while True:
            self._admit_arrivals(clock.now)
            for task in self._order:
                if task.admitted and not task.done and not task.pending:
                    self._step(task)
            if all(task.done for task in self._tasks):
                return
            if any(
                task.admitted and task.pending for task in self._tasks
            ):
                self._dispatch_sweep()
                continue
            future = [
                task.spec.arrival_s
                for task in self._tasks
                if not task.admitted
            ]
            if not future:  # pragma: no cover - loop invariant
                raise HeavenError("admission stalled: no runnable task")
            gap = min(future) - clock.now
            if gap > 0:
                clock.charge(
                    gap, "wait", ADMISSION_DEVICE, detail="idle until arrival"
                )

    def _admit_arrivals(self, now: float) -> None:
        """Prime the task generator of every query that has arrived."""
        for task in self._order:
            if not task.admitted and task.spec.arrival_s <= now:
                task.admitted = True
                task.gen = self._query_body(task)
                self._step(task)  # runs the enqueue phase

    def _step(self, task: _QueryTask) -> None:
        assert task.gen is not None
        try:
            next(task.gen)
        except StopIteration:
            task.done = True

    # ------------------------------------------------------------------ task body

    def _query_body(self, task: _QueryTask) -> Generator[str, None, None]:
        """The cooperative life of one query: enqueue -> wait -> assemble."""
        heaven = self.heaven
        clock = heaven.clock
        spec = task.spec
        mdd = heaven.storage.collection(spec.collection).get(spec.object_name)
        heaven._record_access(mdd, spec.region)
        task.mdd = mdd
        if spec.tile_ids is None:
            tile_ids = [t.tile_id for t in mdd.tiles_for(spec.region)]
        else:
            for tile_id in spec.tile_ids:
                if tile_id not in mdd.tiles:
                    raise HeavenError(
                        f"object {spec.object_name!r} has no tile {tile_id}"
                    )
            tile_ids = sorted(spec.tile_ids)
        task.tiles_needed = len(tile_ids)
        needs = heaven.collect_needs([(mdd, tile_ids)])
        task.enqueued_s = clock.now
        for key, need in sorted(needs.items()):
            medium_id, _segment = heaven.library.segment(key)
            task.demands[key] = _Demand(
                key=key,
                medium_id=medium_id,
                tile_ids=sorted(need.tile_ids),
                run=heaven._required_run(need.super_tile, need.tile_ids),
                enqueued_s=clock.now,
            )
        task.pending = set(task.demands)
        while task.pending:
            yield "waiting"
        # Assemble.  Everything charged between the cursor and the end of
        # the read belongs to this query alone (restage fallbacks, memory
        # cache misses re-staged from tape, ...).
        cursor = clock.log.cursor()
        with heaven.tracer.span(
            "admission.assemble", query=task.qid, object=spec.object_name
        ) as span:
            if spec.tile_ids is None:
                cells = mdd.read(spec.region)
                bytes_useful = int(cells.nbytes)
            else:
                # Sharded form: materialise the subset tile by tile — the
                # region's remaining tiles belong to other shards, so
                # there is no whole region to assemble here.
                for tile_id in tile_ids:
                    task.tile_cells[tile_id] = mdd.materialize_tile(
                        mdd.tiles[tile_id]
                    )
                cells = np.empty(0, dtype=mdd.cell_type.dtype)
                bytes_useful = sum(
                    int(c.nbytes) for c in task.tile_cells.values()
                )
        heaven._observe_assemble_wall(span)
        self._release_leases(task)
        window = clock.log.window(cursor)
        assembly_tape_bytes = sum(
            e.bytes
            for e in window
            if e.kind == "read" and e.device.startswith("drive")
        )
        task.cells = cells
        task.finished_s = clock.now
        task.report = RetrievalReport(
            object_name=spec.label,
            region=str(spec.region),
            tiles_needed=task.tiles_needed,
            super_tiles_staged=len(task.demands),
            bytes_from_tape=task.tape_byte_share + assembly_tape_bytes,
            bytes_useful=bytes_useful,
            exchanges=sum(1 for e in window if e.kind == "load"),
            virtual_seconds=clock.now - spec.arrival_s,
            restages=sum(1 for e in window if e.kind == "restage"),
            pins=task.lease_count,
            waves=task.sweeps,
        )
        heaven.read_tiles_needed += task.tiles_needed
        heaven.read_bytes_useful += bytes_useful
        task.done = True
        yield "done"

    def _release_leases(self, task: _QueryTask) -> None:
        held, task.leases = task.leases, []
        for key in held:
            try:
                self.heaven.disk_cache.release_lease(key, task.owner)
            except CacheError:  # pragma: no cover - defensive
                pass

    # ------------------------------------------------------------------ scheduling

    def _pending_demands(self) -> List[Tuple[_QueryTask, _Demand]]:
        out: List[Tuple[_QueryTask, _Demand]] = []
        for task in self._tasks:
            if not task.admitted or task.done:
                continue
            for key in sorted(task.pending):
                out.append((task, task.demands[key]))
        return out

    def _pick_medium(
        self, pending: Sequence[Tuple[_QueryTask, _Demand]]
    ) -> str:
        """Weighted-fair medium choice with aging escalation."""
        now = self.heaven.clock.now
        oldest = min(pending, key=lambda td: (td[1].enqueued_s, td[0].qid))
        if (
            self.aging_bound_s is not None
            and now - oldest[1].enqueued_s > self.aging_bound_s / 2.0
        ):
            # Aging escalation: serve the oldest demand's medium next, no
            # matter how much service its query already received.
            return oldest[1].medium_id
        best: Optional[Tuple[float, str]] = None
        for task, demand in pending:
            need = task.service_s / task.weight
            candidate = (need, demand.medium_id)
            if best is None or candidate < best:
                best = candidate
        assert best is not None
        return best[1]

    def _dispatch_sweep(self) -> None:
        """Fuse all pending demands on one medium into a single sweep."""
        heaven = self.heaven
        clock = heaven.clock
        report = self._report
        pending = self._pending_demands()
        report.max_queue_depth = max(report.max_queue_depth, len(pending))
        if heaven.instruments is not None:
            heaven.instruments.observe_admission_queue_depth(len(pending))
        medium_id = self._pick_medium(pending)
        # Anticipatory hold-back: wait out the window so queries arriving
        # inside it join this very sweep instead of paying their own mount.
        if self.holdback_s > 0:
            clock.charge(
                self.holdback_s,
                "holdback",
                ADMISSION_DEVICE,
                detail=f"hold {medium_id}",
            )
            heaven.admission_holdback_seconds += self.holdback_s
            report.holdback_seconds += self.holdback_s
            before = sum(1 for t in self._tasks if t.admitted)
            self._admit_arrivals(clock.now)
            report.holdback_absorbed += (
                sum(1 for t in self._tasks if t.admitted) - before
            )
            pending = self._pending_demands()
        chosen = [
            (task, demand)
            for task, demand in pending
            if demand.medium_id == medium_id
        ]
        if not chosen:  # pragma: no cover - pick always comes from pending
            return
        self._execute_sweep(medium_id, chosen)

    def _execute_sweep(
        self,
        medium_id: str,
        chosen: Sequence[Tuple[_QueryTask, _Demand]],
    ) -> None:
        heaven = self.heaven
        clock = heaven.clock
        report = self._report
        # Fuse: union the demanded tiles per segment across queries.
        by_key: Dict[str, List[Tuple[_QueryTask, _Demand]]] = {}
        for task, demand in chosen:
            by_key.setdefault(demand.key, []).append((task, demand))
        fused: Dict[str, _SegmentNeed] = {}
        for key in sorted(by_key):
            demanders = by_key[key]
            task0 = demanders[0][0]
            assert task0.mdd is not None
            entry = heaven.archived(task0.mdd.name)
            tiles = sorted({t for _task, d in demanders for t in d.tile_ids})
            fused[key] = _SegmentNeed(
                super_tile=entry.super_tile_of(tiles[0]),
                entry=entry,
                mdd=task0.mdd,
                tile_ids=tiles,
            )
        demanded_unions = {
            key: heaven._required_run(need.super_tile, need.tile_ids)
            for key, need in fused.items()
        }
        ticket = StagingTicket(cache=heaven.disk_cache)
        sweep_start = clock.now
        cursor = clock.log.cursor()
        try:
            with heaven.tracer.span(
                "admission.sweep",
                always=True,
                medium=medium_id,
                segments=len(fused),
                queries=len({task.qid for task, _d in chosen}),
            ):
                requests = heaven.plan_requests(fused, ticket)
                requests = [
                    replace(
                        request,
                        query_id=min(
                            (t.qid for t, _d in by_key.get(request.key, [])),
                            default=0,
                        ),
                        query_ids=tuple(
                            sorted(
                                {t.qid for t, _d in by_key.get(request.key, [])}
                            )
                        ),
                    )
                    for request in requests
                ]
                if requests:
                    heaven.execute_staging(requests, fused, ticket)
            self._grant_leases(fused, by_key)
        finally:
            ticket.release()
        self._settle_sweep(
            medium_id,
            by_key,
            fused,
            demanded_unions,
            requests,
            sweep_elapsed=clock.now - sweep_start,
            window_bytes=sum(
                e.bytes
                for e in clock.log.window(cursor)
                if e.kind == "read" and e.device.startswith("drive")
            ),
        )
        report.sweeps += 1
        report.fused_segments += len(demanded_unions)
        heaven.admission_sweeps += 1

    def _grant_leases(
        self,
        fused: Dict[str, _SegmentNeed],
        by_key: Dict[str, List[Tuple[_QueryTask, _Demand]]],
    ) -> None:
        """One lease per demanding query per disk-cached fused segment.

        Segments that degraded to the memory tile cache (drained waves,
        fully-pinned cache) need no lease: their tiles are already
        decoded, and :meth:`Heaven.collect_needs` will skip them at
        assembly time.
        """
        cache = self.heaven.disk_cache
        # plan_requests may have grown *fused* with sequential-prefetch
        # segments; nobody demanded those, so nobody leases them.
        for key in sorted(fused):
            if key not in by_key or key not in cache:
                continue
            for task, _demand in by_key[key]:
                cache.acquire_lease(key, task.owner)
                task.leases.append(key)
                task.lease_count += 1

    def _settle_sweep(
        self,
        medium_id: str,
        by_key: Dict[str, List[Tuple[_QueryTask, _Demand]]],
        fused: Dict[str, _SegmentNeed],
        demanded_unions: Dict[str, Tuple[int, int]],
        requests: Sequence[TapeRequest],
        *,
        sweep_elapsed: float,
        window_bytes: int,
    ) -> None:
        """Attribute the sweep's cost and mark demands satisfied."""
        heaven = self.heaven
        clock = heaven.clock
        report = self._report
        requested_keys = {r.key for r in requests}
        # -- byte attribution: exact split of planned request bytes, with
        # any event-log surplus (fault re-reads, prefetch) kept explicit.
        # Prefetch requests (keys nobody demanded) go to the unattributed
        # bucket wholesale.
        shares = attribute_request_bytes(
            [r for r in requests if r.key in by_key]
        )
        prefetch_bytes = sum(
            r.length for r in requests if r.key not in by_key
        )
        planned_total = sum(r.length for r in requests)
        surplus = window_bytes - planned_total
        report.unattributed_tape_bytes += (
            shares.pop(0, 0) + prefetch_bytes + max(0, surplus)
        )
        tasks_by_qid = {task.qid: task for task in self._tasks}
        for qid, share in shares.items():
            tasks_by_qid[qid].tape_byte_share += share
        # -- service attribution: sweep seconds split by demanded bytes.
        sweep_tasks: Dict[int, int] = {}
        for key, demanders in by_key.items():
            for task, demand in demanders:
                sweep_tasks[task.qid] = (
                    sweep_tasks.get(task.qid, 0) + demand.run[1]
                )
        total_demand = sum(sweep_tasks.values())
        for qid in sorted(sweep_tasks):
            task = tasks_by_qid[qid]
            fraction = (
                sweep_tasks[qid] / total_demand
                if total_demand
                else 1.0 / len(sweep_tasks)
            )
            task.service_s += sweep_elapsed * fraction
            task.sweeps += 1
        # -- fusion audit + savings (demanded segments only: prefetch
        # additions to *fused* have no demanders and no audit row).
        for key in sorted(demanded_unions):
            demanders = by_key[key]
            qids = tuple(sorted({task.qid for task, _d in demanders}))
            staged_run = fused[key].run
            cache_hit = key not in requested_keys
            demanded = demanded_unions[key]
            audit = FusionAudit(
                key=key,
                medium_id=medium_id,
                demanded_run=demanded,
                staged_run=staged_run,
                queries=qids,
                cache_hit=cache_hit,
                absorbed_cached=staged_run != demanded,
            )
            report.audit.append(audit)
            if not cache_hit and len(qids) > 1:
                separate = sum(d.run[1] for _t, d in demanders)
                saved = max(0, separate - staged_run[1])
                report.fusion_saved_bytes += saved
                heaven.admission_fusion_saved_bytes += saved
        distinct_queries = len(sweep_tasks)
        if requests and distinct_queries > 1:
            saved_exchanges = distinct_queries - 1
            report.fusion_saved_exchanges += saved_exchanges
            heaven.admission_fusion_saved_exchanges += saved_exchanges
        # -- demands satisfied: wake the waiting tasks.
        now = clock.now
        for key, demanders in by_key.items():
            for task, demand in demanders:
                task.pending.discard(key)
                wait = now - demand.enqueued_s
                task.max_wait_s = max(task.max_wait_s, wait)
                if heaven.instruments is not None:
                    heaven.instruments.observe_admission_wait(wait)
