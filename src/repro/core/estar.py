"""eSTAR — the extended Super-Tile Algorithm (Kapitel 3.2.3/3.2.4).

eSTAR extends STAR in three ways:

1. **Access-aware axis order.**  Collected query statistics say which axes
   queries tend to span widely (large fractional extent) and which they cut
   thinly.  Grouping tiles along the widely spanned axes puts co-accessed
   tiles into the same super-tile, so one tape positioning serves more of
   the query.
2. **Actual-size packing.**  STAR assumes uniform tile sizes; eSTAR uses the
   real byte sizes (edge tiles are smaller) when deciding how many tiles a
   super-tile takes.
3. **Automatic super-tile size** derived from the drive cost model: fetching
   a request of Q useful bytes spread over super-tiles of size S costs about
   ``(Q/S + 1) * (t_pos + S/r)``; minimising over S gives
   ``S* = sqrt(Q * t_pos * r)`` — the seek-amortisation vs. useless-bytes
   optimum the size-sweep experiment (E7) shows as a U-shaped curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..errors import HeavenError
from ..tertiary.profiles import TapeProfile
from .super_tile import SuperTile, star_partition


@dataclass
class AccessStatistics:
    """Per-axis summary of observed query regions on one object/schema.

    For every recorded query box the fractional extent per axis
    (box extent / domain extent) and the useful byte volume are kept as
    running sums, giving the two inputs eSTAR needs: the axis co-access
    profile and the expected request size.
    """

    dimension: int
    queries: int = 0
    fraction_sums: List[float] = field(default_factory=list)
    bytes_sum: float = 0.0

    def __post_init__(self) -> None:
        if not self.fraction_sums:
            self.fraction_sums = [0.0] * self.dimension

    def record(self, region: MInterval, domain: MInterval, cell_size: int) -> None:
        """Account one query *region* against the object *domain*."""
        if region.dimension != self.dimension or domain.dimension != self.dimension:
            raise HeavenError("access statistics dimensionality mismatch")
        self.queries += 1
        for axis in range(self.dimension):
            self.fraction_sums[axis] += (
                region[axis].extent / domain[axis].extent
            )
        self.bytes_sum += region.cell_count * cell_size

    def mean_fractions(self) -> List[float]:
        """Mean fractional extent per axis (1.0 = queries span whole axis)."""
        if self.queries == 0:
            return [1.0] * self.dimension
        return [s / self.queries for s in self.fraction_sums]

    def mean_request_bytes(self) -> Optional[float]:
        if self.queries == 0:
            return None
        return self.bytes_sum / self.queries

    def axis_order(self) -> List[int]:
        """Axes sorted by descending mean fraction (group co-accessed first).

        Ties fall back to the row-major default (innermost axis first),
        which is also the answer when no statistics exist yet.
        """
        fractions = self.mean_fractions()
        return sorted(
            range(self.dimension),
            key=lambda axis: (-fractions[axis], -axis),
        )


def optimal_super_tile_bytes(
    profile: TapeProfile,
    expected_request_bytes: float,
    min_bytes: int,
    max_bytes: int,
) -> int:
    """The cost-model optimum ``S* = sqrt(Q * t_pos * r)``, clamped.

    ``t_pos`` is the expected positioning time between two scheduled
    requests on the same medium.  With the elevator sweep of HEAVEN's
    scheduler the head moves monotonically, so the expected wind distance
    between consecutive requests is well under half the medium; we use half
    the profile's mean access time (which itself is the begin-to-middle
    wind) as the effective positioning cost.
    """
    if expected_request_bytes <= 0:
        raise HeavenError("expected request size must be positive")
    t_pos = profile.avg_seek_time_s / 2.0
    optimum = math.sqrt(expected_request_bytes * t_pos * profile.transfer_rate_bps)
    clamped = max(min_bytes, min(max_bytes, int(optimum)))
    # Never exceed one medium.
    return min(clamped, profile.media_capacity_bytes)


def estar_partition(
    mdd: MDD,
    profile: TapeProfile,
    stats: Optional[AccessStatistics] = None,
    target_bytes: Optional[int] = None,
    min_bytes: int = 8 * 1024 * 1024,
    max_bytes: int = 1024 * 1024 * 1024,
) -> List[SuperTile]:
    """eSTAR: access-aware, size-adaptive super-tile partitioning.

    Args:
        mdd: object to partition.
        profile: tape technology (drives the automatic size).
        stats: observed access statistics; None falls back to defaults.
        target_bytes: explicit size override; None = automatic.

    Returns:
        Super-tiles in cluster order.
    """
    if target_bytes is None:
        expected = None
        if stats is not None:
            expected = stats.mean_request_bytes()
        if expected is None:
            # No history: assume the paper's canonical 1-10 % selectivity —
            # use 5 % of the object as the expected request.
            expected = max(1.0, 0.05 * mdd.size_bytes)
        target_bytes = optimal_super_tile_bytes(profile, expected, min_bytes, max_bytes)
    axis_order = None
    if stats is not None and stats.dimension == mdd.dimension:
        axis_order = stats.axis_order()
    return star_partition(mdd, target_bytes, axis_order=axis_order)


def intra_cluster_order(
    super_tile: SuperTile,
    mdd: MDD,
    stats: Optional[AccessStatistics] = None,
) -> List[int]:
    """Intra-super-tile clustering: byte order of tiles inside the segment.

    Tiles are sorted lexicographically with the *thinly cut* axes as the
    primary key and the widely spanned (co-accessed) axes varying fastest.
    A query that spans the wide axes but picks few values on the thin axes
    then selects a few complete "bands" of the segment — short contiguous
    runs instead of a scatter across the whole segment (Kapitel 3.3.2).
    Without statistics the row-major default (tile-id order) is kept.
    """
    if stats is None or stats.dimension != mdd.dimension:
        return sorted(super_tile.tile_ids)
    order = stats.axis_order()  # most co-accessed first
    # Primary sort key = thin axes (vary slowest); wide axes last (fastest).
    key_axes = list(reversed(order))

    def key(tile_id: int) -> tuple:
        origin = mdd.tiles[tile_id].domain.origin
        return tuple(origin[axis] for axis in key_axes)

    return sorted(super_tile.tile_ids, key=key)
