"""HEAVEN core: the paper's contribution.

Super-tiles (STAR/eSTAR), intra-/inter-super-tile clustering, coupled vs.
decoupled TCT export, query scheduling, the caching hierarchy, object
framing, precomputed operation results, and the :class:`Heaven` façade that
fuses the array DBMS with the tertiary-storage system.
"""

from .cache import (
    CacheStats,
    DiskCache,
    EvictionPolicy,
    FIFOPolicy,
    GDSPolicy,
    LFUPolicy,
    LRUPolicy,
    MemoryTileCache,
    SizePolicy,
    make_policy,
    policy_names,
)
from .clustering import (
    ClusteredPlacement,
    InterleavedObjectPlacement,
    Placement,
    PlacementPolicy,
    ScatterPlacement,
    interleave_round_robin,
)
from .compression import Codec, NoneCodec, ZlibCodec, codec_names, make_codec
from .config import FaultPlan, HeavenConfig, RetryPolicy
from .estar import (
    AccessStatistics,
    estar_partition,
    intra_cluster_order,
    optimal_super_tile_bytes,
)
from .export import (
    EXPORT_SEGMENTS_TABLE,
    CoupledExporter,
    ExportReport,
    TCTExporter,
    recover_incomplete_exports,
)
from .framing import (
    BoxFrame,
    Frame,
    HalfSpaceFrame,
    MaskFrame,
    MultiBoxFrame,
    read_frame,
    tiles_in_frame,
)
from .heaven import ArchivedObject, Heaven, RetrievalReport
from .precomputed import (
    DECOMPOSABLE,
    PrecomputedCatalog,
    PrecomputedStats,
    TileAggregate,
)
from .pyramid import PyramidCatalog, PyramidLevel, PyramidStats
from .scheduler import (
    CoalescedRun,
    DrivePlan,
    DriveShare,
    ElevatorScheduler,
    FIFOScheduler,
    ParallelExecutor,
    ParallelPlan,
    ParallelReport,
    ScheduleReport,
    Scheduler,
    TapeRequest,
    coalesce_requests,
    execute_batch,
    plan_parallel,
)
from .super_tile import (
    SuperTile,
    grid_block_shape,
    run_pack_partition,
    star_partition,
    tiles_to_super_tiles,
)

__all__ = [
    "AccessStatistics",
    "ArchivedObject",
    "BoxFrame",
    "CacheStats",
    "ClusteredPlacement",
    "Codec",
    "CoupledExporter",
    "DECOMPOSABLE",
    "DiskCache",
    "EXPORT_SEGMENTS_TABLE",
    "ElevatorScheduler",
    "EvictionPolicy",
    "ExportReport",
    "FIFOPolicy",
    "FIFOScheduler",
    "FaultPlan",
    "Frame",
    "GDSPolicy",
    "HalfSpaceFrame",
    "Heaven",
    "HeavenConfig",
    "InterleavedObjectPlacement",
    "LFUPolicy",
    "LRUPolicy",
    "MaskFrame",
    "MemoryTileCache",
    "MultiBoxFrame",
    "NoneCodec",
    "ZlibCodec",
    "Placement",
    "PlacementPolicy",
    "PrecomputedCatalog",
    "PrecomputedStats",
    "PyramidCatalog",
    "PyramidLevel",
    "PyramidStats",
    "ParallelExecutor",
    "ParallelPlan",
    "ParallelReport",
    "DrivePlan",
    "DriveShare",
    "CoalescedRun",
    "coalesce_requests",
    "RetrievalReport",
    "RetryPolicy",
    "ScatterPlacement",
    "ScheduleReport",
    "Scheduler",
    "SizePolicy",
    "SuperTile",
    "TCTExporter",
    "TapeRequest",
    "TileAggregate",
    "estar_partition",
    "codec_names",
    "execute_batch",
    "grid_block_shape",
    "interleave_round_robin",
    "intra_cluster_order",
    "make_codec",
    "make_policy",
    "optimal_super_tile_bytes",
    "plan_parallel",
    "policy_names",
    "read_frame",
    "recover_incomplete_exports",
    "run_pack_partition",
    "star_partition",
    "tiles_in_frame",
    "tiles_to_super_tiles",
]
