"""System catalog of precomputed operation results (Kapitel 3.8).

At export time HEAVEN records, per tile, the decomposable aggregates
(count, sum, min, max).  A later condenser query over an archived object is
answered by combining the per-tile partials of fully covered tiles and
reading only the *partial edge tiles* of the query region — usually turning
a tape-touching aggregation into pure catalog arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..arrays.query.executor import MDDRef
from ..errors import HeavenError

Scalar = Union[int, float, bool]

#: Condensers answerable from (count, sum, min, max) partials.
DECOMPOSABLE = ("add_cells", "avg_cells", "max_cells", "min_cells")


@dataclass(frozen=True)
class TileAggregate:
    """Decomposable partial aggregates of one tile."""

    count: int
    total: float
    minimum: float
    maximum: float

    @classmethod
    def of(cls, cells: np.ndarray) -> "TileAggregate":
        if cells.dtype.fields is not None:
            raise HeavenError("precomputed aggregates need scalar cell types")
        return cls(
            count=int(cells.size),
            total=float(cells.sum(dtype=np.float64)),
            minimum=float(cells.min()),
            maximum=float(cells.max()),
        )


@dataclass
class PrecomputedStats:
    """How often the catalog could answer instead of the storage hierarchy."""

    lookups: int = 0
    answered_pure: int = 0      # all tiles fully covered: zero cell reads
    answered_hybrid: int = 0    # edge tiles read, interior from partials
    declined: int = 0           # not decomposable / no entry

    @property
    def answered(self) -> int:
        return self.answered_pure + self.answered_hybrid


class PrecomputedCatalog:
    """Per-object tile aggregates plus the combine logic."""

    def __init__(self) -> None:
        self._tiles: Dict[str, Dict[int, TileAggregate]] = {}
        self.stats = PrecomputedStats()

    def register_object(self, mdd: MDD) -> int:
        """Compute and store aggregates for every tile; returns tile count.

        Called during export while tile payloads are still on disk, so the
        scan costs nothing extra on tape.
        """
        if mdd.cell_type.dtype.fields is not None:
            raise HeavenError(
                f"object {mdd.name!r}: struct cell types have no scalar aggregates"
            )
        entries: Dict[int, TileAggregate] = {}
        for tile_id, tile in mdd.tiles.items():
            cells = mdd.materialize_tile(tile)
            entries[tile_id] = TileAggregate.of(cells)
        self._tiles[mdd.name] = entries
        return len(entries)

    def drop_object(self, object_name: str) -> None:
        self._tiles.pop(object_name, None)

    def invalidate_tiles(self, object_name: str, tile_ids: List[int]) -> None:
        """Remove partials of updated tiles (they are re-registered on export)."""
        entries = self._tiles.get(object_name)
        if entries is None:
            return
        for tile_id in tile_ids:
            entries.pop(tile_id, None)

    def refresh_tile(self, mdd: MDD, tile_id: int) -> None:
        """Recompute one tile's partials after an update."""
        entries = self._tiles.setdefault(mdd.name, {})
        entries[tile_id] = TileAggregate.of(mdd.materialize_tile(mdd.tiles[tile_id]))

    def has_object(self, object_name: str) -> bool:
        return object_name in self._tiles

    # -- answering --------------------------------------------------------------

    def try_answer(
        self,
        condenser: str,
        ref: MDDRef,
        prepare=None,
    ) -> Optional[Scalar]:
        """Answer a condenser over a lazy reference, or None to decline.

        Interior tiles (fully inside the query region) contribute their
        precomputed partials; edge tiles contribute an aggregate over only
        their overlap, read through the normal hierarchy.  *prepare*, when
        given, is called once with ``(mdd, edge_tile_ids)`` before any edge
        read so the storage layer can batch-stage them (one scheduled tape
        pass instead of one stage per tile); a callable returned by
        *prepare* is invoked after the edge reads (HEAVEN releases its
        staging pins there).
        """
        self.stats.lookups += 1
        entries = self._tiles.get(ref.mdd.name)
        if entries is None or condenser not in DECOMPOSABLE:
            self.stats.declined += 1
            return None
        region = ref.full_region()
        mdd = ref.mdd
        count = 0
        total = 0.0
        minimum = float("inf")
        maximum = float("-inf")
        edges = []
        for tile in mdd.tiles_for(region):
            if region.contains(tile.domain):
                partial = entries.get(tile.tile_id)
                if partial is None:
                    self.stats.declined += 1
                    return None
                count += partial.count
                total += partial.total
                minimum = min(minimum, partial.minimum)
                maximum = max(maximum, partial.maximum)
            else:
                overlap = tile.domain.intersection(region)
                assert overlap is not None
                edges.append((tile, overlap))
        edge_tiles = len(edges)
        release = None
        if edges and prepare is not None:
            release = prepare(mdd, [tile.tile_id for tile, _overlap in edges])
        try:
            for _tile, overlap in edges:
                cells = mdd.read(overlap)
                count += int(cells.size)
                total += float(cells.sum(dtype=np.float64))
                minimum = min(minimum, float(cells.min()))
                maximum = max(maximum, float(cells.max()))
        finally:
            if callable(release):
                release()
        if count == 0:
            self.stats.declined += 1
            return None
        if edge_tiles:
            self.stats.answered_hybrid += 1
        else:
            self.stats.answered_pure += 1
        if condenser == "add_cells":
            return total
        if condenser == "avg_cells":
            return total / count
        if condenser == "max_cells":
            return maximum
        if condenser == "min_cells":
            return minimum
        raise HeavenError(f"unreachable condenser {condenser!r}")
