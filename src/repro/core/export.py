"""Export pipelines: coupled (RasDaMan-style) vs. decoupled TCT (Kapitel 3.3/4.3).

*Coupled export* is the classic path: the DBMS reads one tile BLOB at a
time from the base RDBMS and hands it to the tape drive, which commits it
as its own segment.  Every tile pays a random disk read plus the drive's
stop/start penalty, and the tape never streams.

*Decoupled TCT export* (Tertiary-storage Communication Thread) assembles
whole super-tiles in a memory buffer and streams each as one segment.  The
assembly of super-tile ``i+1`` overlaps the tape write of super-tile ``i``
(the TCT runs decoupled from query processing), so disk time hides behind
tape time except for pipeline stalls.

The TCT exporter can journal its segment writes in the base DBMS's
write-ahead log: a BEGIN/INSERT.../COMMIT sequence under a dedicated
(negative) transaction id per export.  A fault mid-export then rolls the
half-written segments back immediately, and a crash mid-export leaves a
BEGIN without COMMIT that :func:`recover_incomplete_exports` cleans up on
the next start.
"""

from __future__ import annotations

import itertools
import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..arrays.mdd import MDD
from ..arrays.storage import ArrayStorage
from ..dbms.wal import LogKind, WriteAheadLog
from ..errors import ExportError
from ..obs.trace import null_tracer
from ..tertiary.clock import Stopwatch
from ..tertiary.library import TapeLibrary
from .clustering import Placement
from .super_tile import SuperTile

logger = logging.getLogger("repro.core.export")

#: WAL marker table journalling segments of in-flight TCT exports
EXPORT_SEGMENTS_TABLE = "heaven_export_segments"


def recover_incomplete_exports(wal: WriteAheadLog, library: TapeLibrary) -> int:
    """Remove tape segments of exports that never committed nor aborted.

    Scans the WAL for export transactions (negative txn ids on the
    :data:`EXPORT_SEGMENTS_TABLE` marker table) whose BEGIN has no matching
    COMMIT/ABORT — the crash-mid-export case — deletes every journalled
    segment still in the library, and appends the missing ABORT so a second
    recovery pass is a no-op.  Returns the number of segments removed.
    """
    finished = {
        r.txn_id
        for r in wal.records()
        if r.kind in (LogKind.COMMIT, LogKind.ABORT)
    }
    removed = 0
    for txn_id in sorted(
        {
            r.txn_id
            for r in wal.records()
            if r.txn_id < 0 and r.kind is LogKind.BEGIN
        }
        - finished
    ):
        for record in wal.records_for(txn_id):
            if record.kind is not LogKind.INSERT or record.after is None:
                continue
            segment = record.after.get("segment")
            if segment and library.has_segment(segment):
                library.delete_segment(segment)
                removed += 1
                logger.info(
                    "recovery: removed orphan segment %s of export txn %d",
                    segment, txn_id,
                )
        wal.append(txn_id, LogKind.ABORT)
    return removed


@dataclass
class ExportReport:
    """Outcome and cost breakdown of one export run."""

    object_name: str
    mode: str
    segments_written: int = 0
    bytes_written: int = 0
    tiles_exported: int = 0
    media_used: int = 0
    virtual_seconds: float = 0.0
    stall_seconds: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_mb_s(self) -> float:
        if self.virtual_seconds <= 0:
            return 0.0
        return self.bytes_written / self.virtual_seconds / (1024 * 1024)


def _segment_breakdown(library: TapeLibrary, since: int) -> Dict[str, float]:
    """Per-kind virtual seconds of events appended after cursor *since*."""
    return library.clock.log.breakdown(start=since)


class CoupledExporter:
    """Tile-by-tile export through the base DBMS (the E3 baseline)."""

    mode = "coupled"

    def __init__(
        self, storage: ArrayStorage, library: TapeLibrary, tracer=None
    ) -> None:
        self.storage = storage
        self.library = library
        self.tracer = tracer if tracer is not None else null_tracer

    def export(self, mdd: MDD) -> ExportReport:
        """Write every tile as its own tape segment, in generation order.

        Returns:
            Report with the full cost breakdown; segments are named
            ``{oid}/t{tile_id}``.
        """
        if mdd.oid is None:
            raise ExportError(f"object {mdd.name!r} is not persisted; insert it first")
        clock = self.library.clock
        watch = Stopwatch(clock)
        log_start = clock.log.cursor()
        report = ExportReport(object_name=mdd.name, mode=self.mode)
        media_before = {m.medium_id for m in self.library.media() if m.used_bytes}
        with self.tracer.span("export.coupled", object=mdd.name):
            for tile_id in sorted(mdd.tiles):
                tile = mdd.tiles[tile_id]
                blob_oid = self.storage.blob_oid_of(mdd.oid, tile_id)
                payload = self.storage.db.blobs.get(blob_oid)  # random disk read
                self.library.write_segment(
                    f"{mdd.oid}/t{tile_id}", tile.size_bytes, payload=payload
                )
                report.segments_written += 1
                report.bytes_written += tile.size_bytes
                report.tiles_exported += 1
        report.virtual_seconds = watch.elapsed
        report.breakdown = _segment_breakdown(self.library, log_start)
        media_after = {m.medium_id for m in self.library.media() if m.used_bytes}
        report.media_used = len(media_after - media_before) or len(media_after)
        logger.info(
            "coupled export of %s: %d segments, %d B in %.1f virtual s",
            mdd.name, report.segments_written, report.bytes_written,
            report.virtual_seconds,
        )
        return report


class TCTExporter:
    """Decoupled super-tile streaming export (the E4 HEAVEN path).

    With a *wal*, every export runs as a journalled transaction (negative
    txn id, marker table :data:`EXPORT_SEGMENTS_TABLE`): an exception
    mid-export rolls its half-written segments back before re-raising, and
    a crash leaves enough in the log for
    :func:`recover_incomplete_exports`.
    """

    mode = "tct"

    def __init__(
        self,
        storage: ArrayStorage,
        library: TapeLibrary,
        tracer=None,
        wal: Optional[WriteAheadLog] = None,
    ) -> None:
        self.storage = storage
        self.library = library
        self.tracer = tracer if tracer is not None else null_tracer
        self.wal = wal
        #: export txn ids are negative so they can never collide with the
        #: base DBMS's own (positive) transaction counter
        self._txn_ids = itertools.count(1)

    def export(
        self,
        mdd: MDD,
        placements: Sequence[Placement],
        pipelined: bool = True,
        stored_sizes: Optional[Dict[int, int]] = None,
        codec=None,
    ) -> ExportReport:
        """Stream each super-tile as one segment per its placement.

        Args:
            mdd: the persisted object whose tiles are being exported.
            placements: write order and media targets (from a
                :class:`~repro.core.clustering.PlacementPolicy`).
            pipelined: overlap assembly of the next super-tile with the
                tape write of the current one (the decoupling); off, every
                assembly is charged in full (for the ablation).
            stored_sizes: per-tile on-tape sizes when compression is on
                (the caller must already have set each super-tile's
                ``size_bytes`` to the matching sum); None = logical sizes.
            codec: per-tile codec applied while assembling payloads.

        Side effects: fills in each super-tile's ``medium_id``,
        ``segment_name`` and ``tile_extents``.
        """
        if mdd.oid is None:
            raise ExportError(f"object {mdd.name!r} is not persisted; insert it first")
        clock = self.library.clock
        watch = Stopwatch(clock)
        log_start = clock.log.cursor()
        report = ExportReport(object_name=mdd.name, mode=self.mode)
        media_before = {m.medium_id for m in self.library.media() if m.used_bytes}
        blobs = self.storage.db.blobs

        txn_id: Optional[int] = None
        if self.wal is not None:
            txn_id = -next(self._txn_ids)
            self.wal.append(txn_id, LogKind.BEGIN)

        try:
            with self.tracer.span(
                "export.tct", object=mdd.name, pipelined=pipelined
            ) as export_span:
                self._export_segments(
                    mdd, placements, pipelined, stored_sizes, codec,
                    report, export_span, txn_id,
                )
        except Exception:
            if txn_id is not None:
                self._rollback(txn_id, mdd.name)
            raise
        if txn_id is not None:
            assert self.wal is not None
            self.wal.append(txn_id, LogKind.COMMIT)

        report.virtual_seconds = watch.elapsed
        report.breakdown = _segment_breakdown(self.library, log_start)
        media_after = {m.medium_id for m in self.library.media() if m.used_bytes}
        report.media_used = len(media_after - media_before) or len(media_after)
        logger.info(
            "tct export of %s: %d segments, %d B in %.1f virtual s "
            "(%.1f s pipeline stalls)",
            mdd.name, report.segments_written, report.bytes_written,
            report.virtual_seconds, report.stall_seconds,
        )
        return report

    def _rollback(self, txn_id: int, object_name: str) -> None:
        """Undo the journalled segment writes of a failed export."""
        assert self.wal is not None
        rolled_back = 0
        for record in self.wal.records_for(txn_id):
            if record.kind is not LogKind.INSERT or record.after is None:
                continue
            segment = record.after.get("segment")
            if segment and self.library.has_segment(segment):
                self.library.delete_segment(segment)
                rolled_back += 1
        self.wal.append(txn_id, LogKind.ABORT)
        logger.warning(
            "export of %s aborted: rolled back %d half-written segment(s)",
            object_name, rolled_back,
        )

    def _export_segments(
        self,
        mdd: MDD,
        placements: Sequence[Placement],
        pipelined: bool,
        stored_sizes: Optional[Dict[int, int]],
        codec,
        report: ExportReport,
        export_span,
        txn_id: Optional[int],
    ) -> None:
        clock = self.library.clock
        blobs = self.storage.db.blobs
        previous_write_seconds = 0.0
        for position, placement in enumerate(placements):
            super_tile = placement.super_tile
            if stored_sizes is not None:
                sizes = {t: stored_sizes[t] for t in super_tile.tile_ids}
            else:
                sizes = {t: mdd.tiles[t].size_bytes for t in super_tile.tile_ids}
            super_tile.assign_extents(sizes)

            # --- assembly: N random BLOB reads into the staging buffer ----
            # (reads are of the *logical* tiles; compression happens while
            # streaming to the drive)
            assembly_seconds = sum(
                blobs.disk.profile.io_time(mdd.tiles[t].size_bytes)
                for t in super_tile.tile_ids
            )
            if position == 0 or not pipelined:
                clock.charge(
                    assembly_seconds,
                    "disk-read",
                    blobs.disk.name,
                    detail=f"assemble st{super_tile.index}",
                    nbytes=super_tile.size_bytes,
                )
            else:
                stall = max(0.0, assembly_seconds - previous_write_seconds)
                if stall > 0:
                    clock.charge(
                        stall,
                        "pipeline-stall",
                        blobs.disk.name,
                        detail=f"assemble st{super_tile.index}",
                    )
                    logger.debug(
                        "pipeline stall of %.3f virtual s assembling st%d "
                        "(assembly %.3f s > previous write %.3f s)",
                        stall, super_tile.index,
                        assembly_seconds, previous_write_seconds,
                    )
                report.stall_seconds += stall

            payload = self._assemble_payload(mdd, super_tile, codec)

            # --- one streamed segment write --------------------------------
            write_watch = Stopwatch(clock)
            segment_name = f"{mdd.oid}/st{super_tile.index}"
            with self.tracer.span(
                "export.segment",
                segment=segment_name,
                tiles=super_tile.tile_count,
                bytes=super_tile.size_bytes,
            ):
                medium_id, _segment = self.library.write_segment(
                    segment_name,
                    super_tile.size_bytes,
                    payload=payload,
                    medium_id=placement.medium_id,
                )
            previous_write_seconds = write_watch.elapsed
            super_tile.medium_id = medium_id
            super_tile.segment_name = segment_name
            if txn_id is not None:
                assert self.wal is not None
                self.wal.append(
                    txn_id,
                    LogKind.INSERT,
                    table=EXPORT_SEGMENTS_TABLE,
                    after={
                        "segment": segment_name,
                        "medium_id": medium_id,
                        "object": mdd.name,
                    },
                )
            logger.debug(
                "streamed %s (%d tiles, %d B) to medium %s in %.3f virtual s",
                segment_name, super_tile.tile_count, super_tile.size_bytes,
                medium_id, previous_write_seconds,
            )
            report.segments_written += 1
            report.bytes_written += super_tile.size_bytes
            report.tiles_exported += super_tile.tile_count
        export_span.set(
            segments=report.segments_written,
            stall_seconds=round(report.stall_seconds, 6),
        )

    def _assemble_payload(
        self, mdd: MDD, super_tile: SuperTile, codec=None
    ) -> Optional[bytes]:
        """Concatenate member tile bytes (per-tile compressed) in intra-
        cluster order.

        Uses uncharged peeks — the charged assembly cost is modelled above
        (pipelined); double-charging through the resolver would count every
        byte twice.
        """
        blobs = self.storage.db.blobs
        if not blobs.retain_payload:
            return None
        parts: List[bytes] = []
        for tile_id in super_tile.tile_ids:
            blob_oid = self.storage.blob_oid_of(mdd.oid, tile_id)
            raw = blobs.peek(blob_oid)
            if raw is None:
                tile = mdd.tiles[tile_id]
                cells = mdd.materialize_tile(tile)
                raw = np.ascontiguousarray(cells, dtype=mdd.cell_type.dtype).tobytes()
            if codec is not None:
                raw = codec.compress(raw)
            parts.append(raw)
        return b"".join(parts)
