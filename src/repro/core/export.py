"""Export pipelines: coupled (RasDaMan-style) vs. decoupled TCT (Kapitel 3.3/4.3).

*Coupled export* is the classic path: the DBMS reads one tile BLOB at a
time from the base RDBMS and hands it to the tape drive, which commits it
as its own segment.  Every tile pays a random disk read plus the drive's
stop/start penalty, and the tape never streams.

*Decoupled TCT export* (Tertiary-storage Communication Thread) assembles
whole super-tiles in a memory buffer and streams each as one segment.  The
assembly of super-tile ``i+1`` overlaps the tape write of super-tile ``i``
(the TCT runs decoupled from query processing), so disk time hides behind
tape time except for pipeline stalls.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..arrays.mdd import MDD
from ..arrays.storage import ArrayStorage
from ..errors import ExportError
from ..obs.trace import null_tracer
from ..tertiary.clock import Stopwatch
from ..tertiary.library import TapeLibrary
from .clustering import Placement
from .super_tile import SuperTile

logger = logging.getLogger("repro.core.export")


@dataclass
class ExportReport:
    """Outcome and cost breakdown of one export run."""

    object_name: str
    mode: str
    segments_written: int = 0
    bytes_written: int = 0
    tiles_exported: int = 0
    media_used: int = 0
    virtual_seconds: float = 0.0
    stall_seconds: float = 0.0
    breakdown: Dict[str, float] = field(default_factory=dict)

    @property
    def throughput_mb_s(self) -> float:
        if self.virtual_seconds <= 0:
            return 0.0
        return self.bytes_written / self.virtual_seconds / (1024 * 1024)


def _segment_breakdown(library: TapeLibrary, since: int) -> Dict[str, float]:
    """Per-kind virtual seconds of events appended after cursor *since*."""
    return library.clock.log.breakdown(start=since)


class CoupledExporter:
    """Tile-by-tile export through the base DBMS (the E3 baseline)."""

    mode = "coupled"

    def __init__(
        self, storage: ArrayStorage, library: TapeLibrary, tracer=None
    ) -> None:
        self.storage = storage
        self.library = library
        self.tracer = tracer if tracer is not None else null_tracer

    def export(self, mdd: MDD) -> ExportReport:
        """Write every tile as its own tape segment, in generation order.

        Returns:
            Report with the full cost breakdown; segments are named
            ``{oid}/t{tile_id}``.
        """
        if mdd.oid is None:
            raise ExportError(f"object {mdd.name!r} is not persisted; insert it first")
        clock = self.library.clock
        watch = Stopwatch(clock)
        log_start = clock.log.cursor()
        report = ExportReport(object_name=mdd.name, mode=self.mode)
        media_before = {m.medium_id for m in self.library.media() if m.used_bytes}
        with self.tracer.span("export.coupled", object=mdd.name):
            for tile_id in sorted(mdd.tiles):
                tile = mdd.tiles[tile_id]
                blob_oid = self.storage.blob_oid_of(mdd.oid, tile_id)
                payload = self.storage.db.blobs.get(blob_oid)  # random disk read
                self.library.write_segment(
                    f"{mdd.oid}/t{tile_id}", tile.size_bytes, payload=payload
                )
                report.segments_written += 1
                report.bytes_written += tile.size_bytes
                report.tiles_exported += 1
        report.virtual_seconds = watch.elapsed
        report.breakdown = _segment_breakdown(self.library, log_start)
        media_after = {m.medium_id for m in self.library.media() if m.used_bytes}
        report.media_used = len(media_after - media_before) or len(media_after)
        logger.info(
            "coupled export of %s: %d segments, %d B in %.1f virtual s",
            mdd.name, report.segments_written, report.bytes_written,
            report.virtual_seconds,
        )
        return report


class TCTExporter:
    """Decoupled super-tile streaming export (the E4 HEAVEN path)."""

    mode = "tct"

    def __init__(
        self, storage: ArrayStorage, library: TapeLibrary, tracer=None
    ) -> None:
        self.storage = storage
        self.library = library
        self.tracer = tracer if tracer is not None else null_tracer

    def export(
        self,
        mdd: MDD,
        placements: Sequence[Placement],
        pipelined: bool = True,
        stored_sizes: Optional[Dict[int, int]] = None,
        codec=None,
    ) -> ExportReport:
        """Stream each super-tile as one segment per its placement.

        Args:
            mdd: the persisted object whose tiles are being exported.
            placements: write order and media targets (from a
                :class:`~repro.core.clustering.PlacementPolicy`).
            pipelined: overlap assembly of the next super-tile with the
                tape write of the current one (the decoupling); off, every
                assembly is charged in full (for the ablation).
            stored_sizes: per-tile on-tape sizes when compression is on
                (the caller must already have set each super-tile's
                ``size_bytes`` to the matching sum); None = logical sizes.
            codec: per-tile codec applied while assembling payloads.

        Side effects: fills in each super-tile's ``medium_id``,
        ``segment_name`` and ``tile_extents``.
        """
        if mdd.oid is None:
            raise ExportError(f"object {mdd.name!r} is not persisted; insert it first")
        clock = self.library.clock
        watch = Stopwatch(clock)
        log_start = clock.log.cursor()
        report = ExportReport(object_name=mdd.name, mode=self.mode)
        media_before = {m.medium_id for m in self.library.media() if m.used_bytes}
        blobs = self.storage.db.blobs

        previous_write_seconds = 0.0
        with self.tracer.span(
            "export.tct", object=mdd.name, pipelined=pipelined
        ) as export_span:
            for position, placement in enumerate(placements):
                super_tile = placement.super_tile
                if stored_sizes is not None:
                    sizes = {t: stored_sizes[t] for t in super_tile.tile_ids}
                else:
                    sizes = {t: mdd.tiles[t].size_bytes for t in super_tile.tile_ids}
                super_tile.assign_extents(sizes)

                # --- assembly: N random BLOB reads into the staging buffer ----
                # (reads are of the *logical* tiles; compression happens while
                # streaming to the drive)
                assembly_seconds = sum(
                    blobs.disk.profile.io_time(mdd.tiles[t].size_bytes)
                    for t in super_tile.tile_ids
                )
                if position == 0 or not pipelined:
                    clock.charge(
                        assembly_seconds,
                        "disk-read",
                        blobs.disk.name,
                        detail=f"assemble st{super_tile.index}",
                        nbytes=super_tile.size_bytes,
                    )
                else:
                    stall = max(0.0, assembly_seconds - previous_write_seconds)
                    if stall > 0:
                        clock.charge(
                            stall,
                            "pipeline-stall",
                            blobs.disk.name,
                            detail=f"assemble st{super_tile.index}",
                        )
                        logger.debug(
                            "pipeline stall of %.3f virtual s assembling st%d "
                            "(assembly %.3f s > previous write %.3f s)",
                            stall, super_tile.index,
                            assembly_seconds, previous_write_seconds,
                        )
                    report.stall_seconds += stall

                payload = self._assemble_payload(mdd, super_tile, codec)

                # --- one streamed segment write --------------------------------
                write_watch = Stopwatch(clock)
                segment_name = f"{mdd.oid}/st{super_tile.index}"
                with self.tracer.span(
                    "export.segment",
                    segment=segment_name,
                    tiles=super_tile.tile_count,
                    bytes=super_tile.size_bytes,
                ):
                    medium_id, _segment = self.library.write_segment(
                        segment_name,
                        super_tile.size_bytes,
                        payload=payload,
                        medium_id=placement.medium_id,
                    )
                previous_write_seconds = write_watch.elapsed
                super_tile.medium_id = medium_id
                super_tile.segment_name = segment_name
                logger.debug(
                    "streamed %s (%d tiles, %d B) to medium %s in %.3f virtual s",
                    segment_name, super_tile.tile_count, super_tile.size_bytes,
                    medium_id, previous_write_seconds,
                )
                report.segments_written += 1
                report.bytes_written += super_tile.size_bytes
                report.tiles_exported += super_tile.tile_count
            export_span.set(
                segments=report.segments_written,
                stall_seconds=round(report.stall_seconds, 6),
            )

        report.virtual_seconds = watch.elapsed
        report.breakdown = _segment_breakdown(self.library, log_start)
        media_after = {m.medium_id for m in self.library.media() if m.used_bytes}
        report.media_used = len(media_after - media_before) or len(media_after)
        logger.info(
            "tct export of %s: %d segments, %d B in %.1f virtual s "
            "(%.1f s pipeline stalls)",
            mdd.name, report.segments_written, report.bytes_written,
            report.virtual_seconds, report.stall_seconds,
        )
        return report

    def _assemble_payload(
        self, mdd: MDD, super_tile: SuperTile, codec=None
    ) -> Optional[bytes]:
        """Concatenate member tile bytes (per-tile compressed) in intra-
        cluster order.

        Uses uncharged peeks — the charged assembly cost is modelled above
        (pipelined); double-charging through the resolver would count every
        byte twice.
        """
        blobs = self.storage.db.blobs
        if not blobs.retain_payload:
            return None
        parts: List[bytes] = []
        for tile_id in super_tile.tile_ids:
            blob_oid = self.storage.blob_oid_of(mdd.oid, tile_id)
            raw = blobs.peek(blob_oid)
            if raw is None:
                tile = mdd.tiles[tile_id]
                cells = mdd.materialize_tile(tile)
                raw = np.ascontiguousarray(cells, dtype=mdd.cell_type.dtype).tobytes()
            if codec is not None:
                raw = codec.compress(raw)
            parts.append(raw)
        return b"".join(parts)
