"""Configuration of a HEAVEN instance.

Also the canonical import site of :class:`RetryPolicy` — the recovery
policy consumed by the tape library, the HSM façade and HEAVEN itself
(it lives in :mod:`repro.faults` so the tertiary layer can use it without
an import cycle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..faults import FaultPlan, RetryPolicy
from ..tertiary.profiles import DISK_ARRAY, DLT_7000, GB, MB, DiskProfile, TapeProfile

__all__ = ["HeavenConfig", "RetryPolicy", "FaultPlan"]


@dataclass
class HeavenConfig:
    """Tuning knobs of the hierarchical storage environment.

    Attributes:
        tape_profile: drive/media technology of the tertiary layer.
        num_drives: read/write stations in the library.
        parallel_drives: drives the staging path may run concurrently
            (Kapitel 3.7.3).  ``1`` keeps staging serial; higher values
            dispatch each admission wave through the
            :class:`~repro.core.scheduler.ParallelExecutor` with one
            virtual timeline per drive (capped at ``num_drives``).
        attachment: how HEAVEN is coupled to tertiary storage
            (Kapitel 3.1).  ``"drive"`` talks to the library directly
            (segment-level access, partial super-tile runs possible);
            ``"hsm"`` goes through a file-level HSM, whose granularity is
            the whole file: every staged super-tile is read completely and
            double-hops through the HSM's own staging disk.
        super_tile_bytes: target super-tile size; ``None`` lets eSTAR derive
            it from the drive cost model and access statistics
            (Kapitel 3.2.4 — automatische Anpassung der Super-Kachel-Größe).
        min_super_tile_bytes / max_super_tile_bytes: clamp for the automatic
            size and guard rails for explicit settings.
        use_estar: eSTAR grouping (access-aware axis order, actual-size
            packing) instead of plain STAR.
        intra_clustering: order tiles inside a super-tile by expected access
            order so partial reads cover a short contiguous run.
        inter_clustering: place consecutive super-tiles contiguously on as
            few media as possible (off = round-robin scatter baseline).
        scheduling: reorder tape requests (group by medium, elevator sweep)
            instead of FIFO execution.
        partial_super_tile_reads: read only the contiguous run of needed
            tiles inside a super-tile segment instead of the whole segment.
        disk_cache_bytes: capacity of the super-tile disk cache.
        disk_cache_policy: eviction policy name (``lru``, ``fifo``, ``lfu``,
            ``size``, ``gds``).
        memory_cache_bytes: capacity of the in-memory tile cache.
        prefetch: staging prefetch policy (``none``, ``sequential``).
        prefetch_depth: super-tiles prefetched ahead per staged super-tile.
        precompute_aggregates: record per-tile aggregates at export time and
            answer condenser queries from them when possible.
        pyramid_factors: isotropic zoom factors materialised as scaling
            pyramids at archive time (``None`` disables); ``scale()`` calls
            over archived objects are answered from the matching level
            without touching tape.
        compression: per-tile codec for archived data (``"none"`` or
            ``"zlib"``); compressed tiles stream off tape in proportionally
            less time, at ~0.6 estimated ratio in size-only mode.
        disk_profile: staging/cache disk technology.
        retain_payload: keep real bytes everywhere (end-to-end fidelity);
            switch off for very large virtual experiments.
        event_log_max_events: bound the simulator's event log to this many
            retained events (oldest dropped in chunks, drop count exposed
            as the ``repro_eventlog_dropped_total`` metric); ``None`` keeps
            every event (exact full-history breakdowns).
        fault_plan: seeded fault-injection plan wired into the tape
            library's robot and drives (``None`` — the default — injects
            nothing and leaves every simulated cost byte-identical).
        retry_policy: bounded exponential-backoff recovery for faulted
            mounts and reads; only engaged when a fault fires.
        degraded_reads: count reads of tape-resident objects that were
            served entirely from the cache hierarchy while the library is
            offline (graceful degradation; the ``repro_degraded_reads_total``
            metric).  Reads that *need* tape still raise the typed
            ``RetryExhaustedError`` either way.
        admission_holdback_s: anticipatory hold-back window of the
            admission layer (:mod:`repro.core.admission`): a fused sweep's
            dispatch is delayed by exactly this many virtual seconds so
            queries arriving inside the window are absorbed into the same
            mount.  ``0.0`` (the default) dispatches immediately — the
            byte-identical legacy behaviour.
        admission_aging_bound_s: fairness bound of the admission layer:
            once the oldest pending staging demand has waited more than
            half this many virtual seconds, scheduling escalates to strict
            oldest-first dispatch until the backlog is drained, so no
            demand can wait unboundedly behind a heavier query.  ``None``
            disables aging escalation (pure weighted-fair picking).
        admission_default_weight: fair-share weight assigned to admitted
            queries that do not specify their own (service received is
            normalised by weight when picking the next sweep).
    """

    tape_profile: TapeProfile = DLT_7000
    num_drives: int = 1
    parallel_drives: int = 1
    attachment: str = "drive"
    super_tile_bytes: Optional[int] = 128 * MB
    min_super_tile_bytes: int = 8 * MB
    max_super_tile_bytes: int = 1 * GB
    use_estar: bool = True
    intra_clustering: bool = True
    inter_clustering: bool = True
    scheduling: bool = True
    partial_super_tile_reads: bool = True
    disk_cache_bytes: int = 4 * GB
    disk_cache_policy: str = "lru"
    memory_cache_bytes: int = 256 * MB
    prefetch: str = "none"
    prefetch_depth: int = 1
    precompute_aggregates: bool = True
    pyramid_factors: Optional[tuple] = None
    compression: str = "none"
    disk_profile: DiskProfile = DISK_ARRAY
    retain_payload: bool = True
    event_log_max_events: Optional[int] = None
    fault_plan: Optional[FaultPlan] = None
    retry_policy: RetryPolicy = field(default_factory=RetryPolicy)
    degraded_reads: bool = True
    admission_holdback_s: float = 0.0
    admission_aging_bound_s: Optional[float] = None
    admission_default_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.attachment not in ("drive", "hsm"):
            raise ValueError(f"unknown attachment mode {self.attachment!r}")
        if self.super_tile_bytes is not None and self.super_tile_bytes <= 0:
            raise ValueError("super_tile_bytes must be positive or None")
        if self.min_super_tile_bytes > self.max_super_tile_bytes:
            raise ValueError("min_super_tile_bytes > max_super_tile_bytes")
        if self.prefetch not in ("none", "sequential"):
            raise ValueError(f"unknown prefetch policy {self.prefetch!r}")
        if self.pyramid_factors is not None and any(
            int(f) < 2 for f in self.pyramid_factors
        ):
            raise ValueError(f"pyramid factors must be >= 2: {self.pyramid_factors}")
        if self.event_log_max_events is not None and self.event_log_max_events < 1:
            raise ValueError("event_log_max_events must be positive or None")
        if self.num_drives < 1:
            raise ValueError("num_drives must be >= 1")
        if self.parallel_drives < 1:
            raise ValueError("parallel_drives must be >= 1")
        if self.admission_holdback_s < 0:
            raise ValueError("admission_holdback_s must be >= 0")
        if (
            self.admission_aging_bound_s is not None
            and self.admission_aging_bound_s <= 0
        ):
            raise ValueError("admission_aging_bound_s must be positive or None")
        if self.admission_default_weight <= 0:
            raise ValueError("admission_default_weight must be positive")
