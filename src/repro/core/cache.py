"""Caching hierarchy for array data (Kapitel 3.6).

Two levels above tape:

* a **disk cache** holding super-tile segments staged from tape — the level
  that turns repeated tape mounts into disk reads;
* a **memory tile cache** holding decoded tile payloads — the level that
  turns repeated disk reads into pointer lookups.

Eviction is pluggable (Kapitel 3.6.3 Verdrängungsstrategien): LRU, FIFO,
LFU, SIZE (largest first) and GDS (GreedyDual-Size, which weighs the tape
cost of re-fetching a segment against its size — tailored to tertiary
storage where re-fetch cost varies with media placement).
"""

from __future__ import annotations

import logging
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import AbstractSet, Dict, FrozenSet, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import CacheError, CachePinnedError
from ..tertiary.clock import SimClock
from ..tertiary.disk import DiskDevice
from ..tertiary.profiles import DiskProfile

logger = logging.getLogger("repro.core.cache")


# -- eviction policies --------------------------------------------------------


_NO_EXCLUDE: FrozenSet[str] = frozenset()


class EvictionPolicy:
    """Tracks entries and nominates victims.  Sizes/costs are in bytes/seconds."""

    name = "abstract"

    def insert(self, key: str, size: int, cost: float) -> None:
        raise NotImplementedError

    def access(self, key: str) -> None:
        raise NotImplementedError

    def remove(self, key: str) -> None:
        raise NotImplementedError

    def victim(self, exclude: AbstractSet[str] = _NO_EXCLUDE) -> str:
        """Key to evict next (entry stays registered until remove()).

        Keys in *exclude* (pinned entries) are never nominated; raises
        :class:`CacheError` when no evictable entry remains.
        """
        raise NotImplementedError


class LRUPolicy(EvictionPolicy):
    """Evict the least recently used entry."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def insert(self, key: str, size: int, cost: float) -> None:
        self._order[key] = None

    def access(self, key: str) -> None:
        self._order.move_to_end(key)

    def remove(self, key: str) -> None:
        del self._order[key]

    def victim(self, exclude: AbstractSet[str] = _NO_EXCLUDE) -> str:
        for key in self._order:
            if key not in exclude:
                return key
        raise CacheError("no cache entry to evict")


class FIFOPolicy(EvictionPolicy):
    """Evict the oldest inserted entry, ignoring accesses."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def insert(self, key: str, size: int, cost: float) -> None:
        self._order[key] = None

    def access(self, key: str) -> None:
        pass

    def remove(self, key: str) -> None:
        del self._order[key]

    def victim(self, exclude: AbstractSet[str] = _NO_EXCLUDE) -> str:
        for key in self._order:
            if key not in exclude:
                return key
        raise CacheError("no cache entry to evict")


class LFUPolicy(EvictionPolicy):
    """Evict the least frequently used entry (ties: oldest)."""

    name = "lfu"

    def __init__(self) -> None:
        self._counts: "OrderedDict[str, int]" = OrderedDict()

    def insert(self, key: str, size: int, cost: float) -> None:
        self._counts[key] = 1

    def access(self, key: str) -> None:
        self._counts[key] += 1

    def remove(self, key: str) -> None:
        del self._counts[key]

    def victim(self, exclude: AbstractSet[str] = _NO_EXCLUDE) -> str:
        candidates = [k for k in self._counts if k not in exclude]
        if not candidates:
            raise CacheError("no cache entry to evict")
        return min(candidates, key=lambda k: self._counts[k])


class SizePolicy(EvictionPolicy):
    """Evict the largest entry first (frees space fastest)."""

    name = "size"

    def __init__(self) -> None:
        self._sizes: Dict[str, int] = {}

    def insert(self, key: str, size: int, cost: float) -> None:
        self._sizes[key] = size

    def access(self, key: str) -> None:
        pass

    def remove(self, key: str) -> None:
        del self._sizes[key]

    def victim(self, exclude: AbstractSet[str] = _NO_EXCLUDE) -> str:
        candidates = [k for k in self._sizes if k not in exclude]
        if not candidates:
            raise CacheError("no cache entry to evict")
        return max(candidates, key=lambda k: self._sizes[k])


class GDSPolicy(EvictionPolicy):
    """GreedyDual-Size: priority = L + refetch_cost / size.

    Retains entries that are expensive to re-stage from tape relative to
    the space they occupy.  ``L`` is the classic inflation value, set to
    the victim's priority on each eviction so long-idle entries age out.
    """

    name = "gds"

    def __init__(self) -> None:
        self._priority: Dict[str, float] = {}
        self._cost_per_byte: Dict[str, float] = {}
        self._inflation = 0.0

    def insert(self, key: str, size: int, cost: float) -> None:
        ratio = cost / max(1, size)
        self._cost_per_byte[key] = ratio
        self._priority[key] = self._inflation + ratio

    def access(self, key: str) -> None:
        self._priority[key] = self._inflation + self._cost_per_byte[key]

    def remove(self, key: str) -> None:
        self._priority.pop(key)
        self._cost_per_byte.pop(key)

    def victim(self, exclude: AbstractSet[str] = _NO_EXCLUDE) -> str:
        candidates = [k for k in self._priority if k not in exclude]
        if not candidates:
            raise CacheError("no cache entry to evict")
        victim = min(candidates, key=lambda k: self._priority[k])
        self._inflation = self._priority[victim]
        return victim


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "lfu": LFUPolicy,
    "size": SizePolicy,
    "gds": GDSPolicy,
}


def make_policy(name: str) -> EvictionPolicy:
    """Instantiate an eviction policy by name."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError:
        raise CacheError(
            f"unknown eviction policy {name!r}; known: {sorted(_POLICIES)}"
        ) from None


def policy_names() -> List[str]:
    return sorted(_POLICIES)


# -- disk super-tile cache ---------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache level."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    bytes_inserted: int = 0
    bytes_evicted: int = 0
    #: pin()/unpin() reference-count operations (lifetime)
    pins: int = 0
    unpins: int = 0
    #: victim nominations skipped because the candidate was pinned
    pin_evictions_blocked: int = 0
    #: owner-tagged lease acquisitions/releases (lifetime)
    leases: int = 0
    lease_releases: int = 0

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _DiskEntry:
    size: int
    cost: float
    #: staged segment bytes — ``memoryview`` slices of the library's
    #: immutable payloads on the zero-copy staging path
    payload: Optional[Union[bytes, memoryview]]


class DiskCache:
    """Disk-resident cache of staged super-tile segments.

    Insertion charges a disk write; hits are free at this level (the read
    itself is charged when tiles are pulled out via :meth:`read`).

    Entries can be **pinned** (reference-counted) by the staging pipeline
    while a batch is in flight: pinned entries are never nominated as
    eviction victims, so a segment staged early in a batch cannot be
    thrown out by a later insertion of the same batch before its tiles
    were ever assembled.  When space is needed and *every* resident entry
    is pinned, :class:`~repro.errors.CachePinnedError` is raised.
    """

    def __init__(
        self,
        capacity_bytes: int,
        policy: EvictionPolicy,
        profile: DiskProfile,
        clock: SimClock,
        on_evict: Optional[callable] = None,
    ) -> None:
        if capacity_bytes <= 0:
            raise CacheError("disk cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.disk = DiskDevice("heaven-cache", profile, clock)
        self.clock = clock
        self.on_evict = on_evict
        self._entries: Dict[str, _DiskEntry] = {}
        self._pins: Dict[str, int] = {}
        #: owner-tagged pin references: key -> owner -> lease count
        self._leases: Dict[str, Dict[str, int]] = {}
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        return sum(e.size for e in self._entries.values())

    @property
    def pinned_bytes(self) -> int:
        """Bytes held by entries with at least one pin (unevictable)."""
        return sum(self._entries[key].size for key in self._pins)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> List[str]:
        return list(self._entries)

    # -- pinning -------------------------------------------------------------

    def pin(self, key: str) -> None:
        """Take a reference on *key*, shielding it from eviction."""
        if key not in self._entries:
            raise CacheError(f"cannot pin absent cache entry {key!r}")
        self._pins[key] = self._pins.get(key, 0) + 1
        self.stats.pins += 1

    def unpin(self, key: str) -> None:
        """Drop one reference; the entry becomes evictable at zero."""
        count = self._pins.get(key)
        if count is None:
            raise CacheError(f"cache entry {key!r} is not pinned")
        if count <= 1:
            del self._pins[key]
        else:
            self._pins[key] = count - 1
        self.stats.unpins += 1

    def is_pinned(self, key: str) -> bool:
        return key in self._pins

    def pin_count(self, key: str) -> int:
        return self._pins.get(key, 0)

    def pinned_keys(self) -> List[str]:
        return list(self._pins)

    # -- per-owner leases ------------------------------------------------------
    #
    # A lease is a pin tagged with the holder's identity (e.g. a query id).
    # Two queries sharing one staged segment each hold their own lease on
    # it, so one query finishing its assembly can only ever drop *its own*
    # reference — releasing someone else's lease is a typed error, not a
    # silent double-unpin that would expose the other query's bytes to
    # eviction mid-assembly.

    def acquire_lease(self, key: str, owner: str) -> None:
        """Take an owner-tagged pin on *key* for *owner*."""
        self.pin(key)
        owners = self._leases.setdefault(key, {})
        owners[owner] = owners.get(owner, 0) + 1
        self.stats.leases += 1

    def release_lease(self, key: str, owner: str) -> None:
        """Drop one of *owner*'s leases on *key*.

        Raises :class:`~repro.errors.CacheError` when *owner* holds no
        lease on *key* — the guard that keeps one query's release from
        consuming another query's reference.  Releasing a lease whose
        entry was invalidated while held is a no-op (the pins died with
        the entry).
        """
        owners = self._leases.get(key)
        if owners is None or owner not in owners:
            if key not in self._entries:
                return  # invalidated while leased: references already gone
            raise CacheError(
                f"{owner!r} holds no lease on cache entry {key!r}"
            )
        if owners[owner] <= 1:
            del owners[owner]
            if not owners:
                del self._leases[key]
        else:
            owners[owner] -= 1
        self.stats.lease_releases += 1
        self.unpin(key)

    def lease_count(self, key: str, owner: Optional[str] = None) -> int:
        """Leases held on *key* (by *owner*, or by everyone when None)."""
        owners = self._leases.get(key, {})
        if owner is not None:
            return owners.get(owner, 0)
        return sum(owners.values())

    def lease_owners(self, key: str) -> List[str]:
        """Owners currently holding at least one lease on *key*."""
        return sorted(self._leases.get(key, {}))

    def lookup(self, key: str) -> bool:
        """Probe the cache; updates policy state and hit statistics."""
        self.stats.lookups += 1
        if key in self._entries:
            self.policy.access(key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def insert(
        self,
        key: str,
        size: int,
        refetch_cost: float,
        payload: Optional[Union[bytes, memoryview]] = None,
        pin: bool = False,
    ) -> None:
        """Add a staged segment, evicting until it fits.

        With ``pin=True`` the entry is inserted already holding one pin
        reference, so no later insertion of the same batch can evict it
        before the caller had a chance to pin it.
        """
        if key in self._entries:
            raise CacheError(f"cache entry {key!r} already present")
        if size > self.capacity_bytes:
            raise CacheError(
                f"segment of {size} B exceeds cache capacity {self.capacity_bytes} B"
            )
        while self.used_bytes + size > self.capacity_bytes:
            self.evict_one()
        self.disk.write(size, detail=f"stage {key}")
        self._entries[key] = _DiskEntry(size=size, cost=refetch_cost, payload=payload)
        self.policy.insert(key, size, refetch_cost)
        self.stats.insertions += 1
        self.stats.bytes_inserted += size
        if pin:
            self.pin(key)
        logger.debug(
            "disk cache insert %s (%d B, refetch %.2f s); used %d/%d B",
            key, size, refetch_cost, self.used_bytes, self.capacity_bytes,
        )

    def evict_one(self) -> str:
        """Evict the policy's victim, skipping pinned entries.

        Each pinned entry the policy would have chosen first counts as one
        blocked eviction (``pin_evictions_blocked``) and emits a
        zero-duration ``pin-blocked`` marker event, so span windows can see
        the pressure without any virtual time being charged.  Raises
        :class:`CachePinnedError` when every resident entry is pinned —
        the typed signal that a staging wave was oversized.
        """
        skipped: set = set()
        while True:
            try:
                victim = self.policy.victim(exclude=skipped)
            except CacheError:
                if not self._entries:
                    raise
                raise CachePinnedError(
                    f"cannot evict: all {len(self._entries)} resident entries "
                    f"({self.pinned_bytes} B) are pinned"
                ) from None
            if victim not in self._pins:
                break
            skipped.add(victim)
            self.stats.pin_evictions_blocked += 1
            self.clock.charge(0.0, "pin-blocked", "heaven-cache", detail=victim)
        entry = self._entries.pop(victim)
        self.policy.remove(victim)
        self.stats.evictions += 1
        self.stats.bytes_evicted += entry.size
        logger.debug(
            "disk cache evict %s (%d B) by %s policy", victim, entry.size,
            self.policy.name,
        )
        if self.on_evict is not None:
            self.on_evict(victim)
        return victim

    def resize(self, capacity_bytes: int) -> int:
        """Change the cache capacity at runtime; returns evictions made.

        Shrinking evicts (by the configured policy) until the resident
        bytes fit the new budget *before* the capacity is lowered, so the
        "used ≤ capacity" invariant never observes an intermediate
        violation.  Raises :class:`CachePinnedError` if pinned entries
        alone exceed the new capacity — a resize must not break a staging
        batch in flight.
        """
        if capacity_bytes <= 0:
            raise CacheError("disk cache capacity must be positive")
        if self.pinned_bytes > capacity_bytes:
            raise CachePinnedError(
                f"cannot shrink cache to {capacity_bytes} B: {self.pinned_bytes} "
                f"B are pinned by staging batches in flight"
            )
        evicted = 0
        while self.used_bytes > capacity_bytes:
            self.evict_one()
            evicted += 1
        self.capacity_bytes = capacity_bytes
        return evicted

    def invalidate(self, key: str) -> bool:
        """Drop an entry without counting it as an eviction (updates).

        Any pins on the entry are discarded too: invalidation is an
        explicit statement that the bytes are dead (updated or deleted).
        """
        entry = self._entries.pop(key, None)
        if entry is None:
            return False
        self.policy.remove(key)
        self._pins.pop(key, None)
        self._leases.pop(key, None)
        return True

    def read(self, key: str, offset: int, length: int) -> Optional[memoryview]:
        """Read a byte range of a cached segment (charged disk read).

        Returns a **read-only** ``memoryview`` over the cached payload —
        no bytes are copied; decode builds ``np.frombuffer`` views directly
        on top.  The view stays valid as long as the entry's payload object
        is referenced (Python ``bytes`` are immutable, so eviction cannot
        corrupt an outstanding view — it merely drops the cache's
        reference).
        """
        entry = self._entries.get(key)
        if entry is None:
            raise CacheError(f"cache entry {key!r} not present")
        if offset < 0 or offset + length > entry.size:
            raise CacheError(
                f"range [{offset}, {offset + length}) outside segment of "
                f"{entry.size} B"
            )
        self.disk.read(length, detail=f"read {key}")
        if entry.payload is None:
            return None
        return memoryview(entry.payload)[offset : offset + length].toreadonly()


# -- memory tile cache -----------------------------------------------------------------


class MemoryTileCache:
    """LRU cache of decoded tile payloads (the top of the hierarchy).

    Cached arrays are held and handed out **read-only**: ``put`` flips the
    array's write flag off, so a caller mutating a returned array (or a
    writer mutating a payload it also cached) raises instead of silently
    corrupting every future hit.  Callers that need to modify cells must
    ``copy()`` first.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise CacheError("memory cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._entries: "OrderedDict[Tuple[str, int], np.ndarray]" = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, object_name: str, tile_id: int) -> Optional[np.ndarray]:
        key = (object_name, tile_id)
        self.stats.lookups += 1
        cells = self._entries.get(key)
        if cells is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return cells

    def peek(self, object_name: str, tile_id: int) -> bool:
        """Presence probe that touches neither stats nor LRU order."""
        return (object_name, tile_id) in self._entries

    def put(
        self, object_name: str, tile_id: int, cells: np.ndarray
    ) -> np.ndarray:
        """Cache *cells* frozen; returns the (read-only) array now shared.

        Callers must continue with the **returned** array: when a writable
        view of a foreign buffer has to be snapshotted to freeze safely,
        the snapshot is what got cached.  Zero-copy decode hands in arrays
        that are already read-only views, which are stored as-is.
        """
        key = (object_name, tile_id)
        size = int(cells.nbytes)
        # Freeze the array *before* the capacity bypass: even a tile too
        # large to cache must come out immutable, or the caller would hold
        # the only writable alias of what other code treats as frozen.
        if cells.flags.writeable and (
            cells.flags.owndata or cells.base is None
        ):
            cells.setflags(write=False)
        elif cells.flags.writeable:
            # A writable view of someone else's buffer must not be frozen
            # in place (the base stays writable anyway); snapshot it.
            cells = cells.copy()
            cells.setflags(write=False)
        if size > self.capacity_bytes:
            return cells  # larger than the whole cache: bypass (still frozen)
        if key in self._entries:
            self._used -= int(self._entries[key].nbytes)
            del self._entries[key]
        while self._used + size > self.capacity_bytes:
            _victim, evicted = self._entries.popitem(last=False)
            self._used -= int(evicted.nbytes)
            self.stats.evictions += 1
            self.stats.bytes_evicted += int(evicted.nbytes)
        self._entries[key] = cells
        self._used += size
        self.stats.insertions += 1
        self.stats.bytes_inserted += size
        return cells

    def invalidate_object(self, object_name: str) -> int:
        """Drop every tile of one object (on update/delete); returns count."""
        victims = [k for k in self._entries if k[0] == object_name]
        for key in victims:
            self._used -= int(self._entries[key].nbytes)
            del self._entries[key]
        return len(victims)
