"""The Super-Tile concept and the STAR grouping algorithm (Kapitel 3.2).

DBMS tiles (hundreds of KB) are a hopeless access granularity for tape: one
positioning operation costs as much as streaming tens of MB.  HEAVEN groups
spatially contiguous tiles into *super-tiles* of a target byte size — the
unit of all tertiary-storage I/O.  STAR (Super-Tile AlgoRithm) partitions a
regularly tiled object's tile grid into hyper-rectangular blocks of tiles
whose combined size approximates the target.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..arrays.index import GridIndex
from ..arrays.mdd import MDD
from ..arrays.minterval import MInterval
from ..errors import HeavenError


@dataclass
class SuperTile:
    """A group of tiles stored as one contiguous tape segment.

    Attributes:
        index: position of the super-tile in cluster order (0-based).
        object_name: owning MDD's name.
        tile_ids: member tiles in *intra-super-tile cluster order* — the
            byte order inside the tape segment.
        domain: hull of the member tile domains.
        size_bytes: total payload bytes of all member tiles.
        medium_id / segment_name: tape placement, set at export.
        tile_extents: per-tile (offset, length) inside the segment, set at
            export according to the intra-cluster order.
    """

    index: int
    object_name: str
    tile_ids: List[int]
    domain: MInterval
    size_bytes: int
    medium_id: Optional[str] = None
    segment_name: Optional[str] = None
    tile_extents: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    @property
    def exported(self) -> bool:
        return self.segment_name is not None

    @property
    def tile_count(self) -> int:
        return len(self.tile_ids)

    def assign_extents(self, sizes: Dict[int, int]) -> None:
        """Lay member tiles out back-to-back in cluster order."""
        offset = 0
        self.tile_extents = {}
        for tile_id in self.tile_ids:
            length = sizes[tile_id]
            self.tile_extents[tile_id] = (offset, length)
            offset += length
        if offset != self.size_bytes:
            raise HeavenError(
                f"super-tile {self.index} of {self.object_name!r}: extents sum "
                f"to {offset}, expected {self.size_bytes}"
            )

    def run_covering(self, tile_ids: Sequence[int]) -> Tuple[int, int]:
        """Smallest contiguous byte run inside the segment covering *tile_ids*.

        Intra-super-tile clustering exists precisely to make this run short
        for typical queries (Kapitel 3.3).
        """
        extents = [self.tile_extents[t] for t in tile_ids]
        if not extents:
            raise HeavenError("run_covering needs at least one tile")
        start = min(offset for offset, _length in extents)
        end = max(offset + length for offset, length in extents)
        return start, end - start


def grid_block_shape(
    grid_counts: Sequence[int],
    tiles_per_super_tile: int,
    axis_order: Sequence[int],
) -> List[int]:
    """Block extents (in grid units) for grouping *tiles_per_super_tile* tiles.

    Axes are filled greedily in *axis_order*: the first axis takes as many
    grid steps as the budget allows, the remainder flows to the next axis.
    The default STAR order fills the fastest-varying (row-major innermost)
    axis first so member tiles are physically adjacent in tile-id order.
    """
    if sorted(axis_order) != list(range(len(grid_counts))):
        raise HeavenError(f"axis order {axis_order} is not a permutation")
    shape = [1] * len(grid_counts)
    remaining = max(1, tiles_per_super_tile)
    for axis in axis_order:
        take = min(grid_counts[axis], remaining)
        shape[axis] = take
        remaining //= take
        if remaining <= 1:
            break
    return shape


def star_partition(
    mdd: MDD,
    target_bytes: int,
    axis_order: Optional[Sequence[int]] = None,
) -> List[SuperTile]:
    """STAR: partition a regularly tiled object into super-tiles.

    The object's tile grid is cut into blocks of
    ``grid_block_shape(...)`` tiles; each block becomes one super-tile whose
    member tiles are listed in row-major order within the block (the default
    intra order; eSTAR may reorder them).  Objects without a regular grid
    index fall back to :func:`run_pack_partition`.

    Args:
        mdd: the object to partition.
        target_bytes: desired super-tile size.
        axis_order: grid axes in fill priority; default fills the
            fastest-varying axis first (row-major adjacency).

    Returns:
        Super-tiles in cluster order, covering every tile exactly once.
    """
    if target_bytes <= 0:
        raise HeavenError(f"target super-tile size must be positive: {target_bytes}")
    index = mdd.index
    if not isinstance(index, GridIndex):
        return run_pack_partition(mdd, target_bytes)
    counts = index.grid_counts
    dimension = len(counts)
    if axis_order is None:
        axis_order = list(range(dimension - 1, -1, -1))
    # Uniform interior tile size; edge tiles may be smaller, which only
    # makes super-tiles slightly undersized (harmless).
    max_tile_bytes = max(t.size_bytes for t in mdd.tiles.values())
    tiles_per_st = max(1, target_bytes // max_tile_bytes)
    block_shape = grid_block_shape(counts, tiles_per_st, axis_order)

    blocks_per_axis = [
        -(-count // extent) for count, extent in zip(counts, block_shape)
    ]
    super_tiles: List[SuperTile] = []
    for st_index, block_coords in enumerate(
        itertools.product(*(range(b) for b in blocks_per_axis))
    ):
        tile_ids: List[int] = []
        ranges = []
        for axis, block_coord in enumerate(block_coords):
            start = block_coord * block_shape[axis]
            stop = min(start + block_shape[axis], counts[axis])
            ranges.append(range(start, stop))
        for grid_coords in itertools.product(*ranges):
            tile_ids.append(index.tile_id_at(grid_coords))
        tile_ids.sort()
        super_tiles.append(_build_super_tile(mdd, st_index, tile_ids))
    _validate_partition(mdd, super_tiles)
    return super_tiles


def run_pack_partition(mdd: MDD, target_bytes: int) -> List[SuperTile]:
    """Fallback grouping for irregular tilings: greedy packing in id order.

    Tiles are taken in tile-id (generation) order and packed into
    super-tiles until the target size would be exceeded.  Spatial locality
    is whatever the generation order provides — this is also the model of a
    naive archive, used as a baseline in the clustering experiments.
    """
    if target_bytes <= 0:
        raise HeavenError(f"target super-tile size must be positive: {target_bytes}")
    super_tiles: List[SuperTile] = []
    current: List[int] = []
    current_bytes = 0
    for tile_id in sorted(mdd.tiles):
        tile_bytes = mdd.tiles[tile_id].size_bytes
        if current and current_bytes + tile_bytes > target_bytes:
            super_tiles.append(_build_super_tile(mdd, len(super_tiles), current))
            current = []
            current_bytes = 0
        current.append(tile_id)
        current_bytes += tile_bytes
    if current:
        super_tiles.append(_build_super_tile(mdd, len(super_tiles), current))
    _validate_partition(mdd, super_tiles)
    return super_tiles


def _build_super_tile(mdd: MDD, st_index: int, tile_ids: List[int]) -> SuperTile:
    domain = mdd.tiles[tile_ids[0]].domain
    size = 0
    for tile_id in tile_ids:
        tile = mdd.tiles[tile_id]
        domain = domain.hull(tile.domain)
        size += tile.size_bytes
    return SuperTile(
        index=st_index,
        object_name=mdd.name,
        tile_ids=list(tile_ids),
        domain=domain,
        size_bytes=size,
    )


def _validate_partition(mdd: MDD, super_tiles: List[SuperTile]) -> None:
    seen: set = set()
    for super_tile in super_tiles:
        for tile_id in super_tile.tile_ids:
            if tile_id in seen:
                raise HeavenError(f"tile {tile_id} in two super-tiles")
            seen.add(tile_id)
    if seen != set(mdd.tiles):
        missing = set(mdd.tiles) - seen
        raise HeavenError(f"partition misses tiles {sorted(missing)[:5]}...")


def tiles_to_super_tiles(
    super_tiles: List[SuperTile],
) -> Dict[int, SuperTile]:
    """Reverse map tile id -> owning super-tile."""
    mapping: Dict[int, SuperTile] = {}
    for super_tile in super_tiles:
        for tile_id in super_tile.tile_ids:
            mapping[tile_id] = super_tile
    return mapping
